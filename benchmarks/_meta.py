"""Shared JSON schema header for every ``BENCH_*.json`` record.

Benchmark outputs are compared across commits and across machines;
without a provenance header a regression is indistinguishable from a
hardware change.  Every writer routes through :func:`write_bench` or
:func:`record_bench`, which stamp a common ``meta`` block: schema
version, seed, git revision, interpreter/numpy versions, platform and
CPU count.

Named ``_meta`` (not ``bench_meta``) so pytest's ``bench_*`` collection
glob never picks it up as a test module.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

BENCH_SCHEMA_VERSION = 1


def _git_rev() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        ).stdout.strip()
    except Exception:
        return "unknown"


def bench_meta(seed: int = 0) -> dict:
    """The provenance header shared by every benchmark record."""
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "seed": seed,
        "git_rev": _git_rev(),
        "generated_at": datetime.now(timezone.utc).isoformat(
            timespec="seconds"
        ),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "bench_scale": os.environ.get("BENCH_SCALE", "default") or "default",
    }


def write_bench(path: Path, record: dict, *, seed: int = 0) -> None:
    """Write a whole benchmark record, header first."""
    stamped = {"meta": bench_meta(seed)}
    stamped.update(record)
    path.write_text(json.dumps(stamped, indent=2) + "\n")


def record_bench(path: Path, section: str, payload: dict, *, seed: int = 0) -> None:
    """Read-modify-write one section of a shared record, restamping meta.

    The header reflects the *latest* writer; sections written by earlier
    runs survive untouched, so partial re-runs stay comparable.
    """
    record = {}
    if path.exists():
        record = json.loads(path.read_text())
    record.pop("meta", None)
    record[section] = payload
    write_bench(path, record, seed=seed)
