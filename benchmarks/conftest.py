"""Shared fixtures for the benchmark suite.

All benchmarks run on one seeded synthetic forum, scaled so the full
suite completes in minutes rather than hours.  ``BENCH_SCALE=full`` in
the environment switches to the paper-scale dataset (~12k questions
after preprocessing requires the larger generator config below).
"""

import os

import pytest

from repro.core import PredictorConfig, build_extractor, build_pair_dataset
from repro.forum import ForumConfig, generate_forum

FULL = os.environ.get("BENCH_SCALE", "").lower() == "full"

FORUM_CONFIG = (
    ForumConfig(n_users=9000, n_questions=20000, activity_tail=1.4)
    if FULL
    else ForumConfig(n_users=700, n_questions=900, activity_tail=1.4)
)

# Exact Brandes betweenness is O(V*E) — prohibitive on the paper-scale
# graph (~10k nodes), so the full-scale run uses the Brandes-Pich
# source-sampling approximation.
PREDICTOR_CONFIG = PredictorConfig(
    betweenness_sample_size=1000 if FULL else 200,
)

N_FOLDS = 5
N_REPEATS = 1


@pytest.fixture(scope="session")
def forum():
    return generate_forum(FORUM_CONFIG, seed=0)


@pytest.fixture(scope="session")
def dataset(forum):
    clean, report = forum.dataset.preprocess()
    return clean


@pytest.fixture(scope="session")
def config():
    return PREDICTOR_CONFIG


@pytest.fixture(scope="session")
def extractor(dataset, config):
    return build_extractor(dataset, config)


@pytest.fixture(scope="session")
def pairs(dataset, extractor, config):
    return build_pair_dataset(
        dataset, extractor, negative_ratio=config.negative_ratio, seed=config.seed
    )
