"""Two-stage candidate retrieval vs dense Sec.-V routing.

Three measurements, recorded together in ``BENCH_retrieval.json``:

* **Tier-1 smoke** (fast lane, run by CI on every push) — on the
  default bench forum, the fused candidate pool must cover the dense
  eligible set with recall >= 0.95 at the default budgets, while
  actually pruning the scored population.  Routing decisions are
  compared pick-for-pick against the dense path.
* **Large-scale speedup** (``@slow``) — a 26k-user forum with 10k+
  candidate answerers; end-to-end per-question routing (predict +
  LP) through the two-stage pool must be >= 5x faster than dense
  scoring, with the one-time index build amortized and reported.
* **Online replay** (``@slow``) — the streaming deployment loop run
  dense and two-stage over the same stream; precision@5 / MRR movement
  quantifies what the bounded pool costs (or gains) end to end.
"""

import time
from pathlib import Path

import numpy as np
import pytest

from conftest import FORUM_CONFIG

from _meta import record_bench
from repro import perf
from repro.core import (
    ForumPredictor,
    OnlineConfig,
    OnlineRecommendationLoop,
    PredictorConfig,
    QuestionRouter,
)
from repro.core.retrieval import (
    CandidateRetriever,
    RetrievalConfig,
    candidate_recall,
)
from repro.forum import ForumConfig, generate_forum

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_retrieval.json"

# The large-scale arm sizes the forum for >= 10k distinct answerers in
# the training window; featurization cost, not model quality, is what
# is being measured, so the fit budget is trimmed accordingly.
LARGE_FORUM = ForumConfig(n_users=26_000, n_questions=36_000, activity_tail=1.4)
LARGE_PREDICTOR = PredictorConfig(
    vote_epochs=30, timing_epochs=30, betweenness_sample_size=200
)
# Budgets scaled to the ~12k-answerer population (the defaults are
# Tier-1-sized).  The activity generator carries eligible-set recall —
# the answer model's eligible set is dominated by window answer volume
# — while the topic/MF generators contribute the question-specific
# heads, so their budgets stay small to keep the pool (and the
# second-stage scoring cost) bounded.
LARGE_RETRIEVAL = RetrievalConfig(
    topic_top_k=128, recency_top_k=1536, mf_top_k=128, pool_size=1792
)

RECALL_FLOOR = 0.95
SPEEDUP_FLOOR = 5.0


def _merge_record(section: str, payload: dict) -> None:
    """Read-modify-write one section of the shared JSON record."""
    record_bench(RESULT_PATH, section, payload)


def _split_final_day(dataset):
    """(history, final-day questions) split on question creation time."""
    last_question = max(t.created_at for t in dataset.threads)
    split = last_question - 24.0
    history = dataset.threads_in_window(0.0, split)
    final = dataset.threads_in_window(split, last_question + 1.0)
    return history, final


def _build_retriever(predictor, retrieval=None):
    retriever = CandidateRetriever(
        retrieval or RetrievalConfig(), predictor.topics
    )
    extractor = predictor.extractor
    start = time.perf_counter()
    retriever.build(extractor.frozen, extractor.window)
    return retriever, time.perf_counter() - start


def _route_all(router, threads, candidates):
    """(results, seconds) of routing every thread one at a time."""
    start = time.perf_counter()
    results = [
        router.recommend(thread, candidates, tradeoff=0.1)
        for thread in threads
    ]
    return results, time.perf_counter() - start


def _pick_parity(dense_results, pooled_results):
    """Fraction of questions where both paths pick the same top user."""
    agree, comparable = 0, 0
    for dense, pooled in zip(dense_results, pooled_results):
        if dense is None or pooled is None:
            continue
        comparable += 1
        if dense.ranked_users()[0][0] == pooled.ranked_users()[0][0]:
            agree += 1
    return (agree / comparable if comparable else 1.0), comparable


def test_tier1_recall_smoke(benchmark, dataset, config):
    """Pool recall vs the dense eligible set at Tier-1 scale (CI gate)."""
    history, final = _split_final_day(dataset)
    predictor = ForumPredictor(config).fit(history)
    candidates = sorted(history.answerers)
    threads = final.threads[:40]
    assert threads, "final day has no questions"

    dense_router = QuestionRouter(predictor, epsilon=0.3, default_capacity=3.0)
    retriever, build_seconds = _build_retriever(predictor)
    pooled_router = QuestionRouter(
        predictor, epsilon=0.3, default_capacity=3.0, retriever=retriever
    )

    dense_results, _ = _route_all(dense_router, threads, candidates)

    def pooled():
        return _route_all(pooled_router, threads, candidates)[0]

    pooled_results = benchmark.pedantic(pooled, rounds=1, iterations=1)

    recalls, pool_sizes = [], []
    for thread, dense in zip(threads, dense_results):
        pool = retriever.pool(thread, candidates)
        pool_sizes.append(int(pool.size))
        if dense is not None:
            # ``dense.users`` is exactly the dense eligible set.
            recalls.append(candidate_recall(pool, dense.users))
    mean_recall = float(np.mean(recalls))
    min_recall = float(np.min(recalls))
    parity, comparable = _pick_parity(dense_results, pooled_results)

    payload = {
        "forum": {
            "n_users": FORUM_CONFIG.n_users,
            "n_questions": FORUM_CONFIG.n_questions,
        },
        "n_candidates": len(candidates),
        "n_questions": len(threads),
        "pool_size_mean": round(float(np.mean(pool_sizes)), 1),
        "index_build_seconds": round(build_seconds, 4),
        "eligible_recall_mean": round(mean_recall, 4),
        "eligible_recall_min": round(min_recall, 4),
        "top_pick_agreement": round(parity, 4),
        "questions_compared": comparable,
    }
    _merge_record("tier1_smoke", payload)
    print(
        f"\nTier-1 retrieval smoke: recall {mean_recall:.3f} "
        f"(min {min_recall:.3f}), pool {np.mean(pool_sizes):.0f} of "
        f"{len(candidates)} candidates, top-pick agreement {parity:.3f}"
    )
    assert mean_recall >= RECALL_FLOOR
    # The pool must actually prune, not just pass everyone through.
    assert np.mean(pool_sizes) < len(candidates)
    # Near-equal routing decisions at Tier-1 scale.
    assert parity >= 0.9


@pytest.mark.slow
def test_speedup_at_scale(benchmark):
    """>= 5x end-to-end routing speedup at 10k+ candidate answerers."""
    forum = generate_forum(LARGE_FORUM, seed=0)
    dataset, _ = forum.dataset.preprocess()
    history, final = _split_final_day(dataset)
    predictor = ForumPredictor(LARGE_PREDICTOR).fit(history)
    candidates = sorted(history.answerers)
    assert len(candidates) >= 10_000
    threads = final.threads[:12]

    # The router's default eligibility threshold (epsilon=0.5): the
    # dense eligible set it induces is what pool recall is held to.
    dense_router = QuestionRouter(predictor, default_capacity=3.0)
    retriever, build_seconds = _build_retriever(predictor, LARGE_RETRIEVAL)
    pooled_router = QuestionRouter(
        predictor, default_capacity=3.0, retriever=retriever
    )

    # Warm both paths once (lazy caches: batch tables, postings).
    dense_router.recommend(threads[0], candidates, tradeoff=0.1)
    pooled_router.recommend(threads[0], candidates, tradeoff=0.1)

    dense_results, dense_seconds = _route_all(
        dense_router, threads, candidates
    )

    def pooled():
        return _route_all(pooled_router, threads, candidates)

    pooled_results, pooled_seconds = benchmark.pedantic(
        pooled, rounds=1, iterations=1
    )
    speedup = dense_seconds / pooled_seconds

    recalls = []
    pool_sizes = [
        r.pool_size for r in pooled_results if r is not None
    ]
    for thread, dense in zip(threads, dense_results):
        if dense is not None:
            recalls.append(
                candidate_recall(retriever.pool(thread, candidates), dense.users)
            )
    parity, comparable = _pick_parity(dense_results, pooled_results)

    payload = {
        "forum": {
            "n_users": LARGE_FORUM.n_users,
            "n_questions": LARGE_FORUM.n_questions,
        },
        "n_candidates": len(candidates),
        "n_questions": len(threads),
        "dense_ms_per_question": round(dense_seconds / len(threads) * 1e3, 2),
        "two_stage_ms_per_question": round(
            pooled_seconds / len(threads) * 1e3, 2
        ),
        "speedup": round(speedup, 2),
        "index_build_seconds": round(build_seconds, 4),
        "pool_size_mean": round(float(np.mean(pool_sizes)), 1),
        "eligible_recall_mean": round(float(np.mean(recalls)), 4),
        "top_pick_agreement": round(parity, 4),
        "questions_compared": comparable,
    }
    _merge_record("large_scale", payload)
    print(
        f"\nRouting at {len(candidates)} candidates: dense "
        f"{payload['dense_ms_per_question']:.0f} ms/q, two-stage "
        f"{payload['two_stage_ms_per_question']:.0f} ms/q "
        f"({speedup:.1f}x; index build {build_seconds:.2f}s, pool "
        f"{np.mean(pool_sizes):.0f}, recall {np.mean(recalls):.3f})"
    )
    assert speedup >= SPEEDUP_FLOOR
    assert float(np.mean(recalls)) >= RECALL_FLOOR


@pytest.mark.slow
def test_online_replay_precision(benchmark, dataset, config):
    """Precision@5 movement when the deployment loop routes two-stage."""
    kwargs = dict(
        refit_interval_hours=168.0,
        window_hours=336.0,
        warmup_hours=168.0,
        epsilon=0.25,
    )

    def run(retrieval):
        loop = OnlineRecommendationLoop(
            config, OnlineConfig(**kwargs, retrieval=retrieval)
        )
        with perf.use_registry() as registry:
            report = loop.run(dataset)
        return report, registry

    dense_report, _ = run(None)
    two_stage_report, registry = benchmark.pedantic(
        lambda: run(RetrievalConfig()), rounds=1, iterations=1
    )

    queries = registry.counter("retrieval.queries")
    pooled = registry.counter("retrieval.pool_users")
    payload = {
        "forum": {
            "n_users": FORUM_CONFIG.n_users,
            "n_questions": FORUM_CONFIG.n_questions,
        },
        "n_routed_dense": dense_report.n_routed,
        "n_routed_two_stage": two_stage_report.n_routed,
        "precision_at_5_dense": round(dense_report.precision_at(5), 6),
        "precision_at_5_two_stage": round(
            two_stage_report.precision_at(5), 6
        ),
        "precision_at_5_delta": round(
            two_stage_report.precision_at(5) - dense_report.precision_at(5), 6
        ),
        "mrr_dense": round(dense_report.mrr, 6),
        "mrr_two_stage": round(two_stage_report.mrr, 6),
        "mean_pool_size": round(pooled / queries, 1) if queries else None,
        "dense_fallbacks": registry.counter("retrieval.dense_fallbacks"),
    }
    _merge_record("online_replay", payload)
    print(
        f"\nOnline replay: P@5 dense "
        f"{payload['precision_at_5_dense']:.4f} vs two-stage "
        f"{payload['precision_at_5_two_stage']:.4f} "
        f"(delta {payload['precision_at_5_delta']:+.4f}), mean pool "
        f"{payload['mean_pool_size']}"
    )
    assert two_stage_report.n_routed > 0
    # The bounded pool may shift individual picks, but ranking quality
    # must stay in the same regime as dense routing.
    assert (
        two_stage_report.precision_at(5)
        >= 0.8 * dense_report.precision_at(5)
    )
