"""Fig. 6 — leave-one-feature-out importance for the v and r tasks.

Paper: r̄_u (median response time) is by far the most important feature
for timing (~48 % RMSE increase when removed); v_q (question votes) is
the most important for votes (~8.6 %); social/centrality features
matter for both; individual features matter more for timing than for
votes overall.
"""

from repro.core import run_feature_importance

from conftest import N_FOLDS, N_REPEATS

# The features the paper's Fig. 6 discussion calls out, plus the rest of
# the scalar features.  (Running all 20 at full CV is available by
# passing features=None.)
FEATURES = (
    "answers_provided",
    "answer_ratio",
    "net_answer_votes",
    "median_response_time",
    "topics_answered",
    "net_question_votes",
    "question_word_length",
    "question_code_length",
    "topics_asked",
    "user_question_topic_similarity",
    "topic_weighted_questions_answered",
    "topic_weighted_answer_votes",
    "user_user_topic_similarity",
    "thread_cooccurrence",
    "qa_closeness",
    "qa_betweenness",
    "qa_resource_allocation",
    "dense_closeness",
    "dense_betweenness",
    "dense_resource_allocation",
)


def test_fig6_feature_importance(benchmark, dataset, config):
    results = benchmark.pedantic(
        run_feature_importance,
        kwargs=dict(
            dataset=dataset,
            config=config,
            n_folds=N_FOLDS,
            n_repeats=N_REPEATS,
            features=FEATURES,
        ),
        rounds=1,
        iterations=1,
    )
    print("\nFig. 6 reproduction: % RMSE increase when feature removed")
    print(f"{'feature':36s} {'votes':>8s} {'timing':>8s}")
    for name in FEATURES:
        row = results[name]
        print(f"{name:36s} {row['votes']:7.2f}% {row['timing']:7.2f}%")
    # Shape assertions from the paper's discussion:
    # 1. v_q is among the most important features for the vote task
    #    (the paper's strongest single-feature finding for v_uq).
    vote_rank = sorted(FEATURES, key=lambda f: -results[f]["votes"])
    print(f"top vote features: {vote_rank[:3]}")
    assert "net_question_votes" in vote_rank[:3]
    # 2. User-history features dominate the timing task (the paper finds
    #    r-bar_u and a_u most predictive; here the redundant user-history
    #    bundle — activity counts, ratios, votes, response medians —
    #    shares that signal, so we assert on the bundle).
    timing_rank = sorted(FEATURES, key=lambda f: -results[f]["timing"])
    print(f"top timing features: {timing_rank[:5]}")
    user_history = {
        "answers_provided",
        "answer_ratio",
        "net_answer_votes",
        "median_response_time",
        "topic_weighted_questions_answered",
        "topic_weighted_answer_votes",
    }
    assert user_history & set(timing_rank[:4])
    # 3. Removing features generally hurts more for timing than votes on
    #    average (paper: individual features matter more for r_uq).
    mean_t = sum(results[f]["timing"] for f in FEATURES) / len(FEATURES)
    print(f"mean timing importance: {mean_t:.2f}%")
