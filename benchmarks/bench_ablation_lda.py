"""Ablation — LDA inference method (DESIGN.md §5.8).

Compares collapsed Gibbs sampling (the reference implementation) with
batch variational Bayes (the pipeline default) on the same corpus:
wall-clock time and agreement on the planted topic structure.
"""

import time

import numpy as np

from repro.topics.lda import LdaGibbs, LdaVariational
from repro.topics.similarity import total_variation_similarity
from repro.topics.tokenizer import split_text_and_code, tokenize
from repro.topics.vocabulary import Vocabulary


def prepare_corpus(dataset, limit=250):
    docs = []
    for thread in dataset.threads[:limit]:
        docs.append(tokenize(split_text_and_code(thread.question.body).words))
    vocab = Vocabulary(min_count=2).fit(docs)
    return [vocab.encode(d) for d in docs], len(vocab)


def planted_main_topics(forum, dataset, limit=250):
    return np.argmax(
        forum.question_topics[[t.thread_id for t in dataset.threads[:limit]]],
        axis=1,
    )


def topic_separation(doc_topic, mains):
    """Mean same-planted-topic similarity minus cross-topic similarity."""
    same, diff = [], []
    for i in range(len(mains)):
        for j in range(i + 1, min(i + 40, len(mains))):
            s = total_variation_similarity(doc_topic[i], doc_topic[j])
            (same if mains[i] == mains[j] else diff).append(s)
    return float(np.mean(same) - np.mean(diff))


def test_ablation_lda_methods(benchmark, forum, dataset):
    def run():
        encoded, vocab_size = prepare_corpus(dataset)
        mains = planted_main_topics(forum, dataset)
        out = {}
        t0 = time.perf_counter()
        vb = LdaVariational(8, vocab_size, seed=0).fit(encoded)
        out["variational"] = {
            "seconds": time.perf_counter() - t0,
            "separation": topic_separation(vb.doc_topic_, mains),
        }
        t0 = time.perf_counter()
        gibbs = LdaGibbs(8, vocab_size, n_iter=60, seed=0).fit(encoded)
        out["gibbs"] = {
            "seconds": time.perf_counter() - t0,
            "separation": topic_separation(gibbs.doc_topic_, mains),
        }
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nLDA method ablation (250 documents, K=8)")
    for name, row in results.items():
        print(
            f"  {name:12s} fit {row['seconds']:6.2f}s, planted-topic "
            f"separation {row['separation']:+.3f}"
        )
    # Both methods must recover the planted structure...
    assert results["variational"]["separation"] > 0.1
    assert results["gibbs"]["separation"] > 0.1
    # ...and VB must be the faster option (it is the pipeline default).
    assert results["variational"]["seconds"] < results["gibbs"]["seconds"]
