"""Training engine: fused vectorized fits vs. the reference loops.

Fits the full predictor twice over the benchmark forum:

* ``reference`` — the pre-engine behaviour: per-layer optimizer steps
  with allocating minibatch slices, serial task-model fits, and the
  legacy LDA E-step with a corpus-wide convergence check;
* ``fused`` — flat-parameter buffered backprop with in-place Adam,
  the three task models fitted in parallel worker processes, and the
  active-set batched LDA E-step with per-document convergence.

Compared on post-featurization training time (topic fit + model fits —
featurization is shared and benchmarked separately), with the per-stage
breakdown and a Table-1 metric-parity check recorded in
``BENCH_training.json`` at the repo root.
"""

import os
from dataclasses import replace
from pathlib import Path

from _meta import write_bench
from conftest import FORUM_CONFIG, N_FOLDS, N_REPEATS, PREDICTOR_CONFIG

from repro import perf
from repro.core import ForumPredictor, run_table1

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_training.json"

_STAGES = (
    "pipeline.fit_topics",
    "pipeline.features",
    "pipeline.fit_models",
    "pipeline.fit_answer",
    "pipeline.fit_vote",
    "pipeline.fit_timing",
)


def run_fit(dataset, engine: str, n_jobs: int):
    """One full predictor fit in a private perf registry."""
    config = replace(PREDICTOR_CONFIG, training_engine=engine)
    predictor = ForumPredictor(config)
    with perf.use_registry() as registry:
        predictor.fit(dataset, n_jobs=n_jobs)
    stages = {
        name: round(registry.stage(name).total_seconds, 6)
        for name in _STAGES
    }
    # Training cost excludes featurization: the batched feature engine
    # is shared by both arms and has its own benchmark.
    stages["train_seconds"] = round(
        stages["pipeline.fit_topics"] + stages["pipeline.fit_models"], 6
    )
    return predictor, stages


# The parallel task-model dispatch is determinism-tested in
# tests/core/test_parallel_fits.py; on a single-core benchmark host the
# worker pool can only add fork overhead, so the fused arm is timed with
# serial dispatch and its speedup comes from the fused backprop and the
# batched E-step.  Multi-core hosts can override via FUSED_N_JOBS.
FUSED_N_JOBS = int(os.environ.get("FUSED_N_JOBS", "1" if os.cpu_count() == 1 else "3"))


def test_training_engine_speedup(benchmark, dataset, extractor, pairs):
    # Interleaved best-of-2 per arm: alternating ref/fused runs means a
    # burst of background load on the shared host inflates both arms
    # rather than silently penalising whichever one it landed on.
    ref_runs, fused_runs = [], []
    for _ in range(2):
        ref_runs.append(run_fit(dataset, "reference", n_jobs=1))
        fused_runs.append(run_fit(dataset, "fused", n_jobs=FUSED_N_JOBS))
    _, ref = min(ref_runs, key=lambda r: r[1]["train_seconds"])
    fused_predictor, fused = min(
        fused_runs, key=lambda r: r[1]["train_seconds"]
    )
    benchmark.pedantic(
        lambda: run_fit(dataset, "fused", n_jobs=FUSED_N_JOBS),
        rounds=1,
        iterations=1,
    )
    speedup = ref["train_seconds"] / fused["train_seconds"]

    # Metric parity: the engine is an optimisation, not a model change.
    # The fused minibatch path is arithmetically identical to the
    # reference loops, so Table-1 metrics must agree well within the CV
    # fold spread (the LDA engines differ only in stopping decisions).
    table_kwargs = dict(
        n_folds=N_FOLDS,
        n_repeats=N_REPEATS,
        extractor=extractor,
        pairs=pairs,
    )
    ref_table = run_table1(
        dataset,
        config=replace(PREDICTOR_CONFIG, training_engine="reference"),
        **table_kwargs,
    )
    fused_table = run_table1(
        dataset,
        config=replace(PREDICTOR_CONFIG, training_engine="fused"),
        **table_kwargs,
    )
    parity = {}
    for task in ("answer", "votes", "timing"):
        r = getattr(ref_table, task).model
        f = getattr(fused_table, task).model
        parity[task] = {
            "reference_mean": round(r.mean, 6),
            "fused_mean": round(f.mean, 6),
            "reference_std": round(r.std, 6),
        }
        assert abs(f.mean - r.mean) <= max(r.std, 1e-9)

    record = {
        "forum": {
            "n_users": FORUM_CONFIG.n_users,
            "n_questions": FORUM_CONFIG.n_questions,
        },
        "reference_stages": ref,
        "fused_stages": fused,
        "fused_n_jobs": FUSED_N_JOBS,
        "train_speedup": round(speedup, 2),
        "table1_parity": parity,
    }
    write_bench(RESULT_PATH, record)
    print("\nTraining engine")
    for arm, stages in (("reference", ref), ("fused", fused)):
        print(
            f"  {arm:9s} train {stages['train_seconds']:.2f}s "
            f"(topics {stages['pipeline.fit_topics']:.2f}s, "
            f"models {stages['pipeline.fit_models']:.2f}s)"
        )
    print(f"  speedup: {speedup:.1f}x -> {RESULT_PATH.name}")
    assert fused_predictor.vote_model is not None
    assert speedup >= 3.0
