"""Featurization throughput: batched engine vs. the scalar reference.

``FeatureExtractor.feature_matrix`` used to loop ``features(u, q)`` per
pair; it now routes through ``features_batch``.  This benchmark times
both paths on the default bench forum, asserts the batch engine's
speedup and its element-wise equivalence, and records the measurement
in ``BENCH_features.json`` at the repo root.
"""

import time
from pathlib import Path

import numpy as np

from _meta import write_bench
from conftest import FORUM_CONFIG

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_features.json"
SCALAR_REPEATS = 3
BATCH_REPEATS = 10


def build_pairs(dataset):
    """The Table-I pair population: every positive plus one negative each."""
    records = dataset.answer_records()
    pairs = [(r.user, dataset.thread(r.thread_id)) for r in records]
    pairs += [
        (u, dataset.thread(tid))
        for u, tid in dataset.sample_negative_pairs(len(records), seed=0)
    ]
    return pairs


def time_call(fn, repeats):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_feature_matrix_speedup(benchmark, dataset, extractor):
    pairs = build_pairs(dataset)

    def scalar_loop():
        return np.stack([extractor.features(u, t) for u, t in pairs])

    # Warm every lazy cache, then take best-of-N for both paths.
    x_batch = extractor.features_batch(pairs)
    x_scalar = scalar_loop()
    np.testing.assert_allclose(x_batch, x_scalar, rtol=0.0, atol=1e-12)

    scalar_seconds = time_call(scalar_loop, SCALAR_REPEATS)
    batch_seconds = time_call(
        lambda: extractor.features_batch(pairs), BATCH_REPEATS
    )
    result = benchmark.pedantic(
        extractor.features_batch, args=(pairs,), rounds=3, iterations=1
    )
    assert result.shape == (len(pairs), extractor.spec.n_features)

    speedup = scalar_seconds / batch_seconds
    record = {
        "forum": {
            "n_users": FORUM_CONFIG.n_users,
            "n_questions": FORUM_CONFIG.n_questions,
        },
        "n_pairs": len(pairs),
        "n_features": extractor.spec.n_features,
        "scalar_seconds": round(scalar_seconds, 6),
        "batch_seconds": round(batch_seconds, 6),
        "speedup": round(speedup, 2),
        "pairs_per_second_batch": round(len(pairs) / batch_seconds),
    }
    write_bench(RESULT_PATH, record)
    print(
        f"\nfeature_matrix: scalar {scalar_seconds * 1e3:.1f} ms, "
        f"batch {batch_seconds * 1e3:.1f} ms, {speedup:.1f}x "
        f"({len(pairs)} pairs) -> {RESULT_PATH.name}"
    )
    assert speedup >= 5.0
