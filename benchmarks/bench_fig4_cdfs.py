"""Fig. 4 — CDFs of selected features.

Reproduces the six panels as printed quantiles and asserts the paper's
qualitative reads: (a) many users answer repeatedly, (b) more active
users answer faster, (c) activity does not keep raising average votes,
(d) answerers are topically closer to askers than to questions,
(e) code length varies more than word length, (f) centralities spread
widely with many zero-betweenness users.
"""

import numpy as np

from repro.core import build_pair_dataset
from repro.forum.stats import (
    answer_activity_cdf,
    ecdf,
    median_response_time_by_activity,
)
from repro.graphs import (
    betweenness_centrality,
    build_qa_graph,
    closeness_centrality,
)
from repro.topics.tokenizer import split_text_and_code


def show_cdf(label, values, probs=(0.1, 0.5, 0.9)):
    values = np.asarray(values, dtype=float)
    qs = np.quantile(values, probs)
    print(f"  {label:34s} " + "  ".join(f"p{int(100*p)}={q:9.3f}" for p, q in zip(probs, qs)))


def test_fig4a_answer_activity(benchmark, dataset):
    x, y = benchmark.pedantic(answer_activity_cdf, args=(dataset,), rounds=1, iterations=1)
    frac_multi = float(np.mean(x >= 2))
    print("\nFig. 4a: answers per user")
    show_cdf("a_u", x)
    print(f"  fraction of users with >=2 answers: {frac_multi:.2f}")
    assert 0.2 < frac_multi < 0.8  # paper: ~40 %


def test_fig4b_response_time_by_activity(benchmark, dataset):
    groups = benchmark.pedantic(
        median_response_time_by_activity,
        args=(dataset, (1, 2, 3, 5)),
        rounds=1,
        iterations=1,
    )
    print("\nFig. 4b: median response time (h) by activity threshold")
    for threshold, values in groups.items():
        if len(values):
            show_cdf(f"a_u >= {threshold}", values)
    # Shape: more active users respond faster.
    assert np.median(groups[5]) < np.median(groups[1])


def test_fig4c_votes_by_activity(benchmark, dataset):
    def compute():
        by_user = {}
        for r in dataset.answer_records():
            by_user.setdefault(r.user, []).append(r.votes)
        means = {u: np.mean(v) for u, v in by_user.items()}
        counts = {u: len(v) for u, v in by_user.items()}
        return {
            t: np.array([m for u, m in means.items() if counts[u] >= t])
            for t in (1, 2, 5)
        }

    groups = benchmark.pedantic(compute, rounds=1, iterations=1)
    print("\nFig. 4c: average answer votes by activity threshold")
    for t, vals in groups.items():
        if len(vals):
            show_cdf(f"a_u >= {t}", vals)
    # Paper: beyond a_u >= 2 there is no strong further shift.
    assert abs(np.median(groups[5]) - np.median(groups[2])) < 1.0


def test_fig4d_topic_similarities(benchmark, dataset, extractor):
    def compute():
        spec = extractor.spec
        uq_col = spec.columns_of("user_question_topic_similarity")[0]
        uv_col = spec.columns_of("user_user_topic_similarity")[0]
        s_uq, s_uv = [], []
        for thread in dataset.threads[:300]:
            for user in thread.answerers:
                x = extractor.features(user, thread)
                s_uq.append(x[uq_col])
                s_uv.append(x[uv_col])
        return np.array(s_uq), np.array(s_uv)

    s_uq, s_uv = benchmark.pedantic(compute, rounds=1, iterations=1)
    print("\nFig. 4d: topic similarities of answerers")
    show_cdf("user-question s_uq", s_uq)
    show_cdf("user-asker    s_uv", s_uv)
    # Paper: answerers are more similar to the asker than to the question.
    assert np.median(s_uv) > np.median(s_uq)


def test_fig4e_question_lengths(benchmark, dataset):
    def compute():
        words, code = [], []
        for thread in dataset:
            split = split_text_and_code(thread.question.body)
            words.append(split.word_length)
            code.append(split.code_length)
        return np.array(words, dtype=float), np.array(code, dtype=float)

    words, code = benchmark.pedantic(compute, rounds=1, iterations=1)
    print("\nFig. 4e: question word/code lengths (chars)")
    show_cdf("words x_q", words)
    show_cdf("code  c_q", code)
    # Paper: medians near 300 chars, code length far more variable.
    assert 100 < np.median(words) < 600
    assert np.std(np.log1p(code)) > np.std(np.log1p(words))


def test_fig4f_centralities(benchmark, dataset):
    def compute():
        graph = build_qa_graph(dataset.participant_tuples())
        closeness = np.array(list(closeness_centrality(graph).values()))
        betweenness = np.array(
            list(betweenness_centrality(graph, normalized=True).values())
        )
        return closeness, betweenness

    closeness, betweenness = benchmark.pedantic(compute, rounds=1, iterations=1)
    print("\nFig. 4f: centralities on G_QA (normalized)")
    show_cdf("closeness l_u", closeness)
    show_cdf("betweenness b_u", betweenness)
    zero_b = float(np.mean(betweenness == 0.0))
    print(f"  fraction of users with zero betweenness: {zero_b:.2f}")
    # Paper: a large share of users lie on no shortest path (60 % at the
    # paper's scale; smaller but still substantial at bench scale).
    assert zero_b > 0.2
