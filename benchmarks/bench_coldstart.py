"""Extension — cold-start behavior by user history depth.

Slices the test pairs by the answerer's history inside the feature
window (0 / 1-2 / 3+ prior answers) and scores the three predictors per
band.  The feature-based models must keep signal even for cold users —
where identity-based baselines have nothing — via question and social
features.
"""

import numpy as np

from repro.core.answer_model import AnswerModel
from repro.core.coldstart import cold_start_report
from repro.core.evaluation import PairDataset, _fold_iterator
from repro.core.timing_model import TimingModel
from repro.core.vote_model import VoteModel


def test_cold_start_bands(benchmark, dataset, config, extractor, pairs):
    def run():
        train, test = next(_fold_iterator(pairs, 5, 1, config.seed))
        answer = AnswerModel(l2=config.answer_l2).fit(
            pairs.x[train], pairs.is_event[train]
        )
        train_pos = train[pairs.is_event[train] == 1.0]
        vote = VoteModel(
            pairs.x.shape[1], epochs=config.vote_epochs, seed=config.seed
        )
        vote.fit(pairs.x[train_pos], pairs.votes[train_pos])
        timing = TimingModel(
            pairs.x.shape[1], epochs=config.timing_epochs, seed=config.seed
        )
        timing.fit(
            pairs.x[train],
            pairs.times[train],
            pairs.horizons[train],
            pairs.is_event[train],
        )
        test_pairs = PairDataset(
            x=pairs.x[test],
            users=pairs.users[test],
            thread_ids=pairs.thread_ids[test],
            votes=pairs.votes[test],
            times=pairs.times[test],
            horizons=pairs.horizons[test],
            is_event=pairs.is_event[test],
        )
        return cold_start_report(
            test_pairs,
            extractor.spec,
            answer.predict_proba(test_pairs.x),
            vote.predict(test_pairs.x),
            timing.predict(test_pairs.x, test_pairs.horizons),
        )

    buckets = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nCold-start analysis (test fold, by prior answers in window)")
    print(f"{'band':12s} {'pairs':>6s} {'pos':>5s} {'AUC':>7s} {'vote RMSE':>10s} {'time RMSE':>10s}")
    for b in buckets:
        print(
            f"{b.label:12s} {b.n_pairs:6d} {b.n_positive:5d} "
            f"{b.answer_auc:7.3f} {b.vote_rmse:10.3f} {b.timing_rmse:10.3f}"
        )
    by_label = {b.label: b for b in buckets}
    warm = by_label["warm (3+)"]
    # Warm users must be well separated; the cold band must still carry
    # *some* signal through question/social features when measurable.
    assert warm.answer_auc > 0.6
    cold = by_label["cold (0)"]
    if cold.n_pairs >= 30 and np.isfinite(cold.answer_auc):
        assert cold.answer_auc > 0.4