"""Ablation — negative sampling ratio for the answer task.

The paper balances positives and negatives 1:1 per fold (Sec. IV-A).
This bench sweeps the ratio to show the choice is not load-bearing for
AUC (which is threshold-free) while confirming the balanced default.
"""

import numpy as np

from repro.core import build_pair_dataset
from repro.core.answer_model import AnswerModel
from repro.core.evaluation import _fold_iterator
from repro.ml.metrics import auc_score

from conftest import N_FOLDS

RATIOS = (0.5, 1.0, 2.0)


def test_ablation_negative_ratio(benchmark, dataset, config, extractor):
    def run():
        out = {}
        for ratio in RATIOS:
            pairs = build_pair_dataset(
                dataset, extractor, negative_ratio=ratio, seed=config.seed
            )
            scores = []
            for train, test in _fold_iterator(pairs, N_FOLDS, 1, config.seed):
                model = AnswerModel(l2=config.answer_l2).fit(
                    pairs.x[train], pairs.is_event[train]
                )
                scores.append(
                    auc_score(
                        pairs.is_event[test],
                        model.predict_proba(pairs.x[test]),
                    )
                )
            out[ratio] = float(np.mean(scores))
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nNegative-sampling ratio ablation (answer-task AUC)")
    for ratio, auc in results.items():
        print(f"  {ratio:4.1f} negatives per positive: AUC {auc:.3f}")
    # AUC must be strong and stable across ratios.
    for auc in results.values():
        assert auc > 0.75
    assert max(results.values()) - min(results.values()) < 0.08
