"""Extension — self-exciting (Hawkes) thread dynamics.

The paper's point process excites each (user, question) pair once, by
the question post; its cited framework (Farajtabar et al. [18]) lets
answers excite further answers.  This bench fits the thread-level
Hawkes model in two regimes:

1. on the default forum (no planted self-excitation) — the fitted
   excitation must come out ~0, *validating the paper's
   independent-pair assumption* on data generated under it;
2. on a forum with planted answer-to-answer excitation — the model must
   detect it (alpha > 0) and beat the question-excitation-only fit on
   held-out threads.
"""

import numpy as np

from repro.forum import ForumConfig, generate_forum
from repro.pointprocess.hawkes import HawkesThreadModel


def thread_arrays(dataset, horizon_pad=24.0):
    times, horizons = [], []
    end = dataset.duration_hours + horizon_pad
    for thread in dataset:
        arrivals = np.array(
            [a.timestamp - thread.created_at for a in thread.answers]
        )
        times.append(arrivals)
        horizons.append(end - thread.created_at)
    return times, horizons


def fit_both(dataset):
    times, horizons = thread_arrays(dataset)
    split = len(times) // 2
    poisson = HawkesThreadModel(omega=0.3, beta=1.0)
    poisson.fit(times[:split], horizons[:split], alpha_fixed=0.0)
    hawkes = HawkesThreadModel(omega=0.3, beta=1.0)
    hawkes.fit(times[:split], horizons[:split])
    return {
        "poisson_ll": poisson.log_likelihood(times[split:], horizons[split:]),
        "hawkes_ll": hawkes.log_likelihood(times[split:], horizons[split:]),
        "alpha": hawkes.alpha_,
        "branching": hawkes.branching_ratio,
    }


def test_hawkes_validates_independence_on_default_forum(benchmark, dataset):
    results = benchmark.pedantic(fit_both, args=(dataset,), rounds=1, iterations=1)
    print("\nHawkes fit on the default forum (no planted excitation)")
    print(f"  fitted alpha: {results['alpha']:.4f}")
    print(f"  held-out ll gain over question-only: "
          f"{results['hawkes_ll'] - results['poisson_ll']:+.2f}")
    # The paper's independence assumption holds on its own data model:
    # fitted self-excitation is negligible.
    assert results["alpha"] < 0.05
    assert results["hawkes_ll"] >= results["poisson_ll"] - 1.0


def test_hawkes_detects_planted_excitation(benchmark):
    forum = generate_forum(
        ForumConfig(
            n_users=500,
            n_questions=700,
            answer_excitation=0.5,
            activity_tail=1.4,
        ),
        seed=2,
    )
    excited, _ = forum.dataset.preprocess()

    results = benchmark.pedantic(fit_both, args=(excited,), rounds=1, iterations=1)
    print("\nHawkes fit on a forum with planted answer-to-answer excitation")
    print(f"  fitted alpha: {results['alpha']:.4f} "
          f"(branching ratio {results['branching']:.3f})")
    print(f"  held-out ll gain over question-only: "
          f"{results['hawkes_ll'] - results['poisson_ll']:+.2f}")
    # The extension must detect the planted clustering and beat the
    # question-excitation-only model out of sample.
    assert results["alpha"] > 0.05
    assert results["hawkes_ll"] > results["poisson_ll"]
    assert results["branching"] < 1.0
