"""Fig. 5 — sensitivity to the number of LDA topics K.

Paper: varying K from the default of 8 has virtually no effect on the
timing task, a small effect on the answer task, and the largest (up to
~5 %) effect on the vote task.
"""

from repro.core import run_topic_sweep

from conftest import N_FOLDS, N_REPEATS

TOPIC_COUNTS = (2, 5, 12)


def test_fig5_topic_sweep(benchmark, dataset, config):
    results = benchmark.pedantic(
        run_topic_sweep,
        kwargs=dict(
            dataset=dataset,
            topic_counts=TOPIC_COUNTS,
            base_topics=config.n_topics,
            config=config,
            n_folds=N_FOLDS,
            n_repeats=N_REPEATS,
        ),
        rounds=1,
        iterations=1,
    )
    print("\nFig. 5 reproduction: % metric change vs. K (baseline K=8)")
    print(f"{'K':>4s} {'answer':>9s} {'votes':>9s} {'timing':>9s}")
    for k in sorted(results):
        row = results[k]
        print(
            f"{k:4d} {row['answer']:8.2f}% {row['votes']:8.2f}% "
            f"{row['timing']:8.2f}%"
        )
    # Shape: K is not a load-bearing hyperparameter — every task moves
    # only a few percent across the sweep (the paper's largest effect is
    # ~5 % on the vote task), and the answer task is barely affected.
    mean_abs = {
        task: sum(abs(results[k][task]) for k in results) / len(results)
        for task in ("answer", "votes", "timing")
    }
    print(f"mean |change|: {mean_abs}")
    assert all(v < 6.0 for v in mean_abs.values())
    assert mean_abs["answer"] < 2.0
