"""Sharded zero-copy serving at forum scale: throughput, latency, RSS.

Three measurements, recorded together in ``BENCH_serving_scale.json``:

* **Serving smoke** (fast lane, run by CI on every push) — warms the
  bench forum twice, once single-process and once with two persistent
  shard workers on shared-memory state, drives the same seeded traffic
  through both and asserts response-for-response bit-identity plus a
  virtual-axis p99 ceiling, with a clean teardown (no orphan workers,
  no ``/dev/shm`` leftovers).
* **State-publication cost** (fast lane) — the refit hot path: rebinds
  a 2-shard process router repeatedly over both transports and records
  seconds per epoch swap.  Shared memory publishes each array once and
  ships only a manifest; the pickle baseline re-serializes the sliced
  tables into every worker.  The shm-cheaper assertion is gated on
  ``cpu_count >= 4`` (single-core CI still records honest numbers).
* **Serving at 100k users** (``@slow``) — streams a 100k-user forum
  into columnar stores, freezes it into a servable state without ever
  materializing post objects, grafts fitted model heads on top, and
  serves seeded traffic through the async front-end at 1/2/4 shard
  workers: throughput-vs-shards curve, p50/p95/p99 virtual latency,
  and the peak-RSS high-water mark (parent and largest worker).
"""

import os
import time
from dataclasses import replace
from pathlib import Path

import numpy as np
import pytest

from _meta import record_bench
from repro import perf
from repro.core import ForumPredictor, PredictorConfig
from repro.core.features import FeatureExtractor
from repro.core.online import OnlineConfig
from repro.core.serving import (
    BatchPolicy,
    RecommendationService,
    ServiceConfig,
    ServingCore,
    run_load,
)
from repro.core.sharding import ShardedRouter
from repro.core.shm import active_shm_names
from repro.core.state import frozen_from_columns
from repro.forum import ForumConfig, ForumDataset
from repro.forum.streaming import ingest_to_shards
from repro.forum.traffic import TrafficConfig, generate_traffic

RESULT_PATH = (
    Path(__file__).resolve().parent.parent / "BENCH_serving_scale.json"
)

SEED = 23
ONLINE_CONFIG = OnlineConfig(
    refit_interval_hours=168.0,
    window_hours=336.0,
    warmup_hours=168.0,
    epsilon=0.25,
)
# Virtual-axis ceiling for the sharded fast-lane smoke; matches the
# single-process bench_serving budget — sharding must not queue.
P99_CEILING_MS = 5000.0

SCALE_FORUM = ForumConfig(
    n_users=100_000, n_questions=120_000, activity_tail=1.3
)
SCALE_SHARDS = (1, 2, 4)
SCALE_ROSTER = 1500  # most-active answerers serving as the on-call set
SCALE_HEADS = PredictorConfig(
    n_topics=SCALE_FORUM.n_topics,
    vote_epochs=30,
    timing_epochs=30,
    betweenness_sample_size=100,
)


def make_core(dataset, **overrides) -> ServingCore:
    core = ServingCore(
        PredictorConfig(betweenness_sample_size=200),
        replace(ONLINE_CONFIG, **overrides),
    )
    RecommendationService(core).warm(dataset)
    assert core.warmed
    return core


def run_traffic(core, requests):
    service = RecommendationService(
        core,
        ServiceConfig(
            batch=BatchPolicy(max_batch=8, max_wait_s=0.01), cost=None
        ),
    )
    return service, run_load(service, requests, settle_s=1.0)


def assert_identical(expected, got):
    assert len(expected) == len(got)
    for a, b in zip(expected, got):
        assert a.status == b.status
        assert getattr(a, "ranked", None) == getattr(b, "ranked", None)
        assert getattr(a, "routed", None) == getattr(b, "routed", None)
        assert getattr(a, "score", None) == getattr(b, "score", None)


def test_sharded_serving_smoke(dataset):
    """CI gate: 2 shard workers == single process, bounded tail latency."""
    traffic = generate_traffic(
        dataset,
        TrafficConfig(n_askers=60, n_events=10, duration_s=10.0, seed=SEED),
    )
    base = make_core(dataset)
    _, expected = run_traffic(base, traffic)

    core = make_core(dataset, serving_shards=2, shard_mode="process")
    try:
        service, got = run_traffic(core, traffic)
        assert_identical(expected.responses, got.responses)
        latency = got.metrics["query_latency"]
        assert latency["p99_ms"] < P99_CEILING_MS
        sharding = got.metrics["sharding"]
        assert sharding["transport"] == "shm"
        assert sharding["scatters"] > 0
        shm_mb = sharding["shm_bytes_published"] / 1024**2
    finally:
        core.close()
    assert active_shm_names() == []

    record_bench(
        RESULT_PATH,
        "smoke",
        {
            "n_queries": sum(1 for r in traffic if r.kind == "query"),
            "n_shards": 2,
            "mode": "process",
            "transport": "shm",
            "bit_identical": True,
            "query_latency": latency,
            "scatters": sharding["scatters"],
            "shm_mb_published": round(shm_mb, 3),
            "p99_ceiling_ms": P99_CEILING_MS,
        },
        seed=SEED,
    )


PUBLICATION_FORUM = ForumConfig(
    n_users=30_000, n_questions=40_000, activity_tail=1.3
)


def test_state_publication_cost(dataset):
    """Per-refit state shipping: shm publish+swap vs pickle re-send.

    Measured on a streamed 30k-user state, not the toy bench forum —
    zero-copy pays per byte of tables, and on kilobyte-sized state the
    fixed cost of creating and mapping blocks dominates.  At tens of
    MB the pickle baseline serializes and deserializes the tables per
    worker while shm copies each array exactly once.
    """
    with perf.use_registry():
        logs, questions, _ = ingest_to_shards(
            PUBLICATION_FORUM, seed=0, n_shards=1, chunk_questions=10_000
        )
    frozen = frozen_from_columns(logs[0], questions)
    predictor = _graft_predictor(frozen, dataset)
    cores = os.cpu_count() or 1
    rounds = 3
    cost = {}
    state_mb = 0.0
    for transport in ("shm", "pickle"):
        with ShardedRouter(
            predictor, 2, mode="process", transport=transport
        ) as router:
            seconds = []
            for _ in range(rounds):
                start = time.perf_counter()
                router.rebind(predictor)
                seconds.append(time.perf_counter() - start)
            if transport == "shm":
                state_mb = router.shm_bytes / 1024**2
        cost[transport] = {
            "rebinds": rounds,
            "min_s": round(min(seconds), 4),
            "mean_s": round(sum(seconds) / rounds, 4),
        }
    assert active_shm_names() == []
    speedup = cost["pickle"]["min_s"] / max(cost["shm"]["min_s"], 1e-9)
    record_bench(
        RESULT_PATH,
        "publication_cost",
        {
            "forum": {
                "n_users": PUBLICATION_FORUM.n_users,
                "n_questions": PUBLICATION_FORUM.n_questions,
            },
            "n_shards": 2,
            "cpu_count": cores,
            "state_mb_per_epoch": round(state_mb, 2),
            "per_transport": cost,
            "shm_speedup_over_pickle": round(speedup, 2),
            "speedup_asserted": cores >= 4,
        },
        seed=SEED,
    )
    print(f"\nState publication ({cores} cores): {cost}")
    if cores >= 4:
        assert cost["shm"]["min_s"] < cost["pickle"]["min_s"], (
            "shared-memory publication must beat pickle transport"
        )


def _graft_predictor(frozen, heads_dataset) -> ForumPredictor:
    """Fitted model heads serving a columnar frozen state.

    The scale path fits nothing at 100k users: topics and the three
    heads come from the (small) object forum, and the extractor is
    re-bound onto the streamed state's tables — exactly what a
    production system does when training and serving state diverge.
    """
    predictor = ForumPredictor(SCALE_HEADS).fit(heads_dataset)
    extractor = FeatureExtractor.__new__(FeatureExtractor)
    extractor._bind(frozen, predictor.topics, ForumDataset([]))
    predictor.extractor = extractor
    predictor._horizon_reference = max(
        frozen.duration_hours, heads_dataset.duration_hours
    )
    return predictor


@pytest.mark.slow
def test_serving_100k_users(dataset):
    """Throughput-vs-shards on a streamed 100k-user forum."""
    with perf.use_registry():
        start = time.perf_counter()
        logs, questions, report = ingest_to_shards(
            SCALE_FORUM, seed=0, n_shards=1, chunk_questions=20_000
        )
        ingest_s = time.perf_counter() - start
    assert report.n_users >= 100_000
    log = logs[0]
    frozen = frozen_from_columns(log, questions)
    predictor = _graft_predictor(frozen, dataset)

    # The on-call roster: the streamed forum's most active answerers.
    users = log.column("user")
    uniq, counts = np.unique(users, return_counts=True)
    roster = uniq[np.argsort(-counts, kind="stable")][:SCALE_ROSTER]
    roster = np.sort(roster).tolist()

    traffic = generate_traffic(
        dataset,
        TrafficConfig(
            n_askers=200, n_events=40, duration_s=30.0, seed=SEED + 1
        ),
    )
    baseline = None
    curve = {}
    cores = os.cpu_count() or 1
    for n_shards in SCALE_SHARDS:
        core = ServingCore.from_artifacts(
            predictor,
            roster,
            online_config=replace(
                ONLINE_CONFIG,
                warmup_hours=0.0,
                serving_shards=n_shards,
                shard_mode="process",
            ),
        )
        try:
            service, load = run_traffic(core, traffic)
            shm_mb = (
                load.metrics["sharding"]["shm_bytes_published"] / 1024**2
                if n_shards > 1
                else 0.0
            )
        finally:
            core.close()
        assert active_shm_names() == []
        if baseline is None:
            baseline = load.responses
        else:
            assert_identical(baseline, load.responses)
        latency = load.metrics["query_latency"]
        curve[str(n_shards)] = {
            "wall_s": round(load.wall_s, 3),
            "requests_per_wall_s": round(load.requests_per_wall_s, 2),
            "p50_ms": latency["p50_ms"],
            "p95_ms": latency["p95_ms"],
            "p99_ms": latency["p99_ms"],
            "shm_mb_published": round(shm_mb, 2),
            "ok": load.query_statuses.get("ok", 0),
        }
    assert curve["1"]["ok"] > 0

    payload = {
        "forum": {
            "n_users": SCALE_FORUM.n_users,
            "n_questions": SCALE_FORUM.n_questions,
        },
        "n_answers": report.n_answers,
        "ingest_seconds": round(ingest_s, 2),
        "roster_size": len(roster),
        "n_queries": sum(1 for r in traffic if r.kind == "query"),
        "cpu_count": cores,
        "bit_identical_across_shards": True,
        "curve": curve,
        "peak_rss_bytes": perf.peak_rss_bytes(),
        "peak_child_rss_bytes": perf.peak_rss_bytes(include_children=True),
    }
    record_bench(RESULT_PATH, "serving_100k", payload)
    print(f"\nServing at 100k users ({cores} cores): {curve}")
    if cores >= 4:
        qps = [
            curve[str(s)]["requests_per_wall_s"] for s in SCALE_SHARDS
        ]
        assert qps[-1] >= qps[0], (
            "multi-core shard workers must not lose throughput"
        )
