"""Fig. 2 — the two SLN graph models.

Paper observations (14k users): average degree 2.6 in G_QA rising to
3.7 in the denser graph G_D; both graphs disconnected with high degree
variance.
"""

import numpy as np

from repro.forum.stats import summarize_graphs
from repro.graphs import build_dense_graph, build_qa_graph


def test_fig2_graph_models(benchmark, dataset):
    summaries = benchmark.pedantic(
        summarize_graphs, args=(dataset,), rounds=1, iterations=1
    )
    qa, dense = summaries["qa"], summaries["dense"]
    print("\nFig. 2 reproduction (SLN graph models)")
    print(f"{'graph':8s} {'nodes':>7s} {'edges':>7s} {'avg deg':>8s} {'comps':>6s} {'giant %':>8s}")
    for name, s in (("G_QA", qa), ("G_D", dense)):
        print(
            f"{name:8s} {s.n_nodes:7d} {s.n_edges:7d} {s.average_degree:8.2f} "
            f"{s.n_components:6d} {100 * s.largest_component_fraction:7.1f}%"
        )
    # Shape: the dense graph is denser, node sets match.
    assert dense.average_degree > qa.average_degree
    assert dense.n_nodes == qa.n_nodes


def test_fig2_degree_variance(benchmark, dataset):
    """High degree variance motivates the centrality features."""

    def degree_stats():
        graph = build_qa_graph(dataset.participant_tuples())
        degrees = np.array([graph.degree(v) for v in graph.nodes()])
        return degrees

    degrees = benchmark.pedantic(degree_stats, rounds=1, iterations=1)
    print(
        f"\ndegrees: mean {degrees.mean():.2f}, std {degrees.std():.2f}, "
        f"max {degrees.max()}"
    )
    # High variance in the degree distribution, as in Fig. 2's rings.
    assert degrees.std() > 0.5 * degrees.mean()
