"""Extension — the paper's proposed A/B test, run in simulation.

Paper Sec. VI (future work): deploy the recommender and compare "the
net votes and response times observed in a group with the system in use
to one with it not".  The synthetic forum's ground truth makes the
counterfactual runnable: treatment questions are routed through the
Sec.-V LP and the recommended user's answer is drawn from the
generator's own outcome model.
"""

import numpy as np

from repro.core import (
    ABTestConfig,
    ABTestSimulator,
    ForumPredictor,
    QuestionRouter,
)


def test_abtest_simulation(benchmark, forum, dataset, config):
    split = dataset.duration_hours - 96.0
    history = dataset.threads_in_window(0.0, split)
    test_window = dataset.threads_in_window(split, dataset.duration_hours + 1)

    predictor = ForumPredictor(config).fit(history)
    router = QuestionRouter(predictor, epsilon=0.3, default_capacity=5.0)
    candidates = sorted(history.answerers)

    def run():
        lifts, reductions, routed = [], [], 0
        for seed in range(5):
            sim = ABTestSimulator(
                forum,
                router,
                candidates,
                ABTestConfig(acceptance_rate=0.9, tradeoff=0.2, seed=seed),
            )
            result = sim.run(test_window)
            lifts.append(result.vote_lift)
            reductions.append(result.response_time_reduction)
            routed += result.n_routed
        return {
            "vote_lift": float(np.mean(lifts)),
            "time_reduction": float(np.mean(reductions)),
            "routed": routed,
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nA/B test simulation (5 seeds, treatment vs control)")
    print(f"  mean vote lift:            {results['vote_lift']:+.3f}")
    print(f"  mean response-time saving: {results['time_reduction']:+.3f} h")
    print(f"  questions routed:          {results['routed']}")
    assert results["routed"] > 0
    # The recommender must improve at least one objective on average,
    # and not tank the other.
    assert max(results["vote_lift"], results["time_reduction"]) > 0.0
    assert results["vote_lift"] > -1.0
    assert results["time_reduction"] > -2.0
