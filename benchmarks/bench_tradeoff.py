"""Extension — the quality/timing frontier of the Sec.-V lambda knob.

Sweeps the router's lambda over the final day's questions and traces
the achievable (predicted votes, predicted latency) frontier.  The
paper frames quality and timing as possibly competing objectives; the
frontier shows exactly what moving the knob buys.
"""

from repro.core import ForumPredictor, QuestionRouter, sweep_tradeoff


def test_tradeoff_frontier(benchmark, dataset, config):
    split = dataset.duration_hours - 48.0
    history = dataset.threads_in_window(0.0, split)
    final = dataset.threads_in_window(split, dataset.duration_hours + 1)
    predictor = ForumPredictor(config).fit(history)
    router = QuestionRouter(predictor, epsilon=0.25, default_capacity=5.0)
    candidates = sorted(history.answerers)

    frontier = benchmark.pedantic(
        sweep_tradeoff,
        args=(router, final.threads[:30], candidates),
        kwargs=dict(tradeoffs=(0.0, 0.2, 1.0, 5.0)),
        rounds=1,
        iterations=1,
    )
    print("\nQuality/timing frontier (mean predicted outcome of routed user)")
    print(f"{'lambda':>8s} {'votes':>8s} {'hours':>8s} {'routed':>7s}")
    for lam, votes, hours, n in frontier.as_rows():
        print(f"{lam:8.1f} {votes:8.3f} {hours:8.3f} {n:7d}")
    pareto = frontier.pareto
    print(f"pareto-efficient settings: {[p.tradeoff for p in pareto]}")
    points = frontier.points
    # Raising lambda must not slow the routed answers down...
    assert (
        points[-1].mean_response_time <= points[0].mean_response_time + 1e-9
    )
    # ...and the extreme settings must be Pareto-efficient.
    assert points[0] in pareto or points[-1] in pareto