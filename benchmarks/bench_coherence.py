"""Extension — topic-coherence view of the Fig. 5 K sweep.

Fig. 5 varies the number of topics K and looks at downstream prediction
metrics; UMass coherence gives an intrinsic view of the same choice.
The generator plants 8 topics, so coherence per topic should stop
improving once K reaches the planted count.
"""

import numpy as np

from repro.topics.coherence import mean_coherence
from repro.topics.lda import LdaVariational
from repro.topics.tokenizer import split_text_and_code, tokenize
from repro.topics.vocabulary import Vocabulary

TOPIC_COUNTS = (2, 4, 8, 12)


def test_coherence_across_topic_counts(benchmark, dataset):
    def run():
        docs = [
            tokenize(split_text_and_code(t.question.body).words)
            for t in dataset.threads[:400]
        ]
        vocab = Vocabulary(min_count=2).fit(docs)
        encoded = [vocab.encode(d) for d in docs]
        scores = {}
        for k in TOPIC_COUNTS:
            model = LdaVariational(k, len(vocab), seed=0).fit(encoded)
            scores[k] = mean_coherence(encoded, model.topic_word_, top_n=8)
        return scores

    scores = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nUMass coherence by topic count (higher = more coherent)")
    for k, score in scores.items():
        print(f"  K={k:3d}: {score:8.3f}")
    # All fitted models must beat a hopeless fragmentation: coherence at
    # the planted K=8 should not be far below the best.
    best = max(scores.values())
    assert scores[8] > best - abs(best) * 0.5
