"""Table I — model vs. baseline on all three prediction tasks.

Paper values (Stack Overflow, 20k threads):

    a_uq  AUC   0.699 -> 0.860   (+23.0 %)
    v_uq  RMSE  1.554 -> 1.213   (+21.9 %)
    r_uq  RMSE  34.25 -> 26.35   (+22.8 %)

The reproduction asserts the *shape*: the feature-based model beats
every baseline on every task.
"""

from repro.core import run_table1

from conftest import N_FOLDS, N_REPEATS


def print_table(result):
    print("\nTable I reproduction")
    print(f"{'task':6s} {'metric':6s} {'baseline':>10s} {'model':>10s} {'improve':>9s}")
    for task, metric, base, model, imp in result.as_rows():
        print(f"{task:6s} {metric:6s} {base:10.3f} {model:10.3f} {imp:8.1f}%")


def test_table1(benchmark, dataset, config, extractor, pairs):
    result = benchmark.pedantic(
        run_table1,
        kwargs=dict(
            dataset=dataset,
            config=config,
            n_folds=N_FOLDS,
            n_repeats=N_REPEATS,
            extractor=extractor,
            pairs=pairs,
        ),
        rounds=1,
        iterations=1,
    )
    print_table(result)
    # Shape assertions: the model must win every task.
    assert result.answer.model.mean > result.answer.baseline.mean
    assert result.votes.model.mean < result.votes.baseline.mean
    assert result.timing.model.mean < result.timing.baseline.mean
    # The answer task shows the paper's large AUC gap.
    assert result.answer.improvement_percent > 20.0
