"""Fig. 7 — leave-one-group-out importance vs. historical data length.

Paper protocol: evaluate on threads from the last days (D25..D30);
compute features over windows of i = 5..25 days of history.  The user,
question, and user-question groups are each the most important in at
least one setting, and social-feature importance for the timing task
grows with longer history.
"""

from repro.core import run_group_importance_by_history

from conftest import N_FOLDS, N_REPEATS

GROUPS = ("user", "question", "user_question", "social")
HISTORY = (5, 15, 25)


def test_fig7_history_sweep(benchmark, dataset, config):
    results = benchmark.pedantic(
        run_group_importance_by_history,
        kwargs=dict(
            dataset=dataset,
            config=config,
            history_lengths=HISTORY,
            n_folds=N_FOLDS,
            n_repeats=N_REPEATS,
        ),
        rounds=1,
        iterations=1,
    )
    for task in ("votes", "timing"):
        print(f"\nFig. 7 reproduction ({task} RMSE by excluded group)")
        header = f"{'history':>8s} {'full':>8s}" + "".join(
            f"{('-' + g):>16s}" for g in GROUPS
        )
        print(header)
        for h in HISTORY:
            row = results[h]
            cells = f"{h:7d}d {row['full'][task]:8.3f}"
            for g in GROUPS:
                cells += f"{row[g][task]:16.3f}"
            print(cells)
    # Shape: in every history setting, at least one feature group's
    # removal hurts the timing task (the paper's point is that the
    # groups' importance varies with the history window, but some group
    # is always load-bearing).
    for h in HISTORY:
        worst = max(results[h][g]["timing"] for g in GROUPS)
        print(f"history {h}d: worst timing ablation RMSE {worst:.3f} vs full {results[h]['full']['timing']:.3f}")
        assert worst >= results[h]["full"]["timing"] - 1e-9
    # Shape: the user group matters for timing in every history setting
    # (the paper finds user features dominate the timing task).
    for h in HISTORY:
        assert results[h]["user"]["timing"] >= results[h]["full"]["timing"] - 0.35
    # Shape: user-group importance for the *vote* task grows with longer
    # history (more answer history pins down answerer expertise).
    vote_user_gap = [
        results[h]["user"]["votes"] - results[h]["full"]["votes"] for h in HISTORY
    ]
    print(f"user-group vote importance by history: {vote_user_gap}")
    assert vote_user_gap[-1] >= vote_user_gap[0] - 0.05
