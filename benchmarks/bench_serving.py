"""Concurrent serving-stack load: latency percentiles under bursty traffic.

Warms one :class:`ServingCore` on the benchmark forum, then drives
seeded bursty traffic through the async
:class:`RecommendationService` under the virtual clock:

* ``load`` — 1,000 concurrent askers (plus interleaved event
  submissions) over a 60-virtual-second schedule; records p50/p95/p99
  query latency on the virtual axis and sustained requests/sec on the
  wall axis.
* ``bit_identity`` — the serving-stack contract: micro-batched routing
  must reproduce one-at-a-time routing response for response, and a
  repeated run must reproduce itself everywhere but wall-clock.
* ``overload`` — a deliberately undersized admission queue against the
  same burst; load shedding must engage (rejections > 0) while every
  admitted query is still served.
* ``full_load`` (``@slow``) — a 5,000-asker run for the full lane.

All sections land in ``BENCH_serving.json`` under the shared
``benchmarks/_meta.py`` header.
"""

from pathlib import Path

import pytest

from _meta import record_bench

from repro.core import OnlineConfig
from repro.core.serving import (
    AdmissionConfig,
    BatchPolicy,
    CostModel,
    RecommendationService,
    ServiceConfig,
    ServingCore,
    run_load,
)
from repro.forum.traffic import TrafficConfig, generate_traffic

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_serving.json"

ONLINE_CONFIG = OnlineConfig(
    refit_interval_hours=168.0,
    window_hours=336.0,
    warmup_hours=168.0,
    epsilon=0.25,
)

SEED = 17
N_ASKERS = 1000
N_EVENTS = 200
DURATION_S = 60.0
# Virtual-axis ceiling for the fast-lane smoke: with the default cost
# model a 1k-asker burst must drain without queueing past this.
P99_CEILING_MS = 5000.0


@pytest.fixture(scope="module")
def warm_core(dataset, config):
    core = ServingCore(config, ONLINE_CONFIG)
    RecommendationService(core).warm(dataset)
    assert core.warmed, "benchmark forum failed to warm the serving core"
    return core


def make_service(core, **overrides):
    return RecommendationService(core, ServiceConfig(**overrides))


def latency_block(metrics, key):
    block = metrics[key]
    return {
        stat: block[stat]
        for stat in ("count", "p50_ms", "p95_ms", "p99_ms", "mean_ms")
        if stat in block
    }


def test_serving_load(warm_core, dataset):
    traffic = generate_traffic(
        dataset,
        TrafficConfig(
            n_askers=N_ASKERS,
            n_events=N_EVENTS,
            duration_s=DURATION_S,
            seed=SEED,
        ),
    )
    service = make_service(warm_core)
    report = run_load(service, traffic)
    metrics = report.metrics
    latency = metrics["query_latency"]

    # Smoke criteria: the stack sustained real throughput and bounded
    # virtual tail latency on the full 1k-asker burst.
    assert report.n_queries == N_ASKERS
    assert report.requests_per_wall_s > 0
    assert latency["count"] == metrics["queries"]["admitted"]
    assert latency["p50_ms"] <= latency["p95_ms"] <= latency["p99_ms"]
    assert latency["p99_ms"] < P99_CEILING_MS
    served = sum(report.query_statuses.values())
    assert served == report.n_queries
    assert report.query_statuses.get("ok", 0) > 0.9 * N_ASKERS

    record_bench(
        RESULT_PATH,
        "load",
        {
            "n_askers": N_ASKERS,
            "n_events": N_EVENTS,
            "duration_virtual_s": DURATION_S,
            "traffic_seed": SEED,
            "query_latency": latency_block(metrics, "query_latency"),
            "event_latency": latency_block(metrics, "event_latency"),
            "wall_s": round(report.wall_s, 4),
            "requests_per_wall_s": round(report.requests_per_wall_s, 2),
            "query_statuses": dict(report.query_statuses),
            "event_statuses": dict(report.event_statuses),
            "rejected": report.n_rejected,
            "degraded": report.n_degraded,
            "batches": metrics["queries"]["batches"],
            "mean_batch_size": metrics["queries"]["mean_batch_size"],
            "degradation": metrics["degradation"],
        },
        seed=SEED,
    )


def test_serving_bit_identity(warm_core, dataset):
    traffic = generate_traffic(
        dataset,
        TrafficConfig(
            n_askers=300, n_events=0, duration_s=20.0, seed=SEED + 1
        ),
    )

    def run(max_batch):
        service = make_service(
            warm_core,
            batch=BatchPolicy(max_batch=max_batch, max_wait_s=0.002),
        )
        return run_load(service, traffic)

    sequential = run(max_batch=1)
    batched = run(max_batch=8)
    repeated = run(max_batch=8)

    # Batched == sequential, response for response.
    for a, b in zip(sequential.responses, batched.responses):
        assert a.status == b.status
        assert a.ranked == b.ranked
        assert a.routed == b.routed
        assert a.score == b.score
    # Batched == itself, everywhere but the wall clock.
    first, second = batched.summary(), repeated.summary()
    for key in ("wall_s", "requests_per_wall_s"):
        first.pop(key), second.pop(key)
    assert first == second

    record_bench(
        RESULT_PATH,
        "bit_identity",
        {
            "n_queries": len(traffic),
            "batched_equals_sequential": True,
            "repeat_run_identical": True,
            "sequential_batches": sequential.metrics["queries"]["batches"],
            "batched_batches": batched.metrics["queries"]["batches"],
            "mean_batch_size": batched.metrics["queries"]["mean_batch_size"],
        },
        seed=SEED + 1,
    )


def test_serving_overload_sheds(warm_core, dataset):
    traffic = generate_traffic(
        dataset,
        TrafficConfig(
            n_askers=400,
            n_events=0,
            duration_s=10.0,
            burst_fraction=0.9,
            n_bursts=2,
            seed=SEED + 2,
        ),
    )
    service = make_service(
        warm_core,
        admission=AdmissionConfig(max_pending_queries=32),
        batch=BatchPolicy(max_batch=4, max_wait_s=0.001),
        cost=CostModel(query_batch_s=0.01, query_s=0.02),
    )
    report = run_load(service, traffic)
    rejected = report.query_statuses.get("rejected", 0)
    served = sum(
        count
        for status, count in report.query_statuses.items()
        if status != "rejected"
    )
    assert rejected > 0, "a 90%-bursty 400-wide load must overflow depth 32"
    assert served > 0
    assert rejected + served == len(traffic)

    record_bench(
        RESULT_PATH,
        "overload",
        {
            "n_queries": len(traffic),
            "max_pending_queries": 32,
            "rejected": rejected,
            "served": served,
            "query_latency": latency_block(report.metrics, "query_latency"),
        },
        seed=SEED + 2,
    )


def test_serving_phase_breakdown(warm_core, dataset):
    """Where a query's latency goes: admission / batch wait / predict / LP.

    A bursty 300-asker run against a deliberately shallow *blocking*
    admission queue, so every phase of the pipeline actually shows up:
    submitters wait for admission, admitted queries wait for their
    micro-batch, the batch is featurized and scored (``online.rank``),
    and the LP routing tail runs per query (``online.route``).  The
    stage timers already exist in the hot path; this section just reads
    them back as a per-phase budget.
    """
    from repro import perf

    traffic = generate_traffic(
        dataset,
        TrafficConfig(
            n_askers=300,
            n_events=0,
            duration_s=8.0,
            burst_fraction=0.9,
            n_bursts=2,
            seed=SEED + 4,
        ),
    )
    service = make_service(
        warm_core,
        admission=AdmissionConfig(
            max_pending_queries=16, query_overflow="block"
        ),
        batch=BatchPolicy(max_batch=8, max_wait_s=0.005),
        cost=CostModel(query_batch_s=0.01, query_s=0.02),
    )
    with perf.use_registry() as registry:
        report = run_load(service, traffic)
    metrics = report.metrics

    admission = registry.histogram("serving.admission_wait")
    assert admission.count > 0, "blocking queue depth 16 must backpressure"
    rank = registry.stage("online.rank")
    route = registry.stage("online.route")
    assert rank.calls > 0 and route.calls > 0
    assert metrics["batch_wait"]["count"] > 0
    assert report.query_statuses.get("ok", 0) > 0

    def stage_block(stat):
        return {
            "calls": stat.calls,
            "total_s": round(stat.total_seconds, 6),
            "mean_ms": round(
                (stat.total_seconds / stat.calls) * 1e3, 4
            )
            if stat.calls
            else 0.0,
        }

    record_bench(
        RESULT_PATH,
        "phase_breakdown",
        {
            "n_queries": len(traffic),
            "admission_wait_virtual": {
                "count": admission.count,
                "p50_ms": round(admission.percentile(50) * 1e3, 4),
                "p99_ms": round(admission.percentile(99) * 1e3, 4),
                "mean_ms": round(admission.mean * 1e3, 4),
            },
            "batch_wait_virtual": latency_block(metrics, "batch_wait"),
            "predict_wall": stage_block(rank),
            "lp_route_wall": stage_block(route),
            "query_latency_virtual": latency_block(
                metrics, "query_latency"
            ),
        },
        seed=SEED + 4,
    )


@pytest.mark.slow
def test_serving_load_full(warm_core, dataset):
    traffic = generate_traffic(
        dataset,
        TrafficConfig(
            n_askers=5000,
            n_events=500,
            duration_s=120.0,
            seed=SEED + 3,
        ),
    )
    service = make_service(warm_core)
    report = run_load(service, traffic)
    metrics = report.metrics
    latency = metrics["query_latency"]
    assert report.requests_per_wall_s > 0
    assert latency["count"] == metrics["queries"]["admitted"]

    record_bench(
        RESULT_PATH,
        "full_load",
        {
            "n_askers": 5000,
            "n_events": 500,
            "duration_virtual_s": 120.0,
            "query_latency": latency_block(metrics, "query_latency"),
            "event_latency": latency_block(metrics, "event_latency"),
            "wall_s": round(report.wall_s, 4),
            "requests_per_wall_s": round(report.requests_per_wall_s, 2),
            "rejected": report.n_rejected,
            "degraded": report.n_degraded,
            "mean_batch_size": metrics["queries"]["mean_batch_size"],
        },
        seed=SEED + 3,
    )
