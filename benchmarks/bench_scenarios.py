"""Scenario preset matrix: per-regime accuracy, latency and degradation.

Runs the registered :mod:`repro.forum.scenarios` presets through both
legs of the :class:`~repro.forum.scenarios.ScenarioMatrixRunner` — the
guarded replay loop (ranking accuracy + degradation counts under each
preset's fault plan) and the async serving stack under the virtual
clock (latency percentiles + shed counts under each preset's admission
bounds):

* ``smoke`` — two presets (baseline + flash_crowd) at reduced scale
  for the fast lane; also asserts the replay digest is run-to-run
  deterministic, the property the golden regression tests build on.
* ``matrix`` (``@slow``) — every registered preset at full preset
  scale, with accuracy deltas against the baseline regime.

All sections land in ``BENCH_scenarios.json`` under the shared
``benchmarks/_meta.py`` header.
"""

from pathlib import Path

import pytest

from _meta import record_bench

from repro.forum.scenarios import (
    SCENARIO_ENGINES,
    ScenarioMatrixRunner,
    list_scenarios,
)

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_scenarios.json"

SEED = 23
SMOKE_SCALE = 0.4
SMOKE_PRESETS = ["baseline", "flash_crowd"]


def test_scenario_smoke():
    runner = ScenarioMatrixRunner(SMOKE_PRESETS, seed=SEED, scale=SMOKE_SCALE)
    result = runner.run()
    scenarios = result["scenarios"]
    assert set(scenarios) == set(SMOKE_PRESETS)
    for name, report in scenarios.items():
        assert report["n_routed"] > 0, f"{name} routed nothing"
        assert report["digest"], f"{name} produced no digest"
        assert report["latency_ms"].get("p99_ms") is not None
    # The overload preset must actually shed under its tight admission
    # bound, and the replay digest must be run-to-run deterministic —
    # the foundation of the golden regression tests.
    assert scenarios["flash_crowd"]["n_rejected"] > 0
    rerun = ScenarioMatrixRunner(
        ["flash_crowd"], seed=SEED, scale=SMOKE_SCALE, include_serving=False
    ).run()
    assert (
        rerun["scenarios"]["flash_crowd"]["digest"]
        == scenarios["flash_crowd"]["digest"]
    )

    record_bench(
        RESULT_PATH,
        "smoke",
        {
            "presets": SMOKE_PRESETS,
            "scale": SMOKE_SCALE,
            "digest_deterministic": True,
            "scenarios": scenarios,
        },
        seed=SEED,
    )


@pytest.mark.slow
def test_scenario_matrix_full():
    runner = ScenarioMatrixRunner(
        seed=SEED, scale=1.0, engine_configs=SCENARIO_ENGINES
    )
    result = runner.run()
    scenarios = result["scenarios"]
    assert set(scenarios) == set(list_scenarios())
    baseline = scenarios["baseline"]
    assert baseline["n_degradations"] == 0, "baseline stream must be clean"
    for name, report in scenarios.items():
        assert report["n_routed"] > 0, f"{name} routed nothing"
        if name != "baseline":
            assert set(report["accuracy_delta"]) == set(report["accuracy"])
        # The config axis: every preset also replays through the
        # two-stage retrieve-then-rank engine.
        two_stage = report["engines"]["two_stage"]
        assert two_stage["n_routed"] > 0, f"{name} two-stage routed nothing"
    # Fault-plan presets must exercise the degradation machinery.
    assert scenarios["brigading"]["n_degradations"] > 0

    record_bench(
        RESULT_PATH,
        "matrix",
        {
            "presets": sorted(scenarios),
            "engines": result["engines"],
            "scale": 1.0,
            "scenarios": scenarios,
        },
        seed=SEED,
    )
