"""Extension — online deployment replay (paper Sec. VI future work).

Streams the benchmark forum through the periodic-refit recommendation
loop: models are trained only on the past, every arriving question is
ranked, and rankings are scored against the users who actually
answered.
"""

import numpy as np

from repro.core import OnlineConfig, OnlineRecommendationLoop


def test_online_deployment_replay(benchmark, dataset, config):
    loop = OnlineRecommendationLoop(
        config,
        OnlineConfig(
            refit_interval_hours=168.0,
            window_hours=336.0,
            warmup_hours=168.0,
            epsilon=0.25,
        ),
    )
    report = benchmark.pedantic(loop.run, args=(dataset,), rounds=1, iterations=1)
    pool = len(dataset.answerers)
    mean_relevant = float(np.mean([len(a) for _, a in report.rankings]))
    chance = mean_relevant / pool
    print("\nOnline deployment replay")
    print(f"  questions seen / routed: {report.n_questions_seen} / {report.n_routed}")
    print(f"  refits: {report.n_refits}")
    print(f"  hit@1:  {report.hit_rate_at_1:.3f}")
    print(f"  P@5:    {report.precision_at(5):.3f}  (chance {chance:.3f})")
    print(f"  MRR:    {report.mrr:.3f}")
    print(f"  NDCG@5: {report.ndcg_at(5):.3f}")
    assert report.n_refits >= 2
    assert report.n_routed > 0
    # Strictly-causal ranking must beat per-slot chance by 2x.
    assert report.precision_at(5) > 2.0 * chance