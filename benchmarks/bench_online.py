"""Online deployment replay: incremental state engine vs. full rebuild.

Streams the benchmark forum through the periodic-refit recommendation
loop three times:

* ``incremental`` — one long-lived :class:`ForumState` absorbs each
  thread (``append``/``evict``); refits freeze the state and warm-start
  the task models;
* ``rebuild`` + ``warm_start`` — the pre-incremental behaviour with
  model reuse; must produce a report identical to the incremental run
  (both freeze states holding the same threads under the same topics);
* ``rebuild`` cold — topics, graphs and networks refit from scratch
  every refit (the original fit monolith).

The per-refit wall-clock of the ``online.refit`` stage is compared
between the incremental and cold-rebuild runs, the speedup is asserted,
and the measurement — including a per-refit breakdown into feature,
topic and model-fit stages — is recorded in ``BENCH_online.json`` at
the repo root.
"""

import time
from pathlib import Path

import numpy as np

from _meta import write_bench
from conftest import FORUM_CONFIG

from repro import perf
from repro.core import OnlineConfig, OnlineRecommendationLoop, ResilienceConfig

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_online.json"

ONLINE_KWARGS = dict(
    refit_interval_hours=168.0,
    window_hours=336.0,
    warmup_hours=168.0,
    epsilon=0.25,
)


# Where each refit's wall-clock goes: feature matrices, topic refit,
# task-model fits.  Anything outside these (state freeze, bookkeeping)
# shows up as the remainder against ``online.refit``.
_REFIT_STAGES = (
    "pipeline.features",
    "pipeline.fit_topics",
    "pipeline.fit_models",
)


def run_loop(config, dataset, resilience=None, **overrides):
    """One replay in a private perf registry; returns per-refit timings."""
    loop = OnlineRecommendationLoop(
        config, OnlineConfig(**{**ONLINE_KWARGS, **overrides}), resilience
    )
    with perf.use_registry() as registry:
        report = loop.run(dataset)
    stages = {
        name: [round(t, 6) for t in registry.samples(name)]
        for name in _REFIT_STAGES
    }
    return report, registry.samples("online.refit"), stages


def _stage_breakdown(stages):
    """Steady-state mean per stage (first refit is startup, excluded)."""
    return {
        name: {
            "per_refit_seconds": vals,
            "steady_mean_seconds": (
                round(float(np.mean(vals[1:])), 6) if len(vals) > 1 else None
            ),
        }
        for name, vals in stages.items()
    }


def assert_reports_equal(a, b):
    assert a.n_questions_seen == b.n_questions_seen
    assert a.n_routed == b.n_routed
    assert a.n_refits == b.n_refits
    assert len(a.rankings) == len(b.rankings)
    for (rank_a, rel_a), (rank_b, rel_b) in zip(a.rankings, b.rankings):
        assert rank_a == rank_b
        assert rel_a == rel_b
    np.testing.assert_array_equal(
        np.asarray(a.routed_scores), np.asarray(b.routed_scores)
    )


def test_online_refit_speedup(benchmark, dataset, config):
    incremental, inc_times, inc_stages = run_loop(
        config, dataset, refit_strategy="incremental"
    )
    warm, _, _ = run_loop(
        config, dataset, refit_strategy="rebuild", warm_start=True
    )
    cold, cold_times, cold_stages = run_loop(
        config, dataset, refit_strategy="rebuild", warm_start=False
    )

    # The incremental engine is an optimisation, not a model change:
    # report-for-report identical to a warm full rebuild.
    assert_reports_equal(incremental, warm)

    # Resilience-layer overhead on a clean stream: with the guard in
    # place but no faults injected, the report must stay identical and
    # the added wall-clock should stay marginal (< 5% is the target;
    # refit timing noise dominates short replays, so the recorded
    # number is informational rather than asserted tightly).
    start = time.perf_counter()
    plain_again, _, _ = run_loop(config, dataset, refit_strategy="incremental")
    plain_seconds = time.perf_counter() - start
    start = time.perf_counter()
    guarded, _, _ = run_loop(
        config,
        dataset,
        resilience=ResilienceConfig(),
        refit_strategy="incremental",
    )
    guarded_seconds = time.perf_counter() - start
    assert_reports_equal(incremental, guarded)
    assert guarded.degradation is not None and guarded.degradation.ok
    resilience_overhead = guarded_seconds / plain_seconds - 1.0
    assert resilience_overhead < 0.10

    report = benchmark.pedantic(
        lambda: run_loop(config, dataset, refit_strategy="incremental")[0],
        rounds=1,
        iterations=1,
    )
    pool = len(dataset.answerers)
    mean_relevant = float(np.mean([len(a) for _, a in report.rankings]))
    chance = mean_relevant / pool

    # The first refit of either strategy is startup, not steady state:
    # it fits topics and networks from scratch over the warmup window.
    # Serving cost is the recurring refit, so that is what is asserted;
    # the overall means are recorded alongside.
    assert len(inc_times) >= 3 and len(cold_times) >= 3
    inc_steady = float(np.mean(inc_times[1:]))
    cold_steady = float(np.mean(cold_times[1:]))
    speedup = cold_steady / inc_steady
    overall_speedup = float(np.mean(cold_times) / np.mean(inc_times))
    record = {
        "forum": {
            "n_users": FORUM_CONFIG.n_users,
            "n_questions": FORUM_CONFIG.n_questions,
        },
        "n_refits": incremental.n_refits,
        "n_questions_seen": incremental.n_questions_seen,
        "incremental_refit_seconds": [round(t, 6) for t in inc_times],
        "cold_rebuild_refit_seconds": [round(t, 6) for t in cold_times],
        "incremental_steady_mean_seconds": round(inc_steady, 6),
        "cold_rebuild_steady_mean_seconds": round(cold_steady, 6),
        "incremental_refit_stages": _stage_breakdown(inc_stages),
        "cold_rebuild_refit_stages": _stage_breakdown(cold_stages),
        "steady_state_speedup": round(speedup, 2),
        "overall_speedup": round(overall_speedup, 2),
        "warm_rebuild_report_identical": True,
        "resilient_report_identical": True,
        "resilience_overhead": round(resilience_overhead, 4),
        "precision_at_5": round(report.precision_at(5), 6),
        "mrr": round(report.mrr, 6),
    }
    write_bench(RESULT_PATH, record)
    print("\nOnline deployment replay")
    print(f"  questions seen / routed: {report.n_questions_seen} / {report.n_routed}")
    print(f"  refits: {report.n_refits}")
    print(
        f"  steady refit mean: incremental {inc_steady * 1e3:.0f} ms, "
        f"cold rebuild {cold_steady * 1e3:.0f} ms, "
        f"{speedup:.1f}x ({overall_speedup:.1f}x incl. startup) "
        f"-> {RESULT_PATH.name}"
    )
    print(
        f"  resilience overhead (faults disabled): "
        f"{resilience_overhead * 100:+.1f}%"
    )
    for arm, stages in (
        ("incremental", inc_stages),
        ("cold rebuild", cold_stages),
    ):
        parts = ", ".join(
            f"{name.split('.')[1]} {np.mean(vals[1:]) * 1e3:.0f} ms"
            for name, vals in stages.items()
            if len(vals) > 1
        )
        print(f"  steady stages ({arm}): {parts}")
    print(f"  hit@1:  {report.hit_rate_at_1:.3f}")
    print(f"  P@5:    {report.precision_at(5):.3f}  (chance {chance:.3f})")
    print(f"  MRR:    {report.mrr:.3f}")
    print(f"  NDCG@5: {report.ndcg_at(5):.3f}")
    assert report.n_refits >= 2
    assert report.n_routed > 0
    # Strictly-causal ranking must beat per-slot chance by 2x.
    assert report.precision_at(5) > 2.0 * chance
    # The vectorized training engine cut cold-rebuild refits roughly 3x
    # (the batched warm-started LDA E-step is most of a rebuild), so the
    # incremental engine's *relative* edge shrank from ~4x to ~2x even
    # though every refit got faster in absolute terms.  The stage
    # breakdown above records where the remaining time goes.
    assert speedup >= 1.8
