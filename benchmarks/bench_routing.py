"""Sec. V — the question recommendation system.

No figure in the paper; this bench exercises the full routing loop the
section specifies: train the predictors on history, then for each new
question solve the LP over eligible answerers under load constraints,
and report the realized quality/timing of the recommended users versus
random eligible routing.
"""

import numpy as np

from repro.core import ForumPredictor, PredictorConfig, QuestionRouter

from conftest import PREDICTOR_CONFIG


def test_routing_replay(benchmark, dataset, config):
    """Replay the final day's questions through the recommender."""
    split = dataset.duration_hours - 24.0
    history = dataset.threads_in_window(0.0, split)
    final_day = dataset.threads_in_window(split, dataset.duration_hours + 1)

    predictor = ForumPredictor(config).fit(history)
    router = QuestionRouter(predictor, epsilon=0.3, default_capacity=3.0)
    candidates = sorted(history.answerers)
    load = router.recent_load(history, split)

    def replay():
        recommended, skipped = [], 0
        for thread in final_day.threads[:40]:
            result = router.recommend(
                thread, candidates, tradeoff=0.1, recent_load=load
            )
            if result is None:
                skipped += 1
                continue
            recommended.append(result)
        return recommended, skipped

    recommended, skipped = benchmark.pedantic(replay, rounds=1, iterations=1)
    print(f"\nSec. V routing replay: {len(recommended)} routed, {skipped} skipped")
    assert recommended, "router produced no recommendations"
    # Every output is a feasible probability distribution.
    for result in recommended:
        assert result.probabilities.sum() == np.float64(1.0) or abs(
            result.probabilities.sum() - 1.0
        ) < 1e-9
        assert np.all(result.probabilities >= 0)
    # The router should prefer users with high predicted quality and low
    # predicted latency: compare its top pick against the eligible mean.
    top_scores, mean_scores = [], []
    for result in recommended:
        top = result.ranked_users()[0][0]
        idx = int(np.flatnonzero(result.users == top)[0])
        top_scores.append(result.scores[idx])
        mean_scores.append(result.scores.mean())
    print(
        f"mean score of routed user: {np.mean(top_scores):.3f} vs eligible "
        f"mean {np.mean(mean_scores):.3f}"
    )
    assert np.mean(top_scores) >= np.mean(mean_scores)


def test_routing_tradeoff_knob(benchmark, dataset, config):
    """The lambda knob shifts recommendations toward faster answerers."""
    split = dataset.duration_hours - 24.0
    history = dataset.threads_in_window(0.0, split)
    final_day = dataset.threads_in_window(split, dataset.duration_hours + 1)
    predictor = ForumPredictor(config).fit(history)
    router = QuestionRouter(predictor, epsilon=0.3, default_capacity=3.0)
    candidates = sorted(history.answerers)

    def routed_latency(tradeoff):
        latencies = []
        for thread in final_day.threads[:40]:
            result = router.recommend(thread, candidates, tradeoff=tradeoff)
            if result is None:
                continue
            top = result.ranked_users()[0][0]
            idx = int(np.flatnonzero(result.users == top)[0])
            latencies.append(result.predictions["response_time"][idx])
        return float(np.mean(latencies)) if latencies else float("nan")

    def both():
        return routed_latency(0.0), routed_latency(5.0)

    quality_first, speed_first = benchmark.pedantic(both, rounds=1, iterations=1)
    print(
        f"\npredicted latency of routed user: lambda=0 -> {quality_first:.2f}h, "
        f"lambda=5 -> {speed_first:.2f}h"
    )
    assert speed_first <= quality_first + 1e-9
