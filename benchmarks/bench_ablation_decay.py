"""Ablation — timing-model design choices (DESIGN.md §5.1).

Compares the four combinations of decay parameterization (the paper's
constant omega vs. our default decay network) and prediction rule (the
paper's unnormalized first moment vs. the conditional moment) on the
timing task.  This is the evidence behind the documented deviation: the
paper-literal combination tracks answer *propensity* rather than speed.
"""

import numpy as np

from repro.core.timing_model import TimingModel
from repro.ml.metrics import rmse

from conftest import N_FOLDS
from repro.core.evaluation import _fold_iterator

VARIANTS = {
    "paper (const omega, unnormalized)": dict(decay="constant", predictor="expected"),
    "const omega, conditional": dict(decay="constant", predictor="conditional"),
    "decay net, unnormalized": dict(decay="network", predictor="expected"),
    "default (decay net, conditional)": dict(decay="network", predictor="conditional"),
}


def test_ablation_timing_variants(benchmark, dataset, config, pairs):
    def run():
        folds = list(_fold_iterator(pairs, N_FOLDS, 1, config.seed))
        out = {}
        for name, kwargs in VARIANTS.items():
            scores = []
            for train, test in folds:
                test_pos = test[pairs.is_event[test] == 1.0]
                model = TimingModel(
                    pairs.x.shape[1],
                    excitation_hidden=config.excitation_hidden,
                    omega=config.omega,
                    epochs=config.timing_epochs,
                    seed=config.seed,
                    **kwargs,
                )
                model.fit(
                    pairs.x[train],
                    pairs.times[train],
                    pairs.horizons[train],
                    pairs.is_event[train],
                )
                scores.append(
                    rmse(
                        pairs.times[test_pos],
                        model.predict(pairs.x[test_pos], pairs.horizons[test_pos]),
                    )
                )
            out[name] = float(np.mean(scores))
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nTiming-model ablation (test RMSE, lower is better)")
    for name, score in sorted(results.items(), key=lambda kv: kv[1]):
        print(f"  {name:38s} {score:8.3f}")
    # The documented deviation must actually pay for itself.
    assert (
        results["default (decay net, conditional)"]
        <= results["paper (const omega, unnormalized)"]
    )
