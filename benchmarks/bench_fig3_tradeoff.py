"""Fig. 3 — net votes vs. response time.

The paper's surprising observation: response quality (v_uq) and timing
(r_uq) are *uncorrelated*, so the two recommendation objectives are not
actually competing.
"""

import numpy as np

from repro.forum.stats import vote_time_correlation


def test_fig3_no_tradeoff(benchmark, dataset):
    corr = benchmark.pedantic(
        vote_time_correlation, args=(dataset,), rounds=1, iterations=1
    )
    print("\nFig. 3 reproduction (votes vs. response time)")
    print(
        f"pairs: {int(corr['n_pairs'])}, pearson: {corr['pearson']:+.4f}, "
        f"spearman: {corr['spearman']:+.4f}"
    )
    # Shape: |correlation| near zero — no quality/timing tradeoff.
    assert abs(corr["pearson"]) < 0.15
    assert abs(corr["spearman"]) < 0.15


def test_fig3_scatter_summary(benchmark, dataset):
    """The binned scatter the figure plots: median votes per delay decile."""

    def binned():
        records = dataset.answer_records()
        times = np.array([r.response_time for r in records])
        votes = np.array([r.votes for r in records], dtype=float)
        deciles = np.quantile(times, np.linspace(0, 1, 11))
        rows = []
        for i in range(10):
            mask = (times >= deciles[i]) & (times <= deciles[i + 1])
            rows.append((deciles[i], deciles[i + 1], float(np.median(votes[mask]))))
        return rows

    rows = benchmark.pedantic(binned, rounds=1, iterations=1)
    print("\ndelay decile -> median votes")
    for lo, hi, med in rows:
        print(f"  [{lo:7.2f}h, {hi:7.2f}h] -> {med:+.1f}")
    medians = [m for _, _, m in rows]
    # No monotone drift of votes with delay.
    assert max(medians) - min(medians) <= 2.0
