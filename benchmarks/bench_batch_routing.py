"""Extension — batch routing under shared capacity.

Sec. V routes questions at fixed time indices; questions arriving in
the same interval share answerer capacity.  This bench measures the
coordination gap: the exact transportation LP vs. routing the same
questions myopically one at a time.
"""

import numpy as np

from repro.core import (
    ForumPredictor,
    QuestionRouter,
    route_batch,
    route_batch_greedy,
)


def test_batch_vs_greedy_routing(benchmark, dataset, config):
    split = dataset.duration_hours - 48.0
    history = dataset.threads_in_window(0.0, split)
    batch = dataset.threads_in_window(split, dataset.duration_hours + 1).threads[:12]
    predictor = ForumPredictor(config).fit(history)
    router = QuestionRouter(predictor, epsilon=0.25, default_capacity=1.0)
    candidates = sorted(history.answerers)
    # Tight capacity: every user may take at most one question in the
    # interval, so the batch genuinely competes.
    capacities = {int(u): 1.0 for u in candidates}

    def run():
        lp = route_batch(router, batch, candidates, capacities=capacities)
        greedy = route_batch_greedy(
            router, batch, candidates, capacities=capacities
        )
        return lp, greedy

    lp, greedy = benchmark.pedantic(run, rounds=1, iterations=1)
    assert lp is not None, "joint LP infeasible"
    print("\nBatch routing under shared capacity (12 questions)")
    print(f"  joint LP objective:  {lp.objective:9.3f}")
    if greedy is not None:
        print(f"  greedy objective:    {greedy.objective:9.3f}")
        gap = lp.objective - greedy.objective
        print(f"  coordination gain:   {gap:+9.3f}")
        assert lp.objective >= greedy.objective - 1e-8
    else:
        print("  greedy: infeasible (capacity starved by early questions)")
    # Joint solution is feasible: rows sum to 1, capacities respected.
    np.testing.assert_allclose(lp.probabilities.sum(axis=1), 1.0, atol=1e-8)
    assert np.all(lp.probabilities.sum(axis=0) <= 1.0 + 1e-8)