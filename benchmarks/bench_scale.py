"""Columnar event store + sharded state engine at forum scale.

Three measurements, recorded together in ``BENCH_scale.json``:

* **Scale smoke** (fast lane, run by CI on every push) — streams a 10k
  user synthetic forum straight into 2-shard columnar logs, asserting a
  peak-RSS ceiling, and pins the sharded router's bit-identity against
  the single-shard path on the bench forum.
* **Million-user stream** (``@slow``) — generates a >= 1M user /
  multi-million post forum through the chunked streaming generator into
  columnar segments, never materializing Python post objects; records
  posts/sec, columnar footprint, and the peak RSS high-water mark.
* **Throughput vs shards** (``@slow``) — routes a question batch at
  shard counts 1/2/4/8 in process mode and records the curve.  Real
  multi-process speedup needs real cores: the speedup assertion is
  conditional on ``os.cpu_count()``, and the recorded numbers carry the
  host's CPU count in the shared meta header so single-core results are
  read as what they are.
"""

import os
import time
from pathlib import Path

import numpy as np
import pytest

from _meta import record_bench
from repro import perf
from repro.core import ForumPredictor
from repro.core.sharding import ShardedRouter
from repro.forum import ForumConfig
from repro.forum.streaming import ingest_to_shards

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_scale.json"

SMOKE_CONFIG = ForumConfig(
    n_users=10_000, n_questions=8_000, activity_tail=1.3
)
# Generous on purpose: the smoke ingest needs tens of MB, but the
# interpreter + imported scientific stack already sit at a few hundred.
# The ceiling catches accidental O(n_posts) materialization (which at
# this scale adds GBs), not allocator noise.
SMOKE_RSS_CEILING = 2 * 1024**3

MILLION_CONFIG = ForumConfig(
    n_users=1_000_000,
    n_questions=1_500_000,
    activity_tail=1.3,
)
MILLION_RSS_CEILING = 8 * 1024**3

SHARD_COUNTS = (1, 2, 4, 8)


def _results_identical(a, b):
    if a is None or b is None:
        return a is None and b is None
    return (
        a.question_id == b.question_id
        and np.array_equal(a.users, b.users)
        and np.array_equal(a.probabilities, b.probabilities)
        and np.array_equal(a.scores, b.scores)
    )


def _routing_fixture(dataset, config):
    """Fitted predictor + query threads + candidate universe."""
    threads = sorted(dataset, key=lambda t: t.created_at)
    split = threads[int(len(threads) * 0.9)].created_at
    history = dataset.threads_in_window(0.0, split)
    queries = [t for t in threads if t.created_at >= split][:20]
    predictor = ForumPredictor(config).fit(history)
    candidates = np.array(sorted(history.answerers), dtype=np.int64)
    return predictor, queries, candidates


def test_scale_smoke(benchmark, dataset, config):
    """CI gate: bounded-memory streamed ingest + shard bit-identity."""
    with perf.use_registry() as registry:
        start = time.perf_counter()
        logs, questions, report = ingest_to_shards(
            SMOKE_CONFIG, seed=0, n_shards=2, chunk_questions=2_000
        )
        ingest_seconds = time.perf_counter() - start
    posts = report.n_questions + report.n_answers
    assert report.n_questions == SMOKE_CONFIG.n_questions
    assert sum(log.n_rows for log in logs) == report.n_answers
    assert report.peak_rss_bytes < SMOKE_RSS_CEILING
    assert registry.counter("scale.peak_rss_bytes") == report.peak_rss_bytes

    predictor, queries, candidates = _routing_fixture(dataset, config)
    single = ShardedRouter(predictor, 1, epsilon=0.3, default_capacity=3.0)
    expected = single.route_batch(queries, candidates, tradeoff=0.1)

    def routed():
        sharded = ShardedRouter(
            predictor, 2, epsilon=0.3, default_capacity=3.0
        )
        return sharded.route_batch(queries, candidates, tradeoff=0.1)

    got = benchmark.pedantic(routed, rounds=1, iterations=1)
    identical = all(_results_identical(a, b) for a, b in zip(expected, got))
    assert identical, "2-shard routing diverged from single-shard"

    payload = {
        "forum": {
            "n_users": SMOKE_CONFIG.n_users,
            "n_questions": SMOKE_CONFIG.n_questions,
        },
        "n_posts": posts,
        "n_answers": report.n_answers,
        "n_shards": 2,
        "answers_per_shard": report.answers_per_shard,
        "ingest_seconds": round(ingest_seconds, 4),
        "posts_per_second": round(posts / ingest_seconds),
        "question_bytes": report.question_bytes,
        "answer_bytes": report.answer_bytes,
        "peak_rss_bytes": report.peak_rss_bytes,
        "rss_ceiling_bytes": SMOKE_RSS_CEILING,
        "shard_routing_bit_identical": identical,
        "questions_routed": len(queries),
    }
    record_bench(RESULT_PATH, "smoke", payload)
    print(
        f"\nScale smoke: {posts} posts streamed in {ingest_seconds:.2f}s "
        f"({posts / ingest_seconds:.0f}/s), peak RSS "
        f"{report.peak_rss_bytes / 1024**2:.0f} MB, "
        f"2-shard routing identical: {identical}"
    )


@pytest.mark.slow
def test_million_user_stream():
    """>= 1M users / multi-million posts generated in bounded memory."""
    with perf.use_registry():
        start = time.perf_counter()
        logs, questions, report = ingest_to_shards(
            MILLION_CONFIG, seed=0, n_shards=4, chunk_questions=100_000
        )
        ingest_seconds = time.perf_counter() - start
    posts = report.n_questions + report.n_answers
    assert report.n_users >= 1_000_000
    assert posts >= 2_000_000
    assert report.peak_rss_bytes < MILLION_RSS_CEILING

    payload = {
        "forum": {
            "n_users": MILLION_CONFIG.n_users,
            "n_questions": MILLION_CONFIG.n_questions,
        },
        "n_posts": posts,
        "n_answers": report.n_answers,
        "n_active_users": report.n_active_users,
        "n_chunks": report.n_chunks,
        "n_shards": 4,
        "answers_per_shard": report.answers_per_shard,
        "ingest_seconds": round(ingest_seconds, 2),
        "posts_per_second": round(posts / ingest_seconds),
        "question_bytes": report.question_bytes,
        "answer_bytes": report.answer_bytes,
        "columnar_bytes_per_post": round(
            (report.question_bytes + report.answer_bytes) / posts, 1
        ),
        "peak_rss_bytes": report.peak_rss_bytes,
        "rss_ceiling_bytes": MILLION_RSS_CEILING,
    }
    record_bench(RESULT_PATH, "million_user_stream", payload)
    print(
        f"\nMillion-user stream: {posts} posts in {ingest_seconds:.1f}s "
        f"({posts / ingest_seconds:.0f}/s), peak RSS "
        f"{report.peak_rss_bytes / 1024**3:.2f} GB, columnar store "
        f"{(report.question_bytes + report.answer_bytes) / 1024**2:.0f} MB"
    )


@pytest.mark.slow
def test_throughput_vs_shards(dataset, config):
    """Routing throughput at 1/2/4/8 shards, process mode.

    On a multi-core host the curve must rise monotonically with >= 2.5x
    at 4 shards; on fewer cores the numbers are recorded (with the CPU
    count in the meta header) but only bit-identity is asserted —
    worker processes cannot beat a single core they all share.
    """
    predictor, queries, candidates = _routing_fixture(dataset, config)
    baseline = None
    curve = {}
    cores = os.cpu_count() or 1
    for n_shards in SHARD_COUNTS:
        with ShardedRouter(
            predictor,
            n_shards,
            epsilon=0.3,
            default_capacity=3.0,
            mode="process",
        ) as router:
            router.route_batch(queries[:2], candidates, tradeoff=0.1)  # warm
            start = time.perf_counter()
            results = router.route_batch(queries, candidates, tradeoff=0.1)
            seconds = time.perf_counter() - start
        if baseline is None:
            baseline = results
        else:
            assert all(
                _results_identical(a, b) for a, b in zip(baseline, results)
            ), f"{n_shards}-shard routing diverged"
        curve[str(n_shards)] = {
            "seconds": round(seconds, 4),
            "questions_per_second": round(len(queries) / seconds, 2),
        }
    speedup_at_4 = (
        curve["1"]["seconds"] / curve["4"]["seconds"]
        if "4" in curve
        else None
    )
    payload = {
        "mode": "process",
        "n_questions": len(queries),
        "n_candidates": int(candidates.size),
        "cpu_count": cores,
        "curve": curve,
        "speedup_at_4_shards": round(speedup_at_4, 2),
        "speedup_asserted": cores >= 4,
    }
    record_bench(RESULT_PATH, "throughput_vs_shards", payload)
    print(f"\nThroughput vs shards ({cores} cores): {curve}")
    if cores >= 4:
        qps = [curve[str(s)]["questions_per_second"] for s in SHARD_COUNTS]
        assert all(b >= a for a, b in zip(qps, qps[1:])), (
            "throughput must rise monotonically with shard count"
        )
        assert speedup_at_4 >= 2.5
