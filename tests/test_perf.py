"""Unit tests for repro.perf — stage timers, counters, histograms."""

import math
import threading

import pytest

from repro import perf
from repro.perf import LatencyHistogram, PerfRegistry, StageStat


@pytest.fixture
def registry():
    return PerfRegistry()


class TestStageStat:
    def test_mean_of_empty_stage(self):
        assert StageStat().mean_seconds == 0.0

    def test_mean(self):
        assert StageStat(calls=4, total_seconds=2.0).mean_seconds == 0.5


class TestPerfRegistry:
    def test_timer_accumulates(self, registry):
        with registry.timer("stage"):
            pass
        with registry.timer("stage"):
            pass
        stat = registry.stage("stage")
        assert stat.calls == 2
        assert stat.total_seconds >= 0.0

    def test_timer_records_on_exception(self, registry):
        with pytest.raises(RuntimeError):
            with registry.timer("boom"):
                raise RuntimeError("x")
        assert registry.stage("boom").calls == 1

    def test_timers_nest(self, registry):
        with registry.timer("outer"):
            with registry.timer("inner"):
                pass
        assert registry.stage("outer").calls == 1
        assert registry.stage("inner").calls == 1

    def test_unknown_stage_is_zeroed(self, registry):
        stat = registry.stage("never-ran")
        assert stat.calls == 0
        assert stat.total_seconds == 0.0

    def test_counters(self, registry):
        registry.incr("pairs")
        registry.incr("pairs", 9)
        assert registry.counter("pairs") == 10
        assert registry.counter("missing") == 0

    def test_snapshots_are_copies(self, registry):
        with registry.timer("s"):
            pass
        snap = registry.stages()
        snap["s"].calls = 99
        assert registry.stage("s").calls == 1

    def test_report_lists_stages_and_counters(self, registry):
        with registry.timer("alpha"):
            pass
        registry.incr("widgets", 3)
        text = registry.report()
        assert "alpha" in text
        assert "widgets" in text

    def test_reset(self, registry):
        with registry.timer("s"):
            pass
        registry.incr("c")
        registry.reset()
        assert registry.stages() == {}
        assert registry.counters() == {}

    def test_thread_safety(self, registry):
        def work():
            for _ in range(500):
                registry.incr("hits")
                registry.add_time("stage", 0.001)

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert registry.counter("hits") == 2000
        assert registry.stage("stage").calls == 2000


class TestGauges:
    def test_gauge_max_keeps_maximum(self, registry):
        registry.gauge_max("mem.peak", 100)
        registry.gauge_max("mem.peak", 40)
        registry.gauge_max("mem.peak", 250)
        assert registry.counter("mem.peak") == 250

    def test_gauges_visible_through_counter_prefix(self, registry):
        registry.gauge_max("mem.peak_rss_bytes", 7)
        registry.incr("mem.allocs", 3)
        family = registry.counters_with_prefix("mem.")
        assert family == {"mem.peak_rss_bytes": 7, "mem.allocs": 3}

    def test_merge_folds_gauges_with_max_and_counters_with_sum(self, registry):
        other = PerfRegistry()
        other.gauge_max("mem.peak", 500)
        other.incr("events", 5)
        registry.gauge_max("mem.peak", 900)
        registry.incr("events", 2)
        registry.merge(other.snapshot())
        assert registry.counter("mem.peak") == 900  # max, not 1400
        assert registry.counter("events") == 7  # sum

    def test_reset_clears_gauge_markers(self, registry):
        registry.gauge_max("g", 10)
        registry.reset()
        registry.incr("g", 1)
        registry.incr("g", 1)
        assert registry.counter("g") == 2  # plain counter again


class TestPeakRss:
    def test_peak_rss_positive_and_monotone(self):
        first = perf.peak_rss_bytes()
        assert first > 0
        assert perf.peak_rss_bytes() >= first
        assert perf.peak_rss_bytes(include_children=True) >= first

    def test_record_peak_rss_writes_gauges(self):
        with perf.use_registry() as reg:
            values = perf.record_peak_rss("testmem")
        assert values["testmem.peak_rss_bytes"] > 0
        family = reg.counters_with_prefix("testmem.")
        assert family["testmem.peak_rss_bytes"] == values[
            "testmem.peak_rss_bytes"
        ]
        assert "testmem.child_peak_rss_bytes" in family

    def test_record_peak_rss_is_a_high_water_mark(self):
        reg = PerfRegistry()
        perf.record_peak_rss("hw", registry=reg)
        first = reg.counter("hw.peak_rss_bytes")
        perf.record_peak_rss("hw", registry=reg)
        assert reg.counter("hw.peak_rss_bytes") >= first


class TestLatencyHistogram:
    def test_empty_percentile_is_nan(self):
        hist = LatencyHistogram()
        assert math.isnan(hist.percentile(50))
        assert math.isnan(hist.mean)
        assert hist.count == 0

    def test_single_sample_answers_exactly(self):
        hist = LatencyHistogram()
        hist.record(0.25)
        for p in (0, 50, 99, 100):
            assert hist.percentile(p) == 0.25
        assert hist.mean == 0.25

    def test_percentiles_bracket_true_quantiles(self):
        hist = LatencyHistogram(buckets_per_decade=40)
        samples = [0.001 * (i + 1) for i in range(1000)]  # 1ms..1s
        for s in samples:
            hist.record(s)
        # One log-bucket is < 6% wide, so the estimate must land within
        # one bucket of the true nearest-rank quantile.
        for p in (50, 95, 99):
            true = samples[max(0, math.ceil(p / 100 * len(samples)) - 1)]
            estimate = hist.percentile(p)
            assert true <= estimate <= true * 10 ** (1 / 40) * 1.001

    def test_percentile_is_monotone_in_p(self):
        hist = LatencyHistogram()
        for i in range(100):
            hist.record(0.01 * (1 + i % 17))
        values = [hist.percentile(p) for p in (1, 25, 50, 75, 95, 99.9)]
        assert values == sorted(values)

    def test_out_of_range_samples_clamp_to_min_max(self):
        hist = LatencyHistogram(low=1e-3, high=1.0)
        hist.record(1e-9)  # underflow bucket
        hist.record(50.0)  # overflow bucket
        assert hist.percentile(0) == pytest.approx(1e-9)
        assert hist.percentile(100) == pytest.approx(50.0)
        assert hist.count == 2

    def test_nonfinite_and_invalid_inputs(self):
        hist = LatencyHistogram()
        hist.record(float("nan"))
        hist.record(float("inf"))
        assert hist.count == 0
        with pytest.raises(ValueError):
            hist.percentile(101)

    def test_merge_equals_pooled_recording(self):
        left, right, pooled = (LatencyHistogram() for _ in range(3))
        for i, s in enumerate(0.001 * (1 + i) for i in range(200)):
            (left if i % 2 else right).record(s)
            pooled.record(s)
        left.merge(right.snapshot())
        assert left.count == pooled.count
        for p in (50, 95, 99):
            assert left.percentile(p) == pooled.percentile(p)

    def test_merge_rejects_mismatched_layout(self):
        hist = LatencyHistogram(buckets_per_decade=40)
        other = LatencyHistogram(buckets_per_decade=20)
        with pytest.raises(ValueError):
            hist.merge(other.snapshot())


class TestRegistryHistograms:
    def test_record_latency_and_percentile(self, registry):
        for ms in (1, 2, 3, 4, 100):
            registry.record_latency("svc.lat", ms / 1000)
        assert registry.histogram("svc.lat").count == 5
        assert registry.percentile("svc.lat", 50) == pytest.approx(
            0.003, rel=0.06
        )
        assert math.isnan(registry.percentile("missing", 50))

    def test_histogram_returns_copy(self, registry):
        registry.record_latency("h", 0.5)
        registry.histogram("h").record(0.5)
        assert registry.histogram("h").count == 1

    def test_latency_timer_records(self, registry):
        with registry.latency_timer("timed"):
            pass
        assert registry.histogram("timed").count == 1

    def test_snapshot_merge_round_trip(self, registry):
        registry.record_latency("x", 0.2)
        other = PerfRegistry()
        other.merge(registry.snapshot())
        assert other.percentile("x", 50) == registry.percentile("x", 50)

    def test_report_and_reset_cover_histograms(self, registry):
        registry.record_latency("svc.query", 0.01)
        assert "svc.query" in registry.report()
        registry.reset()
        assert registry.histograms() == {}

    def test_module_level_helpers(self):
        perf.record_latency("module-hist", 0.001)
        assert perf.histogram("module-hist").count >= 1


class TestModuleLevelApi:
    def test_default_registry_is_shared(self):
        assert perf.get_registry() is perf.get_registry()

    def test_module_functions_hit_default_registry(self):
        registry = perf.get_registry()
        before = registry.stage("module-stage").calls
        with perf.timer("module-stage"):
            perf.incr("module-counter")
        assert registry.stage("module-stage").calls == before + 1
        assert registry.counter("module-counter") >= 1
        assert "module-stage" in perf.report()
