"""Unit tests for repro.perf — stage timers and counters."""

import threading

import pytest

from repro import perf
from repro.perf import PerfRegistry, StageStat


@pytest.fixture
def registry():
    return PerfRegistry()


class TestStageStat:
    def test_mean_of_empty_stage(self):
        assert StageStat().mean_seconds == 0.0

    def test_mean(self):
        assert StageStat(calls=4, total_seconds=2.0).mean_seconds == 0.5


class TestPerfRegistry:
    def test_timer_accumulates(self, registry):
        with registry.timer("stage"):
            pass
        with registry.timer("stage"):
            pass
        stat = registry.stage("stage")
        assert stat.calls == 2
        assert stat.total_seconds >= 0.0

    def test_timer_records_on_exception(self, registry):
        with pytest.raises(RuntimeError):
            with registry.timer("boom"):
                raise RuntimeError("x")
        assert registry.stage("boom").calls == 1

    def test_timers_nest(self, registry):
        with registry.timer("outer"):
            with registry.timer("inner"):
                pass
        assert registry.stage("outer").calls == 1
        assert registry.stage("inner").calls == 1

    def test_unknown_stage_is_zeroed(self, registry):
        stat = registry.stage("never-ran")
        assert stat.calls == 0
        assert stat.total_seconds == 0.0

    def test_counters(self, registry):
        registry.incr("pairs")
        registry.incr("pairs", 9)
        assert registry.counter("pairs") == 10
        assert registry.counter("missing") == 0

    def test_snapshots_are_copies(self, registry):
        with registry.timer("s"):
            pass
        snap = registry.stages()
        snap["s"].calls = 99
        assert registry.stage("s").calls == 1

    def test_report_lists_stages_and_counters(self, registry):
        with registry.timer("alpha"):
            pass
        registry.incr("widgets", 3)
        text = registry.report()
        assert "alpha" in text
        assert "widgets" in text

    def test_reset(self, registry):
        with registry.timer("s"):
            pass
        registry.incr("c")
        registry.reset()
        assert registry.stages() == {}
        assert registry.counters() == {}

    def test_thread_safety(self, registry):
        def work():
            for _ in range(500):
                registry.incr("hits")
                registry.add_time("stage", 0.001)

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert registry.counter("hits") == 2000
        assert registry.stage("stage").calls == 2000


class TestModuleLevelApi:
    def test_default_registry_is_shared(self):
        assert perf.get_registry() is perf.get_registry()

    def test_module_functions_hit_default_registry(self):
        registry = perf.get_registry()
        before = registry.stage("module-stage").calls
        with perf.timer("module-stage"):
            perf.incr("module-counter")
        assert registry.stage("module-stage").calls == before + 1
        assert registry.counter("module-counter") >= 1
        assert "module-stage" in perf.report()
