"""Unit tests for repro.perf — stage timers and counters."""

import threading

import pytest

from repro import perf
from repro.perf import PerfRegistry, StageStat


@pytest.fixture
def registry():
    return PerfRegistry()


class TestStageStat:
    def test_mean_of_empty_stage(self):
        assert StageStat().mean_seconds == 0.0

    def test_mean(self):
        assert StageStat(calls=4, total_seconds=2.0).mean_seconds == 0.5


class TestPerfRegistry:
    def test_timer_accumulates(self, registry):
        with registry.timer("stage"):
            pass
        with registry.timer("stage"):
            pass
        stat = registry.stage("stage")
        assert stat.calls == 2
        assert stat.total_seconds >= 0.0

    def test_timer_records_on_exception(self, registry):
        with pytest.raises(RuntimeError):
            with registry.timer("boom"):
                raise RuntimeError("x")
        assert registry.stage("boom").calls == 1

    def test_timers_nest(self, registry):
        with registry.timer("outer"):
            with registry.timer("inner"):
                pass
        assert registry.stage("outer").calls == 1
        assert registry.stage("inner").calls == 1

    def test_unknown_stage_is_zeroed(self, registry):
        stat = registry.stage("never-ran")
        assert stat.calls == 0
        assert stat.total_seconds == 0.0

    def test_counters(self, registry):
        registry.incr("pairs")
        registry.incr("pairs", 9)
        assert registry.counter("pairs") == 10
        assert registry.counter("missing") == 0

    def test_snapshots_are_copies(self, registry):
        with registry.timer("s"):
            pass
        snap = registry.stages()
        snap["s"].calls = 99
        assert registry.stage("s").calls == 1

    def test_report_lists_stages_and_counters(self, registry):
        with registry.timer("alpha"):
            pass
        registry.incr("widgets", 3)
        text = registry.report()
        assert "alpha" in text
        assert "widgets" in text

    def test_reset(self, registry):
        with registry.timer("s"):
            pass
        registry.incr("c")
        registry.reset()
        assert registry.stages() == {}
        assert registry.counters() == {}

    def test_thread_safety(self, registry):
        def work():
            for _ in range(500):
                registry.incr("hits")
                registry.add_time("stage", 0.001)

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert registry.counter("hits") == 2000
        assert registry.stage("stage").calls == 2000


class TestGauges:
    def test_gauge_max_keeps_maximum(self, registry):
        registry.gauge_max("mem.peak", 100)
        registry.gauge_max("mem.peak", 40)
        registry.gauge_max("mem.peak", 250)
        assert registry.counter("mem.peak") == 250

    def test_gauges_visible_through_counter_prefix(self, registry):
        registry.gauge_max("mem.peak_rss_bytes", 7)
        registry.incr("mem.allocs", 3)
        family = registry.counters_with_prefix("mem.")
        assert family == {"mem.peak_rss_bytes": 7, "mem.allocs": 3}

    def test_merge_folds_gauges_with_max_and_counters_with_sum(self, registry):
        other = PerfRegistry()
        other.gauge_max("mem.peak", 500)
        other.incr("events", 5)
        registry.gauge_max("mem.peak", 900)
        registry.incr("events", 2)
        registry.merge(other.snapshot())
        assert registry.counter("mem.peak") == 900  # max, not 1400
        assert registry.counter("events") == 7  # sum

    def test_reset_clears_gauge_markers(self, registry):
        registry.gauge_max("g", 10)
        registry.reset()
        registry.incr("g", 1)
        registry.incr("g", 1)
        assert registry.counter("g") == 2  # plain counter again


class TestPeakRss:
    def test_peak_rss_positive_and_monotone(self):
        first = perf.peak_rss_bytes()
        assert first > 0
        assert perf.peak_rss_bytes() >= first
        assert perf.peak_rss_bytes(include_children=True) >= first

    def test_record_peak_rss_writes_gauges(self):
        with perf.use_registry() as reg:
            values = perf.record_peak_rss("testmem")
        assert values["testmem.peak_rss_bytes"] > 0
        family = reg.counters_with_prefix("testmem.")
        assert family["testmem.peak_rss_bytes"] == values[
            "testmem.peak_rss_bytes"
        ]
        assert "testmem.child_peak_rss_bytes" in family

    def test_record_peak_rss_is_a_high_water_mark(self):
        reg = PerfRegistry()
        perf.record_peak_rss("hw", registry=reg)
        first = reg.counter("hw.peak_rss_bytes")
        perf.record_peak_rss("hw", registry=reg)
        assert reg.counter("hw.peak_rss_bytes") >= first


class TestModuleLevelApi:
    def test_default_registry_is_shared(self):
        assert perf.get_registry() is perf.get_registry()

    def test_module_functions_hit_default_registry(self):
        registry = perf.get_registry()
        before = registry.stage("module-stage").calls
        with perf.timer("module-stage"):
            perf.incr("module-counter")
        assert registry.stage("module-stage").calls == before + 1
        assert registry.counter("module-counter") >= 1
        assert "module-stage" in perf.report()
