"""Tests for repro.pointprocess.hawkes."""

import numpy as np
import pytest
from scipy import integrate

from repro.pointprocess.hawkes import (
    HawkesThreadModel,
    hawkes_intensity,
    hawkes_log_likelihood,
)


class TestIntensity:
    def test_base_only_before_events(self):
        lam = hawkes_intensity(1.0, np.array([2.0, 3.0]), 2.0, 0.5, 0.3, 1.0)
        assert lam == pytest.approx(2.0 * np.exp(-0.5))

    def test_jump_after_event(self):
        before = hawkes_intensity(0.999, np.array([1.0]), 1.0, 0.1, 0.5, 1.0)
        after = hawkes_intensity(1.001, np.array([1.0]), 1.0, 0.1, 0.5, 1.0)
        assert after > before
        assert after - before == pytest.approx(0.5, abs=0.01)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            hawkes_intensity(0.5, np.array([]), 0.0, 1.0, 0.1, 1.0)
        with pytest.raises(ValueError):
            hawkes_intensity(0.5, np.array([]), 1.0, 1.0, -0.1, 1.0)


class TestLogLikelihood:
    def test_reduces_to_poisson_when_alpha_zero(self):
        from repro.pointprocess.exponential import log_likelihood

        times = np.array([0.5, 1.5, 3.0])
        horizon = 5.0
        mu, omega = 2.0, 0.6
        hawkes_ll = hawkes_log_likelihood(times, horizon, mu, omega, 0.0, 1.0)
        poisson_ll = log_likelihood(
            np.full(3, mu),
            np.full(3, omega),
            times,
            np.array([mu]),
            np.array([omega]),
            np.array([horizon]),
        )
        assert hawkes_ll == pytest.approx(poisson_ll)

    def test_compensator_matches_numeric_integral(self):
        times = np.array([0.7, 1.2, 2.5])
        horizon, mu, omega, alpha, beta = 4.0, 1.5, 0.4, 0.6, 1.3

        def intensity(t):
            return hawkes_intensity(t, times, mu, omega, alpha, beta)

        numeric, _ = integrate.quad(intensity, 0, horizon, limit=200)
        log_term = sum(
            np.log(hawkes_intensity(t - 1e-9, times, mu, omega, alpha, beta))
            for t in times
        )
        expected = log_term - numeric
        got = hawkes_log_likelihood(times, horizon, mu, omega, alpha, beta)
        assert got == pytest.approx(expected, rel=1e-4)

    def test_empty_thread(self):
        got = hawkes_log_likelihood(np.array([]), 2.0, 1.0, 1.0, 0.5, 1.0)
        assert got == pytest.approx(-(1 - np.exp(-2.0)))

    def test_out_of_horizon_times_rejected(self):
        with pytest.raises(ValueError):
            hawkes_log_likelihood(np.array([5.0]), 2.0, 1.0, 1.0, 0.5, 1.0)


class TestSimulationAndFit:
    @pytest.fixture(scope="class")
    def fitted_and_truth(self):
        """Simulate threads from known parameters, then refit."""
        rng = np.random.default_rng(0)
        true = HawkesThreadModel(omega=0.4, beta=1.2)
        true.mu_, true.alpha_ = 0.8, 0.5
        horizon = 20.0
        threads = [true.simulate(horizon, rng) for _ in range(400)]
        model = HawkesThreadModel(omega=0.4, beta=1.2).fit(
            threads, [horizon] * len(threads)
        )
        return model, true, threads, horizon

    def test_simulation_times_valid(self, fitted_and_truth):
        _, _, threads, horizon = fitted_and_truth
        for times in threads:
            assert np.all(times >= 0) and np.all(times <= horizon)
            assert np.all(np.diff(times) >= 0)

    def test_self_excitation_clusters_events(self):
        """alpha > 0 produces more events than the base process alone."""
        rng = np.random.default_rng(1)
        base = HawkesThreadModel(omega=0.4, beta=1.2)
        base.mu_, base.alpha_ = 0.8, 0.0
        excited = HawkesThreadModel(omega=0.4, beta=1.2)
        excited.mu_, excited.alpha_ = 0.8, 0.6
        n_base = np.mean([base.simulate(20.0, rng).size for _ in range(300)])
        n_excited = np.mean(
            [excited.simulate(20.0, rng).size for _ in range(300)]
        )
        assert n_excited > n_base * 1.2

    def test_fit_recovers_parameters(self, fitted_and_truth):
        model, true, _, _ = fitted_and_truth
        assert model.mu_ == pytest.approx(true.mu_, rel=0.25)
        assert model.alpha_ == pytest.approx(true.alpha_, rel=0.3)

    def test_branching_ratio(self, fitted_and_truth):
        model, _, _, _ = fitted_and_truth
        assert 0.0 < model.branching_ratio < 1.0

    def test_fitted_likelihood_beats_wrong_params(self, fitted_and_truth):
        model, _, threads, horizon = fitted_and_truth
        horizons = [horizon] * len(threads)
        fitted_ll = model.log_likelihood(threads, horizons)
        wrong = HawkesThreadModel(omega=0.4, beta=1.2)
        wrong.mu_, wrong.alpha_ = 3.0, 0.01
        assert fitted_ll > wrong.log_likelihood(threads, horizons)

    def test_validation(self):
        with pytest.raises(ValueError):
            HawkesThreadModel(omega=0.0)
        with pytest.raises(ValueError):
            HawkesThreadModel().fit([], [])
        with pytest.raises(ValueError):
            HawkesThreadModel().fit([np.array([1.0])], [1.0, 2.0])
        with pytest.raises(RuntimeError):
            HawkesThreadModel().simulate(1.0, np.random.default_rng(0))


class TestAlphaFixed:
    def test_alpha_pinned(self):
        rng = np.random.default_rng(3)
        model = HawkesThreadModel(omega=0.5, beta=1.0)
        model.mu_, model.alpha_ = 1.0, 0.4
        threads = [model.simulate(10.0, rng) for _ in range(100)]
        restricted = HawkesThreadModel(omega=0.5, beta=1.0).fit(
            threads, [10.0] * 100, alpha_fixed=0.0
        )
        assert restricted.alpha_ == 0.0
        assert restricted.mu_ > 0

    def test_restricted_ll_not_above_full(self):
        rng = np.random.default_rng(4)
        truth = HawkesThreadModel(omega=0.5, beta=1.0)
        truth.mu_, truth.alpha_ = 0.8, 0.5
        threads = [truth.simulate(15.0, rng) for _ in range(200)]
        horizons = [15.0] * 200
        full = HawkesThreadModel(omega=0.5, beta=1.0).fit(threads, horizons)
        restricted = HawkesThreadModel(omega=0.5, beta=1.0).fit(
            threads, horizons, alpha_fixed=0.0
        )
        assert full.log_likelihood(threads, horizons) >= restricted.log_likelihood(
            threads, horizons
        )


class TestExpectedCount:
    def test_matches_simulation(self):
        rng = np.random.default_rng(5)
        model = HawkesThreadModel(omega=0.5, beta=1.2)
        model.mu_, model.alpha_ = 1.0, 0.5
        horizon = 30.0  # long horizon: truncation error negligible
        counts = [model.simulate(horizon, rng).size for _ in range(2000)]
        assert np.mean(counts) == pytest.approx(
            model.expected_count(horizon), rel=0.07
        )

    def test_alpha_zero_reduces_to_compensator(self):
        from repro.pointprocess.exponential import integrated_rate

        model = HawkesThreadModel(omega=0.4, beta=1.0)
        model.mu_, model.alpha_ = 2.0, 0.0
        assert model.expected_count(5.0) == pytest.approx(
            float(integrated_rate(2.0, 0.4, 5.0))
        )

    def test_excitation_multiplies_count(self):
        base = HawkesThreadModel(omega=0.4, beta=1.0)
        base.mu_, base.alpha_ = 1.0, 0.0
        excited = HawkesThreadModel(omega=0.4, beta=1.0)
        excited.mu_, excited.alpha_ = 1.0, 0.5
        assert excited.expected_count(10.0) == pytest.approx(
            2.0 * base.expected_count(10.0)
        )

    def test_supercritical_rejected(self):
        model = HawkesThreadModel(omega=0.4, beta=1.0)
        model.mu_, model.alpha_ = 1.0, 1.5
        with pytest.raises(ValueError, match="supercritical"):
            model.expected_count(5.0)

    def test_unfitted_rejected(self):
        with pytest.raises(RuntimeError):
            HawkesThreadModel().expected_count(1.0)
