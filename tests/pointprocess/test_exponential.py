"""Tests for repro.pointprocess.exponential."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from scipy import integrate

from repro.pointprocess.exponential import (
    conditional_expected_time,
    expected_response_time,
    integrated_rate,
    log_likelihood,
    rate,
)

positive = st.floats(0.01, 50.0)


class TestRate:
    def test_initial_value_is_mu(self):
        assert rate(3.0, 1.0, 0.0) == pytest.approx(3.0)

    def test_decays(self):
        assert rate(3.0, 2.0, 1.0) == pytest.approx(3.0 * np.exp(-2.0))

    def test_vectorized(self):
        out = rate(np.array([1.0, 2.0]), np.array([1.0, 1.0]), np.array([0.0, 1.0]))
        np.testing.assert_allclose(out, [1.0, 2.0 * np.exp(-1.0)])

    @pytest.mark.parametrize("bad", [{"mu": 0.0}, {"omega": -1.0}, {"t": -0.1}])
    def test_validation(self, bad):
        kwargs = {"mu": 1.0, "omega": 1.0, "t": 0.0, **bad}
        with pytest.raises(ValueError):
            rate(kwargs["mu"], kwargs["omega"], kwargs["t"])


class TestIntegratedRate:
    @given(positive, positive, positive)
    def test_matches_numeric_integral(self, mu, omega, horizon):
        numeric, _ = integrate.quad(
            lambda t: mu * np.exp(-omega * t), 0.0, horizon
        )
        assert integrated_rate(mu, omega, horizon) == pytest.approx(
            numeric, rel=1e-6
        )

    def test_zero_horizon(self):
        assert integrated_rate(1.0, 1.0, 0.0) == 0.0

    def test_saturates_at_mu_over_omega(self):
        assert integrated_rate(4.0, 2.0, 1e6) == pytest.approx(2.0)

    @given(positive, positive)
    def test_monotone_in_horizon(self, mu, omega):
        short = integrated_rate(mu, omega, 1.0)
        long = integrated_rate(mu, omega, 2.0)
        assert long >= short


class TestExpectedResponseTime:
    @given(positive, positive, st.floats(0.1, 20.0))
    def test_matches_numeric_first_moment(self, mu, omega, horizon):
        numeric, _ = integrate.quad(
            lambda t: t * mu * np.exp(-omega * t), 0.0, horizon
        )
        assert expected_response_time(mu, omega, horizon) == pytest.approx(
            numeric, rel=1e-5, abs=1e-10
        )

    def test_scales_linearly_in_mu(self):
        one = expected_response_time(1.0, 0.5, 10.0)
        three = expected_response_time(3.0, 0.5, 10.0)
        assert three == pytest.approx(3 * one)

    def test_zero_horizon_is_zero(self):
        assert expected_response_time(1.0, 1.0, 0.0) == pytest.approx(0.0)


class TestConditionalExpectedTime:
    @given(positive, positive, st.floats(0.1, 20.0))
    def test_invariant_to_mu(self, mu, omega, horizon):
        a = conditional_expected_time(mu, omega, horizon)
        b = conditional_expected_time(mu * 7.0, omega, horizon)
        assert a == pytest.approx(b, rel=1e-9)

    @given(positive, st.floats(0.1, 20.0))
    def test_within_horizon(self, omega, horizon):
        t = conditional_expected_time(1.0, omega, horizon)
        assert 0.0 <= t <= horizon

    def test_faster_decay_earlier_expectation(self):
        slow = conditional_expected_time(1.0, 0.1, 10.0)
        fast = conditional_expected_time(1.0, 5.0, 10.0)
        assert fast < slow


class TestLogLikelihood:
    def test_hand_computed_value(self):
        # One event at t=1 with mu=2, omega=1, horizon 5 for one pair.
        mu, omega, t, d = 2.0, 1.0, 1.0, 5.0
        expected = (np.log(mu) - omega * t) - mu * (1 - np.exp(-omega * d)) / omega
        got = log_likelihood(
            np.array([mu]),
            np.array([omega]),
            np.array([t]),
            np.array([mu]),
            np.array([omega]),
            np.array([d]),
        )
        assert got == pytest.approx(expected)

    def test_maximized_near_true_mu(self):
        # With fixed omega, the likelihood of simulated data should peak
        # near the true mu.
        rng = np.random.default_rng(0)
        true_mu, omega, d = 2.0, 1.0, 5.0
        from repro.pointprocess.simulate import simulate_event_times

        all_times = [simulate_event_times(true_mu, omega, d, rng) for _ in range(300)]
        def total_ll(mu):
            ll = 0.0
            for times in all_times:
                ll += log_likelihood(
                    np.full(times.size, mu),
                    np.full(times.size, omega),
                    times,
                    np.array([mu]),
                    np.array([omega]),
                    np.array([d]),
                )
            return ll

        best = max([0.5, 1.0, 1.5, 2.0, 3.0, 5.0], key=total_ll)
        assert best in (1.5, 2.0, 3.0)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            log_likelihood(
                np.ones(2), np.ones(2), np.ones(3), np.ones(1), np.ones(1), np.ones(1)
            )

    def test_no_events_pure_compensator(self):
        got = log_likelihood(
            np.empty(0),
            np.empty(0),
            np.empty(0),
            np.array([1.0]),
            np.array([1.0]),
            np.array([2.0]),
        )
        assert got == pytest.approx(-(1 - np.exp(-2.0)))
