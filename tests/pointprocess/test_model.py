"""Tests for repro.pointprocess.model."""

import numpy as np
import pytest

from repro.ml.optimizers import Adam
from repro.pointprocess.model import ExcitationPointProcess
from repro.pointprocess.simulate import simulate_first_event_time


def make_training_data(n_pairs=600, horizon=24.0, seed=0):
    """Pairs whose true excitation depends on a single feature.

    Feature x in [0, 1]; true mu = 0.05 + 0.6 x, true omega = 0.4.
    Events simulated exactly from the process.
    """
    rng = np.random.default_rng(seed)
    x = rng.uniform(0.0, 1.0, size=(n_pairs, 1))
    true_mu = 0.05 + 0.6 * x[:, 0]
    times = np.zeros(n_pairs)
    is_event = np.zeros(n_pairs)
    for i in range(n_pairs):
        first = simulate_first_event_time(true_mu[i], 0.4, horizon, rng)
        if first is not None:
            times[i] = first
            is_event[i] = 1.0
    horizons = np.full(n_pairs, horizon)
    return x, times, horizons, is_event, true_mu


class TestGradients:
    def test_nll_gradients_match_numeric(self):
        """Finite-difference check of dNLL/dmu and dNLL/domega."""
        model = ExcitationPointProcess(
            2, excitation_hidden=(4,), decay="network", decay_hidden=(4,), seed=0
        )
        rng = np.random.default_rng(1)
        x = rng.normal(size=(6, 2))
        times = rng.uniform(0.1, 2.0, size=6)
        horizons = np.full(6, 5.0)
        is_event = np.array([1.0, 1.0, 0.0, 1.0, 0.0, 0.0])
        nll, grad_mu, grad_omega = model._batch_nll_and_grads(
            x, times, horizons, is_event
        )
        mu, omega = model.predict_parameters(x)

        def nll_at(mu_v, omega_v):
            exp_od = np.exp(-omega_v * horizons)
            comp = mu_v * (1 - exp_od) / omega_v
            point = is_event * (np.log(mu_v) - omega_v * times)
            return np.sum(comp - point) / len(mu_v)

        eps = 1e-6
        for i in range(6):
            mu_up, mu_dn = mu.copy(), mu.copy()
            mu_up[i] += eps
            mu_dn[i] -= eps
            num = (nll_at(mu_up, omega) - nll_at(mu_dn, omega)) / (2 * eps)
            assert grad_mu[i] == pytest.approx(num, rel=1e-4, abs=1e-8)
            om_up, om_dn = omega.copy(), omega.copy()
            om_up[i] += eps
            om_dn[i] -= eps
            num = (nll_at(mu, om_up) - nll_at(mu, om_dn)) / (2 * eps)
            assert grad_omega[i] == pytest.approx(num, rel=1e-4, abs=1e-8)


class TestTraining:
    def test_nll_decreases(self):
        x, times, horizons, is_event, _ = make_training_data()
        model = ExcitationPointProcess(
            1, excitation_hidden=(16,), omega=0.4, seed=0
        )
        result = model.fit(
            x, times, horizons, is_event, epochs=60, seed=0,
            optimizer=Adam(learning_rate=0.01),
        )
        assert result.nll_history[-1] < result.nll_history[0]
        assert result.final_nll == result.nll_history[-1]

    def test_recovers_excitation_ordering(self):
        x, times, horizons, is_event, true_mu = make_training_data()
        model = ExcitationPointProcess(
            1, excitation_hidden=(16,), omega=0.4, seed=1
        )
        model.fit(
            x, times, horizons, is_event, epochs=150, seed=1,
            optimizer=Adam(learning_rate=0.01),
        )
        mu_hat, _ = model.predict_parameters(x)
        corr = np.corrcoef(mu_hat, true_mu)[0, 1]
        assert corr > 0.8

    def test_recovers_implied_mu_scale(self):
        """The MLE under the paper's likelihood matches its implied target.

        Observation keeps only the *first* answer per pair while the
        paper's likelihood charges the compensator over the full horizon,
        so the stationary point is mu* = P(event) * omega / (1 - e^{-omega d}),
        not the raw generative mu.  The trained network should land there.
        """
        omega, horizon = 0.4, 24.0
        x, times, horizons, is_event, true_mu = make_training_data(n_pairs=1500)
        model = ExcitationPointProcess(
            1, excitation_hidden=(16,), omega=omega, seed=2
        )
        model.fit(
            x, times, horizons, is_event, epochs=150, seed=2,
            optimizer=Adam(learning_rate=0.01),
        )
        mu_hat, _ = model.predict_parameters(x)
        exposure = (1 - np.exp(-omega * horizon)) / omega
        implied_mu = -np.expm1(-true_mu * exposure) / exposure
        assert np.mean(mu_hat) == pytest.approx(np.mean(implied_mu), rel=0.15)

    def test_decay_network_trains(self):
        x, times, horizons, is_event, _ = make_training_data(n_pairs=300)
        model = ExcitationPointProcess(
            1, excitation_hidden=(8,), decay="network", decay_hidden=(8,), seed=3
        )
        result = model.fit(x, times, horizons, is_event, epochs=40, seed=3)
        assert result.nll_history[-1] < result.nll_history[0]
        _, omega = model.predict_parameters(x)
        assert np.all(omega > 0)

    def test_predict_response_time_positive(self):
        x, times, horizons, is_event, _ = make_training_data(n_pairs=200)
        model = ExcitationPointProcess(1, excitation_hidden=(8,), omega=0.4, seed=4)
        model.fit(x, times, horizons, is_event, epochs=20, seed=4)
        preds = model.predict_response_time(x, 24.0)
        assert preds.shape == (200,)
        assert np.all(preds > 0)

    def test_nll_evaluation_no_side_effects(self):
        x, times, horizons, is_event, _ = make_training_data(n_pairs=100)
        model = ExcitationPointProcess(1, excitation_hidden=(4,), seed=5)
        before = [p.copy() for p in model.excitation_net.parameters()]
        model.nll(x, times, horizons, is_event)
        after = model.excitation_net.parameters()
        for b, a in zip(before, after):
            np.testing.assert_array_equal(b, a)


class TestValidation:
    def test_invalid_constructor(self):
        with pytest.raises(ValueError):
            ExcitationPointProcess(0)
        with pytest.raises(ValueError):
            ExcitationPointProcess(1, decay="linear")
        with pytest.raises(ValueError):
            ExcitationPointProcess(1, omega=0.0)

    def test_fit_shape_mismatch(self):
        model = ExcitationPointProcess(1)
        with pytest.raises(ValueError):
            model.fit(np.zeros((3, 1)), np.zeros(2), np.ones(3), np.zeros(3))

    def test_fit_rejects_nonpositive_horizons(self):
        model = ExcitationPointProcess(1)
        with pytest.raises(ValueError):
            model.fit(np.zeros((2, 1)), np.zeros(2), np.zeros(2), np.zeros(2))

    def test_fit_rejects_nonbinary_events(self):
        model = ExcitationPointProcess(1)
        with pytest.raises(ValueError):
            model.fit(np.zeros((2, 1)), np.zeros(2), np.ones(2), np.array([0.5, 0.5]))
