"""Tests for repro.pointprocess.simulate."""

import numpy as np
import pytest

from repro.pointprocess.exponential import (
    conditional_expected_time,
    integrated_rate,
)
from repro.pointprocess.simulate import (
    simulate_event_times,
    simulate_first_event_time,
)


class TestSimulation:
    def test_times_within_horizon_and_sorted(self):
        rng = np.random.default_rng(0)
        times = simulate_event_times(50.0, 0.5, 4.0, rng)
        assert np.all(times >= 0)
        assert np.all(times <= 4.0)
        assert np.all(np.diff(times) >= 0)

    def test_mean_count_matches_compensator(self):
        rng = np.random.default_rng(1)
        mu, omega, d = 3.0, 0.7, 5.0
        counts = [
            simulate_event_times(mu, omega, d, rng).size for _ in range(4000)
        ]
        expected = integrated_rate(mu, omega, d)
        assert np.mean(counts) == pytest.approx(expected, rel=0.05)

    def test_mean_event_time_matches_conditional_expectation(self):
        rng = np.random.default_rng(2)
        mu, omega, d = 5.0, 0.8, 6.0
        all_times = np.concatenate(
            [simulate_event_times(mu, omega, d, rng) for _ in range(3000)]
        )
        expected = conditional_expected_time(mu, omega, d)
        assert all_times.mean() == pytest.approx(expected, rel=0.05)

    def test_zero_rate_limit(self):
        rng = np.random.default_rng(3)
        times = simulate_event_times(1e-6, 1.0, 1.0, rng)
        assert times.size == 0

    def test_first_event_time(self):
        rng = np.random.default_rng(4)
        first = simulate_first_event_time(100.0, 0.1, 10.0, rng)
        assert first is not None
        assert 0 <= first <= 10.0

    def test_first_event_none_when_no_events(self):
        rng = np.random.default_rng(5)
        assert simulate_first_event_time(1e-9, 1.0, 1.0, rng) is None
