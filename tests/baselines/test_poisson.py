"""Tests for repro.baselines.poisson."""

import numpy as np
import pytest

from repro.baselines.poisson import PoissonRegression


def poisson_data(n=500, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 2))
    beta = np.array([0.8, -0.5])
    mu = np.exp(x @ beta + 0.3)
    y = rng.poisson(mu)
    return x, y, beta


class TestFit:
    def test_recovers_coefficients(self):
        x, y, beta = poisson_data()
        model = PoissonRegression().fit(x, y)
        np.testing.assert_allclose(model.coef_, beta, atol=0.15)
        assert model.intercept_ == pytest.approx(0.3, abs=0.15)

    def test_predictions_positive(self):
        x, y, _ = poisson_data(seed=1)
        preds = PoissonRegression().fit(x, y).predict_mean(x)
        assert np.all(preds > 0)

    def test_intercept_only_matches_mean(self):
        rng = np.random.default_rng(2)
        y = rng.poisson(3.0, size=400)
        x = np.zeros((400, 1))
        model = PoissonRegression().fit(x, y)
        assert model.predict_mean(np.zeros((1, 1)))[0] == pytest.approx(
            y.mean(), rel=1e-3
        )

    def test_handles_all_zero_targets(self):
        x = np.random.default_rng(3).normal(size=(50, 2))
        y = np.zeros(50)
        model = PoissonRegression().fit(x, y)
        assert np.all(np.isfinite(model.predict_mean(x)))

    def test_large_targets_no_overflow(self):
        rng = np.random.default_rng(4)
        x = rng.normal(size=(100, 1)) * 5
        y = rng.poisson(np.exp(np.clip(x[:, 0], -5, 5)))
        model = PoissonRegression().fit(x, y)
        assert np.all(np.isfinite(model.predict_mean(x * 100)))

    def test_ridge_shrinks(self):
        x, y, _ = poisson_data(seed=5)
        weak = PoissonRegression(l2=1e-6).fit(x, y)
        strong = PoissonRegression(l2=1000.0).fit(x, y)
        assert np.linalg.norm(strong.coef_) < np.linalg.norm(weak.coef_)


class TestValidation:
    def test_negative_targets_rejected(self):
        with pytest.raises(ValueError):
            PoissonRegression().fit(np.zeros((2, 1)), np.array([-1.0, 1.0]))

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            PoissonRegression().predict_mean(np.zeros((1, 1)))

    def test_dim_mismatch(self):
        with pytest.raises(ValueError):
            PoissonRegression().fit(np.zeros((3, 1)), np.zeros(2))

    def test_1d_x_rejected(self):
        with pytest.raises(ValueError):
            PoissonRegression().fit(np.zeros(3), np.zeros(3))
