"""Tests for repro.baselines.mf."""

import numpy as np
import pytest

from repro.baselines.mf import MatrixFactorization
from repro.ml.metrics import rmse


def low_rank_data(n_rows=40, n_cols=30, k=3, noise=0.1, seed=0):
    rng = np.random.default_rng(seed)
    p = rng.normal(0, 1, size=(n_rows, k))
    q = rng.normal(0, 1, size=(n_cols, k))
    bu = rng.normal(0, 0.5, size=n_rows)
    bq = rng.normal(0, 0.5, size=n_cols)
    full = 1.0 + bu[:, None] + bq[None, :] + p @ q.T
    full += rng.normal(0, noise, size=full.shape)
    rows, cols = np.meshgrid(np.arange(n_rows), np.arange(n_cols), indexing="ij")
    return rows.ravel(), cols.ravel(), full.ravel()


class TestFit:
    def test_reconstruction_on_heldout(self):
        rows, cols, values = low_rank_data()
        rng = np.random.default_rng(1)
        mask = rng.uniform(size=len(values)) < 0.8
        model = MatrixFactorization(40, 30, n_factors=5, n_iter=800, seed=0)
        model.fit(rows[mask], cols[mask], values[mask])
        preds = model.predict(rows[~mask], cols[~mask])
        baseline = rmse(values[~mask], np.full((~mask).sum(), values[mask].mean()))
        assert rmse(values[~mask], preds) < 0.6 * baseline

    def test_loss_decreases(self):
        rows, cols, values = low_rank_data(seed=2)
        model = MatrixFactorization(40, 30, n_iter=100, seed=2)
        model.fit(rows, cols, values)
        assert model.loss_history_[-1] < model.loss_history_[0]

    def test_global_mean_learned(self):
        rows, cols, values = low_rank_data(seed=3)
        model = MatrixFactorization(40, 30, n_iter=10, seed=3)
        model.fit(rows, cols, values)
        assert model.global_mean_ == pytest.approx(values.mean())

    def test_unobserved_pair_falls_back_to_biases(self):
        # Train on a single column; another column should predict near the mean.
        rows = np.arange(10)
        cols = np.zeros(10, dtype=int)
        values = np.linspace(-1, 1, 10)
        model = MatrixFactorization(10, 5, n_iter=200, seed=4)
        model.fit(rows, cols, values)
        pred = model.predict([0], [3])
        assert abs(pred[0] - values.mean()) < 1.0

    def test_deterministic(self):
        rows, cols, values = low_rank_data(seed=5)
        a = MatrixFactorization(40, 30, n_iter=50, seed=9).fit(rows, cols, values)
        b = MatrixFactorization(40, 30, n_iter=50, seed=9).fit(rows, cols, values)
        np.testing.assert_array_equal(
            a.predict(rows[:5], cols[:5]), b.predict(rows[:5], cols[:5])
        )


class TestValidation:
    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            MatrixFactorization(3, 3).predict([0], [0])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            MatrixFactorization(3, 3).fit([0, 1], [0], [1.0])

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            MatrixFactorization(3, 3).fit([0], [9], [1.0])

    def test_empty(self):
        with pytest.raises(ValueError):
            MatrixFactorization(3, 3).fit([], [], [])
