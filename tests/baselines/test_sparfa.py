"""Tests for repro.baselines.sparfa."""

import numpy as np
import pytest

from repro.baselines.sparfa import Sparfa
from repro.ml.metrics import auc_score


def low_rank_binary_data(n_rows=40, n_cols=30, k=2, seed=0):
    rng = np.random.default_rng(seed)
    c = rng.normal(0, 1.5, size=(n_rows, k))
    w = np.abs(rng.normal(0, 1.5, size=(n_cols, k)))
    b = rng.normal(0, 0.3, size=n_cols)
    logits = c @ w.T + b
    p = 1 / (1 + np.exp(-logits))
    y = (rng.uniform(size=p.shape) < p).astype(float)
    rows, cols = np.meshgrid(np.arange(n_rows), np.arange(n_cols), indexing="ij")
    return rows.ravel(), cols.ravel(), y.ravel()


class TestFit:
    def test_recovers_structure(self):
        rows, cols, values = low_rank_binary_data()
        # Hold out 20% of entries.
        rng = np.random.default_rng(1)
        mask = rng.uniform(size=len(values)) < 0.8
        model = Sparfa(40, 30, n_factors=3, seed=0, n_iter=400)
        model.fit(rows[mask], cols[mask], values[mask])
        probs = model.predict_proba(rows[~mask], cols[~mask])
        assert auc_score(values[~mask], probs) > 0.7

    def test_loadings_nonnegative(self):
        rows, cols, values = low_rank_binary_data(seed=2)
        model = Sparfa(40, 30, seed=2, n_iter=100).fit(rows, cols, values)
        assert np.all(model.loadings_ >= 0)

    def test_loss_decreases(self):
        rows, cols, values = low_rank_binary_data(seed=3)
        model = Sparfa(40, 30, seed=3, n_iter=100).fit(rows, cols, values)
        assert model.loss_history_[-1] < model.loss_history_[0]

    def test_l1_induces_sparsity(self):
        rows, cols, values = low_rank_binary_data(seed=4)
        weak = Sparfa(40, 30, l1_loading=1e-5, seed=4, n_iter=200).fit(
            rows, cols, values
        )
        strong = Sparfa(40, 30, l1_loading=0.5, seed=4, n_iter=200).fit(
            rows, cols, values
        )
        assert np.abs(strong.loadings_).sum() < np.abs(weak.loadings_).sum()

    def test_probabilities_valid(self):
        rows, cols, values = low_rank_binary_data(seed=5)
        model = Sparfa(40, 30, seed=5, n_iter=50).fit(rows, cols, values)
        p = model.predict_proba(rows, cols)
        assert np.all((p >= 0) & (p <= 1))


class TestValidation:
    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            Sparfa(3, 3).predict_proba([0], [0])

    def test_index_out_of_range(self):
        with pytest.raises(ValueError):
            Sparfa(3, 3).fit([5], [0], [1.0])

    def test_non_binary_values(self):
        with pytest.raises(ValueError):
            Sparfa(3, 3).fit([0], [0], [0.5])

    def test_empty_observations(self):
        with pytest.raises(ValueError):
            Sparfa(3, 3).fit([], [], [])

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            Sparfa(0, 3)
