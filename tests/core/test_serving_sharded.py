"""Sharded zero-copy serving: bit-identity, caching, and teardown.

The serving-level contract on top of the router-level sharding suite:
a :class:`ServingCore` configured with ``serving_shards > 1`` — inline
or across persistent worker processes, over shared memory or pickled
state — answers every query of a load run bit-identically to the
single-process core, across refits (each refit republishes state and
atomically swaps the workers' views).  The epoch-keyed prediction
cache changes latency, never answers; and every run releases its
workers and shared-memory blocks.
"""

import multiprocessing
from dataclasses import replace

import numpy as np
import pytest

from repro import perf
from repro.core.pipeline import PredictorConfig
from repro.core.resilience import DegradationReport, ResilienceConfig
from repro.core.retrieval import RetrievalConfig
from repro.core.online import OnlineConfig
from repro.core.serving import (
    BatchPolicy,
    PredictionCache,
    RecommendationService,
    ServiceConfig,
    ServingCore,
    run_load,
)
from repro.core.serving.service import OnlineReport
from repro.core.shm import active_shm_names
from repro.forum.generator import ForumConfig, generate_forum
from repro.forum.models import Post, Thread
from repro.forum.traffic import TrafficConfig, generate_traffic

FAST_PREDICTOR = PredictorConfig(
    n_topics=2, vote_epochs=30, timing_epochs=30, betweenness_sample_size=50
)
FAST_ONLINE = OnlineConfig(
    refit_interval_hours=96.0, window_hours=360.0, warmup_hours=96.0
)
TWO_STAGE = RetrievalConfig(
    topic_top_k=8, recency_top_k=16, pool_size=24, use_mf=False
)


@pytest.fixture(scope="module")
def stream_dataset():
    forum = generate_forum(
        ForumConfig(n_users=120, n_questions=140, activity_tail=1.4), seed=3
    )
    clean, _ = forum.dataset.preprocess()
    return clean


@pytest.fixture(scope="module")
def traffic(stream_dataset):
    return generate_traffic(
        stream_dataset,
        TrafficConfig(n_askers=30, n_events=8, duration_s=10.0, seed=11),
    )


def make_core(dataset, **overrides) -> ServingCore:
    """A freshly warmed core; identical warm path at any shard count."""
    core = ServingCore(FAST_PREDICTOR, replace(FAST_ONLINE, **overrides))
    RecommendationService(core).warm(dataset)
    return core


def run_traffic(core, requests, *, close_core=False):
    service = RecommendationService(
        core,
        ServiceConfig(
            batch=BatchPolicy(max_batch=8, max_wait_s=0.05), cost=None
        ),
    )
    return service, run_load(
        service, requests, settle_s=1.0, close_core=close_core
    )


def assert_responses_identical(expected, got):
    assert len(expected) == len(got)
    for a, b in zip(expected, got):
        assert a.status == b.status
        assert a.degraded == b.degraded
        assert getattr(a, "ranked", None) == getattr(b, "ranked", None)
        assert getattr(a, "routed", None) == getattr(b, "routed", None)
        assert getattr(a, "score", None) == getattr(b, "score", None)


def make_question(tid, author, ts, body="<p>common0 common1</p>"):
    return Thread(
        Post(
            post_id=900000 + tid,
            thread_id=tid,
            author=author,
            timestamp=ts,
            votes=0,
            body=body,
            is_question=True,
        )
    )


class TestShardedLoadEquivalence:
    """Same traffic, same answers, at every shard count and transport."""

    @pytest.fixture(scope="class")
    def baseline(self, stream_dataset, traffic):
        core = make_core(stream_dataset)
        _, report = run_traffic(core, traffic)
        return report.responses

    @pytest.mark.parametrize(
        "n_shards,mode,transport",
        [
            (2, "inline", "shm"),
            (4, "inline", "shm"),
            (8, "inline", "shm"),
            (2, "process", "shm"),
            (2, "process", "pickle"),
        ],
    )
    def test_matches_single_process(
        self, stream_dataset, traffic, baseline, n_shards, mode, transport
    ):
        before_children = {p.pid for p in multiprocessing.active_children()}
        core = make_core(
            stream_dataset,
            serving_shards=n_shards,
            shard_mode=mode,
            shard_transport=transport,
        )
        try:
            assert core._sharded is not None
            assert core._sharded.n_shards == n_shards
            # Warm replay crossed >= 2 refit grid points, so the shard
            # fan-out has already been rebound (epoch handshake) at
            # least once before serving starts.
            assert core.refit_epoch >= 2
            if mode == "process":
                assert core._sharded.epoch == core.refit_epoch - 1
            _, report = run_traffic(core, traffic)
            assert_responses_identical(baseline, report.responses)
        finally:
            core.close()
        assert active_shm_names() == []
        leaked = {
            p.pid for p in multiprocessing.active_children()
        } - before_children
        assert leaked == set()

    def test_two_stage_retrieval_matches(self, stream_dataset, traffic):
        dense_pool = make_core(stream_dataset, retrieval=TWO_STAGE)
        _, expected = run_traffic(dense_pool, traffic)
        for n_shards in (2, 4):
            core = make_core(
                stream_dataset,
                retrieval=TWO_STAGE,
                serving_shards=n_shards,
            )
            try:
                _, got = run_traffic(core, traffic)
                assert_responses_identical(
                    expected.responses, got.responses
                )
            finally:
                core.close()

    def test_rebind_during_load_stays_identical(self, stream_dataset):
        """A refit mid-run republishes state; answers never fork."""
        requests = generate_traffic(
            stream_dataset,
            TrafficConfig(
                n_askers=16,
                n_events=30,
                duration_s=10.0,
                hours_per_second=12.0,  # crosses a refit grid point
                seed=13,
            ),
        )
        base = make_core(stream_dataset)
        _, expected = run_traffic(base, requests)
        assert base.refit_epoch >= 3  # warm refits + at least one in-run
        core = make_core(
            stream_dataset, serving_shards=2, shard_mode="process"
        )
        try:
            epoch_before = core._sharded.epoch
            _, got = run_traffic(core, requests)
            assert core._sharded.epoch > epoch_before  # really rebound
            assert_responses_identical(expected.responses, got.responses)
        finally:
            core.close()
        assert active_shm_names() == []


class TestPredictionCacheServing:
    """The cache is a latency device: hits replay stored predictions."""

    @pytest.fixture(scope="class")
    def repeat_traffic(self, stream_dataset):
        requests = generate_traffic(
            stream_dataset,
            TrafficConfig(
                n_askers=40, n_events=0, duration_s=10.0,
                repeat_fraction=0.6, seed=17,
            ),
        )
        threads = {
            id(r.thread) for r in requests if r.kind == "query"
        }
        assert len(threads) < 40  # schedule really contains repeats
        return requests

    def test_cached_equals_uncached(self, stream_dataset, repeat_traffic):
        cold = make_core(stream_dataset)
        _, expected = run_traffic(cold, repeat_traffic)
        warm = make_core(stream_dataset, feature_cache_pairs=100_000)
        service, got = run_traffic(warm, repeat_traffic)
        assert_responses_identical(expected.responses, got.responses)
        stats = service.metrics()["cache"]
        assert stats["hits"] > 0
        assert stats["misses"] > 0
        assert stats["size"] > 0

    def test_cache_works_with_shards(self, stream_dataset, repeat_traffic):
        plain = make_core(stream_dataset)
        _, expected = run_traffic(plain, repeat_traffic)
        core = make_core(
            stream_dataset, serving_shards=2, feature_cache_pairs=100_000
        )
        try:
            service, got = run_traffic(core, repeat_traffic)
            assert_responses_identical(expected.responses, got.responses)
            assert service.metrics()["cache"]["hits"] > 0
        finally:
            core.close()

    def test_refit_clears_cache(self, stream_dataset):
        core = make_core(stream_dataset, feature_cache_pairs=100_000)
        report = OnlineReport()
        t0 = core.next_refit - 1.0
        core.process_query_batch(
            [make_question(810000 + i, 0, t0) for i in range(3)],
            report,
            DegradationReport(),
            ResilienceConfig(),
        )
        size_before = len(core._cache)
        assert size_before > 0
        epoch = core.refit_epoch
        core.process_query_batch(
            [make_question(820000, 1, core.next_refit + 0.5)],
            report,
            DegradationReport(),
            ResilienceConfig(),
        )
        if core.refit_epoch > epoch:  # refit fired and rebound
            # The bind cleared the cache; only the single post-refit
            # query's rows can be resident now.
            assert 0 < len(core._cache) < size_before


class TestPredictionCacheUnit:
    def test_lru_eviction(self):
        cache = PredictionCache(2)
        cache.put(1, 10, 0.1, 1.0, 5.0)
        cache.put(2, 10, 0.2, 2.0, 6.0)
        assert cache.get(1, 10) == (0.1, 1.0, 5.0)  # 1 becomes MRU
        cache.put(3, 10, 0.3, 3.0, 7.0)  # evicts 2, the LRU
        assert cache.get(2, 10) is None
        assert cache.get(1, 10) is not None
        assert cache.stats()["evictions"] == 1

    def test_disabled_cache_stores_nothing(self):
        cache = PredictionCache(0)
        cache.put(1, 10, 0.1, 1.0, 5.0)
        assert cache.get(1, 10) is None
        assert len(cache) == 0

    def test_clear_keeps_counters(self):
        cache = PredictionCache(8)
        cache.put(1, 10, 0.1, 1.0, 5.0)
        cache.get(1, 10)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats()["hits"] == 1


class TestScatterBatching:
    """One shard scatter per refit segment, not per query."""

    def test_one_scatter_per_segment(self, stream_dataset):
        core = make_core(stream_dataset, serving_shards=2)
        try:
            report = OnlineReport()
            t0 = core.next_refit - 1.0
            t1 = core.next_refit + 0.5
            threads = [
                make_question(700000 + i, 0, t0) for i in range(4)
            ] + [make_question(700100 + i, 1, t1) for i in range(3)]
            registry = perf.get_registry()
            before = registry.counter("serving.shard_scatters")
            responses = core.process_query_batch(
                threads, report, DegradationReport(), ResilienceConfig()
            )
            after = registry.counter("serving.shard_scatters")
            assert len(responses) == len(threads)
            # The refit grid point splits the batch into exactly two
            # segments; each flush costs one scatter however many
            # queries it coalesced.
            assert after - before == 2
        finally:
            core.close()

    def test_single_segment_single_scatter(self, stream_dataset):
        core = make_core(stream_dataset, serving_shards=2)
        try:
            report = OnlineReport()
            t0 = core.next_refit - 1.0
            threads = [
                make_question(710000 + i, 0, t0) for i in range(5)
            ]
            registry = perf.get_registry()
            before = registry.counter("serving.shard_scatters")
            core.process_query_batch(
                threads, report, DegradationReport(), ResilienceConfig()
            )
            assert (
                registry.counter("serving.shard_scatters") - before == 1
            )
        finally:
            core.close()


class TestShardedMetricsAndTeardown:
    def test_metrics_expose_cache_and_sharding(
        self, stream_dataset, traffic
    ):
        core = make_core(
            stream_dataset, serving_shards=2, feature_cache_pairs=1000
        )
        try:
            service, _ = run_traffic(core, traffic)
            metrics = service.metrics()
            assert set(metrics["cache"]) == {
                "size", "max_pairs", "hits", "misses", "evictions"
            }
            sharding = metrics["sharding"]
            assert sharding["n_shards"] == 2
            assert sharding["mode"] == "inline"
            assert sharding["transport"] == "shm"
            assert sharding["epoch"] == core._sharded.epoch
            assert sharding["scatters"] > 0
            assert "shm" in sharding
            assert sharding["scatter_latency"]  # per-shard histograms
            for entry in sharding["scatter_latency"].values():
                assert {"count", "p50_ms", "p99_ms", "mean_ms"} <= set(
                    entry
                )
            assert "batch_wait" in metrics
            assert metrics["engine"]["refit_epoch"] == core.refit_epoch
        finally:
            core.close()

    def test_unsharded_metrics_have_no_sharding_block(
        self, stream_dataset, traffic
    ):
        core = make_core(stream_dataset)
        service, _ = run_traffic(core, traffic)
        metrics = service.metrics()
        assert "sharding" not in metrics
        assert metrics["cache"]["max_pairs"] == 0

    def test_run_load_close_core_releases_everything(self, stream_dataset):
        before_children = {p.pid for p in multiprocessing.active_children()}
        requests = generate_traffic(
            stream_dataset,
            TrafficConfig(n_askers=6, n_events=0, duration_s=2.0, seed=19),
        )
        core = make_core(
            stream_dataset, serving_shards=2, shard_mode="process"
        )
        run_traffic(core, requests, close_core=True)
        assert core._sharded is None
        assert active_shm_names() == []
        leaked = {
            p.pid for p in multiprocessing.active_children()
        } - before_children
        assert leaked == set()
        core.close()  # idempotent

    def test_shm_bytes_reported_while_live(self, stream_dataset):
        core = make_core(
            stream_dataset, serving_shards=2, shard_mode="process"
        )
        try:
            assert core._sharded.shm_bytes > 0
            assert len(active_shm_names()) > 0
        finally:
            core.close()
        assert core._sharded is None or core._sharded.shm_bytes == 0
        assert active_shm_names() == []
