"""Parallel CV dispatch: n_jobs resolution and serial/parallel identity."""

import numpy as np
import pytest

from repro.core.evaluation import (
    _cv_task_metrics,
    _parallel_map,
    _resolve_n_jobs,
    run_table1,
)


def _square(v):
    return v * v


class TestResolveNJobs:
    def test_default_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_N_JOBS", raising=False)
        assert _resolve_n_jobs(None) == 1

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_N_JOBS", "3")
        assert _resolve_n_jobs(None) == 3

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_N_JOBS", "3")
        assert _resolve_n_jobs(2) == 2

    def test_garbage_env_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_N_JOBS", "lots")
        assert _resolve_n_jobs(None) == 1

    def test_floor_at_one(self):
        assert _resolve_n_jobs(0) == 1
        assert _resolve_n_jobs(-4) == 1


class TestParallelMap:
    def test_serial_matches_comprehension(self):
        tasks = list(range(7))
        assert _parallel_map(_square, tasks, n_jobs=1) == [t * t for t in tasks]

    def test_parallel_preserves_order_and_values(self):
        tasks = list(range(7))
        assert _parallel_map(_square, tasks, n_jobs=2) == [t * t for t in tasks]

    def test_single_task_stays_serial(self):
        assert _parallel_map(_square, [5], n_jobs=4) == [25]


@pytest.mark.slow
class TestDeterminism:
    def test_table1_parallel_equals_serial(
        self, dataset, predictor_config, extractor, pairs
    ):
        """The fold seeds all derive from config.seed, so worker
        processes reproduce the serial numbers exactly."""
        kwargs = dict(
            config=predictor_config,
            n_folds=2,
            n_repeats=1,
            extractor=extractor,
            pairs=pairs,
        )
        serial = run_table1(dataset, **kwargs, n_jobs=1)
        parallel = run_table1(dataset, **kwargs, n_jobs=2)
        for task in ("answer", "votes", "timing"):
            s, p = getattr(serial, task), getattr(parallel, task)
            assert s.model_values == p.model_values
            assert s.baseline_values == p.baseline_values

    def test_cv_metrics_parallel_equals_serial(self, pairs, predictor_config):
        serial = _cv_task_metrics(
            pairs, predictor_config, 2, 1, tasks=("answer",), n_jobs=1
        )
        parallel = _cv_task_metrics(
            pairs, predictor_config, 2, 1, tasks=("answer",), n_jobs=2
        )
        assert serial == parallel

    def test_env_parallel_run(self, dataset, predictor_config, extractor, pairs, monkeypatch):
        """REPRO_N_JOBS drives the dispatch when n_jobs is omitted."""
        monkeypatch.setenv("REPRO_N_JOBS", "2")
        result = run_table1(
            dataset,
            config=predictor_config,
            n_folds=2,
            n_repeats=1,
            extractor=extractor,
            pairs=pairs,
        )
        assert np.isfinite(result.answer.model.mean)
