"""Tests for repro.core.features — the 20-feature extractor."""

import numpy as np
import pytest


def pick_answered_pair(dataset):
    """An (answerer, thread) pair where the answerer has other answers too."""
    counts = dataset.answers_per_user()
    heavy = max(counts, key=counts.get)
    for t in dataset:
        if heavy in t.answerers:
            return heavy, t
    raise AssertionError("no pair found")


class TestVectorShape:
    def test_dimension(self, extractor, dataset):
        user, thread = pick_answered_pair(dataset)
        x = extractor.features(user, thread)
        assert x.shape == (extractor.spec.n_features,)
        assert np.all(np.isfinite(x))

    def test_matrix(self, extractor, dataset):
        t = dataset.threads[0]
        pairs = [(u, t) for u in list(dataset.answerers)[:5]]
        m = extractor.feature_matrix(pairs)
        assert m.shape == (5, extractor.spec.n_features)

    def test_empty_matrix(self, extractor):
        m = extractor.feature_matrix([])
        assert m.shape == (0, extractor.spec.n_features)


class TestUserFeatures:
    def test_answers_exclude_target_thread(self, extractor, dataset):
        """a_u must not count the user's answer to the target thread."""
        user, thread = pick_answered_pair(dataset)
        total = dataset.answers_per_user()[user]
        x = extractor.features(user, thread)
        col = extractor.spec.columns_of("answers_provided")[0]
        assert x[col] == total - 1

    def test_answers_for_nonparticipant(self, extractor, dataset):
        user, thread = pick_answered_pair(dataset)
        other = next(t for t in dataset if user not in t.answerers)
        x = extractor.features(user, other)
        col = extractor.spec.columns_of("answers_provided")[0]
        assert x[col] == dataset.answers_per_user()[user]

    def test_unknown_user_defaults(self, extractor, dataset):
        """A user absent from the window gets zero activity, uniform topics."""
        thread = dataset.threads[0]
        x = extractor.features(999_999, thread)
        spec = extractor.spec
        assert x[spec.columns_of("answers_provided")[0]] == 0.0
        assert x[spec.columns_of("net_answer_votes")[0]] == 0.0
        d_u = x[spec.columns_of("topics_answered")]
        np.testing.assert_allclose(d_u, 1.0 / extractor.topics.n_topics)
        # Centralities default to zero for off-graph users.
        assert x[spec.columns_of("qa_closeness")[0]] == 0.0

    def test_net_votes_sum(self, extractor, dataset):
        user, thread = pick_answered_pair(dataset)
        expected = sum(
            t.answer_by(user).votes
            for t in dataset
            if user in t.answerers and t.thread_id != thread.thread_id
        )
        x = extractor.features(user, thread)
        col = extractor.spec.columns_of("net_answer_votes")[0]
        assert x[col] == pytest.approx(expected)

    def test_median_response_time(self, extractor, dataset):
        user, thread = pick_answered_pair(dataset)
        times = [
            t.response_time(user)
            for t in dataset
            if user in t.answerers and t.thread_id != thread.thread_id
        ]
        x = extractor.features(user, thread)
        col = extractor.spec.columns_of("median_response_time")[0]
        assert x[col] == pytest.approx(np.median(times))

    def test_answer_ratio_smoothed(self, extractor, dataset):
        user, thread = pick_answered_pair(dataset)
        asked = sum(1 for t in dataset if t.asker == user)
        answered = dataset.answers_per_user()[user] - 1  # excl. target
        x = extractor.features(user, thread)
        col = extractor.spec.columns_of("answer_ratio")[0]
        assert x[col] == pytest.approx(answered / (1 + asked))


class TestQuestionFeatures:
    def test_question_votes(self, extractor, dataset):
        thread = dataset.threads[0]
        x = extractor.features(999_999, thread)
        col = extractor.spec.columns_of("net_question_votes")[0]
        assert x[col] == thread.question.votes

    def test_lengths_positive(self, extractor, dataset):
        thread = dataset.threads[0]
        x = extractor.features(999_999, thread)
        spec = extractor.spec
        assert x[spec.columns_of("question_word_length")[0]] > 0
        assert x[spec.columns_of("question_code_length")[0]] > 0

    def test_topics_asked_simplex(self, extractor, dataset):
        thread = dataset.threads[0]
        x = extractor.features(999_999, thread)
        d_q = x[extractor.spec.columns_of("topics_asked")]
        assert d_q.sum() == pytest.approx(1.0)

    def test_out_of_window_question(self, extractor, dataset, forum):
        """Features still computable for a thread outside the window."""
        from repro.forum.models import Post, Thread

        q = Post(
            post_id=10**8,
            thread_id=10**8,
            author=list(dataset.users)[0],
            timestamp=dataset.duration_hours + 1.0,
            votes=2,
            body="<p>topic0word0 topic0word1</p><pre><code>x = 1</code></pre>",
            is_question=True,
        )
        thread = Thread(question=q)
        user, _ = pick_answered_pair(dataset)
        x = extractor.features(user, thread)
        assert np.all(np.isfinite(x))
        assert x[extractor.spec.columns_of("net_question_votes")[0]] == 2


class TestUserQuestionFeatures:
    def test_similarity_bounds(self, extractor, dataset):
        user, thread = pick_answered_pair(dataset)
        x = extractor.features(user, thread)
        spec = extractor.spec
        s_uq = x[spec.columns_of("user_question_topic_similarity")[0]]
        s_uv = x[spec.columns_of("user_user_topic_similarity")[0]]
        assert 0.0 <= s_uq <= 1.0
        assert 0.0 <= s_uv <= 1.0

    def test_g_uq_bounded_by_answer_count(self, extractor, dataset):
        """g_uq sums similarities in [0,1] over answered questions."""
        user, thread = pick_answered_pair(dataset)
        x = extractor.features(user, thread)
        spec = extractor.spec
        g_uq = x[spec.columns_of("topic_weighted_questions_answered")[0]]
        n_answers = x[spec.columns_of("answers_provided")[0]]
        assert 0.0 <= g_uq <= n_answers + 1e-9

    def test_zero_history_zero_weighted(self, extractor, dataset):
        thread = dataset.threads[0]
        x = extractor.features(999_999, thread)
        spec = extractor.spec
        assert x[spec.columns_of("topic_weighted_questions_answered")[0]] == 0.0
        assert x[spec.columns_of("topic_weighted_answer_votes")[0]] == 0.0


class TestSocialFeatures:
    def test_cooccurrence_excludes_target(self, extractor, dataset):
        user, thread = pick_answered_pair(dataset)
        x = extractor.features(user, thread)
        col = extractor.spec.columns_of("thread_cooccurrence")[0]
        shared = sum(
            1
            for t in dataset
            if t.thread_id != thread.thread_id
            and user in (t.asker, *t.answerers)
            and thread.asker in (t.asker, *t.answerers)
        )
        assert x[col] == shared

    def test_answerer_centralities_positive(self, extractor, dataset):
        user, thread = pick_answered_pair(dataset)
        x = extractor.features(user, thread)
        spec = extractor.spec
        # Heavy answerers are well-connected: closeness must be positive.
        assert x[spec.columns_of("qa_closeness")[0]] > 0
        assert x[spec.columns_of("dense_closeness")[0]] > 0

    def test_resource_allocation_nonnegative(self, extractor, dataset):
        user, thread = pick_answered_pair(dataset)
        x = extractor.features(user, thread)
        spec = extractor.spec
        assert x[spec.columns_of("qa_resource_allocation")[0]] >= 0
        assert x[spec.columns_of("dense_resource_allocation")[0]] >= 0
