"""Fast unit tests for the Fig. 5/6/7 experiment drivers."""

import numpy as np
import pytest

from repro.core import PredictorConfig
from repro.core.evaluation import (
    run_feature_importance,
    run_group_importance_by_history,
    run_topic_sweep,
)

TINY = PredictorConfig(
    n_topics=2,
    vote_epochs=20,
    timing_epochs=20,
    betweenness_sample_size=40,
)


@pytest.mark.slow
class TestTopicSweep:
    def test_returns_percent_changes(self, dataset):
        results = run_topic_sweep(
            dataset,
            topic_counts=(3,),
            base_topics=2,
            config=TINY,
            n_folds=2,
        )
        assert set(results) == {3}
        assert set(results[3]) == {"answer", "votes", "timing"}
        for value in results[3].values():
            assert np.isfinite(value)

    def test_base_not_in_output(self, dataset):
        results = run_topic_sweep(
            dataset, topic_counts=(2, 3), base_topics=2, config=TINY, n_folds=2
        )
        assert 2 not in results


class TestFeatureImportance:
    def test_subset_of_features(self, dataset):
        results = run_feature_importance(
            dataset,
            config=TINY,
            n_folds=2,
            features=("net_question_votes", "answers_provided"),
        )
        assert set(results) == {"net_question_votes", "answers_provided"}
        for row in results.values():
            assert set(row) == {"votes", "timing"}
            assert all(np.isfinite(v) for v in row.values())

    def test_unknown_feature_raises(self, dataset):
        with pytest.raises(ValueError, match="unknown feature"):
            run_feature_importance(
                dataset, config=TINY, n_folds=2, features=("bogus",)
            )


class TestGroupImportanceByHistory:
    def test_structure(self, dataset):
        results = run_group_importance_by_history(
            dataset,
            config=TINY,
            eval_first_day=25,
            eval_last_day=30,
            history_lengths=(10,),
            n_folds=2,
        )
        assert set(results) == {10}
        row = results[10]
        assert set(row) == {
            "full",
            "user",
            "question",
            "user_question",
            "social",
        }
        for metrics in row.values():
            assert np.isfinite(metrics["votes"])
            assert np.isfinite(metrics["timing"])

    def test_empty_evaluation_window_raises(self, dataset):
        with pytest.raises(ValueError, match="evaluation window"):
            run_group_importance_by_history(
                dataset,
                config=TINY,
                eval_first_day=300,
                eval_last_day=301,
                history_lengths=(5,),
                n_folds=2,
            )
