"""Tests for repro.core.state — the incremental forum state engine."""

import numpy as np
import pytest

from repro.core import FeatureExtractor
from repro.core.state import ForumState
from repro.core.topic_context import TopicModelContext


@pytest.fixture(scope="module")
def topics(dataset):
    return TopicModelContext.fit(dataset, n_topics=4, seed=0)


def assert_tables_equal(ta, tb):
    assert ta.user_index == tb.user_index
    assert ta.row_of == tb.row_of
    assert ta.dup_users == tb.dup_users
    for name in (
        "n",
        "votes_sum",
        "median_rt",
        "d_u",
        "topic_sum",
        "seg_start",
        "hist_topics",
        "hist_votes",
        "hist_answer_topics",
        "times_sorted",
        "time_rank",
    ):
        np.testing.assert_array_equal(
            getattr(ta, name), getattr(tb, name), err_msg=name
        )


def assert_frozen_equal(fa, fb):
    """Every FrozenState field bit-equal between two snapshots."""
    assert fa.fingerprint == fb.fingerprint
    assert fa.n_threads == fb.n_threads
    assert fa.duration_hours == fb.duration_hours
    assert fa.question_info == fb.question_info
    assert fa.questions_asked == fb.questions_asked
    assert fa.global_median_response == fb.global_median_response
    assert fa.thread_sets == fb.thread_sets
    assert set(fa.histories) == set(fb.histories)
    assert fa.discussed_count == fb.discussed_count
    assert set(fa.discussed_sum) == set(fb.discussed_sum)
    for user in fa.discussed_sum:
        np.testing.assert_array_equal(
            fa.discussed_sum[user], fb.discussed_sum[user]
        )
    for name in (
        "qa_closeness",
        "qa_betweenness",
        "dense_closeness",
        "dense_betweenness",
    ):
        assert getattr(fa, name) == getattr(fb, name), name
    assert sorted(fa.qa_graph.edges()) == sorted(fb.qa_graph.edges())
    assert sorted(fa.dense_graph.edges()) == sorted(fb.dense_graph.edges())
    assert_tables_equal(fa.batch_tables, fb.batch_tables)


class TestMutation:
    def test_append_rejects_duplicates(self, dataset, topics):
        state = ForumState(topics)
        state.append(dataset.threads[0])
        with pytest.raises(ValueError, match="already"):
            state.append(dataset.threads[0])

    def test_append_rejects_out_of_order(self, dataset, topics):
        state = ForumState(topics)
        state.append(dataset.threads[5])
        with pytest.raises(ValueError, match="order"):
            state.append(dataset.threads[0])

    def test_evict_drops_old_threads(self, dataset, topics):
        state = ForumState.from_dataset(dataset, topics)
        cutoff = dataset.threads[len(dataset) // 2].created_at
        removed = state.evict(cutoff)
        assert removed > 0
        assert len(state) == len(dataset) - removed
        assert all(t.created_at >= cutoff for t in state.to_dataset())

    def test_fingerprint_matches_dataset(self, dataset, topics):
        state = ForumState.from_dataset(dataset, topics)
        assert state.fingerprint() == dataset.fingerprint()


class TestEquivalence:
    def test_append_evict_equals_fresh_build(self, dataset, topics):
        """The tentpole invariant: an incrementally maintained window is
        indistinguishable from a state built fresh over the same slice."""
        cutoff = dataset.threads[len(dataset) // 3].created_at
        end = dataset.threads[-1].created_at + 1.0

        grown = ForumState(topics)
        for thread in dataset:
            grown.append(thread)
        grown.evict(cutoff)

        window = dataset.threads_in_window(cutoff, end)
        fresh = ForumState.from_dataset(window, topics)

        assert grown.fingerprint() == fresh.fingerprint()
        assert_frozen_equal(
            grown.freeze(betweenness_sample_size=100, seed=0),
            fresh.freeze(betweenness_sample_size=100, seed=0),
        )

    def test_extractor_from_state_matches_dataset_path(self, dataset, topics):
        state = ForumState.from_dataset(dataset, topics)
        via_state = FeatureExtractor.from_state(
            state, betweenness_sample_size=100, seed=0
        )
        via_dataset = FeatureExtractor(
            dataset, topics, betweenness_sample_size=100, seed=0
        )
        assert via_state.window_fingerprint == via_dataset.window_fingerprint
        pairs = [
            (u, t)
            for u in sorted(dataset.answerers)[:8]
            for t in dataset.threads[:5]
        ]
        np.testing.assert_array_equal(
            via_state.feature_matrix(pairs), via_dataset.feature_matrix(pairs)
        )


class TestFreeze:
    def test_freeze_cached_until_mutation(self, dataset, topics):
        half = dataset.threads[: len(dataset) // 2]
        rest = dataset.threads[len(dataset) // 2 :]
        state = ForumState(topics)
        for thread in half:
            state.append(thread)
        first = state.freeze(betweenness_sample_size=100, seed=0)
        assert state.freeze(betweenness_sample_size=100, seed=0) is first
        state.append(rest[0])
        assert state.freeze(betweenness_sample_size=100, seed=0) is not first

    def test_frozen_snapshot_isolated_from_appends(self, dataset, topics):
        half = len(dataset) // 2
        state = ForumState(topics)
        for thread in dataset.threads[:half]:
            state.append(thread)
        frozen = state.freeze(betweenness_sample_size=100, seed=0)
        n_threads = frozen.n_threads
        n_questions = len(frozen.question_info)
        for thread in dataset.threads[half:]:
            state.append(thread)
        assert frozen.n_threads == n_threads
        assert len(frozen.question_info) == n_questions
        assert dataset.threads[half].thread_id not in frozen.question_info

    def test_freeze_key_includes_parameters(self, dataset, topics):
        state = ForumState.from_dataset(dataset, topics)
        sampled = state.freeze(betweenness_sample_size=100, seed=0)
        exact = state.freeze(betweenness_sample_size=None, seed=0)
        assert sampled is not exact
