"""Tests for repro.core.topic_context."""

import numpy as np
import pytest

from repro.core.topic_context import TopicModelContext
from repro.forum.dataset import ForumDataset


@pytest.fixture(scope="module")
def context(dataset):
    return TopicModelContext.fit(dataset, n_topics=4, seed=0)


class TestFit:
    def test_n_topics(self, context):
        assert context.n_topics == 4

    def test_every_post_cached(self, context, dataset):
        for thread in dataset.threads[:20]:
            for post in thread.posts:
                d = context.post_topics(post)
                assert d.shape == (4,)
                assert d.sum() == pytest.approx(1.0)
                assert np.all(d >= 0)

    def test_empty_dataset_raises(self):
        with pytest.raises(ValueError):
            TopicModelContext.fit(ForumDataset([]), n_topics=2)

    def test_recovers_planted_topic_structure(self, context, dataset, forum):
        """Questions sharing a planted topic look more similar under LDA.

        The context fits fewer topics (4) than the generator plants (8),
        so planted topics can merge — but same-planted-topic questions
        must still be closer on average than different-topic ones.
        """
        from repro.topics.similarity import total_variation_similarity

        mains = np.argmax(forum.question_topics, axis=1)
        threads = dataset.threads[:120]
        dists = [context.post_topics(t.question) for t in threads]
        same, diff = [], []
        for i in range(len(threads)):
            for j in range(i + 1, len(threads)):
                sim = total_variation_similarity(dists[i], dists[j])
                if mains[threads[i].thread_id] == mains[threads[j].thread_id]:
                    same.append(sim)
                else:
                    diff.append(sim)
        assert np.mean(same) > np.mean(diff) + 0.05


class TestInference:
    def test_infer_unseen_body(self, context):
        d = context.infer_body("<p>topic0word1 topic0word2 topic0word3</p>")
        assert d.shape == (4,)
        assert d.sum() == pytest.approx(1.0)

    def test_unseen_post_gets_cached(self, context, dataset):
        from repro.forum.models import Post

        post = Post(
            post_id=10**9,
            thread_id=0,
            author=0,
            timestamp=0.0,
            votes=0,
            body="<p>topic1word1 topic1word2</p>",
            is_question=True,
        )
        first = context.post_topics(post)
        second = context.post_topics(post)
        np.testing.assert_array_equal(first, second)

    def test_empty_body_uniform(self, context):
        d = context.infer_body("")
        np.testing.assert_allclose(d, 0.25, atol=0.05)
