"""Tests for repro.core.batch_routing."""

import numpy as np
import pytest

from repro.core.batch_routing import route_batch, route_batch_greedy
from repro.core.pipeline import ForumPredictor
from repro.core.routing import QuestionRouter


@pytest.fixture(scope="module")
def router(dataset, predictor_config):
    predictor = ForumPredictor(predictor_config).fit(dataset)
    return QuestionRouter(predictor, epsilon=0.2, default_capacity=1.0)


@pytest.fixture(scope="module")
def batch(dataset):
    return dataset.threads[-6:]


@pytest.fixture(scope="module")
def candidates(dataset):
    return sorted(dataset.answerers)[:40]


class TestRouteBatch:
    def test_feasible_distribution(self, router, batch, candidates):
        result = route_batch(router, batch, candidates)
        if result is None:
            pytest.skip("batch infeasible at this scale")
        assert result.probabilities.shape == (len(batch), len(candidates))
        np.testing.assert_allclose(
            result.probabilities.sum(axis=1), 1.0, atol=1e-8
        )
        assert np.all(result.probabilities >= -1e-12)

    def test_capacity_respected(self, router, batch, candidates):
        result = route_batch(router, batch, candidates)
        if result is None:
            pytest.skip("batch infeasible at this scale")
        per_user = result.probabilities.sum(axis=0)
        assert np.all(per_user <= router.default_capacity + 1e-8)

    def test_lp_at_least_as_good_as_greedy(self, router, batch, candidates):
        lp = route_batch(router, batch, candidates)
        greedy = route_batch_greedy(router, batch, candidates)
        if lp is None or greedy is None:
            pytest.skip("batch infeasible at this scale")
        assert lp.objective >= greedy.objective - 1e-8

    def test_tight_capacity_forces_spreading(self, router, batch, candidates):
        """With capacity 1 per user and several questions, no user can
        absorb the whole batch."""
        result = route_batch(
            router,
            batch,
            candidates,
            capacities={int(u): 1.0 for u in candidates},
        )
        if result is None:
            pytest.skip("batch infeasible at this scale")
        assert np.all(result.probabilities.sum(axis=0) <= 1.0 + 1e-8)

    def test_distribution_for(self, router, batch, candidates):
        result = route_batch(router, batch, candidates)
        if result is None:
            pytest.skip("batch infeasible at this scale")
        dist = result.distribution_for(batch[0].thread_id)
        assert dist
        assert sum(dist.values()) == pytest.approx(1.0, abs=1e-6)

    def test_validation(self, router, batch, candidates):
        with pytest.raises(ValueError):
            route_batch(router, [], candidates)
        with pytest.raises(ValueError):
            route_batch_greedy(router, batch, [])
