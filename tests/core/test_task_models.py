"""Tests for the three task models (answer, vote, timing) on pair data."""

import numpy as np
import pytest

from repro.core.answer_model import AnswerModel
from repro.core.timing_model import TimingModel
from repro.core.vote_model import VoteModel
from repro.ml.metrics import auc_score, rmse


class TestAnswerModel:
    def test_beats_chance_on_pairs(self, pairs):
        n = pairs.n_pairs
        train = np.arange(n) % 2 == 0
        model = AnswerModel().fit(pairs.x[train], pairs.is_event[train])
        auc = auc_score(
            pairs.is_event[~train], model.predict_proba(pairs.x[~train])
        )
        assert auc > 0.7

    def test_coefficients_available(self, pairs):
        model = AnswerModel().fit(pairs.x, pairs.is_event)
        assert model.coefficients.shape == (pairs.x.shape[1],)

    def test_unfitted_coefficients_raise(self):
        with pytest.raises(RuntimeError):
            AnswerModel().coefficients


class TestVoteModel:
    def test_beats_mean_predictor(self, pairs, predictor_config):
        pos = pairs.positives
        train = pos[: len(pos) // 2]
        test = pos[len(pos) // 2 :]
        model = VoteModel(
            pairs.x.shape[1], epochs=predictor_config.vote_epochs, seed=0
        )
        model.fit(pairs.x[train], pairs.votes[train])
        model_rmse = rmse(pairs.votes[test], model.predict(pairs.x[test]))
        mean_rmse = rmse(
            pairs.votes[test],
            np.full(len(test), pairs.votes[train].mean()),
        )
        assert model_rmse < mean_rmse

    def test_unfitted_predict_raises(self, pairs):
        with pytest.raises(RuntimeError):
            VoteModel(pairs.x.shape[1]).predict(pairs.x[:1])

    def test_invalid_features(self):
        with pytest.raises(ValueError):
            VoteModel(0)


class TestTimingModel:
    @pytest.fixture(scope="class")
    def fitted(self, pairs, predictor_config):
        model = TimingModel(
            pairs.x.shape[1], epochs=predictor_config.timing_epochs, seed=0
        )
        n = pairs.n_pairs
        train = np.arange(n) % 2 == 0
        model.fit(
            pairs.x[train],
            pairs.times[train],
            pairs.horizons[train],
            pairs.is_event[train],
        )
        return model, train

    def test_predictions_positive_and_within_horizon(self, fitted, pairs):
        model, train = fitted
        test_pos = np.flatnonzero(~train & (pairs.is_event == 1.0))
        preds = model.predict(pairs.x[test_pos], pairs.horizons[test_pos])
        assert np.all(preds > 0)
        assert np.all(preds <= pairs.horizons[test_pos] + 1e-9)

    def test_beats_median_predictor(self, fitted, pairs):
        model, train = fitted
        train_pos = np.flatnonzero(train & (pairs.is_event == 1.0))
        test_pos = np.flatnonzero(~train & (pairs.is_event == 1.0))
        preds = model.predict(pairs.x[test_pos], pairs.horizons[test_pos])
        model_rmse = rmse(pairs.times[test_pos], preds)
        const_rmse = rmse(
            pairs.times[test_pos],
            np.full(len(test_pos), pairs.times[train_pos].mean()),
        )
        assert model_rmse < 1.25 * const_rmse  # competitive with constant

    def test_rate_parameters_positive(self, fitted, pairs):
        model, _ = fitted
        mu, omega = model.rate_parameters(pairs.x[:10])
        assert np.all(mu > 0)
        assert np.all(omega > 0)

    def test_expected_predictor_mode(self, pairs, predictor_config):
        model = TimingModel(
            pairs.x.shape[1],
            predictor="expected",
            decay="constant",
            epochs=20,
            seed=0,
        )
        model.fit(pairs.x, pairs.times, pairs.horizons, pairs.is_event)
        preds = model.predict(pairs.x[:5], pairs.horizons[:5])
        assert preds.shape == (5,)
        assert np.all(preds >= 0)

    def test_invalid_predictor(self, pairs):
        with pytest.raises(ValueError):
            TimingModel(pairs.x.shape[1], predictor="magic")

    def test_unfitted_raises(self, pairs):
        with pytest.raises(RuntimeError):
            TimingModel(pairs.x.shape[1]).predict(pairs.x[:1], 1.0)
