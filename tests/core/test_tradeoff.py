"""Tests for repro.core.tradeoff."""

import numpy as np
import pytest

from repro.core.pipeline import ForumPredictor
from repro.core.routing import QuestionRouter
from repro.core.tradeoff import (
    FrontierPoint,
    pareto_front,
    sweep_tradeoff,
)


def point(lam, votes, time):
    return FrontierPoint(
        tradeoff=lam, mean_votes=votes, mean_response_time=time, n_routed=10
    )


class TestParetoFront:
    def test_dominated_point_removed(self):
        a = point(0.0, 2.0, 1.0)
        b = point(1.0, 1.0, 2.0)  # worse on both axes
        assert pareto_front([a, b]) == (a,)

    def test_tradeoff_curve_kept(self):
        a = point(0.0, 3.0, 5.0)  # high quality, slow
        b = point(1.0, 2.0, 2.0)  # medium
        c = point(5.0, 1.0, 0.5)  # fast, low quality
        front = pareto_front([a, b, c])
        assert front == (a, b, c)

    def test_duplicates_kept(self):
        a = point(0.0, 1.0, 1.0)
        b = point(1.0, 1.0, 1.0)
        assert len(pareto_front([a, b])) == 2

    def test_sorted_by_tradeoff(self):
        pts = [point(5.0, 1.0, 0.5), point(0.0, 3.0, 5.0)]
        front = pareto_front(pts)
        assert [p.tradeoff for p in front] == [0.0, 5.0]


class TestSweep:
    @pytest.fixture(scope="class")
    def frontier(self, dataset, predictor_config):
        predictor = ForumPredictor(predictor_config).fit(dataset)
        router = QuestionRouter(predictor, epsilon=0.25, default_capacity=5.0)
        threads = dataset.threads[-20:]
        candidates = sorted(dataset.answerers)
        return sweep_tradeoff(
            router, threads, candidates, tradeoffs=(0.0, 1.0, 5.0)
        )

    def test_point_per_tradeoff(self, frontier):
        assert len(frontier.points) == 3
        assert [p.tradeoff for p in frontier.points] == [0.0, 1.0, 5.0]

    def test_latency_non_increasing_in_lambda(self, frontier):
        times = [p.mean_response_time for p in frontier.points]
        valid = [t for t in times if np.isfinite(t)]
        if len(valid) < 2:
            pytest.skip("not enough routed questions")
        assert valid[-1] <= valid[0] + 1e-9

    def test_pareto_subset(self, frontier):
        front = frontier.pareto
        assert 1 <= len(front) <= len(frontier.points)
        assert set(front) <= set(frontier.points)

    def test_rows(self, frontier):
        rows = frontier.as_rows()
        assert len(rows) == 3
        assert all(len(r) == 4 for r in rows)

    def test_validation(self, dataset, predictor_config):
        predictor = ForumPredictor(predictor_config)
        router = QuestionRouter.__new__(QuestionRouter)  # no fit needed
        with pytest.raises(ValueError):
            sweep_tradeoff(router, [], [1])
        with pytest.raises(ValueError):
            sweep_tradeoff(router, dataset.threads[:1], [])
