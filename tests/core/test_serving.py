"""Tests for repro.core.serving — the layered async serving stack.

The equivalence classes at the heart of this file pin the refactor's
contract: the async service drives the exact engine the legacy replay
loop drives, so a zero-concurrency replay through the service
reproduces ``OnlineRecommendationLoop`` bit for bit, and a batched run
reproduces a sequential one response for response.
"""

import asyncio
import math

import pytest

from repro.core.online import OnlineConfig, OnlineRecommendationLoop
from repro.core.pipeline import PredictorConfig
from repro.core.resilience import ResilienceConfig
from repro.core.serving import (
    AdmissionConfig,
    BatchPolicy,
    CostModel,
    IngestGate,
    MicroBatcher,
    RecommendationService,
    ServiceConfig,
    ServingCore,
    VirtualClock,
    run_load,
)
from repro.core.sharding import ShardedRouter
from repro.forum.generator import ForumConfig, generate_forum
from repro.forum.models import Post, Thread
from repro.forum.traffic import TrafficConfig, generate_traffic

FAST_PREDICTOR = PredictorConfig(
    n_topics=2, vote_epochs=30, timing_epochs=30, betweenness_sample_size=50
)
FAST_ONLINE = OnlineConfig(
    refit_interval_hours=96.0, window_hours=360.0, warmup_hours=96.0
)


@pytest.fixture(scope="module")
def stream_dataset():
    forum = generate_forum(
        ForumConfig(n_users=120, n_questions=140, activity_tail=1.4), seed=3
    )
    clean, _ = forum.dataset.preprocess()
    return clean


@pytest.fixture(scope="module")
def plain_report(stream_dataset):
    return OnlineRecommendationLoop(FAST_PREDICTOR, FAST_ONLINE).run(
        stream_dataset
    )


@pytest.fixture(scope="module")
def warm_core(stream_dataset):
    """One ServingCore warmed on the full history, shared read-mostly."""
    core = ServingCore(FAST_PREDICTOR, FAST_ONLINE)
    RecommendationService(core).warm(stream_dataset)
    return core


def make_question(tid, author, ts, body="<p>common0 common1</p>"):
    return Thread(
        Post(
            post_id=900000 + tid,
            thread_id=tid,
            author=author,
            timestamp=ts,
            votes=0,
            body=body,
            is_question=True,
        )
    )


class TestVirtualClock:
    def test_sleeps_advance_virtual_not_real_time(self):
        clock = VirtualClock()
        order = []

        async def sleeper(name, delay):
            await asyncio.sleep(delay)
            order.append((name, clock.now()))

        async def main():
            await asyncio.gather(
                sleeper("slow", 30.0), sleeper("fast", 1.0)
            )

        clock.run(main())
        assert [name for name, _ in order] == ["fast", "slow"]
        assert order[0][1] == pytest.approx(1.0)
        assert clock.now() == pytest.approx(30.0)

    def test_loop_time_is_the_virtual_clock(self):
        clock = VirtualClock(start=100.0)

        async def main():
            loop = asyncio.get_running_loop()
            start = loop.time()
            await asyncio.sleep(2.5)
            return start, loop.time()

        start, end = clock.run(main())
        assert start == pytest.approx(100.0)
        assert end == pytest.approx(102.5)

    def test_deadlock_detected(self):
        clock = VirtualClock()

        async def main():
            await asyncio.get_running_loop().create_future()  # never set

        with pytest.raises(RuntimeError, match="deadlock"):
            clock.run(main())


class TestIngestGate:
    def test_reject_policy_sheds_when_full(self):
        gate = IngestGate(
            AdmissionConfig(max_pending_queries=2, query_overflow="reject")
        )

        async def main():
            outcomes = [await gate.offer_query(i) for i in range(5)]
            return outcomes

        outcomes = VirtualClock().run(main())
        assert outcomes == [True, True, False, False, False]
        assert gate.n_queries_admitted == 2
        assert gate.n_queries_rejected == 3
        assert gate.pending_queries == 2

    def test_block_policy_waits_for_drain(self):
        gate = IngestGate(
            AdmissionConfig(max_pending_events=1, event_overflow="block")
        )

        async def consumer():
            await asyncio.sleep(1.0)
            return await gate.events.get()

        async def main():
            drain = asyncio.get_running_loop().create_task(consumer())
            await gate.offer_event("a")
            await gate.offer_event("b")  # blocks until the drain
            return await drain

        assert VirtualClock().run(main()) == "a"
        assert gate.n_events_admitted == 2
        assert gate.n_events_rejected == 0

    def test_block_policy_under_concurrent_submitters(self):
        """Many blocked submitters drain in order, none lost, wait timed.

        Ten submitters race a queue of depth 2 while a slow consumer
        drains one item per virtual second: every submission must be
        admitted eventually (backpressure preserves work), arrive in
        submission order (single-consumer FIFO), and the queue-full
        waits must land in the ``serving.admission_wait`` histogram.
        """
        from repro import perf

        gate = IngestGate(
            AdmissionConfig(max_pending_queries=2, query_overflow="block")
        )
        n = 10
        drained = []

        async def submitter(i):
            await asyncio.sleep(0.001 * i)  # fixed submission order
            assert await gate.offer_query(i)

        async def consumer():
            while len(drained) < n:
                drained.append(await gate.queries.get())
                await asyncio.sleep(1.0)  # slow drain forces blocking

        async def main():
            await asyncio.gather(
                consumer(), *(submitter(i) for i in range(n))
            )

        with perf.use_registry() as registry:
            VirtualClock().run(main())
        assert drained == list(range(n))
        assert gate.n_queries_admitted == n
        assert gate.n_queries_rejected == 0
        waits = registry.histogram("serving.admission_wait")
        assert waits.count >= n - gate.config.max_pending_queries - 1
        assert waits.percentile(99) > 0

    def test_closed_gate_raises(self):
        from repro.core.serving import AdmissionError

        gate = IngestGate()
        gate.close()

        async def main():
            await gate.offer_event("x")

        with pytest.raises(AdmissionError):
            VirtualClock().run(main())

    def test_config_validated(self):
        with pytest.raises(ValueError, match="bounds"):
            AdmissionConfig(max_pending_events=0)
        with pytest.raises(ValueError, match="overflow"):
            AdmissionConfig(query_overflow="spill")


class TestMicroBatcher:
    def test_burst_coalesces_up_to_max_batch(self):
        sizes = []
        batcher = MicroBatcher(
            BatchPolicy(max_batch=4, max_wait_s=0.01),
            lambda items: (sizes.append(len(items)), items)[1],
        )

        async def main():
            batcher.start()
            results = await asyncio.gather(
                *(batcher.submit(i) for i in range(10))
            )
            await batcher.stop()
            return results

        results = VirtualClock().run(main())
        assert results == list(range(10))  # result matched to payload
        assert max(sizes) <= 4
        assert sum(sizes) == 10
        assert batcher.n_batches == len(sizes)

    def test_lone_item_dispatches_after_max_wait(self):
        clock = VirtualClock()
        dispatched_at = []
        batcher = MicroBatcher(
            BatchPolicy(max_batch=64, max_wait_s=0.5),
            lambda items: (dispatched_at.append(clock.now()), items)[1],
        )

        async def main():
            batcher.start()
            result = await batcher.submit("only")
            await batcher.stop()
            return result

        assert clock.run(main()) == "only"
        # The single item waited out the full window, no longer.
        assert dispatched_at[0] == pytest.approx(0.5)

    def test_handler_exception_fails_the_batch(self):
        def boom(items):
            raise RuntimeError("handler broke")

        batcher = MicroBatcher(BatchPolicy(max_batch=2, max_wait_s=0.0), boom)

        async def main():
            batcher.start()
            try:
                await batcher.submit("x")
            finally:
                await batcher.stop()

        with pytest.raises(RuntimeError, match="handler broke"):
            VirtualClock().run(main())

    def test_cost_charges_virtual_service_time(self):
        clock = VirtualClock()
        batcher = MicroBatcher(
            BatchPolicy(max_batch=8, max_wait_s=0.0),
            lambda items: items,
            cost=lambda n: 0.125 * n,
        )

        async def main():
            batcher.start()
            await asyncio.gather(*(batcher.submit(i) for i in range(4)))
            await batcher.stop()

        clock.run(main())
        assert clock.now() >= 0.125  # at least one batch was charged

    def test_policy_validated(self):
        with pytest.raises(ValueError, match="max_batch"):
            BatchPolicy(max_batch=0)
        with pytest.raises(ValueError, match="max_wait_s"):
            BatchPolicy(max_wait_s=-1.0)

    def test_sharded_router_backs_a_batch_handler(self, warm_core):
        """A ShardedRouter.route_batch handler slots into the batcher."""
        sharded = ShardedRouter(
            warm_core._predictor,
            n_shards=2,
            epsilon=FAST_ONLINE.epsilon,
            default_capacity=FAST_ONLINE.default_capacity,
        )
        candidates = warm_core._candidates

        def handler(threads):
            return sharded.route_batch(
                threads, candidates, tradeoff=FAST_ONLINE.tradeoff
            )

        batcher = MicroBatcher(BatchPolicy(max_batch=4, max_wait_s=0.01),
                               handler)
        t0 = warm_core.next_refit - 1.0
        questions = [
            make_question(800000 + i, candidates[0], t0) for i in range(4)
        ]

        async def main():
            batcher.start()
            results = await asyncio.gather(
                *(batcher.submit(q) for q in questions)
            )
            await batcher.stop()
            return results

        results = VirtualClock().run(main())
        assert len(results) == 4
        for question, result in zip(questions, results):
            assert result is not None
            assert result.question_id == question.thread_id
            assert len(result.ranked_users()) >= 1


class TestServiceReplayEquivalence:
    """Zero-concurrency service replay == legacy loop, bit for bit."""

    @pytest.fixture(scope="class")
    def service_replay(self, stream_dataset):
        core = ServingCore(FAST_PREDICTOR, FAST_ONLINE)
        service = RecommendationService(
            core, ServiceConfig(cost=None)
        )

        async def replay():
            await service.start()
            responses = []
            for thread in stream_dataset:
                responses.append(await service.route_question(thread))
                await service.submit_event(thread)
            await service.stop()
            return responses

        responses = VirtualClock().run(replay())
        return service, responses

    def test_counters_identical(self, service_replay, plain_report):
        service, _ = service_replay
        report = service.report
        assert report.n_questions_seen == plain_report.n_questions_seen
        assert report.n_routed == plain_report.n_routed
        assert report.n_refits == plain_report.n_refits
        assert report.n_refits >= 2

    def test_rankings_and_scores_bit_identical(
        self, service_replay, plain_report
    ):
        service, _ = service_replay
        report = service.report
        assert len(report.rankings) == len(plain_report.rankings)
        for (ranked, actual), (ranked_p, actual_p) in zip(
            report.rankings, plain_report.rankings
        ):
            assert ranked == ranked_p
            assert actual == actual_p
        assert report.routed_scores == plain_report.routed_scores

    def test_clean_stream_suffers_no_degradation(self, service_replay):
        service, responses = service_replay
        assert service.degradation.ok
        assert all(not r.degraded for r in responses)

    def test_every_query_got_a_response(self, service_replay, stream_dataset):
        _, responses = service_replay
        assert len(responses) == len(stream_dataset)
        statuses = {r.status for r in responses}
        assert statuses <= {"ok", "not_ready", "no_recommendation",
                            "no_candidates"}
        assert sum(r.status == "ok" for r in responses) > 0


class TestBatchedEqualsSequential:
    """Micro-batched routing reproduces one-at-a-time routing exactly."""

    @pytest.fixture(scope="class")
    def traffic(self, stream_dataset):
        return generate_traffic(
            stream_dataset,
            TrafficConfig(
                n_askers=40, n_events=0, duration_s=10.0, seed=5
            ),
        )

    def run_queries(self, core, traffic, max_batch):
        service = RecommendationService(
            core,
            ServiceConfig(
                batch=BatchPolicy(max_batch=max_batch, max_wait_s=0.05),
                cost=None,
            ),
        )
        return service, run_load(service, traffic, settle_s=1.0)

    def test_responses_identical(self, warm_core, traffic):
        # Queries leave the engine state untouched, so the same core
        # can serve both runs and stay comparable.
        _, sequential = self.run_queries(warm_core, traffic, max_batch=1)
        service_b, batched = self.run_queries(warm_core, traffic, max_batch=8)
        assert service_b._batcher.mean_batch_size > 1.0  # really batched
        assert len(sequential.responses) == len(batched.responses)
        for a, b in zip(sequential.responses, batched.responses):
            assert a.status == b.status
            assert a.ranked == b.ranked
            assert a.routed == b.routed
            assert a.score == b.score


class TestAdmissionUnderLoad:
    def fire_burst(self, core, n, max_pending):
        service = RecommendationService(
            core,
            ServiceConfig(
                admission=AdmissionConfig(
                    max_pending_queries=max_pending,
                    query_overflow="reject",
                ),
                batch=BatchPolicy(max_batch=4, max_wait_s=0.001),
                cost=CostModel(query_batch_s=0.01, query_s=0.02),
            ),
        )
        t0 = core.next_refit - 1.0
        questions = [make_question(700000 + i, 0, t0) for i in range(n)]

        async def main():
            await service.start()
            results = await asyncio.gather(
                *(service.route_question(q) for q in questions)
            )
            await service.stop()
            return results

        return service, VirtualClock().run(main())

    def test_bounded_queue_rejects_excess_burst(self, warm_core):
        service, responses = self.fire_burst(warm_core, 32, max_pending=4)
        rejected = [r for r in responses if r.status == "rejected"]
        served = [r for r in responses if r.status != "rejected"]
        assert rejected, "a 32-wide burst must overflow a 4-deep queue"
        assert served, "admitted queries must still be served"
        assert len(rejected) + len(served) == 32
        assert service.gate.n_queries_rejected == len(rejected)
        # Shed responses return immediately and say why.
        assert all(r.detail == "query queue full" for r in rejected)
        assert all(r.latency_s == 0.0 for r in rejected)

    def test_rejection_pattern_is_deterministic(self, warm_core):
        _, first = self.fire_burst(warm_core, 32, max_pending=4)
        _, second = self.fire_burst(warm_core, 32, max_pending=4)
        assert [r.status for r in first] == [r.status for r in second]
        assert [r.latency_s for r in first] == [r.latency_s for r in second]


class TestFaultyEventsDegradeNotDrop:
    @pytest.fixture()
    def cold_service(self):
        core = ServingCore(FAST_PREDICTOR, FAST_ONLINE, ResilienceConfig())
        return RecommendationService(core, ServiceConfig(cost=None))

    def submit_all(self, service, threads):
        async def main():
            await service.start()
            results = [await service.submit_event(t) for t in threads]
            await service.stop()
            return results

        return VirtualClock().run(main())

    def test_guard_faults_surface_as_degraded_responses(self, cold_service):
        clean = make_question(1, 7, 10.0)
        duplicate = make_question(1, 7, 11.0)  # same thread id
        late = make_question(2, 8, 5.0)  # behind the stream clock
        poisoned = make_question(3, 9, float("nan"))
        results = self.submit_all(
            cold_service, [clean, duplicate, late, poisoned]
        )
        assert [r.status for r in results] == [
            "admitted", "dropped", "repaired", "quarantined",
        ]
        # Every submitter heard back — degraded, never silence.
        assert [r.degraded for r in results] == [False, True, True, True]
        assert "dropped:duplicate_thread" in results[1].actions
        assert "repaired:late_arrival_clamped" in results[2].actions
        assert any(a.startswith("quarantined") for a in results[3].actions)
        assert all(math.isfinite(r.latency_s) for r in results)
        # And the degradation ledger agrees with the responses.
        report = cold_service.degradation
        assert report.count("dropped:duplicate_thread") == 1
        assert report.count("quarantined:") == 1


class TestHealthAndMetrics:
    def test_cold_service_reports_warming(self):
        service = RecommendationService(
            ServingCore(FAST_PREDICTOR, FAST_ONLINE)
        )
        health = service.health()
        assert health["status"] == "warming"
        assert health["warmed"] is False

    def test_warm_service_reports_ok_and_metrics_shape(self, warm_core):
        service = RecommendationService(warm_core, ServiceConfig())
        assert service.health()["status"] == "ok"
        traffic = generate_traffic(
            warm_core._last_good,
            TrafficConfig(n_askers=20, n_events=5, duration_s=5.0, seed=2),
        )
        report = run_load(service, traffic)
        metrics = report.metrics
        assert metrics["queries"]["admitted"] == 20
        assert metrics["events"]["admitted"] == 5
        assert metrics["query_latency"]["count"] == 20
        for key in ("p50_ms", "p95_ms", "p99_ms"):
            assert metrics["query_latency"][key] >= 0.0
        assert (
            metrics["query_latency"]["p50_ms"]
            <= metrics["query_latency"]["p99_ms"]
        )
        assert report.requests_per_wall_s > 0


class TestLoadRunDeterminism:
    def test_same_seed_same_everything_but_wall_clock(self, stream_dataset):
        cfg = TrafficConfig(
            n_askers=60, n_events=15, duration_s=10.0, seed=11
        )

        def one_run():
            core = ServingCore(FAST_PREDICTOR, FAST_ONLINE)
            service = RecommendationService(core, ServiceConfig())
            service.warm(stream_dataset)
            return run_load(service, generate_traffic(stream_dataset, cfg))

        first, second = one_run(), one_run()
        a, b = first.summary(), second.summary()
        for key in ("wall_s", "requests_per_wall_s"):
            a.pop(key), b.pop(key)
        assert a == b
        for ra, rb in zip(first.responses, second.responses):
            assert ra.status == rb.status
            assert ra.latency_s == rb.latency_s
