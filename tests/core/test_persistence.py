"""Tests for repro.core.persistence — predictor save/load."""

import numpy as np
import pytest

from repro.core.persistence import (
    CheckpointCorruptError,
    load_checkpoint,
    load_predictor,
    save_predictor,
    write_checkpoint,
)
from repro.core.pipeline import ForumPredictor


@pytest.fixture(scope="module")
def fitted(dataset, predictor_config):
    return ForumPredictor(predictor_config).fit(dataset)


class TestRoundTrip:
    def test_predictions_identical(self, fitted, dataset, tmp_path):
        path = tmp_path / "predictor.npz"
        save_predictor(fitted, path)
        loaded = load_predictor(path, dataset)
        users = list(dataset.answerers)[:5]
        thread = dataset.threads[0]
        # Topic distributions are re-inferred on load (transform vs. the
        # training-run gamma), so tiny numeric differences are expected.
        for user in users:
            orig = fitted.predict(user, thread)
            back = loaded.predict(user, thread)
            assert back.answer_probability == pytest.approx(
                orig.answer_probability, abs=1e-3
            )
            assert back.votes == pytest.approx(orig.votes, abs=1e-2)
            assert back.response_time == pytest.approx(
                orig.response_time, rel=1e-2
            )

    def test_config_preserved(self, fitted, dataset, tmp_path):
        path = tmp_path / "predictor.npz"
        save_predictor(fitted, path)
        loaded = load_predictor(path, dataset)
        assert loaded.config == fitted.config

    def test_batch_predictions_match(self, fitted, dataset, tmp_path):
        path = tmp_path / "predictor.npz"
        save_predictor(fitted, path)
        loaded = load_predictor(path, dataset)
        pairs = [(u, dataset.threads[1]) for u in list(dataset.answerers)[:6]]
        a = fitted.predict_batch(pairs)
        b = loaded.predict_batch(pairs)
        for key in a:
            np.testing.assert_allclose(a[key], b[key], rtol=0.05, atol=0.01)

    def test_unfitted_rejected(self, predictor_config, tmp_path):
        with pytest.raises(ValueError, match="not fitted"):
            save_predictor(ForumPredictor(predictor_config), tmp_path / "x.npz")

    def test_file_is_single_archive(self, fitted, dataset, tmp_path):
        path = tmp_path / "predictor.npz"
        save_predictor(fitted, path)
        assert path.exists()
        assert path.stat().st_size > 1000


class TestWindowFingerprint:
    """Format v2 pins the archive to the exact feature window."""

    def test_wrong_thread_count_rejected(self, fitted, dataset, tmp_path):
        from repro.core.persistence import WindowMismatchError

        path = tmp_path / "predictor.npz"
        save_predictor(fitted, path)
        truncated = dataset.subset(
            t.thread_id for t in dataset.threads[: len(dataset) - 3]
        )
        with pytest.raises(WindowMismatchError, match="threads"):
            load_predictor(path, truncated)

    def test_same_count_different_threads_rejected(
        self, fitted, dataset, tmp_path
    ):
        import dataclasses

        from repro.core.persistence import WindowMismatchError
        from repro.forum.dataset import ForumDataset

        path = tmp_path / "predictor.npz"
        save_predictor(fitted, path)
        # Same thread count, but one question nudged in time: the count
        # check passes and the fingerprint catches the difference.
        first = dataset.threads[0]
        nudged = dataclasses.replace(
            first,
            question=dataclasses.replace(
                first.question, timestamp=first.question.timestamp + 0.5
            ),
        )
        tampered = ForumDataset([nudged] + dataset.threads[1:])
        assert len(tampered) == len(dataset)
        with pytest.raises(WindowMismatchError, match="fingerprint"):
            load_predictor(path, tampered)

    def test_exact_window_accepted(self, fitted, dataset, tmp_path):
        path = tmp_path / "predictor.npz"
        save_predictor(fitted, path)
        loaded = load_predictor(path, dataset)
        assert loaded.extractor.window_fingerprint == dataset.fingerprint()


class TestCrashConsistentCheckpoint:
    """write_checkpoint rotates generations; load_checkpoint verifies
    the digest and falls back to the previous snapshot on corruption."""

    @pytest.fixture()
    def checkpointed(self, fitted, tmp_path):
        path = tmp_path / "model.npz"
        write_checkpoint(fitted, path)
        write_checkpoint(fitted, path)  # second generation -> .prev exists
        return path

    def test_save_leaves_no_temp_files(self, fitted, dataset, tmp_path):
        path = tmp_path / "model.npz"
        save_predictor(fitted, path)
        assert sorted(p.name for p in tmp_path.iterdir()) == ["model.npz"]

    def test_rotation_keeps_both_generations(self, checkpointed):
        names = sorted(p.name for p in checkpointed.parent.iterdir())
        assert names == [
            "model.manifest.json",
            "model.npz",
            "model.prev.manifest.json",
            "model.prev.npz",
        ]

    def test_clean_load_uses_current(self, checkpointed, dataset):
        result = load_checkpoint(checkpointed, dataset)
        assert not result.fallback_used
        assert result.diagnostic == ""
        assert result.predictor.extractor is not None

    def test_torn_write_falls_back_to_previous(self, checkpointed, dataset):
        data = checkpointed.read_bytes()
        checkpointed.write_bytes(data[: len(data) // 2])  # torn write
        result = load_checkpoint(checkpointed, dataset)
        assert result.fallback_used
        assert "previous snapshot" in result.diagnostic
        user = next(iter(dataset.answerers))
        prediction = result.predictor.predict(user, dataset.threads[0])
        assert np.isfinite(prediction.answer_probability)

    def test_digest_mismatch_detected(self, checkpointed, dataset):
        # Same-size bit flip: only the content digest can catch it.
        data = bytearray(checkpointed.read_bytes())
        data[len(data) // 2] ^= 0xFF
        checkpointed.write_bytes(bytes(data))
        result = load_checkpoint(checkpointed, dataset)
        assert result.fallback_used

    def test_both_generations_corrupt_raises(self, checkpointed, dataset):
        checkpointed.write_bytes(b"garbage")
        prev = checkpointed.with_name("model.prev.npz")
        prev.write_bytes(b"garbage")
        with pytest.raises(CheckpointCorruptError, match="no loadable"):
            load_checkpoint(checkpointed, dataset)

    def test_window_mismatch_not_swallowed(self, checkpointed, dataset):
        from repro.core.persistence import WindowMismatchError

        truncated = dataset.subset(
            t.thread_id for t in dataset.threads[: len(dataset) - 3]
        )
        with pytest.raises(WindowMismatchError):
            load_checkpoint(checkpointed, truncated)

    def test_single_generation_torn_raises(self, fitted, dataset, tmp_path):
        path = tmp_path / "model.npz"
        write_checkpoint(fitted, path)  # no .prev yet
        path.write_bytes(path.read_bytes()[:100])
        with pytest.raises(CheckpointCorruptError):
            load_checkpoint(path, dataset)


def _downgrade_to_v1(path):
    """Rewrite a v2 archive in the version-1 layout (no window block,
    bare vocabulary token list, minimal LDA header)."""
    import json

    import numpy as np

    with np.load(path) as archive:
        arrays = {k: archive[k] for k in archive.files}
    meta = json.loads(bytes(arrays.pop("__meta__")).decode("utf-8"))
    meta["version"] = 1
    del meta["window"]
    meta["vocabulary"] = meta["vocabulary"]["tokens"]
    meta["lda"].pop("vocab_size", None)
    arrays["__meta__"] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(path, **arrays)


class TestFormatV1BackCompat:
    def test_v1_archive_loads(self, fitted, dataset, tmp_path):
        path = tmp_path / "predictor.npz"
        save_predictor(fitted, path)
        _downgrade_to_v1(path)
        loaded = load_predictor(path, dataset)
        assert loaded.config == fitted.config
        user = next(iter(dataset.answerers))
        thread = dataset.threads[0]
        assert loaded.predict(user, thread).answer_probability == pytest.approx(
            fitted.predict(user, thread).answer_probability, abs=1e-3
        )

    def test_v1_skips_window_check(self, fitted, dataset, tmp_path):
        path = tmp_path / "predictor.npz"
        save_predictor(fitted, path)
        _downgrade_to_v1(path)
        truncated = dataset.subset(
            t.thread_id for t in dataset.threads[: len(dataset) - 3]
        )
        loaded = load_predictor(path, truncated)  # no fingerprint to check
        assert loaded.extractor is not None

    def test_unknown_version_rejected(self, fitted, dataset, tmp_path):
        import json

        import numpy as np

        path = tmp_path / "predictor.npz"
        save_predictor(fitted, path)
        with np.load(path) as archive:
            arrays = {k: archive[k] for k in archive.files}
        meta = json.loads(bytes(arrays.pop("__meta__")).decode("utf-8"))
        meta["version"] = 99
        arrays["__meta__"] = np.frombuffer(
            json.dumps(meta).encode("utf-8"), dtype=np.uint8
        )
        np.savez_compressed(path, **arrays)
        with pytest.raises(ValueError, match="version"):
            load_predictor(path, dataset)
