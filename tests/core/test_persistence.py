"""Tests for repro.core.persistence — predictor save/load."""

import numpy as np
import pytest

from repro.core.persistence import load_predictor, save_predictor
from repro.core.pipeline import ForumPredictor


@pytest.fixture(scope="module")
def fitted(dataset, predictor_config):
    return ForumPredictor(predictor_config).fit(dataset)


class TestRoundTrip:
    def test_predictions_identical(self, fitted, dataset, tmp_path):
        path = tmp_path / "predictor.npz"
        save_predictor(fitted, path)
        loaded = load_predictor(path, dataset)
        users = list(dataset.answerers)[:5]
        thread = dataset.threads[0]
        # Topic distributions are re-inferred on load (transform vs. the
        # training-run gamma), so tiny numeric differences are expected.
        for user in users:
            orig = fitted.predict(user, thread)
            back = loaded.predict(user, thread)
            assert back.answer_probability == pytest.approx(
                orig.answer_probability, abs=1e-3
            )
            assert back.votes == pytest.approx(orig.votes, abs=1e-2)
            assert back.response_time == pytest.approx(
                orig.response_time, rel=1e-2
            )

    def test_config_preserved(self, fitted, dataset, tmp_path):
        path = tmp_path / "predictor.npz"
        save_predictor(fitted, path)
        loaded = load_predictor(path, dataset)
        assert loaded.config == fitted.config

    def test_batch_predictions_match(self, fitted, dataset, tmp_path):
        path = tmp_path / "predictor.npz"
        save_predictor(fitted, path)
        loaded = load_predictor(path, dataset)
        pairs = [(u, dataset.threads[1]) for u in list(dataset.answerers)[:6]]
        a = fitted.predict_batch(pairs)
        b = loaded.predict_batch(pairs)
        for key in a:
            np.testing.assert_allclose(a[key], b[key], rtol=0.05, atol=0.01)

    def test_unfitted_rejected(self, predictor_config, tmp_path):
        with pytest.raises(ValueError, match="not fitted"):
            save_predictor(ForumPredictor(predictor_config), tmp_path / "x.npz")

    def test_file_is_single_archive(self, fitted, dataset, tmp_path):
        path = tmp_path / "predictor.npz"
        save_predictor(fitted, path)
        assert path.exists()
        assert path.stat().st_size > 1000
