"""Tests for repro.core.coldstart."""

import numpy as np
import pytest

from repro.core.answer_model import AnswerModel
from repro.core.coldstart import cold_start_report
from repro.core.timing_model import TimingModel
from repro.core.vote_model import VoteModel


@pytest.fixture(scope="module")
def report(pairs, extractor, predictor_config):
    n = pairs.n_pairs
    train = np.arange(n) % 2 == 0
    test = ~train
    answer = AnswerModel().fit(pairs.x[train], pairs.is_event[train])
    train_pos = np.flatnonzero(train & (pairs.is_event == 1.0))
    vote = VoteModel(pairs.x.shape[1], epochs=30, seed=0)
    vote.fit(pairs.x[train_pos], pairs.votes[train_pos])
    timing = TimingModel(pairs.x.shape[1], epochs=30, seed=0)
    timing.fit(
        pairs.x[train], pairs.times[train], pairs.horizons[train],
        pairs.is_event[train],
    )
    test_idx = np.flatnonzero(test)
    # Restrict to test rows for the report.
    from repro.core.evaluation import PairDataset

    test_pairs = PairDataset(
        x=pairs.x[test_idx],
        users=pairs.users[test_idx],
        thread_ids=pairs.thread_ids[test_idx],
        votes=pairs.votes[test_idx],
        times=pairs.times[test_idx],
        horizons=pairs.horizons[test_idx],
        is_event=pairs.is_event[test_idx],
    )
    buckets = cold_start_report(
        test_pairs,
        extractor.spec,
        answer.predict_proba(test_pairs.x),
        vote.predict(test_pairs.x),
        timing.predict(test_pairs.x, test_pairs.horizons),
    )
    return buckets, test_pairs


class TestColdStartReport:
    def test_bands_cover_all_pairs(self, report):
        buckets, test_pairs = report
        assert sum(b.n_pairs for b in buckets) == test_pairs.n_pairs

    def test_labels(self, report):
        buckets, _ = report
        assert [b.label for b in buckets] == [
            "cold (0)",
            "thin (1-2)",
            "warm (3+)",
        ]

    def test_metrics_finite_where_defined(self, report):
        buckets, _ = report
        for b in buckets:
            if b.n_positive > 0:
                assert np.isfinite(b.vote_rmse)
                assert np.isfinite(b.timing_rmse)

    def test_warm_band_has_answer_signal(self, report):
        buckets, _ = report
        warm = buckets[-1]
        if warm.n_pairs < 20 or np.isnan(warm.answer_auc):
            pytest.skip("too few warm pairs at this scale")
        assert warm.answer_auc > 0.5

    def test_length_mismatch_rejected(self, report, extractor):
        _, test_pairs = report
        with pytest.raises(ValueError):
            cold_start_report(
                test_pairs,
                extractor.spec,
                np.zeros(3),
                np.zeros(test_pairs.n_pairs),
                np.zeros(test_pairs.n_pairs),
            )
