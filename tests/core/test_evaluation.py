"""Tests for repro.core.evaluation — the experiment harness."""

import numpy as np
import pytest

from repro.core.evaluation import (
    MetricSummary,
    TaskResult,
    build_pair_dataset,
    run_table1,
)
from repro.forum.dataset import ForumDataset


class TestPairDataset:
    def test_composition(self, pairs, dataset):
        n_pos = len(dataset.answer_records())
        assert pairs.n_pairs == 2 * n_pos
        assert pairs.is_event.sum() == n_pos
        assert len(pairs.positives) == n_pos

    def test_positive_rows_have_times(self, pairs):
        pos = pairs.positives
        assert np.all(pairs.times[pos] > 0)

    def test_horizons_positive(self, pairs):
        assert np.all(pairs.horizons > 0)

    def test_keep_columns(self, pairs):
        mask = np.zeros(pairs.x.shape[1], dtype=bool)
        mask[:3] = True
        sub = pairs.keep_columns(mask)
        assert sub.x.shape == (pairs.n_pairs, 3)
        np.testing.assert_array_equal(sub.votes, pairs.votes)

    def test_negative_ratio(self, dataset, extractor):
        pairs = build_pair_dataset(dataset, extractor, negative_ratio=2.0, seed=0)
        n_pos = int(pairs.is_event.sum())
        n_neg = pairs.n_pairs - n_pos
        assert n_neg == 2 * n_pos

    def test_empty_dataset_raises(self, extractor):
        with pytest.raises(ValueError):
            build_pair_dataset(ForumDataset([]), extractor)


class TestMetricSummary:
    def test_of(self):
        s = MetricSummary.of([1.0, 2.0, 3.0])
        assert s.mean == pytest.approx(2.0)
        assert s.std == pytest.approx(np.std([1.0, 2.0, 3.0]))

    def test_improvement_direction(self):
        higher = TaskResult(
            MetricSummary(0.9, 0.0), MetricSummary(0.6, 0.0), higher_is_better=True
        )
        assert higher.improvement_percent == pytest.approx(50.0)
        lower = TaskResult(
            MetricSummary(1.0, 0.0), MetricSummary(2.0, 0.0), higher_is_better=False
        )
        assert lower.improvement_percent == pytest.approx(50.0)


class TestTable1:
    @pytest.fixture(scope="class")
    def result(self, dataset, predictor_config, extractor, pairs):
        return run_table1(
            dataset,
            config=predictor_config,
            n_folds=3,
            n_repeats=1,
            extractor=extractor,
            pairs=pairs,
        )

    def test_model_beats_answer_baseline(self, result):
        # The paper's central claim, at reduced scale: the feature model
        # outperforms SPARFA on AUC.
        assert result.answer.model.mean > result.answer.baseline.mean
        assert result.answer.model.mean > 0.75

    def test_vote_model_competitive(self, result):
        # At this tiny scale we only require the model to be in the same
        # league as MF; the full-scale benchmark asserts a win.
        assert result.votes.model.mean < 1.5 * result.votes.baseline.mean

    def test_timing_model_competitive(self, result):
        assert result.timing.model.mean < 1.5 * result.timing.baseline.mean

    def test_rows_format(self, result):
        rows = result.as_rows()
        assert [r[0] for r in rows] == ["a_uq", "v_uq", "r_uq"]
        assert rows[0][1] == "AUC"


class TestSignificance:
    def test_per_fold_values_recorded(self, dataset, predictor_config, extractor, pairs):
        result = run_table1(
            dataset,
            config=predictor_config,
            n_folds=3,
            n_repeats=1,
            extractor=extractor,
            pairs=pairs,
        )
        assert len(result.answer.model_values) == 3
        assert len(result.answer.baseline_values) == 3
        test = result.answer.significance()
        assert 0.0 <= test.p_value <= 1.0
        low, high = result.answer.model_confidence_interval()
        assert low <= result.answer.model.mean <= high

    def test_significance_requires_folds(self):
        from repro.core.evaluation import MetricSummary, TaskResult

        bare = TaskResult(
            MetricSummary(1.0, 0.0), MetricSummary(2.0, 0.0), higher_is_better=False
        )
        with pytest.raises(ValueError):
            bare.significance()
