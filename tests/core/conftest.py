"""Shared fixtures for core tests: a small preprocessed forum + extractor."""

import pytest

from repro.core import PredictorConfig, build_extractor, build_pair_dataset
from repro.forum import ForumConfig, generate_forum

SMALL_CONFIG = ForumConfig(n_users=250, n_questions=320, activity_tail=1.4)
PREDICTOR_CONFIG = PredictorConfig(
    n_topics=4,
    vote_epochs=60,
    timing_epochs=60,
    betweenness_sample_size=100,
)


@pytest.fixture(scope="session")
def forum():
    return generate_forum(SMALL_CONFIG, seed=7)


@pytest.fixture(scope="session")
def dataset(forum):
    clean, _ = forum.dataset.preprocess()
    return clean


@pytest.fixture(scope="session")
def predictor_config():
    return PREDICTOR_CONFIG


@pytest.fixture(scope="session")
def extractor(dataset):
    return build_extractor(dataset, PREDICTOR_CONFIG)


@pytest.fixture(scope="session")
def pairs(dataset, extractor):
    return build_pair_dataset(dataset, extractor, seed=0)
