"""Incremental online refits must reproduce the full-rebuild loop exactly.

The incremental strategy exists purely as an optimisation: each refit
freezes the long-lived state instead of rebuilding the window, but both
paths construct their extractor through ``ForumState.freeze`` over the
same threads with the same topic context, so every ranking, every routed
score and every metric must come out identical to a warm full rebuild.
"""

import numpy as np
import pytest

from repro.core.online import OnlineConfig, OnlineRecommendationLoop

ONLINE_KWARGS = dict(
    refit_interval_hours=240.0,
    window_hours=480.0,
    warmup_hours=240.0,
    epsilon=0.2,
)


def run(dataset, predictor_config, **overrides):
    loop = OnlineRecommendationLoop(
        predictor_config, OnlineConfig(**ONLINE_KWARGS, **overrides)
    )
    return loop.run(dataset)


class TestStrategyConfig:
    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="refit_strategy"):
            OnlineConfig(refit_strategy="bogus")

    def test_incremental_requires_warm_start(self):
        with pytest.raises(ValueError, match="warm_start"):
            OnlineConfig(refit_strategy="incremental", warm_start=False)


@pytest.mark.slow
class TestEquivalence:
    @pytest.fixture(scope="class")
    def reports(self, dataset, predictor_config):
        incremental = run(
            dataset, predictor_config, refit_strategy="incremental"
        )
        rebuild = run(
            dataset,
            predictor_config,
            refit_strategy="rebuild",
            warm_start=True,
        )
        return incremental, rebuild

    def test_counters_identical(self, reports):
        incremental, rebuild = reports
        assert incremental.n_questions_seen == rebuild.n_questions_seen
        assert incremental.n_routed == rebuild.n_routed
        assert incremental.n_refits == rebuild.n_refits
        assert incremental.n_refits >= 2

    def test_rankings_identical(self, reports):
        incremental, rebuild = reports
        assert len(incremental.rankings) == len(rebuild.rankings)
        for (rank_a, actual_a), (rank_b, actual_b) in zip(
            incremental.rankings, rebuild.rankings
        ):
            assert rank_a == rank_b
            assert actual_a == actual_b

    def test_routed_scores_identical(self, reports):
        incremental, rebuild = reports
        np.testing.assert_array_equal(
            np.asarray(incremental.routed_scores),
            np.asarray(rebuild.routed_scores),
        )

    def test_metrics_identical(self, reports):
        incremental, rebuild = reports
        assert incremental.hit_rate_at_1 == rebuild.hit_rate_at_1
        assert incremental.precision_at(5) == rebuild.precision_at(5)
        assert incremental.mrr == rebuild.mrr
        assert incremental.ndcg_at(5) == rebuild.ndcg_at(5)
