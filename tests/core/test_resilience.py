"""Tests for repro.core.resilience — fault injection and degradation.

The differential harness at the bottom is the heart of this file: the
same dataset is replayed clean, through the zero-fault resilient path
(which must be bit-identical to the plain loop), and through each fault
class in isolation, reconciling what the injector recorded against what
the hardened loop did about it.
"""

import math

import numpy as np
import pytest

from repro.core.online import OnlineConfig, OnlineRecommendationLoop
from repro.core.pipeline import PredictorConfig
from repro.core.resilience import (
    FAULT_KINDS,
    DegradationReport,
    FaultInjector,
    FaultPlan,
    NonFiniteFeatureError,
    ResilienceConfig,
    StreamGuard,
)
from repro.forum.dataset import ForumDataset
from repro.forum.generator import ForumConfig, generate_forum
from repro.forum.models import Post, Thread

# A deliberately small stream: the differential harness replays it many
# times, so it must stay cheap while still spanning several refits.
FAST_PREDICTOR = PredictorConfig(
    n_topics=2, vote_epochs=30, timing_epochs=30, betweenness_sample_size=50
)
FAST_ONLINE = OnlineConfig(
    refit_interval_hours=96.0, window_hours=360.0, warmup_hours=96.0
)


@pytest.fixture(scope="module")
def stream_dataset():
    forum = generate_forum(
        ForumConfig(n_users=120, n_questions=140, activity_tail=1.4), seed=3
    )
    clean, _ = forum.dataset.preprocess()
    return clean


@pytest.fixture(scope="module")
def plain_report(stream_dataset):
    return OnlineRecommendationLoop(FAST_PREDICTOR, FAST_ONLINE).run(
        stream_dataset
    )


def run_resilient(dataset, plan=None, resilience=None):
    loop = OnlineRecommendationLoop(
        FAST_PREDICTOR, FAST_ONLINE, resilience or ResilienceConfig()
    )
    return loop.run(dataset, fault_plan=plan)


def post(pid, tid, author, ts, votes=0, body="<p>x</p>", question=False):
    return Post(
        post_id=pid,
        thread_id=tid,
        author=author,
        timestamp=ts,
        votes=votes,
        body=body,
        is_question=question,
    )


class TestFaultPlan:
    def test_rates_validated(self):
        with pytest.raises(ValueError, match="duplicate_rate"):
            FaultPlan(duplicate_rate=1.5)
        with pytest.raises(ValueError, match="max_delay_slots"):
            FaultPlan(max_delay_slots=0)

    def test_is_zero(self):
        assert FaultPlan().is_zero
        assert not FaultPlan(truncate_rate=0.1).is_zero


class TestFaultInjector:
    def test_zero_plan_is_identity(self, stream_dataset):
        injector = FaultInjector(FaultPlan(seed=4))
        stream = injector.perturb(stream_dataset)
        # The identical objects in the identical order, nothing recorded.
        assert all(a is b for a, b in zip(stream, stream_dataset))
        assert len(stream) == len(stream_dataset)
        assert injector.records == []

    def test_deterministic_under_fixed_seed(self, stream_dataset):
        plan = FaultPlan(
            seed=11,
            out_of_order_rate=0.2,
            duplicate_rate=0.1,
            missing_field_rate=0.1,
            clock_skew_rate=0.1,
            truncate_rate=0.1,
        )
        a, b = FaultInjector(plan), FaultInjector(plan)
        stream_a, stream_b = a.perturb(stream_dataset), b.perturb(stream_dataset)
        assert a.records == b.records
        assert [t.thread_id for t in stream_a] == [t.thread_id for t in stream_b]
        assert [len(t.answers) for t in stream_a] == [
            len(t.answers) for t in stream_b
        ]

    def test_different_seeds_differ(self, stream_dataset):
        plan = FaultPlan(seed=1, duplicate_rate=0.3, out_of_order_rate=0.3)
        other = FaultPlan(seed=2, duplicate_rate=0.3, out_of_order_rate=0.3)
        assert (
            FaultInjector(plan).perturb(stream_dataset)
            != FaultInjector(other).perturb(stream_dataset)
        )

    def test_event_count_conservation(self, stream_dataset):
        injector = FaultInjector(FaultPlan(seed=7, duplicate_rate=0.25))
        stream = injector.perturb(stream_dataset)
        duplicates = injector.injected_counts().get("duplicate", 0)
        assert duplicates > 0
        assert len(stream) == len(stream_dataset) + duplicates

    def test_input_threads_never_mutated(self, stream_dataset):
        before = [
            (t.thread_id, t.created_at, len(t.answers))
            for t in stream_dataset
        ]
        FaultInjector(
            FaultPlan(
                seed=5,
                truncate_rate=0.5,
                clock_skew_rate=0.5,
                missing_field_rate=0.5,
            )
        ).perturb(stream_dataset)
        after = [
            (t.thread_id, t.created_at, len(t.answers))
            for t in stream_dataset
        ]
        assert before == after

    def test_every_class_injectable(self, stream_dataset):
        plan = FaultPlan(
            seed=0,
            out_of_order_rate=0.3,
            duplicate_rate=0.3,
            missing_field_rate=0.3,
            clock_skew_rate=0.3,
            truncate_rate=0.3,
        )
        injector = FaultInjector(plan)
        injector.perturb(stream_dataset)
        counts = injector.injected_counts()
        for kind in FAULT_KINDS:
            assert counts.get(kind, 0) > 0, kind


class TestStreamGuard:
    def test_clean_event_passes_through_as_same_object(self):
        guard = StreamGuard()
        thread = Thread(
            question=post(0, 0, 1, 5.0, question=True),
            answers=[post(1, 0, 2, 6.0)],
        )
        assert guard.admit(thread) is thread
        assert guard.report.ok
        assert guard.n_admitted == 1

    def test_nonfinite_question_time_quarantined(self):
        guard = StreamGuard()
        thread = Thread(
            question=post(0, 0, 1, float("nan"), question=True)
        )
        assert guard.admit(thread) is None
        assert guard.quarantine == [thread]
        assert guard.report.count("quarantined") == 1

    def test_quarantine_bounded(self):
        guard = StreamGuard(ResilienceConfig(quarantine_limit=2))
        for i in range(5):
            guard.admit(
                Thread(question=post(i, i, 1, float("nan"), question=True))
            )
        assert len(guard.quarantine) == 2
        assert guard.report.count("quarantined") == 5

    def test_duplicate_thread_dropped(self):
        guard = StreamGuard()
        thread = Thread(question=post(0, 0, 1, 5.0, question=True))
        assert guard.admit(thread) is thread
        again = Thread(question=post(9, 0, 1, 6.0, question=True))
        assert guard.admit(again) is None
        assert guard.report.count("dropped:duplicate_thread") == 1

    def test_late_arrival_clamped_preserving_response_times(self):
        guard = StreamGuard()
        guard.admit(Thread(question=post(0, 0, 1, 10.0, question=True)))
        late = Thread(
            question=post(10, 1, 2, 7.0, question=True),
            answers=[post(11, 1, 3, 9.0)],
        )
        admitted = guard.admit(late)
        assert admitted is not None
        assert admitted.created_at == 10.0  # clamped onto the stream clock
        assert admitted.answers[0].timestamp - admitted.created_at == (
            pytest.approx(2.0)
        )
        assert guard.report.count("repaired:late_arrival_clamped") == 1
        assert guard.last_created == 10.0

    def test_early_and_self_answers_dropped(self):
        guard = StreamGuard()
        thread = Thread(
            question=post(0, 0, 1, 10.0, question=True),
            answers=[
                post(1, 0, 2, 8.0),  # predates the question
                post(2, 0, 1, 12.0),  # self-answer
                post(3, 0, 3, 11.0),  # fine
            ],
        )
        admitted = guard.admit(thread)
        assert [a.post_id for a in admitted.answers] == [3]
        assert guard.report.count("repaired:early_answer_dropped") == 1
        assert guard.report.count("repaired:self_answer_dropped") == 1

    def test_nonfinite_fields_repaired(self):
        guard = StreamGuard()
        thread = Thread(
            question=post(0, 0, 1, 10.0, votes=float("nan"), question=True),
            answers=[
                post(1, 0, 2, float("nan")),
                post(2, 0, 3, 11.0, votes=float("inf")),
            ],
        )
        admitted = guard.admit(thread)
        assert admitted.question.votes == 0
        assert [a.post_id for a in admitted.answers] == [2]
        assert admitted.answers[0].votes == 0
        assert guard.report.count("repaired:votes_coerced") == 2
        assert guard.report.count("repaired:answer_nonfinite_time_dropped") == 1
        for p in admitted.posts:
            assert math.isfinite(p.timestamp)
            assert math.isfinite(float(p.votes))

    def test_admitted_timestamps_monotone(self, stream_dataset):
        plan = FaultPlan(seed=9, out_of_order_rate=0.4, clock_skew_rate=0.2)
        stream = FaultInjector(plan).perturb(stream_dataset)
        guard = StreamGuard()
        last = float("-inf")
        for event in stream:
            admitted = guard.admit(event)
            if admitted is None:
                continue
            assert admitted.created_at >= last
            last = admitted.created_at


class TestDegradationReport:
    def test_counts_and_summary(self):
        report = DegradationReport()
        report.add(0, 1, "repaired:late_arrival_clamped")
        report.add(1, 2, "dropped:duplicate_thread")
        report.add(2, 3, "repaired:votes_coerced")
        assert report.count("repaired") == 2
        assert report.summary()["dropped:duplicate_thread"] == 1
        assert not report.ok

    def test_value_equality(self):
        a, b = DegradationReport(), DegradationReport()
        a.add(0, 1, "repaired:x", "d")
        b.add(0, 1, "repaired:x", "d")
        assert a == b
        b.add(1, 2, "dropped:y")
        assert a != b


class TestDifferentialHarness:
    """Clean run vs faulted runs: bounded deltas, full accounting."""

    def test_zero_fault_resilient_is_bit_identical(
        self, stream_dataset, plain_report
    ):
        resilient = run_resilient(stream_dataset)
        assert resilient.n_refits == plain_report.n_refits
        assert resilient.n_questions_seen == plain_report.n_questions_seen
        assert resilient.n_routed == plain_report.n_routed
        assert resilient.rankings == plain_report.rankings
        assert resilient.routed_scores == plain_report.routed_scores
        assert resilient.degradation is not None
        assert resilient.degradation.ok

    def test_zero_fault_plan_matches_no_injector(
        self, stream_dataset, plain_report
    ):
        with_plan = run_resilient(stream_dataset, plan=FaultPlan(seed=123))
        assert with_plan.rankings == plain_report.rankings
        assert with_plan.routed_scores == plain_report.routed_scores
        assert with_plan.degradation.ok

    def test_faulted_replay_deterministic(self, stream_dataset):
        plan = FaultPlan(
            seed=11,
            out_of_order_rate=0.1,
            duplicate_rate=0.05,
            missing_field_rate=0.05,
            clock_skew_rate=0.05,
            truncate_rate=0.05,
        )
        a = run_resilient(stream_dataset, plan=plan)
        b = run_resilient(stream_dataset, plan=plan)
        assert a.n_refits == b.n_refits
        assert a.n_questions_seen == b.n_questions_seen
        assert a.rankings == b.rankings
        assert a.routed_scores == b.routed_scores
        assert a.degradation == b.degradation

    @pytest.mark.parametrize(
        "kind,plan",
        [
            ("duplicate", FaultPlan(seed=21, duplicate_rate=0.15)),
            ("out_of_order", FaultPlan(seed=22, out_of_order_rate=0.2)),
            ("missing_field", FaultPlan(seed=23, missing_field_rate=0.2)),
            ("clock_skew", FaultPlan(seed=24, clock_skew_rate=0.2)),
            ("truncated", FaultPlan(seed=25, truncate_rate=0.2)),
        ],
    )
    def test_fault_class_bounded_and_accounted(
        self, stream_dataset, plain_report, kind, plan
    ):
        injector = FaultInjector(plan)
        stream = injector.perturb(stream_dataset)
        injected = injector.injected_counts().get(kind, 0)
        assert injected > 0, f"plan injected no {kind} faults"
        report = run_resilient(stream_dataset, plan=plan)
        degradation = report.degradation
        # No faulted run may raise or emit non-finite predictions.
        assert all(np.isfinite(report.routed_scores))
        # The question stream can only shrink by what was dropped or
        # quarantined; duplicates never inflate it past the clean run.
        not_admitted = degradation.count("quarantined") + degradation.count(
            "dropped"
        )
        assert (
            report.n_questions_seen
            >= plain_report.n_questions_seen - not_admitted
        )
        assert report.n_questions_seen <= plain_report.n_questions_seen
        # Every injected fault shows up in the degradation ledger.
        if kind == "duplicate":
            assert degradation.count("dropped:duplicate_thread") == injected
        elif kind == "out_of_order":
            # Delayed events regress the clock only when another event
            # overtook them; each such regression is clamped.
            assert degradation.count("repaired:late_arrival_clamped") <= (
                injected
            )
            assert degradation.count("quarantined") == 0
        elif kind == "missing_field":
            handled = (
                degradation.count("quarantined:nonfinite_question_time")
                + degradation.count("repaired:answer_nonfinite_time_dropped")
                + degradation.count("repaired:votes_coerced")
                + degradation.count("tolerated:empty_body")
            )
            assert handled == injected
        elif kind == "clock_skew":
            # Skewed answers land before their question and are dropped.
            assert degradation.count("repaired:early_answer_dropped") > 0
        elif kind == "truncated":
            # Truncation is silent at ingestion (a shorter thread is
            # still well-formed); the loop must simply survive it.
            assert degradation.count("quarantined") == 0


class TestRefitRecovery:
    def test_transient_failure_retried(self, stream_dataset):
        loop = OnlineRecommendationLoop(
            FAST_PREDICTOR, FAST_ONLINE, ResilienceConfig(max_refit_retries=2)
        )
        inner = loop._refit
        calls = {"n": 0, "failed": False}

        def flaky(dataset, now):
            calls["n"] += 1
            if calls["n"] == 3 and not calls["failed"]:
                calls["failed"] = True
                raise RuntimeError("transient worker death")
            return inner(dataset, now)

        loop._refit = flaky
        report = loop.run(stream_dataset)
        summary = report.degradation.summary()
        assert summary.get("refit:retry") == 1
        assert "refit:fallback" not in summary
        assert all(np.isfinite(report.routed_scores))

    def test_persistent_failure_falls_back_with_backoff(self, stream_dataset):
        loop = OnlineRecommendationLoop(
            FAST_PREDICTOR, FAST_ONLINE, ResilienceConfig(max_refit_retries=1)
        )
        inner = loop._refit
        calls = {"n": 0}

        def poisoned(dataset, now):
            calls["n"] += 1
            if calls["n"] >= 3:  # every refit after the second one dies
                raise NonFiniteFeatureError("poisoned window")
            return inner(dataset, now)

        loop._refit = poisoned
        report = loop.run(stream_dataset)
        summary = report.degradation.summary()
        assert summary.get("refit:fallback", 0) >= 1
        assert summary.get("refit:backoff_skipped", 0) >= 1
        # Serving never stopped: routing continued on the snapshot model.
        assert report.n_routed > 0
        assert all(np.isfinite(report.routed_scores))

    def test_nonfinite_features_rejected_by_pipeline(self, stream_dataset):
        from repro.core.pipeline import ForumPredictor

        threads = list(stream_dataset.threads[:40])
        victim = threads[5]
        threads[5] = Thread(
            question=post(
                victim.question.post_id,
                victim.thread_id,
                victim.asker,
                victim.created_at,
                votes=float("nan"),
                question=True,
            ),
            answers=list(victim.answers),
        )
        with pytest.raises(NonFiniteFeatureError, match="non-finite"):
            ForumPredictor(FAST_PREDICTOR).fit(ForumDataset(threads))
