"""Parallel per-task model fits: determinism, perf merging, warm resets."""

import numpy as np
import pytest

from repro import perf
from repro.core.pipeline import ForumPredictor
from repro.core.timing_model import TimingModel
from repro.core.vote_model import VoteModel


def _probe_pairs(dataset, n=25):
    records = dataset.answer_records()[:n]
    return [(r.user, dataset.thread(r.thread_id)) for r in records]


@pytest.mark.slow
class TestParallelFitDeterminism:
    def test_fit_parallel_equals_serial_bitwise(
        self, dataset, predictor_config
    ):
        """The three task fits are deterministic and independent, so
        dispatching them to worker processes must reproduce the serial
        predictions bit for bit."""
        probe = _probe_pairs(dataset)
        serial = ForumPredictor(predictor_config).fit(dataset, n_jobs=1)
        parallel = ForumPredictor(predictor_config).fit(dataset, n_jobs=4)
        s, p = serial.predict_batch(probe), parallel.predict_batch(probe)
        for key in ("answer", "votes", "response_time"):
            np.testing.assert_array_equal(s[key], p[key])

    def test_warm_refit_parallel_equals_serial_bitwise(
        self, dataset, predictor_config
    ):
        probe = _probe_pairs(dataset)
        serial = ForumPredictor(predictor_config).fit(dataset, n_jobs=1)
        parallel = ForumPredictor(predictor_config).fit(dataset, n_jobs=1)
        serial.fit(dataset, warm_start=True, n_jobs=1)
        parallel.fit(dataset, warm_start=True, n_jobs=4)
        s, p = serial.predict_batch(probe), parallel.predict_batch(probe)
        for key in ("answer", "votes", "response_time"):
            np.testing.assert_array_equal(s[key], p[key])

    def test_env_variable_drives_fit_dispatch(
        self, dataset, predictor_config, monkeypatch
    ):
        monkeypatch.setenv("REPRO_N_JOBS", "2")
        predictor = ForumPredictor(predictor_config).fit(dataset)
        preds = predictor.predict_batch(_probe_pairs(dataset, 5))
        assert np.all(np.isfinite(preds["answer"]))

    def test_parallel_fit_merges_worker_perf_stages(
        self, dataset, predictor_config
    ):
        """Stage timers recorded inside worker processes must land in
        the parent registry, one call per task model."""
        with perf.use_registry() as reg:
            ForumPredictor(predictor_config).fit(dataset, n_jobs=2)
        for stage in (
            "pipeline.fit_answer",
            "pipeline.fit_vote",
            "pipeline.fit_timing",
        ):
            stat = reg.stage(stage)
            assert stat.calls == 1
            assert stat.total_seconds > 0.0
        assert reg.stage("pipeline.fit_models").calls == 1
        assert reg.stage("pipeline.features").calls == 1


class TestOptimizerResetOnWarmRefit:
    """Warm refits fine-tune from the current weights but always restart
    the Adam moments; stale optimizer state must never leak into the
    outcome (the documented engine contract)."""

    def test_vote_warm_refit_ignores_stale_optimizer_state(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(80, 6))
        y = rng.normal(size=80)
        poisoned = VoteModel(6, hidden=(8,), epochs=40, seed=1)
        control = VoteModel(6, hidden=(8,), epochs=40, seed=1)
        poisoned.fit(x, y)
        control.fit(x, y)
        poisoned.optimizer._t = 12345
        for m in poisoned.optimizer._m:
            m += 100.0
        poisoned.fit(x, y, epochs=10)
        control.fit(x, y, epochs=10)
        np.testing.assert_array_equal(poisoned.predict(x), control.predict(x))
        assert poisoned.optimizer._t < 12345

    def test_timing_warm_refit_ignores_stale_optimizer_state(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(60, 5))
        times = rng.uniform(0.1, 3.0, size=60)
        horizons = np.full(60, 10.0)
        is_event = (rng.random(60) < 0.5).astype(float)
        poisoned = TimingModel(
            5, excitation_hidden=(6,), decay="constant", epochs=20, seed=2
        )
        control = TimingModel(
            5, excitation_hidden=(6,), decay="constant", epochs=20, seed=2
        )
        poisoned.fit(x, times, horizons, is_event)
        control.fit(x, times, horizons, is_event)
        poisoned.optimizer._t = 9999
        for m in poisoned.optimizer._m:
            m += 50.0
        poisoned.fit(x, times, horizons, is_event, epochs=5)
        control.fit(x, times, horizons, is_event, epochs=5)
        np.testing.assert_array_equal(
            poisoned.predict(x, horizons), control.predict(x, horizons)
        )
        assert poisoned.optimizer._t < 9999


class TestPerfSnapshotMerge:
    def test_snapshot_round_trips_samples_and_counters(self):
        reg = perf.PerfRegistry()
        reg.add_time("stage.a", 0.25)
        reg.add_time("stage.a", 0.75)
        reg.incr("count.b", 3)
        other = perf.PerfRegistry()
        other.merge(reg.snapshot())
        assert other.samples("stage.a") == [0.25, 0.75]
        assert other.stage("stage.a").calls == 2
        assert other.counter("count.b") == 3

    def test_merge_accumulates_into_existing_stats(self):
        reg = perf.PerfRegistry()
        reg.add_time("stage.a", 1.0)
        reg.incr("count.b", 1)
        snap = reg.snapshot()
        reg.merge(snap)
        assert reg.stage("stage.a").calls == 2
        assert reg.stage("stage.a").total_seconds == 2.0
        assert reg.counter("count.b") == 2
