"""Tests for repro.core.routing — the Sec.-V LP and recommender."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.optimize import linprog

from repro.core.pipeline import ForumPredictor
from repro.core.routing import QuestionRouter, solve_routing_lp


class TestSolveRoutingLP:
    def test_single_user_gets_all(self):
        p = solve_routing_lp(np.array([1.0]), np.array([2.0]))
        np.testing.assert_allclose(p, [1.0])

    def test_best_user_filled_first(self):
        p = solve_routing_lp(np.array([1.0, 5.0, 3.0]), np.array([1.0, 0.4, 1.0]))
        np.testing.assert_allclose(p, [0.0, 0.4, 0.6])

    def test_is_distribution(self):
        p = solve_routing_lp(np.array([0.5, -1.0, 2.0]), np.array([0.7, 0.7, 0.7]))
        assert p.sum() == pytest.approx(1.0)
        assert np.all(p >= 0)

    def test_respects_capacities(self):
        caps = np.array([0.3, 0.3, 0.5])
        p = solve_routing_lp(np.array([3.0, 2.0, 1.0]), caps)
        assert np.all(p <= caps + 1e-12)

    def test_infeasible_raises(self):
        with pytest.raises(ValueError, match="infeasible"):
            solve_routing_lp(np.array([1.0, 2.0]), np.array([0.3, 0.3]))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            solve_routing_lp(np.ones(2), np.ones(3))

    @settings(max_examples=50, deadline=None)
    @given(
        st.integers(1, 8),
        st.integers(0, 10_000),
    )
    def test_matches_scipy_linprog(self, n, seed):
        """The greedy solution must achieve scipy's optimal objective."""
        rng = np.random.default_rng(seed)
        scores = rng.normal(size=n)
        caps = rng.uniform(0.1, 1.0, size=n)
        if caps.sum() < 1.0:
            caps = caps / caps.sum() * 1.5
        ours = solve_routing_lp(scores, caps)
        res = linprog(
            -scores,
            A_eq=np.ones((1, n)),
            b_eq=[1.0],
            bounds=[(0, c) for c in caps],
            method="highs",
        )
        assert res.success
        assert scores @ ours == pytest.approx(-res.fun, abs=1e-9)


class TestQuestionRouter:
    @pytest.fixture(scope="class")
    def router(self, dataset, predictor_config):
        predictor = ForumPredictor(predictor_config).fit(dataset)
        return QuestionRouter(predictor, epsilon=0.3)

    def test_recommendation_is_distribution(self, router, dataset):
        thread = dataset.threads[-1]
        candidates = list(dataset.answerers)[:30]
        result = router.recommend(thread, candidates)
        if result is None:
            pytest.skip("no eligible candidates at this scale")
        assert result.probabilities.sum() == pytest.approx(1.0)
        assert np.all(result.probabilities >= 0)
        assert len(result.users) == len(result.probabilities)

    def test_eligibility_threshold(self, router, dataset):
        thread = dataset.threads[-1]
        candidates = list(dataset.answerers)[:30]
        result = router.recommend(thread, candidates)
        if result is None:
            pytest.skip("no eligible candidates at this scale")
        assert np.all(result.predictions["answer"] >= router.epsilon)

    def test_load_constraint_respected(self, router, dataset):
        thread = dataset.threads[-1]
        candidates = list(dataset.answerers)[:30]
        base = router.recommend(thread, candidates)
        if base is None or len(base.users) < 2:
            pytest.skip("not enough eligible candidates")
        # Saturate the top user's load; they must get zero probability.
        top_user = base.ranked_users()[0][0]
        loaded = router.recommend(
            thread, candidates, recent_load={top_user: 10}
        )
        if loaded is not None:
            idx = np.flatnonzero(loaded.users == top_user)
            if idx.size:
                assert loaded.probabilities[idx[0]] == 0.0

    def test_tradeoff_changes_scores(self, router, dataset):
        thread = dataset.threads[-1]
        candidates = list(dataset.answerers)[:30]
        fast = router.recommend(thread, candidates, tradeoff=10.0)
        quality = router.recommend(thread, candidates, tradeoff=0.0)
        if fast is None or quality is None:
            pytest.skip("no eligible candidates")
        assert not np.allclose(fast.scores, quality.scores)

    def test_empty_candidates(self, router, dataset):
        assert router.recommend(dataset.threads[0], []) is None

    def test_draw_returns_eligible_user(self, router, dataset):
        thread = dataset.threads[-1]
        candidates = list(dataset.answerers)[:30]
        result = router.recommend(thread, candidates)
        if result is None:
            pytest.skip("no eligible candidates")
        rng = np.random.default_rng(0)
        assert result.draw(rng) in set(result.users.tolist())

    def test_recent_load_window(self, router, dataset):
        now = dataset.duration_hours
        load = router.recent_load(dataset, now)
        assert all(v >= 1 for v in load.values())

    def test_invalid_epsilon(self, dataset, predictor_config):
        predictor = ForumPredictor(predictor_config)
        with pytest.raises(ValueError):
            QuestionRouter(predictor, epsilon=1.5)
