"""Tests for repro.core.online — the streaming deployment loop."""

import numpy as np
import pytest

from repro.core.online import OnlineConfig, OnlineRecommendationLoop, OnlineReport


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"refit_interval_hours": 0},
            {"window_hours": -1},
            {"warmup_hours": -1},
            {"top_k": 0},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            OnlineConfig(**kwargs)


class TestReport:
    def test_empty_report_nan_metrics(self):
        report = OnlineReport()
        assert np.isnan(report.hit_rate_at_1)
        assert np.isnan(report.mrr)

    def test_metrics_from_rankings(self):
        report = OnlineReport(
            rankings=[([1, 2, 3], {1}), ([4, 5, 6], {5})]
        )
        assert report.hit_rate_at_1 == pytest.approx(0.5)
        assert report.mrr == pytest.approx((1.0 + 0.5) / 2)
        assert 0.0 <= report.ndcg_at(3) <= 1.0
        assert report.precision_at(3) == pytest.approx(
            (1 / 3 + 1 / 3) / 2
        )


class TestLoop:
    @pytest.fixture(scope="class")
    def report(self, dataset, predictor_config):
        loop = OnlineRecommendationLoop(
            predictor_config,
            OnlineConfig(
                refit_interval_hours=240.0,
                window_hours=480.0,
                warmup_hours=240.0,
                epsilon=0.2,
            ),
        )
        return loop.run(dataset)

    def test_loop_routes_questions(self, report):
        assert report.n_refits >= 1
        assert report.n_questions_seen > 0
        assert report.n_routed > 0
        assert report.n_routed <= report.n_questions_seen

    def test_rankings_recorded(self, report):
        assert report.rankings
        for ranked, actual in report.rankings:
            assert len(ranked) >= 1
            assert actual  # only answered questions are scored

    def test_beats_random_ranking(self, report, dataset):
        """The propensity ranking must beat chance at finding answerers.

        Ranking *within* the active answerer pool is far harder than the
        offline pair-classification task (every candidate is an active
        user), so the bar is a 2x improvement over the chance hit rate.
        """
        pool = len(dataset.answerers)
        mean_relevant = float(
            np.mean([len(actual) for _, actual in report.rankings])
        )
        chance_p5 = mean_relevant / pool  # per-slot chance of a hit
        assert report.mrr > 0.0
        assert report.precision_at(5) > 2.0 * chance_p5

    def test_routed_scores_recorded(self, report):
        assert len(report.routed_scores) == report.n_routed
        assert all(np.isfinite(s) for s in report.routed_scores)

    def test_no_future_leakage_warmup(self, report, dataset):
        """No question before the warmup horizon may be scored."""
        # Indirect check: number of seen questions is below the total.
        assert report.n_questions_seen < len(dataset)
