"""Tests for repro.core.retrieval — two-stage candidate retrieval.

The load-bearing guarantees:

* with every budget unbounded, two-stage routing is *bit-identical* to
  the dense path (same rankings, same routed scores) on the Tier-1
  synthetic forum;
* every generator and the fused pool are deterministic under seed and
  independent of the append/evict history (and of thread permutations
  fed through ``forum.repair``) that produced the window;
* the blockwise-argpartition LP fill and the vectorized capacity
  gathering match their straightforward reference implementations
  exactly, ties included;
* the incremental :class:`UserLoadTracker` reproduces
  ``QuestionRouter.recent_load`` at every query time.
"""

import numpy as np
import pytest

from repro.core import OnlineConfig, OnlineRecommendationLoop
from repro.core.retrieval import (
    CandidateRetriever,
    MFEmbeddingIndex,
    RecencyIndex,
    RetrievalConfig,
    TopicInvertedIndex,
    candidate_recall,
    reciprocal_rank_fusion,
    top_k_by_score,
)
from repro.core.routing import (
    QuestionRouter,
    UserLoadTracker,
    _gather_from_dict,
    solve_routing_lp,
)
from repro.core.state import ForumState
from repro.forum.dataset import ForumDataset
from repro.forum.repair import repair_dataset


class TestRetrievalConfig:
    def test_defaults_are_two_stage(self):
        cfg = RetrievalConfig()
        assert cfg.mode == "two_stage"
        assert cfg.pool_size is not None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"mode": "sparse"},
            {"topic_top_k": 0},
            {"pool_size": -1},
            {"rrf_k": 0.0},
            {"query_topics": 0},
            {"mf_factors": 0},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            RetrievalConfig(**kwargs)

    def test_exhaustive_unbounds_every_budget(self):
        cfg = RetrievalConfig.exhaustive(seed=5)
        assert cfg.topic_top_k is None
        assert cfg.recency_top_k is None
        assert cfg.mf_top_k is None
        assert cfg.pool_size is None
        assert cfg.seed == 5


class TestTopKByScore:
    def _reference(self, user_ids, scores, k):
        order = np.lexsort((user_ids, -scores))
        ranked = user_ids[order]
        return ranked if k is None else ranked[:k]

    @pytest.mark.parametrize("k", [None, 1, 3, 7, 50, 200])
    def test_matches_lexsort_with_ties(self, k):
        rng = np.random.default_rng(11)
        user_ids = np.unique(rng.integers(0, 10_000, size=120))
        # Few distinct values -> boundary ties are the common case.
        scores = rng.integers(0, 5, size=user_ids.size).astype(float)
        got = top_k_by_score(user_ids, scores, k)
        np.testing.assert_array_equal(
            got, self._reference(user_ids, scores, k)
        )

    def test_all_tied(self):
        user_ids = np.arange(10, 60, 3, dtype=np.int64)
        scores = np.ones(user_ids.size)
        np.testing.assert_array_equal(
            top_k_by_score(user_ids, scores, 4), user_ids[:4]
        )

    def test_empty(self):
        empty = np.empty(0, dtype=np.int64)
        assert top_k_by_score(empty, np.empty(0), 5).size == 0


class TestSolveRoutingLpBlockwise:
    """The argpartition fill vs the plain stable-argsort greedy fill."""

    def _reference(self, scores, capacities):
        capacities = np.clip(np.asarray(capacities, dtype=float), 0.0, None)
        p = np.zeros_like(scores)
        remaining = 1.0
        for u in np.argsort(-scores, kind="stable"):
            take = min(capacities[u], remaining)
            p[u] = take
            remaining -= take
            if remaining <= 1e-15:
                break
        return p

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("n", [65, 200, 700])
    def test_large_instances_bit_identical(self, seed, n):
        rng = np.random.default_rng(seed)
        # Coarse scores force ties across block boundaries.
        scores = rng.integers(0, 8, size=n).astype(float)
        caps = rng.uniform(0.0, 0.5, size=n)
        caps[rng.random(n) < 0.3] = 0.0
        caps[0] += 1.0  # keep the instance feasible
        np.testing.assert_array_equal(
            solve_routing_lp(scores, caps), self._reference(scores, caps)
        )

    def test_mass_spread_over_many_blocks(self):
        rng = np.random.default_rng(9)
        n = 500
        scores = rng.integers(0, 3, size=n).astype(float)
        caps = np.full(n, 0.004)  # needs 250 users to absorb the mass
        np.testing.assert_array_equal(
            solve_routing_lp(scores, caps), self._reference(scores, caps)
        )

    def test_small_instance_unchanged(self):
        scores = np.array([1.0, 3.0, 2.0])
        caps = np.array([1.0, 0.4, 1.0])
        p = solve_routing_lp(scores, caps)
        np.testing.assert_allclose(p, [0.0, 0.4, 0.6])

    def test_infeasible_raises(self):
        with pytest.raises(ValueError):
            solve_routing_lp(np.ones(100), np.full(100, 0.001))


class TestGatherFromDict:
    @pytest.mark.parametrize("seed", [0, 4])
    def test_matches_python_gather(self, seed):
        rng = np.random.default_rng(seed)
        users = rng.integers(0, 500, size=80).astype(np.int64)
        mapping = {
            int(u): float(rng.normal())
            for u in rng.integers(0, 500, size=60)
        }
        expected = np.array([mapping.get(int(u), 2.5) for u in users])
        np.testing.assert_array_equal(
            _gather_from_dict(users, mapping, 2.5), expected
        )

    def test_empty_mapping(self):
        users = np.array([3, 1, 2], dtype=np.int64)
        np.testing.assert_array_equal(
            _gather_from_dict(users, {}, 1.5), np.full(3, 1.5)
        )


class TestUserLoadTracker:
    def test_matches_recent_load_scan(self, dataset):
        router = QuestionRouter.__new__(QuestionRouter)
        router.load_window_hours = 24.0
        tracker = UserLoadTracker(window_hours=24.0)
        # Threads fold in whole, so answer events arrive out of order
        # across threads — exactly the replay's insertion pattern.
        for thread in dataset:
            tracker.observe_thread(thread)
        horizon = dataset.duration_hours
        for now in np.linspace(0.0, horizon + 30.0, 13):
            expected = router.recent_load(dataset, float(now))
            assert dict(tracker.counts(float(now))) == expected

    def test_events_expire(self):
        tracker = UserLoadTracker(window_hours=10.0)
        tracker.observe(1, 5.0)
        tracker.observe(1, 12.0)
        tracker.observe(2, 8.0)
        assert tracker.counts(9.0) == {1: 1, 2: 1}
        assert tracker.counts(14.0) == {1: 2, 2: 1}
        assert tracker.counts(21.0) == {1: 1}
        assert tracker.counts(50.0) == {}

    def test_future_events_invisible(self):
        tracker = UserLoadTracker(window_hours=24.0)
        tracker.observe(7, 100.0)
        assert tracker.counts(99.0) == {}
        assert tracker.counts(100.0) == {7: 1}

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            UserLoadTracker(window_hours=0.0)


class TestReciprocalRankFusion:
    def test_cross_list_agreement_wins(self):
        a = np.array([1, 2, 3], dtype=np.int64)
        b = np.array([2, 3, 4], dtype=np.int64)
        pool = reciprocal_rank_fusion([a, b], pool_size=2)
        np.testing.assert_array_equal(pool, [2, 3])

    def test_pool_sorted_ascending(self):
        lists = [np.array([9, 1, 5], dtype=np.int64)]
        pool = reciprocal_rank_fusion(lists)
        np.testing.assert_array_equal(pool, [1, 5, 9])

    def test_tie_breaks_by_user_id(self):
        a = np.array([8], dtype=np.int64)
        b = np.array([3], dtype=np.int64)
        pool = reciprocal_rank_fusion([a, b], pool_size=1)
        np.testing.assert_array_equal(pool, [3])

    def test_empty(self):
        assert reciprocal_rank_fusion([]).size == 0


class TestCandidateRecall:
    def test_values(self):
        pool = np.array([1, 2, 3], dtype=np.int64)
        assert candidate_recall(pool, np.array([2, 3])) == 1.0
        assert candidate_recall(pool, np.array([2, 9])) == 0.5
        assert candidate_recall(pool, np.empty(0, dtype=np.int64)) == 1.0


class TestRecencyIndex:
    def test_ranking_order(self):
        index = RecencyIndex()
        index.observe(5, 100, 10.0)
        index.observe(3, 101, 10.0)  # two answers -> outranks any count-1 user
        index.observe(3, 102, 4.0)
        index.observe(9, 103, 20.0)  # count ties broken by latest, then id
        np.testing.assert_array_equal(index.query(None), [3, 9, 5])
        np.testing.assert_array_equal(index.query(2), [3, 9])

    def test_count_tie_breaks_by_latest_then_id(self):
        index = RecencyIndex()
        index.observe(7, 200, 15.0)
        index.observe(2, 201, 15.0)
        index.observe(4, 202, 30.0)
        np.testing.assert_array_equal(index.query(None), [4, 2, 7])

    def test_forget_restores_aggregate(self):
        index = RecencyIndex()
        index.observe(5, 100, 10.0)
        index.observe(5, 101, 30.0)
        index.forget(5, 101)
        reference = RecencyIndex()
        reference.observe(5, 100, 10.0)
        np.testing.assert_array_equal(index.query(None), reference.query(None))
        index.forget(5, 100)
        assert len(index) == 0
        assert index.query(None).size == 0


class TestTopicInvertedIndex:
    def _small(self):
        rng = np.random.default_rng(2)
        user_ids = np.arange(0, 40, 2, dtype=np.int64)
        topics = rng.dirichlet(np.ones(6), size=user_ids.size)
        return TopicInvertedIndex(user_ids, topics)

    def test_requires_ascending_ids(self):
        with pytest.raises(ValueError):
            TopicInvertedIndex(
                np.array([3, 1], dtype=np.int64), np.ones((2, 2))
            )

    def test_full_query_is_exact_ranking(self):
        index = self._small()
        theta = np.random.default_rng(3).dirichlet(np.ones(6))
        scores = index.user_topics @ theta
        expected = index.user_ids[np.lexsort((index.user_ids, -scores))]
        np.testing.assert_array_equal(index.query(theta, None), expected)

    def test_expanding_everything_matches_full_path(self):
        index = self._small()
        index.build_postings()
        theta = np.random.default_rng(4).dirichlet(np.ones(6))
        full = index.query(theta, None)[:5]
        expanded = index.query(
            theta, 5, query_topics=6, per_topic=index.user_ids.size
        )
        np.testing.assert_array_equal(expanded, full)

    def test_update_users_rewrites_rows(self):
        index = self._small()
        index.build_postings()
        new_row = np.full((1, 6), 1.0 / 6.0)
        assert index.update_users(np.array([4], dtype=np.int64), new_row) == 1
        np.testing.assert_array_equal(index.user_topics[2], new_row[0])
        with pytest.raises(KeyError):
            index.update_users(np.array([5], dtype=np.int64), new_row)

    def test_parallel_postings_bit_identical(self):
        serial = self._small()
        serial.build_postings(n_jobs=1)
        parallel = self._small()
        parallel.build_postings(n_jobs=2)
        for topic in range(serial.n_topics):
            np.testing.assert_array_equal(
                serial._postings[topic], parallel._postings[topic]
            )


class TestMFEmbeddingIndex:
    def _triples(self, seed=0):
        rng = np.random.default_rng(seed)
        users = rng.integers(0, 30, size=200)
        threads = rng.integers(100, 160, size=200)
        votes = rng.integers(-2, 8, size=200).astype(float)
        topics = {
            int(t): rng.dirichlet(np.ones(4))
            for t in np.unique(threads)
        }
        return users, threads, votes, topics

    def test_deterministic_under_seed(self):
        users, threads, votes, topics = self._triples()
        a = MFEmbeddingIndex(seed=3).fit(users, threads, votes, topics)
        b = MFEmbeddingIndex(seed=3).fit(users, threads, votes, topics)
        theta = np.random.default_rng(1).dirichlet(np.ones(4))
        np.testing.assert_array_equal(a.query(theta, 10), b.query(theta, 10))

    def test_top_k_bound_and_membership(self):
        users, threads, votes, topics = self._triples()
        index = MFEmbeddingIndex().fit(users, threads, votes, topics)
        theta = np.random.default_rng(2).dirichlet(np.ones(4))
        got = index.query(theta, 7)
        assert got.size == 7
        assert np.isin(got, np.unique(users)).all()

    def test_warm_start_reuses_factors(self):
        users, threads, votes, topics = self._triples()
        index = MFEmbeddingIndex(n_iter=30).fit(users, threads, votes, topics)
        before = index._user_factors.copy()
        index.fit(users, threads, votes, topics)  # warm refit, same data
        assert index.fitted
        # Factors moved from (not reset to) the converged previous fit.
        assert not np.array_equal(index._user_factors, before) or np.allclose(
            index._user_factors, before
        )

    def test_unfitted_query_is_empty(self):
        index = MFEmbeddingIndex()
        assert index.query(np.ones(4), 5).size == 0


@pytest.fixture(scope="module")
def built_retriever(extractor):
    retriever = CandidateRetriever(RetrievalConfig(), extractor.topics)
    retriever.build(extractor.frozen, extractor.window)
    return retriever


class TestCandidateRetriever:
    def test_pool_is_sorted_candidate_subset(self, built_retriever, dataset):
        candidates = sorted(dataset.answerers)
        thread = dataset.threads[-1]
        pool = built_retriever.pool(thread, candidates)
        assert np.all(np.diff(pool) > 0)
        assert np.isin(pool, candidates).all()
        assert 0 < pool.size <= len(candidates)

    def test_unknown_candidates_always_kept(self, built_retriever, dataset):
        candidates = sorted(dataset.answerers) + [10_000_001, 10_000_002]
        pool = built_retriever.pool(dataset.threads[-1], candidates)
        assert {10_000_001, 10_000_002} <= set(pool.tolist())

    def test_exhaustive_pool_is_whole_candidate_set(
        self, extractor, dataset
    ):
        retriever = CandidateRetriever(
            RetrievalConfig.exhaustive(), extractor.topics
        )
        retriever.build(extractor.frozen, extractor.window)
        candidates = sorted(dataset.answerers)
        for thread in dataset.threads[-5:]:
            pool = retriever.pool(thread, candidates)
            np.testing.assert_array_equal(pool, candidates)

    def test_deterministic_rebuild(self, extractor, dataset):
        pools = []
        candidates = sorted(dataset.answerers)
        for _ in range(2):
            retriever = CandidateRetriever(
                RetrievalConfig(seed=11), extractor.topics
            )
            retriever.build(extractor.frozen, extractor.window)
            pools.append(
                [
                    retriever.pool(t, candidates)
                    for t in dataset.threads[-10:]
                ]
            )
        for a, b in zip(*pools):
            np.testing.assert_array_equal(a, b)

    def test_refresh_diffs_rows_not_rebuild(self, extractor):
        retriever = CandidateRetriever(RetrievalConfig(), extractor.topics)
        retriever.build(extractor.frozen, extractor.window)
        index_before = retriever._topic_index
        retriever.refresh(extractor.frozen, extractor.window)
        # Same user axis, nothing changed: the index object survives.
        assert retriever._topic_index is index_before


class TestStateListenerMaintenance:
    def test_recency_rides_append_and_evict(self, dataset, extractor):
        threads = dataset.threads
        split = len(threads) // 2
        prefix = ForumDataset(threads[:split])
        state = ForumState.from_dataset(prefix, extractor.topics)
        retriever = CandidateRetriever(RetrievalConfig(), extractor.topics)
        retriever.attach(state)
        for thread in threads[split:]:
            state.append(thread)
        cutoff = threads[split].created_at
        state.evict(cutoff)
        # Reference: a fresh index built over the surviving window only.
        reference = CandidateRetriever(RetrievalConfig(), extractor.topics)
        reference._recency.clear()
        for thread in state.to_dataset():
            reference.on_append(thread)
        np.testing.assert_array_equal(
            retriever._recency.query(None), reference._recency.query(None)
        )
        retriever.detach()
        assert retriever._attached is None

    def test_attach_is_idempotent_and_rebinds(self, dataset, extractor):
        state = ForumState.from_dataset(dataset, extractor.topics)
        retriever = CandidateRetriever(RetrievalConfig(), extractor.topics)
        retriever.attach(state)
        before = retriever._recency.query(None)
        retriever.attach(state)  # no-op: same state
        np.testing.assert_array_equal(retriever._recency.query(None), before)
        retriever.detach()


class TestOrderIndependence:
    def test_repair_permutation_same_pools(self, dataset, extractor):
        """Retrieval over a repaired shuffled window == repaired original."""
        threads = list(dataset.threads)
        shuffled = [threads[i] for i in np.random.default_rng(5).permutation(len(threads))]
        repaired_a, _ = repair_dataset(ForumDataset(threads))
        repaired_b, _ = repair_dataset(ForumDataset(shuffled))
        candidates = sorted(dataset.answerers)
        pools = []
        for window in (repaired_a, repaired_b):
            state = ForumState.from_dataset(window, extractor.topics)
            frozen = state.freeze()
            retriever = CandidateRetriever(
                RetrievalConfig(), extractor.topics
            )
            retriever.build(frozen, window)
            pools.append(
                [retriever.pool(t, candidates) for t in window.threads[-10:]]
            )
        for a, b in zip(*pools):
            np.testing.assert_array_equal(a, b)

    def test_history_independence_of_topic_index(self, dataset, extractor):
        """Direct build vs append-then-evict reach identical indices."""
        threads = dataset.threads
        cut = threads[len(threads) // 3].created_at
        window = ForumDataset([t for t in threads if t.created_at >= cut])
        direct = ForumState.from_dataset(window, extractor.topics)
        grown = ForumState.from_dataset(dataset, extractor.topics)
        grown.evict(cut)
        a = CandidateRetriever(RetrievalConfig(), extractor.topics)
        a.build(direct.freeze(), window)
        b = CandidateRetriever(RetrievalConfig(), extractor.topics)
        b.build(grown.freeze(), grown.to_dataset())
        np.testing.assert_array_equal(
            a._topic_index.user_ids, b._topic_index.user_ids
        )
        np.testing.assert_array_equal(
            a._topic_index.user_topics, b._topic_index.user_topics
        )


class TestDenseEquivalence:
    """Two-stage with top-K = all is bit-identical to the dense loop."""

    @pytest.fixture(scope="class")
    def reports(self, dataset, predictor_config):
        def run(retrieval):
            loop = OnlineRecommendationLoop(
                predictor_config,
                OnlineConfig(
                    refit_interval_hours=240.0,
                    window_hours=480.0,
                    warmup_hours=240.0,
                    epsilon=0.2,
                    retrieval=retrieval,
                ),
            )
            return loop.run(dataset)

        return run(None), run(RetrievalConfig.exhaustive())

    def test_reports_bit_identical(self, reports):
        dense, two_stage = reports
        assert dense.n_refits == two_stage.n_refits
        assert dense.n_questions_seen == two_stage.n_questions_seen
        assert dense.n_routed == two_stage.n_routed
        assert len(dense.rankings) == len(two_stage.rankings)
        for (ranked_a, actual_a), (ranked_b, actual_b) in zip(
            dense.rankings, two_stage.rankings
        ):
            assert ranked_a == ranked_b
            assert actual_a == actual_b
        assert dense.routed_scores == two_stage.routed_scores

    def test_metrics_identical(self, reports):
        dense, two_stage = reports
        assert dense.hit_rate_at_1 == two_stage.hit_rate_at_1
        assert dense.mrr == two_stage.mrr
        assert dense.precision_at(5) == two_stage.precision_at(5)


class TestBoundedTwoStageLoop:
    def test_bounded_loop_routes_with_small_pools(
        self, dataset, predictor_config
    ):
        from repro import perf

        retrieval = RetrievalConfig(
            topic_top_k=24, recency_top_k=24, mf_top_k=24, pool_size=48
        )
        loop = OnlineRecommendationLoop(
            predictor_config,
            OnlineConfig(
                refit_interval_hours=240.0,
                window_hours=480.0,
                warmup_hours=240.0,
                epsilon=0.2,
                retrieval=retrieval,
            ),
        )
        with perf.use_registry() as registry:
            report = loop.run(dataset)
        assert report.n_routed > 0
        queries = registry.counter("retrieval.queries")
        pooled = registry.counter("retrieval.pool_users")
        candidates = registry.counter("retrieval.candidate_users")
        assert queries > 0
        # The pools actually prune: fewer scored users than dense would.
        assert pooled < candidates
