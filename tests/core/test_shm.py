"""Named shared-memory transport: publish/attach round trips exactly.

The zero-copy serving path rests on one guarantee: an array published
into a named block and mapped back through its manifest is the same
array — values, dtype, shape — and every block a run creates is gone
from ``/dev/shm`` once its owner unlinks it.  These tests pin both
halves in-process (cross-process identity is covered by the sharding
equivalence suite, which runs the same publish/attach code under
worker processes).
"""

import numpy as np
import pytest

from repro.core.columnar import EventStore
from repro.core.shm import (
    ShmManifest,
    active_shm_names,
    attach,
    publish,
    unlink,
)


def sample_arrays():
    rng = np.random.default_rng(11)
    return {
        "ids": np.arange(101, dtype=np.int32),
        "votes": rng.standard_normal(101).astype(np.float32),
        "times": rng.uniform(0.0, 500.0, size=37),
        "topics": rng.random((13, 8)),
        "empty": np.empty(0, dtype=np.int64),
        "flags": rng.integers(0, 2, size=64).astype(np.uint8),
    }


class TestPublishAttach:
    def test_roundtrip_values_dtypes_shapes(self):
        arrays = sample_arrays()
        shm, manifest = publish(arrays, "roundtrip")
        try:
            other, views = attach(manifest)
            try:
                assert set(views) == set(arrays)
                for name, original in arrays.items():
                    got = views[name]
                    assert got.dtype == original.dtype
                    assert got.shape == original.shape
                    np.testing.assert_array_equal(got, original)
            finally:
                del views
                other.close()
        finally:
            unlink(shm)

    def test_views_are_zero_copy(self):
        arrays = {"x": np.arange(16, dtype=np.float64)}
        shm, manifest = publish(arrays, "zerocopy")
        try:
            other, views = attach(manifest)
            try:
                # A write through one mapping is visible through a
                # fresh mapping of the same block: shared pages, not a
                # pickled copy.
                views["x"][3] = 99.0
                again, views2 = attach(manifest)
                try:
                    assert views2["x"][3] == 99.0
                finally:
                    del views2
                    again.close()
            finally:
                del views
                other.close()
        finally:
            unlink(shm)

    def test_offsets_are_aligned(self):
        _, manifest = publish_and_unlink(sample_arrays(), "aligned")
        for _, (_, _, offset) in manifest.entries.items():
            assert offset % 64 == 0

    def test_manifest_is_picklable(self):
        import pickle

        arrays = {"a": np.arange(4)}
        shm, manifest = publish(arrays, "pickle")
        try:
            clone = pickle.loads(pickle.dumps(manifest))
            assert isinstance(clone, ShmManifest)
            assert clone.name == manifest.name
            assert clone.entries == manifest.entries
            other, views = attach(clone)
            try:
                np.testing.assert_array_equal(views["a"], arrays["a"])
            finally:
                del views
                other.close()
        finally:
            unlink(shm)

    def test_unlink_is_idempotent(self):
        shm, _ = publish({"a": np.arange(3)}, "twice")
        unlink(shm)
        unlink(shm)  # second retirement is a quiet no-op

    def test_active_names_track_lifecycle(self):
        before = set(active_shm_names())
        shm, manifest = publish({"a": np.arange(5)}, "lifecycle")
        try:
            during = set(active_shm_names())
            assert manifest.name.lstrip("/") in during - before
        finally:
            unlink(shm)
        assert manifest.name.lstrip("/") not in set(active_shm_names())


def publish_and_unlink(arrays, tag):
    shm, manifest = publish(arrays, tag)
    unlink(shm)
    return shm, manifest


class TestEventStoreShm:
    @pytest.fixture()
    def store(self):
        store = EventStore(
            {
                "thread_id": np.int32,
                "created_at": np.float64,
                "votes": np.float32,
                "topics": (np.float64, 8),
            },
            segment_rows=16,
        )
        rng = np.random.default_rng(5)
        for start in range(0, 40, 10):  # blocks spanning segments
            n = 10
            store.append(
                thread_id=np.arange(start, start + n, dtype=np.int32),
                created_at=np.arange(start, start + n) * 1.5,
                votes=rng.integers(0, 7, size=n).astype(np.float32),
                topics=rng.random((n, 8)),
            )
        return store

    def test_roundtrip_is_exact(self, store):
        shm, descriptor = store.to_shm("events-test")
        try:
            mapped, handle = EventStore.from_shm(descriptor)
            try:
                assert len(mapped) == len(store)
                for name in ("thread_id", "created_at", "votes", "topics"):
                    np.testing.assert_array_equal(
                        mapped.column(name), store.column(name)
                    )
            finally:
                mapped._segments.clear()
                handle.close()
        finally:
            unlink(shm)

    def test_mapped_views_are_read_only(self, store):
        shm, descriptor = store.to_shm("events-ro")
        try:
            mapped, handle = EventStore.from_shm(descriptor)
            try:
                seg = mapped._segments[0]
                with pytest.raises((ValueError, RuntimeError)):
                    seg["votes"][0] = 123.0
            finally:
                mapped._segments.clear()
                handle.close()
        finally:
            unlink(shm)

    def test_no_blocks_left_behind(self, store):
        before = active_shm_names()
        shm, descriptor = store.to_shm("events-clean")
        mapped, handle = EventStore.from_shm(descriptor)
        mapped._segments.clear()
        handle.close()
        unlink(shm)
        assert active_shm_names() == before
