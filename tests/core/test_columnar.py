"""Columnar event store: segments, dtypes, compaction, overflow guard."""

import numpy as np
import pytest

from repro.core.columnar import (
    AnswerLog,
    EventStore,
    assemble_tables,
    thread_activity,
    user_summary,
)
from repro.core.dtypes import ID_DTYPE, ID_MAX, IdOverflowError, ensure_ids


class TestEventStore:
    def test_append_and_read_back(self):
        store = EventStore({"user": np.int32, "value": np.float32})
        start, stop = store.append(user=[1, 2, 3], value=[0.5, 1.5, 2.5])
        assert (start, stop) == (0, 3)
        assert store.n_rows == 3
        np.testing.assert_array_equal(store.column("user"), [1, 2, 3])
        np.testing.assert_allclose(store.column("value"), [0.5, 1.5, 2.5])

    def test_dtypes_are_pinned(self):
        store = EventStore(
            {"user": np.int32, "value": np.float32, "topics": (np.float32, 3)}
        )
        store.append(
            user=np.array([1], dtype=np.int64),
            value=[1.0],
            topics=np.ones((1, 3), dtype=np.float64),
        )
        assert store.column("user").dtype == np.int32
        assert store.column("value").dtype == np.float32
        assert store.column("topics").dtype == np.float32
        assert store.column("topics").shape == (1, 3)

    def test_scalar_broadcast(self):
        store = EventStore({"thread": np.int32, "t": np.float64})
        store.append(thread=7, t=[1.0, 2.0, 3.0])
        np.testing.assert_array_equal(store.column("thread"), [7, 7, 7])

    def test_growth_across_segment_boundaries(self):
        store = EventStore({"x": np.int32}, segment_rows=4)
        values = np.arange(11, dtype=np.int32)
        store.append(x=values[:3])
        store.append(x=values[3:10])  # splits across two boundaries
        store.append(x=values[10:])
        assert store.n_segments == 3
        np.testing.assert_array_equal(store.column("x"), values)

    def test_single_segment_column_is_zero_copy_view(self):
        store = EventStore({"x": np.int32}, segment_rows=64)
        store.append(x=[1, 2, 3])
        view = store.column("x")
        assert view.base is not None
        assert view.size == 3

    def test_gather(self):
        store = EventStore({"x": np.float64}, segment_rows=4)
        store.append(x=np.arange(10.0))
        np.testing.assert_array_equal(
            store.gather("x", np.array([0, 5, 9])), [0.0, 5.0, 9.0]
        )

    def test_row_ids_are_stable_across_appends(self):
        store = EventStore({"x": np.int32}, segment_rows=2)
        first = store.append(x=[10, 11])
        second = store.append(x=[12])
        assert first == (0, 2)
        assert second == (2, 3)
        assert store.gather("x", np.array([2]))[0] == 12


class TestAnswerLog:
    def _filled(self, k=3):
        log = AnswerLog(k, segment_rows=4)
        log.append_thread(
            users=np.array([5, 9]),
            thread_id=100,
            votes=np.array([2.0, -1.0]),
            timestamps=np.array([1.0, 2.0]),
            response_times=np.array([0.5, 1.5]),
            question_topics=np.full(k, 1.0 / k),
            answer_topics=np.full((2, k), 1.0 / k),
        )
        return log

    def test_column_dtypes(self):
        log = self._filled()
        assert log.column("user").dtype == ID_DTYPE
        assert log.column("thread_id").dtype == ID_DTYPE
        assert log.column("votes").dtype == np.float32
        assert log.column("timestamp").dtype == np.float64
        assert log.column("response_time").dtype == np.float64

    def test_append_block_matches_per_thread_appends(self):
        k = 2
        a, b = AnswerLog(k), AnswerLog(k)
        users = np.array([3, 4, 8], dtype=np.int64)
        tids = np.array([10, 10, 11], dtype=np.int64)
        votes = np.array([1.0, 0.0, 5.0])
        ts = np.array([0.5, 0.7, 1.1])
        rt = np.array([0.1, 0.3, 0.2])
        q = np.array([[0.5, 0.5], [0.5, 0.5], [0.9, 0.1]])
        at = q[::-1].copy()
        a.append_block(users, tids, votes, ts, rt, q, at)
        for sel in (tids == 10, tids == 11):
            b.append_thread(
                users[sel], int(tids[sel][0]), votes[sel], ts[sel],
                rt[sel], q[sel][0], at[sel],
            )
        for name in a.columns:
            np.testing.assert_array_equal(a.column(name), b.column(name))

    def test_compact_keeps_live_rows_in_order(self):
        log = self._filled()
        log.append_thread(
            users=np.array([7]),
            thread_id=101,
            votes=np.array([0.0]),
            timestamps=np.array([3.0]),
            response_times=np.array([1.0]),
            question_topics=np.full(3, 1.0 / 3),
            answer_topics=np.full((1, 3), 1.0 / 3),
        )
        compacted = log.compact(np.array([0, 2]))
        assert compacted.n_rows == 2
        np.testing.assert_array_equal(compacted.column("user"), [5, 7])
        np.testing.assert_array_equal(compacted.column("thread_id"), [100, 101])


class TestOverflowGuard:
    def test_ensure_ids_rejects_out_of_range(self):
        with pytest.raises(IdOverflowError):
            ensure_ids(np.array([ID_MAX + 1], dtype=np.int64), "user id")

    def test_ensure_ids_rejects_negative(self):
        with pytest.raises(IdOverflowError):
            ensure_ids(np.array([-1], dtype=np.int32), "user id")

    def test_event_store_append_guards_ids(self):
        log = AnswerLog(2)
        with pytest.raises(IdOverflowError):
            log.append_thread(
                users=np.array([ID_MAX + 10], dtype=np.int64),
                thread_id=1,
                votes=np.array([0.0]),
                timestamps=np.array([0.0]),
                response_times=np.array([0.0]),
                question_topics=np.array([0.5, 0.5]),
                answer_topics=np.array([[0.5, 0.5]]),
            )

    def test_in_range_ids_preserved_exactly(self):
        ids = np.array([0, 1, ID_MAX], dtype=np.int64)
        out = ensure_ids(ids, "user id")
        assert out.dtype == ID_DTYPE
        np.testing.assert_array_equal(out.astype(np.int64), ids)


class TestThreadActivity:
    def test_group_by_matches_naive(self):
        rng = np.random.default_rng(3)
        users = rng.integers(0, 20, size=200)
        tids = rng.integers(0, 15, size=200)
        ts = rng.uniform(0, 100, size=200)
        u, t, counts, latest = thread_activity(users, tids, ts)
        expected = {}
        for a, b, c in zip(users, tids, ts):
            key = (int(a), int(b))
            cnt, lat = expected.get(key, (0, -np.inf))
            expected[key] = (cnt + 1, max(lat, c))
        assert len(u) == len(expected)
        for i in range(len(u)):
            cnt, lat = expected[(int(u[i]), int(t[i]))]
            assert counts[i] == cnt
            assert latest[i] == lat

    def test_empty(self):
        u, t, c, latest = thread_activity(
            np.empty(0, dtype=np.int32),
            np.empty(0, dtype=np.int32),
            np.empty(0),
        )
        assert u.size == t.size == c.size == latest.size == 0


class TestSummaries:
    def test_user_summary_and_tables_roundtrip(self):
        k = 2
        log = AnswerLog(k)
        log.append_thread(
            users=np.array([4, 6]),
            thread_id=50,
            votes=np.array([3.0, 1.0]),
            timestamps=np.array([2.0, 4.0]),
            response_times=np.array([1.0, 3.0]),
            question_topics=np.array([0.25, 0.75]),
            answer_topics=np.array([[0.1, 0.9], [0.6, 0.4]]),
        )
        s4 = user_summary(log, np.array([0]))
        assert s4.history.answer_votes.size == 1
        assert s4.votes_sum == 3.0
        tables = assemble_tables({4: s4}, [4], k)
        assert tables.hist_votes.dtype == np.float32
        np.testing.assert_allclose(tables.d_u[0], [0.1, 0.9])
