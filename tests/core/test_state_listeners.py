"""ForumState listener hooks under eviction / freeze / compaction.

The retrieval engine rides ``on_append``/``on_evict`` to keep its
recency index incremental; these tests pin the hook contract the state
engine must honor however its columnar log is reorganized underneath:

* every appended thread fires ``on_append`` exactly once, after the
  state mutation is visible;
* every evicted thread fires ``on_evict`` exactly once, with the
  original :class:`Thread` object;
* freezes between (and during) mutations never fire hooks or change
  what listeners have observed;
* log compaction (triggered by heavy eviction) is invisible to
  listeners and to the frozen tables.
"""

import numpy as np
import pytest

import repro.core.state as state_module
from repro.core.state import ForumState
from repro.core.topic_context import TopicModelContext
from repro.forum import ForumConfig, generate_forum


class RecordingListener:
    def __init__(self):
        self.events: list[tuple[str, int]] = []

    def on_append(self, thread):
        self.events.append(("append", thread.thread_id))

    def on_evict(self, thread):
        self.events.append(("evict", thread.thread_id))

    def of(self, kind):
        return [tid for k, tid in self.events if k == kind]


class SnoopingListener(RecordingListener):
    """Checks the state already reflects the mutation when hooks fire."""

    def __init__(self, state):
        super().__init__()
        self.state = state
        self.violations = 0

    def on_append(self, thread):
        super().on_append(thread)
        if thread.answers:
            users, tids, _ = self.state.answer_events()
            if thread.thread_id not in set(tids.tolist()):
                self.violations += 1

    def on_evict(self, thread):
        super().on_evict(thread)
        _, tids, _ = self.state.answer_events()
        if thread.thread_id in set(tids.tolist()):
            self.violations += 1


@pytest.fixture(scope="module")
def listener_window():
    forum = generate_forum(
        ForumConfig(n_users=60, n_questions=120, activity_tail=1.3), seed=11
    )
    clean, _ = forum.dataset.preprocess()
    threads = sorted(clean, key=lambda t: t.created_at)
    topics = TopicModelContext.fit(clean, n_topics=4, seed=0)
    return topics, threads


@pytest.fixture(scope="module")
def threads(listener_window):
    return listener_window[1]


@pytest.fixture(scope="module")
def listener_topics(listener_window):
    return listener_window[0]


@pytest.fixture
def fresh_state(listener_topics):
    def build(threads, n=0):
        state = ForumState(listener_topics)
        for thread in threads[:n]:
            state.append(thread)
        return state

    return build


class TestHookFiring:
    def test_append_fires_once_per_thread(self, threads, fresh_state):
        state = fresh_state(threads)
        listener = RecordingListener()
        state.add_listener(listener)
        for thread in threads[:10]:
            state.append(thread)
        assert listener.of("append") == [t.thread_id for t in threads[:10]]
        assert listener.of("evict") == []

    def test_evict_fires_once_per_stale_thread(self, threads, fresh_state):
        state = fresh_state(threads, 20)
        listener = RecordingListener()
        state.add_listener(listener)
        cutoff = threads[8].created_at
        evicted = state.evict(cutoff)
        expected = [t.thread_id for t in threads[:20] if t.created_at < cutoff]
        assert evicted == len(expected)
        assert listener.of("evict") == expected
        assert listener.of("append") == []

    def test_hooks_see_mutated_state(self, threads, fresh_state):
        state = fresh_state(threads)
        listener = SnoopingListener(state)
        state.add_listener(listener)
        for thread in threads[:15]:
            state.append(thread)
        state.evict(threads[6].created_at)
        assert listener.violations == 0
        assert len(listener.of("evict")) == 6

    def test_removed_listener_stops_observing(self, threads, fresh_state):
        state = fresh_state(threads)
        listener = RecordingListener()
        state.add_listener(listener)
        state.append(threads[0])
        state.remove_listener(listener)
        state.append(threads[1])
        assert listener.of("append") == [threads[0].thread_id]


class TestFreezeInterleavings:
    def test_freeze_between_mutations_fires_no_hooks(self, threads, fresh_state):
        state = fresh_state(threads)
        listener = RecordingListener()
        state.add_listener(listener)
        for i, thread in enumerate(threads[:12]):
            state.append(thread)
            if i % 3 == 0:
                state.freeze()
        state.freeze()
        state.evict(threads[4].created_at)
        state.freeze()
        assert len(listener.of("append")) == 12
        assert len(listener.of("evict")) == 4

    def test_freeze_after_evict_matches_fresh_build(self, threads, fresh_state):
        """Sliding the window (with hooks attached) must leave exactly
        the same frozen tables as building a state from the survivors."""
        state = fresh_state(threads)
        state.add_listener(RecordingListener())
        for thread in threads[:30]:
            state.append(thread)
        state.freeze()  # populate caches mid-stream
        cutoff = threads[12].created_at
        state.evict(cutoff)
        frozen = state.freeze()

        reference = fresh_state(threads, 0)
        for thread in threads[:30]:
            if thread.created_at >= cutoff:
                reference.append(thread)
        ref_frozen = reference.freeze()

        assert set(frozen.histories) == set(ref_frozen.histories)
        for user, hist in frozen.histories.items():
            ref = ref_frozen.histories[user]
            np.testing.assert_array_equal(
                hist.answered_thread_ids, ref.answered_thread_ids
            )
            np.testing.assert_array_equal(hist.answer_votes, ref.answer_votes)
            np.testing.assert_array_equal(
                hist.response_times, ref.response_times
            )
        assert (
            frozen.global_median_response == ref_frozen.global_median_response
        )
        tables, ref_tables = frozen.batch_tables, ref_frozen.batch_tables
        assert list(tables.user_index) == list(ref_tables.user_index)
        np.testing.assert_array_equal(tables.d_u, ref_tables.d_u)
        np.testing.assert_array_equal(tables.hist_votes, ref_tables.hist_votes)


class TestCompactionInvisibility:
    def test_compaction_preserves_listener_and_frozen_views(
        self, threads, fresh_state, monkeypatch
    ):
        state = fresh_state(threads)
        # Force compaction to trigger: shrink the module's dead-row
        # floor so a modest eviction wave reorganizes the log.
        monkeypatch.setattr(state_module, "_COMPACT_MIN_DEAD", 1)
        listener = SnoopingListener(state)
        state.add_listener(listener)
        for thread in threads:
            state.append(thread)
        # Evict in waves, freezing between waves, until compaction ran.
        cut_points = [threads[len(threads) // 3].created_at,
                      threads[2 * len(threads) // 3].created_at]
        from repro import perf

        with perf.use_registry() as reg:
            for cutoff in cut_points:
                state.evict(cutoff)
                state.freeze()
        assert reg.counter("state.log_compactions") >= 1
        assert listener.violations == 0
        survivors = [
            t for t in threads if t.created_at >= cut_points[-1]
        ]
        assert sorted(listener.of("append")) == sorted(
            t.thread_id for t in threads
        )
        assert sorted(listener.of("evict")) == sorted(
            t.thread_id for t in threads if t not in survivors
        )
        # The frozen view equals a fresh build over the survivors.
        reference = fresh_state(threads)
        for thread in survivors:
            reference.append(thread)
        frozen, ref_frozen = state.freeze(), reference.freeze()
        assert set(frozen.histories) == set(ref_frozen.histories)
        for user, hist in frozen.histories.items():
            np.testing.assert_array_equal(
                hist.answer_votes, ref_frozen.histories[user].answer_votes
            )
