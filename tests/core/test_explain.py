"""Tests for repro.core.explain — per-prediction feature attribution."""

import numpy as np
import pytest

from repro.core.explain import explain_prediction
from repro.core.pipeline import ForumPredictor


@pytest.fixture(scope="module")
def fitted(dataset, predictor_config):
    return ForumPredictor(predictor_config).fit(dataset)


@pytest.fixture(scope="module")
def explanation(fitted, dataset):
    user = next(iter(dataset.answerers))
    return explain_prediction(fitted, user, dataset.threads[0]), user


class TestStructure:
    def test_all_twenty_features_per_task(self, explanation, fitted):
        exp, _ = explanation
        names = set(fitted.extractor.spec.feature_names)
        for task in ("answer", "votes", "response_time"):
            contributions = getattr(exp, task)
            assert {c.feature for c in contributions} == names

    def test_identifies_pair(self, explanation, dataset):
        exp, user = explanation
        assert exp.user == user
        assert exp.thread_id == dataset.threads[0].thread_id

    def test_top_sorted_by_magnitude(self, explanation):
        exp, _ = explanation
        top = exp.top("answer", 5)
        mags = [abs(c.contribution) for c in top]
        assert mags == sorted(mags, reverse=True)
        assert len(top) == 5

    def test_contributions_finite(self, explanation):
        exp, _ = explanation
        for task in ("answer", "votes", "response_time"):
            for c in getattr(exp, task):
                assert np.isfinite(c.contribution)
                assert np.isfinite(c.value)


class TestLinearExactness:
    def test_answer_contributions_sum_to_logit(self, fitted, dataset):
        """Linear attribution is exact: contributions + intercept = logit."""
        user = next(iter(dataset.answerers))
        thread = dataset.threads[0]
        exp = explain_prediction(fitted, user, thread)
        total = sum(c.contribution for c in exp.answer)
        x = fitted.extractor.features(user, thread)[None, :]
        p = fitted.answer_model.predict_proba(x)[0]
        logit = np.log(p / (1 - p))
        intercept = fitted.answer_model.classifier.intercept_
        assert total + intercept == pytest.approx(logit, abs=1e-8)


class TestPerturbationSanity:
    def test_zeroing_everything_changes_prediction(self, fitted, dataset):
        """Some feature must matter for the vote prediction."""
        user = next(iter(dataset.answerers))
        exp = explain_prediction(fitted, user, dataset.threads[0])
        assert any(abs(c.contribution) > 1e-6 for c in exp.votes)

    def test_unfitted_raises(self, predictor_config, dataset):
        with pytest.raises(RuntimeError):
            explain_prediction(
                ForumPredictor(predictor_config), 0, dataset.threads[0]
            )
