"""Shared-nothing sharded routing: bit-identity with the dense path.

The contract the sharded state engine ships under: at *any* shard
count, inline or across worker processes, replaying the router over the
same window produces bit-identical recommendations to the single-shard
dense path — same eligible users, same LP probabilities, same scores,
same raw predictions.  Shard workers return feature rows; the parent
restores the canonical user order and runs the model heads once, so
there is no shape-dependent arithmetic to drift.
"""

import numpy as np
import pytest

from repro.core.pipeline import ForumPredictor
from repro.core.retrieval import RetrievalConfig
from repro.core.routing import QuestionRouter
from repro.core.sharding import ShardPlan, ShardedRouter, slice_tables


@pytest.fixture(scope="module")
def predictor(dataset, predictor_config):
    return ForumPredictor(predictor_config).fit(dataset)


@pytest.fixture(scope="module")
def query_threads(dataset):
    return sorted(dataset, key=lambda t: t.created_at)[-6:]


@pytest.fixture(scope="module")
def candidates(dataset):
    users = set()
    for thread in dataset:
        users.update(thread.answerers)
    known = np.array(sorted(users), dtype=np.int64)
    unknown = known.max() + np.array([10, 11, 12])
    return np.concatenate([known, unknown])


def assert_results_identical(a, b):
    if a is None or b is None:
        assert a is None and b is None
        return
    assert a.question_id == b.question_id
    np.testing.assert_array_equal(a.users, b.users)
    np.testing.assert_array_equal(a.probabilities, b.probabilities)
    np.testing.assert_array_equal(a.scores, b.scores)
    assert set(a.predictions) == set(b.predictions)
    for key in a.predictions:
        np.testing.assert_array_equal(a.predictions[key], b.predictions[key])


class TestShardPlan:
    def test_partition_covers_and_is_disjoint(self):
        plan = ShardPlan(4)
        users = np.arange(100)
        masks = [plan.mask(users, s) for s in range(4)]
        total = np.zeros(100, dtype=int)
        for mask in masks:
            total += mask
        assert np.all(total == 1)

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError):
            ShardPlan(0)


class TestSliceTables:
    def test_full_slice_is_identity(self, predictor):
        tables = predictor.extractor.frozen.batch_tables
        sliced = slice_tables(tables, list(tables.user_index))
        assert sliced.user_index == tables.user_index
        np.testing.assert_array_equal(sliced.d_u, tables.d_u)
        np.testing.assert_array_equal(sliced.seg_start, tables.seg_start)
        np.testing.assert_array_equal(sliced.hist_votes, tables.hist_votes)
        np.testing.assert_array_equal(sliced.times_sorted, tables.times_sorted)
        assert sliced.row_of == tables.row_of

    def test_subset_rows_are_exact_copies(self, predictor):
        tables = predictor.extractor.frozen.batch_tables
        subset = list(tables.user_index)[::3]
        sliced = slice_tables(tables, subset)
        assert list(sliced.user_index) == subset
        assert list(sliced.user_index.values()) == list(range(len(subset)))
        for i, user in enumerate(subset):
            j = tables.user_index[user]
            np.testing.assert_array_equal(sliced.d_u[i], tables.d_u[j])
            assert sliced.n[i] == tables.n[j]
            a0, a1 = sliced.seg_start[i], sliced.seg_start[i] + sliced.n[i]
            b0, b1 = tables.seg_start[j], tables.seg_start[j] + tables.n[j]
            np.testing.assert_array_equal(
                sliced.hist_votes[a0:a1], tables.hist_votes[b0:b1]
            )
            np.testing.assert_array_equal(
                sliced.times_sorted[a0:a1], tables.times_sorted[b0:b1]
            )


class TestBitIdentity:
    @pytest.mark.parametrize("n_shards", [1, 2, 4, 8])
    def test_inline_shards_match_dense(
        self, predictor, query_threads, candidates, n_shards
    ):
        dense = QuestionRouter(predictor, epsilon=0.3, default_capacity=3.0)
        sorted_candidates = np.sort(candidates)
        expected = [
            dense.recommend(t, sorted_candidates, tradeoff=0.1)
            for t in query_threads
        ]
        sharded = ShardedRouter(
            predictor, n_shards, epsilon=0.3, default_capacity=3.0
        )
        got = sharded.route_batch(query_threads, candidates, tradeoff=0.1)
        for a, b in zip(expected, got):
            assert_results_identical(a, b)

    def test_capacities_and_load_thread_through(
        self, predictor, query_threads, candidates
    ):
        sorted_candidates = np.sort(candidates)
        load = {int(u): int(u) % 3 for u in sorted_candidates[:40]}
        caps = {int(u): 2.0 for u in sorted_candidates[:25]}
        dense = QuestionRouter(predictor, epsilon=0.3, default_capacity=3.0)
        sharded = ShardedRouter(
            predictor, 3, epsilon=0.3, default_capacity=3.0
        )
        for thread in query_threads[:3]:
            a = dense.recommend(
                thread,
                sorted_candidates,
                tradeoff=0.2,
                recent_load=load,
                capacities=caps,
            )
            b = sharded.route(
                thread,
                candidates,
                tradeoff=0.2,
                recent_load=load,
                capacities=caps,
            )
            assert_results_identical(a, b)

    def test_process_mode_matches_inline(
        self, predictor, query_threads, candidates
    ):
        inline = ShardedRouter(
            predictor, 2, epsilon=0.3, default_capacity=3.0, mode="inline"
        )
        expected = inline.route_batch(
            query_threads[:3], candidates, tradeoff=0.1
        )
        with ShardedRouter(
            predictor, 2, epsilon=0.3, default_capacity=3.0, mode="process"
        ) as procs:
            got = procs.route_batch(query_threads[:3], candidates, tradeoff=0.1)
        for a, b in zip(expected, got):
            assert_results_identical(a, b)


class TestTwoStagePools:
    @pytest.mark.parametrize("n_shards", [2, 4, 8])
    def test_pools_invariant_to_shard_count(
        self, predictor, query_threads, candidates, n_shards
    ):
        retrieval = RetrievalConfig(
            topic_top_k=8, recency_top_k=16, pool_size=24, use_mf=False
        )
        base = ShardedRouter(predictor, 1, retrieval=retrieval)
        expected = base.candidate_pools(
            query_threads, np.sort(candidates)
        )
        sharded = ShardedRouter(predictor, n_shards, retrieval=retrieval)
        got = sharded.candidate_pools(query_threads, np.sort(candidates))
        for a, b in zip(expected, got):
            np.testing.assert_array_equal(a, b)

    def test_unknown_candidates_always_in_pool(
        self, predictor, query_threads, candidates
    ):
        retrieval = RetrievalConfig(
            topic_top_k=8, recency_top_k=16, pool_size=24, use_mf=False
        )
        sharded = ShardedRouter(predictor, 2, retrieval=retrieval)
        pools = sharded.candidate_pools(query_threads, np.sort(candidates))
        unknown = np.sort(candidates)[-3:]
        for pool in pools:
            assert np.all(np.isin(unknown, pool))

    def test_two_stage_routing_matches_across_shard_counts(
        self, predictor, query_threads, candidates
    ):
        retrieval = RetrievalConfig(
            topic_top_k=8, recency_top_k=16, pool_size=24, use_mf=False
        )
        results = []
        for n_shards in (1, 2, 4):
            router = ShardedRouter(
                predictor,
                n_shards,
                epsilon=0.3,
                default_capacity=3.0,
                retrieval=retrieval,
            )
            results.append(
                router.route_batch(query_threads, candidates, tradeoff=0.1)
            )
        for other in results[1:]:
            for a, b in zip(results[0], other):
                assert_results_identical(a, b)


class TestShmTransportLifecycle:
    """Epoch handshake and teardown of the shared-memory transport."""

    def test_pickle_transport_matches_shm(
        self, predictor, query_threads, candidates
    ):
        inline = ShardedRouter(
            predictor, 2, epsilon=0.3, default_capacity=3.0, mode="inline"
        )
        expected = inline.route_batch(
            query_threads[:3], candidates, tradeoff=0.1
        )
        with ShardedRouter(
            predictor,
            2,
            epsilon=0.3,
            default_capacity=3.0,
            mode="process",
            transport="pickle",
        ) as procs:
            assert procs.shm_bytes == 0  # nothing published over shm
            got = procs.route_batch(
                query_threads[:3], candidates, tradeoff=0.1
            )
        for a, b in zip(expected, got):
            assert_results_identical(a, b)

    def test_rebind_swaps_epochs_and_retires_old_blocks(
        self, predictor, query_threads, candidates
    ):
        from repro.core.shm import active_shm_names

        with ShardedRouter(
            predictor, 2, epsilon=0.3, default_capacity=3.0, mode="process"
        ) as router:
            assert router.epoch == 0
            first = router.route_batch(
                query_threads[:2], candidates, tradeoff=0.1
            )
            names_before = set(active_shm_names())
            assert names_before  # epoch-0 blocks live
            router.rebind(predictor)  # same model, fresh epoch
            assert router.epoch == 1
            names_after = set(active_shm_names())
            assert names_after
            assert names_after.isdisjoint(names_before)  # old unlinked
            second = router.route_batch(
                query_threads[:2], candidates, tradeoff=0.1
            )
            for a, b in zip(first, second):
                assert_results_identical(a, b)
        assert active_shm_names() == []

    def test_close_releases_all_blocks_and_workers(
        self, predictor, query_threads, candidates
    ):
        import multiprocessing

        from repro.core.shm import active_shm_names

        before = {p.pid for p in multiprocessing.active_children()}
        router = ShardedRouter(
            predictor, 2, epsilon=0.3, default_capacity=3.0, mode="process"
        )
        assert router.shm_bytes > 0
        assert len(active_shm_names()) > 0
        router.route_batch(query_threads[:1], candidates, tradeoff=0.1)
        router.close()
        router.close()  # idempotent
        assert active_shm_names() == []
        leaked = {
            p.pid for p in multiprocessing.active_children()
        } - before
        assert leaked == set()
