"""Tests for repro.core.featurespec."""

import numpy as np
import pytest

from repro.core.featurespec import FEATURE_GROUPS, FEATURE_ORDER, FeatureSpec


class TestLayout:
    def test_twenty_features(self):
        assert len(FEATURE_ORDER) == 20

    def test_dimension_formula(self):
        # Paper: two topic distributions of length K -> 18 + 2K columns.
        for k in (2, 8, 15):
            assert FeatureSpec(k).n_features == 18 + 2 * k

    def test_column_names_count(self):
        spec = FeatureSpec(8)
        assert len(spec.column_names()) == spec.n_features

    def test_group_sizes(self):
        # User: 5 features, question: 4, user-question: 3, social: 8.
        counts = {g: 0 for g in FEATURE_GROUPS}
        for _, group, _ in FEATURE_ORDER:
            counts[group] += 1
        assert counts == {
            "user": 5,
            "question": 4,
            "user_question": 3,
            "social": 8,
        }

    def test_columns_partition(self):
        spec = FeatureSpec(5)
        all_cols = np.concatenate(
            [spec.columns_of_group(g) for g in FEATURE_GROUPS]
        )
        assert sorted(all_cols.tolist()) == list(range(spec.n_features))


class TestLookups:
    def test_scalar_feature_single_column(self):
        spec = FeatureSpec(8)
        assert len(spec.columns_of("answers_provided")) == 1

    def test_topic_feature_k_columns(self):
        spec = FeatureSpec(8)
        assert len(spec.columns_of("topics_answered")) == 8
        assert len(spec.columns_of("topics_asked")) == 8

    def test_topic_columns_contiguous(self):
        spec = FeatureSpec(4)
        cols = spec.columns_of("topics_answered")
        np.testing.assert_array_equal(np.diff(cols), 1)

    def test_group_of(self):
        spec = FeatureSpec(8)
        assert spec.group_of("median_response_time") == "user"
        assert spec.group_of("qa_closeness") == "social"

    def test_unknown_feature_raises(self):
        with pytest.raises(ValueError, match="unknown feature"):
            FeatureSpec(8).columns_of("bogus")

    def test_unknown_group_raises(self):
        with pytest.raises(ValueError, match="unknown group"):
            FeatureSpec(8).columns_of_group("bogus")


class TestMasks:
    def test_mask_without_feature(self):
        spec = FeatureSpec(8)
        mask = spec.mask_without(features=("net_question_votes",))
        assert mask.sum() == spec.n_features - 1
        assert not mask[spec.columns_of("net_question_votes")[0]]

    def test_mask_without_topic_feature(self):
        spec = FeatureSpec(8)
        mask = spec.mask_without(features=("topics_asked",))
        assert mask.sum() == spec.n_features - 8

    def test_mask_without_group(self):
        spec = FeatureSpec(8)
        mask = spec.mask_without(groups=("social",))
        assert mask.sum() == spec.n_features - 8  # 8 scalar social features

    def test_mask_combined(self):
        spec = FeatureSpec(8)
        mask = spec.mask_without(
            features=("answers_provided",), groups=("question",)
        )
        assert mask.sum() == spec.n_features - 1 - (3 + 8)

    def test_empty_mask_keeps_all(self):
        spec = FeatureSpec(8)
        assert spec.mask_without().all()

    def test_invalid_topics(self):
        with pytest.raises(ValueError):
            FeatureSpec(0)
