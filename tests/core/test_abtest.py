"""Tests for repro.core.abtest — the future-work A/B simulator."""

import numpy as np
import pytest

from repro.core.abtest import ABTestConfig, ABTestSimulator, GroupOutcome
from repro.core.pipeline import ForumPredictor
from repro.core.routing import QuestionRouter


@pytest.fixture(scope="module")
def setup(forum, dataset, predictor_config):
    split = dataset.duration_hours - 72.0
    history = dataset.threads_in_window(0.0, split)
    test_window = dataset.threads_in_window(split, dataset.duration_hours + 1)
    predictor = ForumPredictor(predictor_config).fit(history)
    router = QuestionRouter(predictor, epsilon=0.3, default_capacity=5.0)
    candidates = sorted(history.answerers)
    return forum, router, candidates, test_window


class TestConfig:
    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            ABTestConfig(treatment_fraction=0.0)

    def test_invalid_acceptance(self):
        with pytest.raises(ValueError):
            ABTestConfig(acceptance_rate=1.5)


class TestGroupOutcome:
    def test_from_outcomes(self):
        g = GroupOutcome.from_outcomes([(1.0, 2.0), (3.0, 4.0)])
        assert g.n_questions == 2
        assert g.mean_votes == 2.0
        assert g.mean_response_time == 3.0
        assert g.median_response_time == 3.0

    def test_empty(self):
        g = GroupOutcome.from_outcomes([])
        assert g.n_questions == 0
        assert np.isnan(g.mean_votes)


class TestSimulator:
    def test_runs_and_splits(self, setup):
        forum, router, candidates, test_window = setup
        sim = ABTestSimulator(
            forum, router, candidates, ABTestConfig(seed=0)
        )
        result = sim.run(test_window)
        assert result.treatment.n_questions > 0
        assert result.control.n_questions > 0
        total = result.treatment.n_questions + result.control.n_questions
        assert total <= len(test_window)
        assert result.n_accepted <= result.n_routed

    def test_deterministic_given_seed(self, setup):
        forum, router, candidates, test_window = setup
        a = ABTestSimulator(forum, router, candidates, ABTestConfig(seed=5)).run(
            test_window
        )
        b = ABTestSimulator(forum, router, candidates, ABTestConfig(seed=5)).run(
            test_window
        )
        assert a == b

    def test_zero_acceptance_equals_organic(self, setup):
        """With no accepted recommendations, treatment is organic too, so
        the groups differ only by random assignment."""
        forum, router, candidates, test_window = setup
        result = ABTestSimulator(
            forum, router, candidates, ABTestConfig(acceptance_rate=0.0, seed=1)
        ).run(test_window)
        assert result.n_accepted == 0
        # Outcomes exist in both groups and lift is finite.
        assert np.isfinite(result.vote_lift)

    def test_routing_improves_outcomes(self, setup):
        """The paper's hypothesis: the treated group sees better votes
        and/or faster responses.  Averaged over seeds to tame noise."""
        forum, router, candidates, test_window = setup
        lifts, reductions = [], []
        for seed in range(5):
            result = ABTestSimulator(
                forum,
                router,
                candidates,
                ABTestConfig(acceptance_rate=1.0, seed=seed),
            ).run(test_window)
            lifts.append(result.vote_lift)
            reductions.append(result.response_time_reduction)
        # At least one of the two objectives improves on average.
        assert np.mean(lifts) > -0.5
        assert max(np.mean(lifts), np.mean(reductions)) > 0.0

    def test_empty_candidates_rejected(self, setup):
        forum, router, _, _ = setup
        with pytest.raises(ValueError):
            ABTestSimulator(forum, router, [])
