"""Integration tests for repro.core.pipeline."""

import numpy as np
import pytest

from repro.core.pipeline import ForumPredictor, PredictorConfig
from repro.forum.dataset import ForumDataset


@pytest.fixture(scope="module")
def fitted(dataset, predictor_config):
    return ForumPredictor(predictor_config).fit(dataset)


class TestFit:
    def test_components_present(self, fitted):
        assert fitted.topics is not None
        assert fitted.extractor is not None
        assert fitted.answer_model is not None
        assert fitted.vote_model is not None
        assert fitted.timing_model is not None

    def test_empty_dataset_raises(self, predictor_config):
        with pytest.raises(ValueError):
            ForumPredictor(predictor_config).fit(ForumDataset([]))

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            PredictorConfig(n_topics=0)
        with pytest.raises(ValueError):
            PredictorConfig(negative_ratio=0)


class TestPredict:
    def test_single_pair(self, fitted, dataset):
        thread = dataset.threads[0]
        user = next(iter(dataset.answerers))
        pred = fitted.predict(user, thread)
        assert 0.0 <= pred.answer_probability <= 1.0
        assert np.isfinite(pred.votes)
        assert pred.response_time > 0

    def test_batch_matches_single(self, fitted, dataset):
        thread = dataset.threads[0]
        users = list(dataset.answerers)[:4]
        batch = fitted.predict_batch([(u, thread) for u in users])
        for i, u in enumerate(users):
            single = fitted.predict(u, thread)
            assert batch["answer"][i] == pytest.approx(single.answer_probability)
            assert batch["votes"][i] == pytest.approx(single.votes)
            assert batch["response_time"][i] == pytest.approx(
                single.response_time
            )

    def test_empty_batch(self, fitted):
        out = fitted.predict_batch([])
        assert all(len(v) == 0 for v in out.values())

    def test_unfitted_raises(self, dataset, predictor_config):
        predictor = ForumPredictor(predictor_config)
        with pytest.raises(RuntimeError):
            predictor.predict(0, dataset.threads[0])

    def test_answerers_rank_above_strangers(self, fitted, dataset):
        """Predicted answer probability separates real answerers from
        random non-participants on average."""
        answer_probs, stranger_probs = [], []
        strangers = [u for u in range(10**6, 10**6 + 5)]
        for thread in dataset.threads[:30]:
            for u in thread.answerers:
                answer_probs.append(
                    fitted.predict(u, thread).answer_probability
                )
            answer_probs_threads = thread
            for u in strangers[:2]:
                stranger_probs.append(
                    fitted.predict(u, thread).answer_probability
                )
        assert np.mean(answer_probs) > np.mean(stranger_probs)


class TestFeatureWindow:
    def test_separate_window(self, dataset, predictor_config):
        """Training on late threads with features from early threads."""
        mid = dataset.threads[len(dataset) // 2].created_at
        early = dataset.threads_in_window(0.0, mid)
        late = dataset.threads_in_window(mid, dataset.duration_hours + 1)
        predictor = ForumPredictor(predictor_config).fit(
            late, feature_window=early
        )
        thread = late.threads[0]
        pred = predictor.predict(next(iter(early.answerers)), thread)
        assert 0.0 <= pred.answer_probability <= 1.0
