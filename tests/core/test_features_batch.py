"""Batch feature engine vs. the scalar reference path.

The acceptance bar for ``features_batch`` is element-wise equivalence
with :meth:`FeatureExtractor.features` at ``atol=1e-12`` across every
situation the engine special-cases: empty histories, target-thread
exclusion (the leakage guard), and users/threads unseen by the window.
"""

import numpy as np
import pytest

from repro import perf
from repro.core import PredictorConfig, build_extractor
from repro.core.features import FeatureExtractor


def scalar_matrix(extractor, pairs):
    return np.stack([extractor.features(u, t) for u, t in pairs])


def assert_equivalent(extractor, pairs):
    batch = extractor.features_batch(pairs)
    reference = scalar_matrix(extractor, pairs)
    np.testing.assert_allclose(batch, reference, rtol=0.0, atol=1e-12)


@pytest.fixture(scope="module")
def mixed_pairs(dataset):
    """Positives (exclusion path), negatives, and asker self-pairs."""
    records = dataset.answer_records()[:120]
    pairs = [(r.user, dataset.thread(r.thread_id)) for r in records]
    pairs += [
        (u, dataset.thread(tid))
        for u, tid in dataset.sample_negative_pairs(120, seed=3)
    ]
    pairs += [(t.asker, t) for t in dataset.threads[:40]]
    return pairs


@pytest.fixture(scope="module")
def partial_extractor(dataset, predictor_config):
    """Extractor over the first 15 days only, so later threads (and the
    users active only in them) are out of window."""
    window = dataset.threads_in_days(1, 15)
    assert len(window) > 0
    return build_extractor(window, predictor_config)


class TestEquivalence:
    def test_mixed_pairs(self, extractor, mixed_pairs):
        assert_equivalent(extractor, mixed_pairs)

    def test_exclusion_pairs_only(self, extractor, dataset):
        """Every pair hits the leave-one-thread-out leakage guard."""
        records = dataset.answer_records()[:200]
        pairs = [(r.user, dataset.thread(r.thread_id)) for r in records]
        assert_equivalent(extractor, pairs)

    def test_single_answer_user_excluded(self, extractor, dataset):
        """Users whose lone answer is the target thread fall back to the
        empty-history defaults."""
        counts = dataset.answers_per_user()
        singles = [u for u, c in counts.items() if c == 1]
        pairs = []
        for u in singles:
            for t in dataset:
                if u in t.answerers:
                    pairs.append((u, t))
                    break
        assert pairs, "seeded forum should have one-answer users"
        assert_equivalent(extractor, pairs)

    def test_unseen_users(self, extractor, dataset):
        threads = dataset.threads[:10]
        pairs = [(999_000 + i, t) for i, t in enumerate(threads)]
        assert_equivalent(extractor, pairs)

    def test_unseen_threads_and_users(self, partial_extractor, dataset):
        """Pairs from outside the feature window: out-of-window threads
        resolve through the LRU; window-less users get defaults."""
        late = dataset.threads_in_days(20, 30)
        assert len(late) > 0
        pairs = [(t.asker, t) for t in late.threads[:60]]
        pairs += [
            (r.user, late.thread(r.thread_id))
            for r in late.answer_records()[:60]
        ]
        assert_equivalent(partial_extractor, pairs)

    def test_duplicate_pairs_in_batch(self, extractor, dataset):
        record = dataset.answer_records()[0]
        pair = (record.user, dataset.thread(record.thread_id))
        assert_equivalent(extractor, [pair] * 7)

    def test_batch_is_deterministic(self, extractor, mixed_pairs):
        a = extractor.features_batch(mixed_pairs)
        b = extractor.features_batch(mixed_pairs)
        np.testing.assert_array_equal(a, b)

    def test_feature_matrix_delegates_to_batch(self, extractor, mixed_pairs):
        np.testing.assert_array_equal(
            extractor.feature_matrix(mixed_pairs),
            extractor.features_batch(mixed_pairs),
        )

    def test_small_chunk_size(self, extractor, mixed_pairs, monkeypatch):
        """Chunked similarity passes agree with the one-shot result."""
        reference = extractor.features_batch(mixed_pairs)
        monkeypatch.setattr(extractor, "_SIM_CHUNK_ELEMENTS", 16)
        np.testing.assert_array_equal(
            extractor.features_batch(mixed_pairs), reference
        )


class TestQuestionInfoLru:
    def test_out_of_window_cache_is_bounded(self, partial_extractor, dataset):
        ex = partial_extractor
        ex._extra_question_info.clear()
        ex._OUT_OF_WINDOW_CACHE_SIZE = 8
        late = dataset.threads_in_days(20, 30).threads
        assert len(late) > 8
        for t in late:
            ex._question_info_for(t)
        assert len(ex._extra_question_info) == 8
        # Most-recently-used entries survive.
        assert late[-1].thread_id in ex._extra_question_info
        assert late[0].thread_id not in ex._extra_question_info

    def test_window_threads_never_enter_lru(self, extractor, dataset):
        extractor._extra_question_info.clear()
        extractor._question_info_for(dataset.threads[0])
        assert len(extractor._extra_question_info) == 0

    def test_lru_hit_refreshes_entry(self, partial_extractor, dataset):
        ex = partial_extractor
        ex._extra_question_info.clear()
        ex._OUT_OF_WINDOW_CACHE_SIZE = 2
        a, b, c = dataset.threads_in_days(20, 30).threads[:3]
        ex._question_info_for(a)
        ex._question_info_for(b)
        ex._question_info_for(a)  # refresh a: b is now least recent
        ex._question_info_for(c)
        assert a.thread_id in ex._extra_question_info
        assert b.thread_id not in ex._extra_question_info


class TestPerfInstrumentation:
    def test_batch_records_stage_and_counter(self, extractor, mixed_pairs):
        registry = perf.get_registry()
        before_calls = registry.stage("features.batch").calls
        before_pairs = registry.counter("features.pairs_batched")
        extractor.features_batch(mixed_pairs)
        assert registry.stage("features.batch").calls == before_calls + 1
        assert (
            registry.counter("features.pairs_batched")
            == before_pairs + len(mixed_pairs)
        )

    def test_build_records_stage(self):
        assert perf.get_registry().stage("features.build").calls >= 1
