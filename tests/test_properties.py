"""Property-based tests of cross-module invariants (hypothesis)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PredictorConfig, build_extractor
from repro.core.resilience import FaultInjector, FaultPlan, StreamGuard
from repro.core.routing import solve_routing_lp
from repro.forum import ForumConfig, generate_forum
from repro.forum.dataset import ForumDataset
from repro.forum.repair import repair_dataset

FAST = PredictorConfig(n_topics=2, betweenness_sample_size=30)


@st.composite
def small_forums(draw):
    seed = draw(st.integers(0, 500))
    n_users = draw(st.integers(40, 90))
    n_questions = draw(st.integers(40, 80))
    return generate_forum(
        ForumConfig(n_users=n_users, n_questions=n_questions), seed=seed
    )


class TestPreprocessProperties:
    @settings(max_examples=10, deadline=None)
    @given(small_forums())
    def test_preprocess_invariants(self, forum):
        clean, report = forum.dataset.preprocess()
        # Every kept thread has at least one strictly-later answer.
        for thread in clean:
            assert thread.answers
            for answer in thread.answers:
                assert answer.timestamp > thread.created_at
        # At most one answer per user per thread.
        for thread in clean:
            authors = [a.author for a in thread.answers]
            assert len(authors) == len(set(authors))
        # Idempotence.
        twice, second = clean.preprocess()
        assert len(twice) == len(clean)
        assert second.duplicate_answers_removed == 0

    @settings(max_examples=10, deadline=None)
    @given(small_forums())
    def test_counts_add_up(self, forum):
        raw = forum.dataset
        clean, report = raw.preprocess()
        assert (
            len(clean) + report.questions_dropped_unanswered == len(raw)
        )
        assert (
            clean.num_answers
            + report.duplicate_answers_removed
            + report.zero_delay_answers_removed
            == raw.num_answers
        )


class TestFeatureProperties:
    @settings(max_examples=4, deadline=None)
    @given(st.integers(0, 100))
    def test_feature_vectors_always_valid(self, seed):
        forum = generate_forum(
            ForumConfig(n_users=60, n_questions=60), seed=seed
        )
        clean, _ = forum.dataset.preprocess()
        if len(clean) < 10 or clean.num_answers < 5:
            return
        extractor = build_extractor(clean, FAST)
        spec = extractor.spec
        rng = np.random.default_rng(seed)
        users = list(clean.users) + [10**7]  # include an unknown user
        for _ in range(10):
            user = users[rng.integers(len(users))]
            thread = clean.threads[rng.integers(len(clean))]
            x = extractor.features(user, thread)
            assert np.all(np.isfinite(x))
            # Topic-distribution blocks lie on the simplex.
            for name in ("topics_answered", "topics_asked"):
                block = x[spec.columns_of(name)]
                assert block.sum() == pytest.approx(1.0, abs=1e-6)
                assert np.all(block >= -1e-12)
            # Similarities bounded.
            for name in (
                "user_question_topic_similarity",
                "user_user_topic_similarity",
            ):
                value = x[spec.columns_of(name)[0]]
                assert -1e-9 <= value <= 1.0 + 1e-9
            # Counts non-negative.
            for name in (
                "answers_provided",
                "thread_cooccurrence",
                "topic_weighted_questions_answered",
            ):
                assert x[spec.columns_of(name)[0]] >= 0.0


class TestRoutingLPProperties:
    @settings(max_examples=100, deadline=None)
    @given(
        st.integers(1, 10),
        st.integers(0, 10_000),
    )
    def test_raising_a_score_never_lowers_its_probability(self, n, seed):
        rng = np.random.default_rng(seed)
        scores = rng.normal(size=n)
        caps = rng.uniform(0.2, 1.0, size=n)
        if caps.sum() < 1.0:
            caps *= 1.5 / caps.sum()
        before = solve_routing_lp(scores, caps)
        target = rng.integers(n)
        bumped = scores.copy()
        bumped[target] += abs(rng.normal()) + 0.1
        after = solve_routing_lp(bumped, caps)
        assert after[target] >= before[target] - 1e-12

    @settings(max_examples=100, deadline=None)
    @given(st.integers(1, 12), st.integers(0, 10_000))
    def test_always_feasible_distribution(self, n, seed):
        rng = np.random.default_rng(seed)
        scores = rng.normal(size=n) * 10
        caps = rng.uniform(0.0, 1.5, size=n)
        if caps.sum() < 1.0:
            caps = caps + (1.1 - caps.sum()) / n
        p = solve_routing_lp(scores, caps)
        assert p.sum() == pytest.approx(1.0, abs=1e-9)
        assert np.all(p >= 0.0)
        assert np.all(p <= caps + 1e-12)


@st.composite
def fault_plans(draw):
    return FaultPlan(
        seed=draw(st.integers(0, 1000)),
        out_of_order_rate=draw(st.floats(0.0, 0.5)),
        duplicate_rate=draw(st.floats(0.0, 0.5)),
        missing_field_rate=draw(st.floats(0.0, 0.5)),
        clock_skew_rate=draw(st.floats(0.0, 0.5)),
        truncate_rate=draw(st.floats(0.0, 0.5)),
        max_delay_slots=draw(st.integers(1, 6)),
    )


class TestResilienceProperties:
    """Injector round-trip invariants: whatever the plan, the guarded
    stream satisfies every invariant featurization relies on."""

    @settings(max_examples=15, deadline=None)
    @given(fault_plans(), st.integers(0, 200))
    def test_event_count_conservation(self, plan, seed):
        forum = generate_forum(
            ForumConfig(n_users=50, n_questions=45), seed=seed
        )
        clean, _ = forum.dataset.preprocess()
        injector = FaultInjector(plan)
        stream = injector.perturb(clean)
        duplicates = injector.injected_counts().get("duplicate", 0)
        # Duplication is the only fault that changes the event count.
        assert len(stream) == len(clean) + duplicates
        guard = StreamGuard()
        admitted = [
            repaired
            for repaired in (guard.admit(t) for t in stream)
            if repaired is not None
        ]
        not_admitted = guard.report.count("quarantined") + guard.report.count(
            "dropped"
        )
        assert len(admitted) + not_admitted == len(stream)

    @settings(max_examples=15, deadline=None)
    @given(fault_plans(), st.integers(0, 200))
    def test_guarded_stream_is_monotone_and_finite(self, plan, seed):
        forum = generate_forum(
            ForumConfig(n_users=50, n_questions=45), seed=seed
        )
        clean, _ = forum.dataset.preprocess()
        stream = FaultInjector(plan).perturb(clean)
        guard = StreamGuard()
        last = float("-inf")
        seen_posts = set()
        for event in stream:
            admitted = guard.admit(event)
            if admitted is None:
                continue
            assert admitted.created_at >= last
            last = admitted.created_at
            for p in admitted.posts:
                assert math.isfinite(p.timestamp)
                assert math.isfinite(float(p.votes))
                assert p.post_id not in seen_posts
                seen_posts.add(p.post_id)
            for a in admitted.answers:
                assert a.timestamp >= admitted.created_at
                assert a.author != admitted.asker

    @settings(max_examples=3, deadline=None)
    @given(st.integers(0, 100))
    def test_no_nans_reach_feature_matrix(self, seed):
        plan = FaultPlan(
            seed=seed,
            missing_field_rate=0.4,
            clock_skew_rate=0.3,
            truncate_rate=0.2,
        )
        forum = generate_forum(
            ForumConfig(n_users=60, n_questions=60), seed=seed
        )
        clean, _ = forum.dataset.preprocess()
        stream = FaultInjector(plan).perturb(clean)
        guard = StreamGuard()
        admitted = [
            repaired
            for repaired in (guard.admit(t) for t in stream)
            if repaired is not None
        ]
        guarded = ForumDataset(admitted)
        if len(guarded) < 10 or guarded.num_answers < 5:
            return
        extractor = build_extractor(guarded, FAST)
        pairs = [
            (u, t)
            for u in list(guarded.answerers)[:4]
            for t in guarded.threads[:5]
        ]
        x = extractor.feature_matrix(pairs)
        assert np.all(np.isfinite(x))

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 500))
    def test_repair_is_order_independent(self, seed):
        forum = generate_forum(
            ForumConfig(n_users=40, n_questions=35), seed=seed
        )
        raw = forum.dataset
        rng = np.random.default_rng(seed)
        shuffled = list(raw.threads)
        rng.shuffle(shuffled)
        a, _ = repair_dataset(raw)
        b, _ = repair_dataset(ForumDataset(shuffled))
        assert a.fingerprint() == b.fingerprint()
        assert {
            p.post_id for t in a for p in t.posts
        } == {p.post_id for t in b for p in t.posts}


class TestGeneratorOutcomeFunctions:
    @settings(max_examples=50, deadline=None)
    @given(
        st.floats(0.05, 24.0),
        st.floats(0.0, 1.0),
        st.integers(0, 1000),
    )
    def test_delay_positive(self, median, match, seed):
        from repro.forum.generator import draw_answer_delay

        rng = np.random.default_rng(seed)
        delay = draw_answer_delay(median, match, rng)
        assert delay >= 1.0 / 60.0

    @settings(max_examples=50, deadline=None)
    @given(
        st.floats(-3.0, 3.0),
        st.floats(0.0, 1.0),
        st.integers(-5, 40),
        st.integers(0, 1000),
    )
    def test_votes_within_platform_bounds(self, expertise, match, qv, seed):
        from repro.forum.generator import draw_answer_votes

        rng = np.random.default_rng(seed)
        votes = draw_answer_votes(expertise, match, qv, rng)
        assert -6 <= votes <= 60
        assert isinstance(votes, int)
