"""Property-based tests of cross-module invariants (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PredictorConfig, build_extractor
from repro.core.routing import solve_routing_lp
from repro.forum import ForumConfig, generate_forum

FAST = PredictorConfig(n_topics=2, betweenness_sample_size=30)


@st.composite
def small_forums(draw):
    seed = draw(st.integers(0, 500))
    n_users = draw(st.integers(40, 90))
    n_questions = draw(st.integers(40, 80))
    return generate_forum(
        ForumConfig(n_users=n_users, n_questions=n_questions), seed=seed
    )


class TestPreprocessProperties:
    @settings(max_examples=10, deadline=None)
    @given(small_forums())
    def test_preprocess_invariants(self, forum):
        clean, report = forum.dataset.preprocess()
        # Every kept thread has at least one strictly-later answer.
        for thread in clean:
            assert thread.answers
            for answer in thread.answers:
                assert answer.timestamp > thread.created_at
        # At most one answer per user per thread.
        for thread in clean:
            authors = [a.author for a in thread.answers]
            assert len(authors) == len(set(authors))
        # Idempotence.
        twice, second = clean.preprocess()
        assert len(twice) == len(clean)
        assert second.duplicate_answers_removed == 0

    @settings(max_examples=10, deadline=None)
    @given(small_forums())
    def test_counts_add_up(self, forum):
        raw = forum.dataset
        clean, report = raw.preprocess()
        assert (
            len(clean) + report.questions_dropped_unanswered == len(raw)
        )
        assert (
            clean.num_answers
            + report.duplicate_answers_removed
            + report.zero_delay_answers_removed
            == raw.num_answers
        )


class TestFeatureProperties:
    @settings(max_examples=4, deadline=None)
    @given(st.integers(0, 100))
    def test_feature_vectors_always_valid(self, seed):
        forum = generate_forum(
            ForumConfig(n_users=60, n_questions=60), seed=seed
        )
        clean, _ = forum.dataset.preprocess()
        if len(clean) < 10 or clean.num_answers < 5:
            return
        extractor = build_extractor(clean, FAST)
        spec = extractor.spec
        rng = np.random.default_rng(seed)
        users = list(clean.users) + [10**7]  # include an unknown user
        for _ in range(10):
            user = users[rng.integers(len(users))]
            thread = clean.threads[rng.integers(len(clean))]
            x = extractor.features(user, thread)
            assert np.all(np.isfinite(x))
            # Topic-distribution blocks lie on the simplex.
            for name in ("topics_answered", "topics_asked"):
                block = x[spec.columns_of(name)]
                assert block.sum() == pytest.approx(1.0, abs=1e-6)
                assert np.all(block >= -1e-12)
            # Similarities bounded.
            for name in (
                "user_question_topic_similarity",
                "user_user_topic_similarity",
            ):
                value = x[spec.columns_of(name)[0]]
                assert -1e-9 <= value <= 1.0 + 1e-9
            # Counts non-negative.
            for name in (
                "answers_provided",
                "thread_cooccurrence",
                "topic_weighted_questions_answered",
            ):
                assert x[spec.columns_of(name)[0]] >= 0.0


class TestRoutingLPProperties:
    @settings(max_examples=100, deadline=None)
    @given(
        st.integers(1, 10),
        st.integers(0, 10_000),
    )
    def test_raising_a_score_never_lowers_its_probability(self, n, seed):
        rng = np.random.default_rng(seed)
        scores = rng.normal(size=n)
        caps = rng.uniform(0.2, 1.0, size=n)
        if caps.sum() < 1.0:
            caps *= 1.5 / caps.sum()
        before = solve_routing_lp(scores, caps)
        target = rng.integers(n)
        bumped = scores.copy()
        bumped[target] += abs(rng.normal()) + 0.1
        after = solve_routing_lp(bumped, caps)
        assert after[target] >= before[target] - 1e-12

    @settings(max_examples=100, deadline=None)
    @given(st.integers(1, 12), st.integers(0, 10_000))
    def test_always_feasible_distribution(self, n, seed):
        rng = np.random.default_rng(seed)
        scores = rng.normal(size=n) * 10
        caps = rng.uniform(0.0, 1.5, size=n)
        if caps.sum() < 1.0:
            caps = caps + (1.1 - caps.sum()) / n
        p = solve_routing_lp(scores, caps)
        assert p.sum() == pytest.approx(1.0, abs=1e-9)
        assert np.all(p >= 0.0)
        assert np.all(p <= caps + 1e-12)


class TestGeneratorOutcomeFunctions:
    @settings(max_examples=50, deadline=None)
    @given(
        st.floats(0.05, 24.0),
        st.floats(0.0, 1.0),
        st.integers(0, 1000),
    )
    def test_delay_positive(self, median, match, seed):
        from repro.forum.generator import draw_answer_delay

        rng = np.random.default_rng(seed)
        delay = draw_answer_delay(median, match, rng)
        assert delay >= 1.0 / 60.0

    @settings(max_examples=50, deadline=None)
    @given(
        st.floats(-3.0, 3.0),
        st.floats(0.0, 1.0),
        st.integers(-5, 40),
        st.integers(0, 1000),
    )
    def test_votes_within_platform_bounds(self, expertise, match, qv, seed):
        from repro.forum.generator import draw_answer_votes

        rng = np.random.default_rng(seed)
        votes = draw_answer_votes(expertise, match, qv, rng)
        assert -6 <= votes <= 60
        assert isinstance(votes, int)
