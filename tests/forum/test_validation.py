"""Tests for repro.forum.validation."""

import pytest

from repro.forum.dataset import ForumDataset
from repro.forum.generator import ForumConfig, generate_forum
from repro.forum.models import Post, Thread
from repro.forum.validation import validate_dataset


def post(pid, tid, author, ts, body="<p>x</p>", question=False):
    return Post(
        post_id=pid,
        thread_id=tid,
        author=author,
        timestamp=ts,
        votes=0,
        body=body,
        is_question=question,
    )


class TestCleanData:
    def test_generated_preprocessed_forum_is_clean(self):
        forum = generate_forum(ForumConfig(n_users=80, n_questions=60), seed=0)
        clean, _ = forum.dataset.preprocess()
        report = validate_dataset(clean)
        # Preprocessing removes self-answers-by-construction; the
        # generator never creates them either.
        assert not report.by_code("self_answer")
        assert not report.by_code("duplicate_post_id")
        assert not report.by_code("answer_before_question")
        assert report.ok or set(report.summary()) <= {"empty_body"}

    def test_empty_dataset_ok(self):
        assert validate_dataset(ForumDataset([])).ok


class TestViolations:
    def test_duplicate_post_id(self):
        t0 = Thread(question=post(1, 0, 1, 0.0, question=True))
        t1 = Thread(question=post(1, 1, 2, 1.0, question=True))
        report = validate_dataset(ForumDataset([t0, t1]))
        assert len(report.by_code("duplicate_post_id")) == 1

    def test_answer_before_question(self):
        t = Thread(
            question=post(0, 0, 1, 5.0, question=True),
            answers=[post(1, 0, 2, 3.0)],
        )
        report = validate_dataset(ForumDataset([t]))
        issues = report.by_code("answer_before_question")
        assert len(issues) == 1
        assert issues[0].thread_id == 0

    def test_self_answer(self):
        t = Thread(
            question=post(0, 0, 7, 0.0, question=True),
            answers=[post(1, 0, 7, 1.0)],
        )
        report = validate_dataset(ForumDataset([t]))
        assert len(report.by_code("self_answer")) == 1

    def test_empty_body(self):
        t = Thread(question=post(0, 0, 1, 0.0, body="  ", question=True))
        report = validate_dataset(ForumDataset([t]))
        assert len(report.by_code("empty_body")) == 1

    def test_summary_counts(self):
        t = Thread(
            question=post(0, 0, 7, 5.0, body="", question=True),
            answers=[post(1, 0, 7, 3.0)],
        )
        report = validate_dataset(ForumDataset([t]))
        summary = report.summary()
        assert summary["self_answer"] == 1
        assert summary["answer_before_question"] == 1
        assert summary["empty_body"] == 1
        assert not report.ok
