"""Tests for repro.forum.stackexchange — real-data loaders."""

import json

import pytest

from repro.forum.stackexchange import load_api_json, load_posts_xml

POSTS_XML = """<?xml version="1.0" encoding="utf-8"?>
<posts>
  <row Id="1" PostTypeId="1" CreationDate="2018-06-03T10:00:00.000"
       Score="5" Body="&lt;p&gt;How do I sort a list?&lt;/p&gt;"
       OwnerUserId="10" Tags="&lt;python&gt;&lt;sorting&gt;" />
  <row Id="2" PostTypeId="2" ParentId="1"
       CreationDate="2018-06-03T11:30:00.000" Score="3"
       Body="&lt;p&gt;Use &lt;code&gt;sorted()&lt;/code&gt;&lt;/p&gt;"
       OwnerUserId="11" />
  <row Id="3" PostTypeId="1" CreationDate="2018-06-04T09:00:00.000"
       Score="0" Body="&lt;p&gt;CSS question&lt;/p&gt;" OwnerUserId="12"
       Tags="&lt;css&gt;" />
  <row Id="4" PostTypeId="2" ParentId="3"
       CreationDate="2018-06-04T10:00:00.000" Score="1"
       Body="&lt;p&gt;some answer&lt;/p&gt;" OwnerUserId="13" />
  <row Id="5" PostTypeId="2" ParentId="999"
       CreationDate="2018-06-04T10:00:00.000" Score="1"
       Body="&lt;p&gt;orphan answer&lt;/p&gt;" OwnerUserId="14" />
</posts>
"""

API_JSON = {
    "items": [
        {
            "question_id": 100,
            "creation_date": 1528020000,
            "score": 7,
            "body": "<p>What is a decorator?</p>",
            "owner": {"user_id": 20},
            "answers": [
                {
                    "answer_id": 101,
                    "creation_date": 1528023600,
                    "score": 4,
                    "body": "<p>A function wrapper.</p>",
                    "owner": {"user_id": 21},
                }
            ],
        },
        {
            "question_id": 200,
            "creation_date": 1528027200,
            "score": 1,
            "body": "<p>Another question</p>",
            "owner": {"user_id": 22},
        },
    ]
}


@pytest.fixture
def posts_xml_path(tmp_path):
    path = tmp_path / "Posts.xml"
    path.write_text(POSTS_XML)
    return path


class TestPostsXml:
    def test_loads_questions_and_answers(self, posts_xml_path):
        ds = load_posts_xml(posts_xml_path)
        assert len(ds) == 2
        thread = ds.thread(1)
        assert thread.asker == 10
        assert thread.answerers == [11]
        assert thread.question.votes == 5
        assert "sorted()" in thread.answer_by(11).body

    def test_timestamps_rebased_to_hours(self, posts_xml_path):
        ds = load_posts_xml(posts_xml_path)
        thread = ds.thread(1)
        assert thread.created_at == 0.0
        assert thread.answer_by(11).timestamp == pytest.approx(1.5)
        assert ds.thread(3).created_at == pytest.approx(23.0)

    def test_tag_filter(self, posts_xml_path):
        ds = load_posts_xml(posts_xml_path, required_tag="python")
        assert len(ds) == 1
        assert 1 in ds and 3 not in ds

    def test_tag_filter_case_insensitive(self, posts_xml_path):
        assert len(load_posts_xml(posts_xml_path, required_tag="Python")) == 1

    def test_orphan_answers_skipped(self, posts_xml_path):
        ds = load_posts_xml(posts_xml_path)
        all_answer_ids = {a.post_id for t in ds for a in t.answers}
        assert 5 not in all_answer_ids

    def test_empty_when_nothing_matches(self, posts_xml_path):
        ds = load_posts_xml(posts_xml_path, required_tag="golang")
        assert len(ds) == 0


class TestApiJson:
    @pytest.fixture
    def api_path(self, tmp_path):
        path = tmp_path / "questions.json"
        path.write_text(json.dumps(API_JSON))
        return path

    def test_loads_envelope(self, api_path):
        ds = load_api_json(api_path)
        assert len(ds) == 2
        thread = ds.thread(100)
        assert thread.asker == 20
        assert thread.answerers == [21]
        assert thread.question.votes == 7

    def test_hours_rebased(self, api_path):
        ds = load_api_json(api_path)
        assert ds.thread(100).created_at == 0.0
        assert ds.thread(100).answer_by(21).timestamp == pytest.approx(1.0)
        assert ds.thread(200).created_at == pytest.approx(2.0)

    def test_bare_list_accepted(self, tmp_path):
        path = tmp_path / "bare.json"
        path.write_text(json.dumps(API_JSON["items"]))
        assert len(load_api_json(path)) == 2

    def test_missing_owner_is_anonymous(self, tmp_path):
        payload = {
            "items": [
                {
                    "question_id": 1,
                    "creation_date": 1528020000,
                    "score": 0,
                    "body": "",
                }
            ]
        }
        path = tmp_path / "q.json"
        path.write_text(json.dumps(payload))
        ds = load_api_json(path)
        assert ds.thread(1).asker == -1

    def test_non_list_payload_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"items": "nope"}))
        with pytest.raises(ValueError):
            load_api_json(path)

    def test_pipeline_integration(self, api_path):
        """Loaded real-format data flows through preprocessing."""
        ds = load_api_json(api_path)
        clean, report = ds.preprocess()
        assert len(clean) == 1  # question 200 has no answers
        assert report.questions_dropped_unanswered == 1
