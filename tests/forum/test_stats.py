"""Tests for repro.forum.stats."""

import numpy as np
import pytest

from repro.forum.dataset import ForumDataset
from repro.forum.generator import ForumConfig, generate_forum
from repro.forum.models import Post, Thread
from repro.forum.stats import (
    answer_activity_cdf,
    ecdf,
    summarize_dataset,
    summarize_graphs,
    vote_time_correlation,
)


@pytest.fixture(scope="module")
def clean():
    forum = generate_forum(ForumConfig(n_users=300, n_questions=400), seed=1)
    dataset, _ = forum.dataset.preprocess()
    return dataset


class TestEcdf:
    def test_values_sorted_probs_to_one(self):
        x, y = ecdf(np.array([3.0, 1.0, 2.0]))
        np.testing.assert_array_equal(x, [1.0, 2.0, 3.0])
        np.testing.assert_allclose(y, [1 / 3, 2 / 3, 1.0])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            ecdf(np.array([]))


class TestSummaries:
    def test_dataset_summary_counts(self, clean):
        s = summarize_dataset(clean)
        assert s.n_questions == len(clean)
        assert s.n_answers == clean.num_answers
        assert s.n_users == len(clean.users)
        assert 0 < s.answer_matrix_density < 1

    def test_graph_summary_dense_geq_qa(self, clean):
        # Fig. 2 / Sec. III-A: the dense graph has higher average degree.
        graphs = summarize_graphs(clean)
        assert graphs["dense"].average_degree >= graphs["qa"].average_degree
        assert graphs["qa"].n_nodes == graphs["dense"].n_nodes

    def test_graphs_are_disconnected_like_paper(self):
        # Paper observes both SLN graphs are disconnected.  Disconnection
        # needs enough users relative to questions, so use a sparser forum.
        forum = generate_forum(ForumConfig(n_users=800, n_questions=500), seed=1)
        dataset, _ = forum.dataset.preprocess()
        graphs = summarize_graphs(dataset)
        assert graphs["qa"].n_components > 1


class TestVoteTimeCorrelation:
    def test_fields(self, clean):
        corr = vote_time_correlation(clean)
        assert set(corr) == {"pearson", "spearman", "n_pairs"}
        assert -1 <= corr["pearson"] <= 1

    def test_requires_answers(self):
        empty = ForumDataset([])
        with pytest.raises(ValueError):
            vote_time_correlation(empty)

    def test_detects_planted_correlation(self):
        # Sanity check the statistic itself on hand-built correlated data.
        threads = []
        for i in range(30):
            q = Post(
                post_id=2 * i,
                thread_id=i,
                author=0,
                timestamp=0.0,
                votes=0,
                body="",
                is_question=True,
            )
            a = Post(
                post_id=2 * i + 1,
                thread_id=i,
                author=1,
                timestamp=float(i + 1),
                votes=i,  # votes grow with delay -> strong correlation
                body="",
                is_question=False,
            )
            threads.append(Thread(question=q, answers=[a]))
        corr = vote_time_correlation(ForumDataset(threads))
        assert corr["pearson"] > 0.95


class TestActivityCdf:
    def test_cdf_shape(self, clean):
        x, y = answer_activity_cdf(clean)
        assert len(x) == len(y)
        assert y[-1] == pytest.approx(1.0)
        assert np.all(np.diff(x) >= 0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            answer_activity_cdf(ForumDataset([]))
