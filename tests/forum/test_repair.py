"""Tests for repro.forum.repair."""

import pytest

from repro.forum.dataset import ForumDataset
from repro.forum.models import Post, Thread
from repro.forum.repair import repair_dataset
from repro.forum.validation import validate_dataset


def post(pid, tid, author, ts, question=False):
    return Post(
        post_id=pid,
        thread_id=tid,
        author=author,
        timestamp=ts,
        votes=0,
        body="<p>x</p>",
        is_question=question,
    )


def dirty_dataset():
    t0 = Thread(
        question=post(0, 0, 1, 10.0, question=True),
        answers=[
            post(1, 0, 2, 12.0),  # fine
            post(2, 0, 3, 8.0),  # before question
            post(3, 0, 1, 13.0),  # self-answer
        ],
    )
    t1 = Thread(
        question=post(10, 1, 4, 20.0, question=True),
        answers=[post(1, 1, 5, 21.0)],  # duplicate post id (1 used in t0)
    )
    return ForumDataset([t0, t1])


class TestRepair:
    def test_removes_all_violations(self):
        repaired, report = repair_dataset(dirty_dataset())
        assert report.answers_dropped_before_question == 1
        assert report.answers_dropped_self_answer == 1
        assert report.answers_dropped_duplicate_id == 1
        check = validate_dataset(repaired)
        assert check.ok

    def test_keeps_valid_answers(self):
        repaired, _ = repair_dataset(dirty_dataset())
        assert repaired.thread(0).answerers == [2]

    def test_threads_without_answers_kept(self):
        repaired, _ = repair_dataset(dirty_dataset())
        assert 1 in repaired
        assert repaired.thread(1).answers == []

    def test_duplicate_question_id_drops_thread(self):
        t0 = Thread(question=post(0, 0, 1, 0.0, question=True))
        t1 = Thread(question=post(0, 1, 2, 1.0, question=True))
        repaired, report = repair_dataset(ForumDataset([t0, t1]))
        assert len(repaired) == 1
        assert report.threads_dropped_duplicate_question_id == 1

    def test_clean_dataset_untouched(self):
        from repro.forum.generator import ForumConfig, generate_forum

        forum = generate_forum(ForumConfig(n_users=60, n_questions=50), seed=1)
        clean, _ = forum.dataset.preprocess()
        repaired, report = repair_dataset(clean)
        assert len(repaired) == len(clean)
        assert repaired.num_answers == clean.num_answers
        assert report == type(report)(0, 0, 0, 0)

    def test_idempotent(self):
        once, _ = repair_dataset(dirty_dataset())
        twice, report = repair_dataset(once)
        assert twice.num_answers == once.num_answers
        assert report == type(report)(0, 0, 0, 0)


class TestOrderIndependence:
    """Duplicate resolution must not depend on thread iteration order.

    ``ForumDataset`` sorts by ``created_at``, so order-dependence can
    only show through timestamp ties — exactly the case these threads
    construct (two threads created at the same instant sharing an
    answer post id).
    """

    def tied_threads(self):
        t0 = Thread(
            question=post(0, 0, 1, 10.0, question=True),
            answers=[post(5, 0, 2, 12.0)],
        )
        t1 = Thread(
            question=post(10, 1, 3, 10.0, question=True),  # tied created_at
            answers=[post(5, 1, 4, 11.0)],  # same answer post id as t0's
        )
        return t0, t1

    def test_shuffled_input_same_result(self):
        t0, t1 = self.tied_threads()
        a, report_a = repair_dataset(ForumDataset([t0, t1]))
        b, report_b = repair_dataset(ForumDataset([t1, t0]))
        assert report_a == report_b
        surviving_a = {p.post_id for t in a for p in t.posts}
        surviving_b = {p.post_id for t in b for p in t.posts}
        assert surviving_a == surviving_b

    def test_winner_chosen_by_timestamp_not_position(self):
        t0, t1 = self.tied_threads()
        for ordering in ([t0, t1], [t1, t0]):
            repaired, _ = repair_dataset(ForumDataset(ordering))
            # t1's occurrence of post 5 is earlier (11.0 < 12.0), so it
            # must win regardless of which thread is seen first.
            assert repaired.thread(1).answers[0].post_id == 5
            assert repaired.thread(0).answers == []

    def test_tied_question_ids_resolved_by_timestamp(self):
        early = Thread(question=post(0, 0, 1, 5.0, question=True))
        late = Thread(question=post(0, 1, 2, 9.0, question=True))
        for ordering in ([early, late], [late, early]):
            repaired, report = repair_dataset(ForumDataset(ordering))
            assert [t.thread_id for t in repaired] == [0]
            assert report.threads_dropped_duplicate_question_id == 1


class TestNonFiniteRepair:
    def test_nan_question_time_drops_thread(self):
        ok = Thread(question=post(0, 0, 1, 5.0, question=True))
        broken = Thread(
            question=post(10, 1, 2, float("nan"), question=True),
            answers=[post(11, 1, 3, 6.0)],
        )
        repaired, report = repair_dataset(ForumDataset([ok, broken]))
        assert [t.thread_id for t in repaired] == [0]
        assert report.threads_dropped_nonfinite_time == 1

    def test_nan_answer_time_dropped(self):
        thread = Thread(
            question=post(0, 0, 1, 5.0, question=True),
            answers=[post(1, 0, 2, float("nan")), post(2, 0, 3, 6.0)],
        )
        repaired, report = repair_dataset(ForumDataset([thread]))
        assert [a.post_id for a in repaired.thread(0).answers] == [2]
        assert report.answers_dropped_nonfinite_time == 1

    def test_nan_votes_coerced_to_zero(self):
        thread = Thread(
            question=Post(0, 0, 1, 5.0, float("nan"), "<p>x</p>", True),
            answers=[Post(1, 0, 2, 6.0, float("inf"), "<p>x</p>", False)],
        )
        repaired, report = repair_dataset(ForumDataset([thread]))
        assert repaired.thread(0).question.votes == 0
        assert repaired.thread(0).answers[0].votes == 0
        assert report.votes_coerced == 2
        assert validate_dataset(repaired).ok
