"""Tests for repro.forum.repair."""

import pytest

from repro.forum.dataset import ForumDataset
from repro.forum.models import Post, Thread
from repro.forum.repair import repair_dataset
from repro.forum.validation import validate_dataset


def post(pid, tid, author, ts, question=False):
    return Post(
        post_id=pid,
        thread_id=tid,
        author=author,
        timestamp=ts,
        votes=0,
        body="<p>x</p>",
        is_question=question,
    )


def dirty_dataset():
    t0 = Thread(
        question=post(0, 0, 1, 10.0, question=True),
        answers=[
            post(1, 0, 2, 12.0),  # fine
            post(2, 0, 3, 8.0),  # before question
            post(3, 0, 1, 13.0),  # self-answer
        ],
    )
    t1 = Thread(
        question=post(10, 1, 4, 20.0, question=True),
        answers=[post(1, 1, 5, 21.0)],  # duplicate post id (1 used in t0)
    )
    return ForumDataset([t0, t1])


class TestRepair:
    def test_removes_all_violations(self):
        repaired, report = repair_dataset(dirty_dataset())
        assert report.answers_dropped_before_question == 1
        assert report.answers_dropped_self_answer == 1
        assert report.answers_dropped_duplicate_id == 1
        check = validate_dataset(repaired)
        assert check.ok

    def test_keeps_valid_answers(self):
        repaired, _ = repair_dataset(dirty_dataset())
        assert repaired.thread(0).answerers == [2]

    def test_threads_without_answers_kept(self):
        repaired, _ = repair_dataset(dirty_dataset())
        assert 1 in repaired
        assert repaired.thread(1).answers == []

    def test_duplicate_question_id_drops_thread(self):
        t0 = Thread(question=post(0, 0, 1, 0.0, question=True))
        t1 = Thread(question=post(0, 1, 2, 1.0, question=True))
        repaired, report = repair_dataset(ForumDataset([t0, t1]))
        assert len(repaired) == 1
        assert report.threads_dropped_duplicate_question_id == 1

    def test_clean_dataset_untouched(self):
        from repro.forum.generator import ForumConfig, generate_forum

        forum = generate_forum(ForumConfig(n_users=60, n_questions=50), seed=1)
        clean, _ = forum.dataset.preprocess()
        repaired, report = repair_dataset(clean)
        assert len(repaired) == len(clean)
        assert repaired.num_answers == clean.num_answers
        assert report == type(report)(0, 0, 0, 0)

    def test_idempotent(self):
        once, _ = repair_dataset(dirty_dataset())
        twice, report = repair_dataset(once)
        assert twice.num_answers == once.num_answers
        assert report == type(report)(0, 0, 0, 0)
