"""Streamed chunked generation: invariants, statistics, bounded footprint."""

import numpy as np
import pytest

from repro.forum import ForumConfig
from repro.forum.streaming import (
    ingest_to_shards,
    sample_users,
    stream_forum_chunks,
)

CONFIG = ForumConfig(n_users=3000, n_questions=2500, activity_tail=1.3)


@pytest.fixture(scope="module")
def chunks():
    return list(stream_forum_chunks(CONFIG, seed=5, chunk_questions=600))


class TestGroundTruth:
    def test_shapes_and_dtypes(self):
        users = sample_users(CONFIG, np.random.default_rng(0))
        assert users.n_users == CONFIG.n_users
        assert users.n_topics == CONFIG.n_topics
        assert users.interests.dtype == np.float32
        np.testing.assert_allclose(
            users.interests.sum(axis=1), 1.0, atol=1e-5
        )
        assert users.median_delay.min() >= 0.05
        assert users.median_delay.max() <= 24.0

    def test_topic_cdf_is_a_cdf(self):
        users = sample_users(CONFIG, np.random.default_rng(0))
        assert users.topic_cdf.shape == (CONFIG.n_topics, CONFIG.n_users)
        np.testing.assert_allclose(users.topic_cdf[:, -1], 1.0)
        assert np.all(np.diff(users.topic_cdf, axis=1) >= 0)


class TestChunkInvariants:
    def test_total_question_count(self, chunks):
        assert sum(c.n_questions for c in chunks) == CONFIG.n_questions

    def test_chronological_within_and_across_chunks(self, chunks):
        last = -np.inf
        for chunk in chunks:
            assert np.all(np.diff(chunk.q_created) >= 0)
            assert chunk.q_created[0] >= last
            assert chunk.q_created[0] >= chunk.t0
            assert chunk.q_created[-1] <= chunk.t1
            last = chunk.q_created[-1]

    def test_thread_ids_globally_unique_and_increasing(self, chunks):
        all_ids = np.concatenate([c.q_id for c in chunks])
        assert np.all(np.diff(all_ids) == 1)

    def test_answers_grouped_by_question(self, chunks):
        for chunk in chunks:
            assert np.all(np.diff(chunk.a_thread) >= 0)
            assert np.all(np.isin(chunk.a_thread, chunk.q_id))

    def test_no_self_answers(self, chunks):
        for chunk in chunks:
            askers = chunk.q_asker[chunk.a_thread - chunk.q_id[0]]
            assert np.all(chunk.a_author != askers)

    def test_delay_and_vote_ranges(self, chunks):
        for chunk in chunks:
            nonzero = chunk.a_delay[chunk.a_delay > 0]
            assert nonzero.min() >= 1.0 / 60.0
            assert chunk.a_votes.min() >= -6
            assert chunk.a_votes.max() <= 60
            np.testing.assert_array_equal(
                chunk.a_timestamp,
                chunk.q_created[chunk.a_thread - chunk.q_id[0]] + chunk.a_delay,
            )

    def test_topic_mixtures_normalized(self, chunks):
        for chunk in chunks:
            np.testing.assert_allclose(
                chunk.q_topics.sum(axis=1), 1.0, atol=1e-5
            )
            np.testing.assert_allclose(
                chunk.a_topics.sum(axis=1), 1.0, atol=1e-5
            )

    def test_deterministic_under_seed(self):
        a = list(stream_forum_chunks(CONFIG, seed=5, chunk_questions=600))
        b = list(stream_forum_chunks(CONFIG, seed=5, chunk_questions=600))
        for ca, cb in zip(a, b):
            np.testing.assert_array_equal(ca.q_created, cb.q_created)
            np.testing.assert_array_equal(ca.a_author, cb.a_author)
            np.testing.assert_array_equal(ca.a_votes, cb.a_votes)


class TestStatistics:
    def test_unanswered_fraction(self, chunks):
        answered = set()
        for chunk in chunks:
            answered.update(np.unique(chunk.a_thread).tolist())
        frac = 1.0 - len(answered) / CONFIG.n_questions
        assert abs(frac - CONFIG.unanswered_fraction) < 0.05

    def test_answers_per_answered_question(self, chunks):
        n_answers = sum(c.n_answers for c in chunks)
        answered = set()
        for chunk in chunks:
            answered.update(np.unique(chunk.a_thread).tolist())
        per_q = n_answers / len(answered)
        # 1 + Poisson(mean_extra_answers), minus the rare dropped
        # asker-collision rows.
        assert abs(per_q - (1 + CONFIG.mean_extra_answers)) < 0.12

    def test_activity_is_heavy_tailed(self, chunks):
        authors = np.concatenate([c.a_author for c in chunks])
        _, counts = np.unique(authors, return_counts=True)
        # Paper Fig. 4a: a large minority of answerers post 2+ answers.
        assert (counts >= 2).mean() > 0.15
        assert counts.max() > 10


class TestIngest:
    def test_shard_partition_and_report(self):
        logs, questions, report = ingest_to_shards(
            CONFIG, seed=5, n_shards=3, chunk_questions=600
        )
        assert questions.n_rows == CONFIG.n_questions == report.n_questions
        assert sum(log.n_rows for log in logs) == report.n_answers
        for shard, log in enumerate(logs):
            users = log.column("user")
            assert np.all(users % 3 == shard)
        assert report.peak_rss_bytes > 0
        assert report.answers_per_shard == [log.n_rows for log in logs]

    def test_single_shard_equals_stream_totals(self):
        chunks = list(stream_forum_chunks(CONFIG, seed=5, chunk_questions=600))
        logs, _, report = ingest_to_shards(
            CONFIG, seed=5, n_shards=1, chunk_questions=600
        )
        np.testing.assert_array_equal(
            logs[0].column("user"),
            np.concatenate([c.a_author for c in chunks]),
        )
        np.testing.assert_array_equal(
            logs[0].column("votes"),
            np.concatenate([c.a_votes for c in chunks]),
        )
        assert report.n_chunks == len(chunks)
