"""Tests for repro.forum.io — dataset persistence."""

import json

import pytest

from repro.forum.dataset import ForumDataset
from repro.forum.generator import ForumConfig, generate_forum
from repro.forum.io import (
    load_dataset,
    save_dataset,
    thread_from_dict,
    thread_to_dict,
)


@pytest.fixture(scope="module")
def dataset():
    forum = generate_forum(ForumConfig(n_users=60, n_questions=40), seed=3)
    return forum.dataset


class TestRoundTrip:
    def test_json_roundtrip(self, dataset, tmp_path):
        path = tmp_path / "forum.jsonl"
        save_dataset(dataset, path)
        loaded = load_dataset(path)
        assert len(loaded) == len(dataset)
        for orig, back in zip(dataset, loaded):
            assert orig.thread_id == back.thread_id
            assert orig.asker == back.asker
            assert orig.question.body == back.question.body
            assert [a.post_id for a in orig.answers] == [
                a.post_id for a in back.answers
            ]
            assert [a.votes for a in orig.answers] == [
                a.votes for a in back.answers
            ]

    def test_gzip_roundtrip(self, dataset, tmp_path):
        path = tmp_path / "forum.jsonl.gz"
        save_dataset(dataset, path)
        loaded = load_dataset(path)
        assert len(loaded) == len(dataset)
        # The gz file must actually be gzip (magic bytes).
        assert path.read_bytes()[:2] == b"\x1f\x8b"

    def test_empty_dataset(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        save_dataset(ForumDataset([]), path)
        assert len(load_dataset(path)) == 0

    def test_thread_dict_roundtrip(self, dataset):
        thread = dataset.threads[0]
        back = thread_from_dict(thread_to_dict(thread))
        assert back.thread_id == thread.thread_id
        assert len(back.answers) == len(thread.answers)

    def test_timestamps_preserved_exactly(self, dataset, tmp_path):
        path = tmp_path / "forum.jsonl"
        save_dataset(dataset, path)
        loaded = load_dataset(path)
        for orig, back in zip(dataset, loaded):
            assert orig.created_at == back.created_at


class TestErrors:
    def test_malformed_line_raises_with_location(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"not": "a thread"}\n')
        with pytest.raises(ValueError, match="bad.jsonl:1"):
            load_dataset(path)

    def test_bad_json_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{{{\n")
        with pytest.raises(ValueError, match="malformed"):
            load_dataset(path)

    def test_unknown_version_rejected(self, dataset):
        data = thread_to_dict(dataset.threads[0])
        data["version"] = 99
        with pytest.raises(ValueError, match="version"):
            thread_from_dict(data)

    def test_blank_lines_skipped(self, dataset, tmp_path):
        path = tmp_path / "forum.jsonl"
        save_dataset(dataset, path)
        text = path.read_text()
        path.write_text("\n" + text + "\n\n")
        assert len(load_dataset(path)) == len(dataset)
