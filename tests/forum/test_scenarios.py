"""Scenario presets: registry, invariants and seeded-stream properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.forum import ForumConfig, TrafficConfig, generate_traffic
from repro.forum.dataset import ForumDataset
from repro.forum.repair import strip_vote_spam
from repro.forum.scenarios import (
    ScenarioPreset,
    build_scenario,
    get_scenario,
    list_scenarios,
)
from repro.forum.scenarios.distortions import VoteSpam
from repro.forum.traffic import derive_rng, scenario_seed_sequence

ALL_PRESETS = list_scenarios()
SCALE = 0.3  # small enough for per-preset parametrized builds


def build(name, seed=0, scale=SCALE):
    return build_scenario(name, seed=seed, scale=scale)


class TestRegistry:
    def test_expected_presets_registered(self):
        assert ALL_PRESETS == sorted(ALL_PRESETS)
        for name in (
            "baseline",
            "support_desk",
            "ebb_and_flow",
            "flash_crowd",
            "coldstart_flood",
            "brigading",
        ):
            assert name in ALL_PRESETS
            assert get_scenario(name).name == name

    def test_unknown_preset_raises(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            get_scenario("does_not_exist")

    def test_traffic_keyed_by_preset_name(self):
        for name in ALL_PRESETS:
            assert get_scenario(name).traffic.scenario == name

    def test_preset_needs_name(self):
        with pytest.raises(ValueError, match="needs a name"):
            ScenarioPreset(name="", description="x")


class TestScenarioInvariants:
    """Every preset's dataset is clean-admissible by construction."""

    @pytest.mark.parametrize("name", ALL_PRESETS)
    def test_stream_clock_and_id_invariants(self, name):
        data = build(name)
        created = [t.created_at for t in data.dataset]
        assert created == sorted(created), "thread stream must be monotone"
        post_ids = [p.post_id for t in data.dataset for p in t.posts]
        assert len(post_ids) == len(set(post_ids)), "post ids must be unique"
        thread_ids = [t.thread_id for t in data.dataset]
        assert len(thread_ids) == len(set(thread_ids))
        for thread in data.dataset:
            for answer in thread.answers:
                assert answer.author != thread.asker, "no self-answers"
                assert answer.timestamp > thread.created_at
                assert np.isfinite(answer.timestamp)
                assert np.isfinite(float(answer.votes))

    @pytest.mark.parametrize("name", ALL_PRESETS)
    def test_build_deterministic(self, name):
        first = build(name)
        second = build(name)
        assert [t.thread_id for t in first.dataset] == [
            t.thread_id for t in second.dataset
        ]
        assert all(a == b for a, b in zip(first.dataset, second.dataset))
        assert first.staff == second.staff
        assert first.fresh_users == second.fresh_users
        assert first.spam_waves == second.spam_waves

    def test_seed_changes_the_forum(self):
        assert build("baseline", seed=0).dataset.fingerprint() != build(
            "baseline", seed=1
        ).dataset.fingerprint()

    def test_support_desk_staff_pool(self):
        data = build("support_desk")
        assert len(data.staff) == 10
        staff = set(data.staff)
        for thread in data.dataset:
            for answer in thread.answers:
                assert answer.author in staff

    def test_coldstart_ids_disjoint_from_base(self):
        data = build("coldstart_flood")
        assert data.fresh_users, "flood must introduce fresh askers"
        base = build("baseline")  # different spawned stream: compare within
        fresh = set(data.fresh_users)
        answerers = {a.author for t in data.dataset for a in t.answers}
        # Fresh ids only ever ask; they are above every base id and never
        # overlap the answerer population.
        assert not fresh & answerers
        non_fresh = {
            t.asker for t in data.dataset if t.asker not in fresh
        } | answerers
        assert min(fresh, default=0) > max(non_fresh)
        assert len(base.fresh_users) == 0

    def test_brigading_votes_conserved_under_strip(self):
        data = build("brigading")
        assert data.spam_waves
        clean_preset = ScenarioPreset(
            name="brigading",  # same spawn labels => same base forum
            description="no-spam twin",
            forum=get_scenario("brigading").forum,
        )
        unspammed = build_scenario(clean_preset, seed=0, scale=SCALE)
        stripped = strip_vote_spam(data.dataset, data.spam_waves)
        want = {p.post_id: p.votes for t in unspammed.dataset for p in t.posts}
        got = {p.post_id: p.votes for t in stripped for p in t.posts}
        assert want == got, "strip_vote_spam must invert the spam exactly"
        # And the spam really moved votes in the first place.
        spammed = {p.post_id: p.votes for t in data.dataset for p in t.posts}
        assert spammed != want

    def test_chunked_emission_is_pure_slicing(self):
        data = build("support_desk")
        whole = [t for chunk in data.stream() for t in chunk]
        chunked = [t for chunk in data.stream(chunk_threads=7) for t in chunk]
        assert whole == data.dataset.threads
        assert chunked == whole, "chunked emission must be bit-identical"

    def test_scale_shrinks_the_forum(self):
        small = build("baseline", scale=0.3)
        large = build("baseline", scale=0.6)
        assert len(small.dataset) < len(large.dataset)
        with pytest.raises(ValueError, match="scale"):
            build("baseline", scale=0.0)


class TestSeedDerivation:
    """SeedSequence-spawned streams: content-keyed, order-independent."""

    def test_label_streams_are_stable_and_distinct(self):
        a = derive_rng(7, "support_desk/forum").integers(1 << 62)
        b = derive_rng(7, "support_desk/forum").integers(1 << 62)
        c = derive_rng(7, "brigading/forum").integers(1 << 62)
        d = derive_rng(8, "support_desk/forum").integers(1 << 62)
        assert a == b
        assert a != c and a != d

    def test_no_seed_arithmetic_collisions(self):
        # The old seed+i scheme would collide (seed=3, i=1) with
        # (seed=4, i=0); spawn-keyed derivation cannot.
        seen = set()
        for seed in range(4):
            for name in ALL_PRESETS:
                state = tuple(
                    scenario_seed_sequence(seed, f"{name}/forum")
                    .generate_state(2)
                    .tolist()
                )
                assert state not in seen
                seen.add(state)

    @pytest.mark.parametrize("name", ALL_PRESETS)
    def test_cross_preset_stability(self, name):
        """A preset's stream depends only on (seed, its own labels).

        Building other presets first — or not at all — must not perturb
        this preset's dataset, which is exactly what the old seed-offset
        arithmetic in ``forum.traffic`` could not guarantee.
        """
        alone = build(name).dataset.fingerprint()
        for other in ALL_PRESETS:
            if other != name:
                build(other, scale=0.3)
        again = build(name).dataset.fingerprint()
        assert alone == again

    def test_traffic_scenario_field_switches_stream(self):
        dataset = build("baseline").dataset
        legacy = TrafficConfig(n_askers=20, n_events=5, seed=3)
        labelled = TrafficConfig(
            n_askers=20, n_events=5, seed=3, scenario="flash_crowd"
        )
        legacy_sched = generate_traffic(dataset, legacy)
        labelled_sched = generate_traffic(dataset, labelled)
        # Same shape, different draws: the label moves the stream.
        assert len(legacy_sched) == len(labelled_sched)
        assert [r.arrival_s for r in legacy_sched] != [
            r.arrival_s for r in labelled_sched
        ]
        # And the legacy stream still matches default_rng(seed) exactly.
        legacy_again = generate_traffic(dataset, legacy)
        assert [r.arrival_s for r in legacy_sched] == [
            r.arrival_s for r in legacy_again
        ]


class TestScenarioProperties:
    """Property-based checks over seeds and scales (hypothesis)."""

    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(0, 200),
        name=st.sampled_from(ALL_PRESETS),
    )
    def test_invariants_hold_across_seeds(self, seed, name):
        data = build_scenario(name, seed=seed, scale=0.25)
        created = [t.created_at for t in data.dataset]
        assert created == sorted(created)
        post_ids = [p.post_id for t in data.dataset for p in t.posts]
        assert len(post_ids) == len(set(post_ids))
        for thread in data.dataset:
            for answer in thread.answers:
                assert answer.author != thread.asker
                assert answer.timestamp > thread.created_at

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 200), chunk=st.integers(1, 40))
    def test_chunked_equals_unchunked_for_any_chunk_size(self, seed, chunk):
        data = build_scenario("flash_crowd", seed=seed, scale=0.25)
        whole = [t for block in data.stream() for t in block]
        sliced = [t for block in data.stream(chunk_threads=chunk) for t in block]
        assert sliced == whole

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 100))
    def test_vote_spam_strips_exactly_for_any_seed(self, seed):
        data = build_scenario("brigading", seed=seed, scale=0.25)
        spam = next(
            d
            for d in data.preset.distortions
            if isinstance(d, VoteSpam)
        )
        assert spam.stage == "final"
        stripped = strip_vote_spam(data.dataset, data.spam_waves)
        # Stripping and re-applying the recorded waves round-trips.
        from repro.forum.repair import apply_vote_spam

        back = ForumDataset(
            apply_vote_spam(list(stripped), data.spam_waves)
        )
        want = {p.post_id: p.votes for t in data.dataset for p in t.posts}
        got = {p.post_id: p.votes for t in back for p in t.posts}
        assert want == got


class TestMatrixRunner:
    def test_engine_axis_replays_two_stage(self):
        from repro.forum.scenarios import (
            SCENARIO_ENGINES,
            ScenarioMatrixRunner,
        )

        runner = ScenarioMatrixRunner(
            ["baseline"],
            seed=0,
            scale=0.25,
            engine_configs=SCENARIO_ENGINES,
            include_serving=False,
        )
        result = runner.run()
        assert result["engines"] == ["dense", "two_stage"]
        report = result["scenarios"]["baseline"]
        two_stage = report["engines"]["two_stage"]
        assert two_stage["n_routed"] > 0
        assert two_stage["digest"]
        assert set(two_stage["accuracy"]) == set(report["accuracy"])


class TestGeneratorScenarioKnobs:
    """The wave/drift knobs stay bit-identical when disabled."""

    def test_wave_knob_disabled_is_bit_identical(self):
        from repro.forum import generate_forum

        base = ForumConfig(n_users=60, n_questions=70)
        knobbed = ForumConfig(
            n_users=60,
            n_questions=70,
            popularity_wave_amplitude=0.0,
            popularity_wave_period_days=3.0,
            topic_drift_rate=0.0,
        )
        assert (
            generate_forum(base, seed=5).dataset.fingerprint()
            == generate_forum(knobbed, seed=5).dataset.fingerprint()
        )

    def test_wave_and_drift_change_the_forum(self):
        from repro.forum import generate_forum

        base = ForumConfig(n_users=60, n_questions=70)
        waved = ForumConfig(
            n_users=60, n_questions=70, popularity_wave_amplitude=0.7
        )
        drifted = ForumConfig(n_users=60, n_questions=70, topic_drift_rate=2.0)
        fp = generate_forum(base, seed=5).dataset.fingerprint()
        assert generate_forum(waved, seed=5).dataset.fingerprint() != fp
        # Drift rotates topics without consuming randomness: arrival
        # times (the fingerprint) are unchanged, bodies are not.
        drifted_forum = generate_forum(drifted, seed=5)
        assert drifted_forum.dataset.fingerprint() == fp
        base_bodies = [
            t.question.body for t in generate_forum(base, seed=5).dataset
        ]
        drift_bodies = [t.question.body for t in drifted_forum.dataset]
        assert base_bodies != drift_bodies

    def test_knob_validation(self):
        with pytest.raises(ValueError, match="popularity_wave_amplitude"):
            ForumConfig(popularity_wave_amplitude=1.5)
        with pytest.raises(ValueError, match="popularity_wave_period_days"):
            ForumConfig(popularity_wave_period_days=0.0)
        with pytest.raises(ValueError, match="topic_drift_rate"):
            ForumConfig(topic_drift_rate=-0.1)
