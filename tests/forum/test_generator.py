"""Tests for repro.forum.generator — structure and calibration."""

import numpy as np
import pytest

from repro.forum.generator import ForumConfig, generate_forum
from repro.forum.stats import (
    median_response_time_by_activity,
    vote_time_correlation,
)
from repro.topics.tokenizer import split_text_and_code

SMALL = ForumConfig(n_users=300, n_questions=400)


@pytest.fixture(scope="module")
def forum():
    return generate_forum(SMALL, seed=0)


@pytest.fixture(scope="module")
def clean(forum):
    dataset, _ = forum.dataset.preprocess()
    return dataset


class TestStructure:
    def test_question_count(self, forum):
        assert len(forum.dataset) == SMALL.n_questions

    def test_deterministic(self):
        a = generate_forum(SMALL, seed=5)
        b = generate_forum(SMALL, seed=5)
        ra = a.dataset.answer_records()
        rb = b.dataset.answer_records()
        assert [(r.user, r.thread_id, r.votes) for r in ra] == [
            (r.user, r.thread_id, r.votes) for r in rb
        ]

    def test_seed_changes_output(self):
        a = generate_forum(SMALL, seed=1)
        b = generate_forum(SMALL, seed=2)
        assert a.dataset.num_answers != b.dataset.num_answers or [
            r.votes for r in a.dataset.answer_records()
        ] != [r.votes for r in b.dataset.answer_records()]

    def test_unanswered_fraction_close_to_config(self, forum):
        unanswered = sum(1 for t in forum.dataset if not t.answers)
        frac = unanswered / len(forum.dataset)
        assert abs(frac - SMALL.unanswered_fraction) < 0.1

    def test_askers_never_answer_own_question(self, forum):
        for t in forum.dataset:
            assert t.asker not in t.answerers

    def test_ground_truth_shapes(self, forum):
        assert forum.user_interests.shape == (SMALL.n_users, SMALL.n_topics)
        np.testing.assert_allclose(forum.user_interests.sum(axis=1), 1.0)
        assert forum.question_topics.shape == (SMALL.n_questions, SMALL.n_topics)
        np.testing.assert_allclose(forum.question_topics.sum(axis=1), 1.0, atol=1e-9)

    def test_timestamps_within_window_for_questions(self, forum):
        for t in forum.dataset:
            assert 0 <= t.created_at <= SMALL.duration_hours

    def test_bodies_have_words_and_code(self, forum):
        thread = forum.dataset.threads[0]
        post = split_text_and_code(thread.question.body)
        assert post.word_length > 0
        assert post.code_length > 0


class TestCalibration:
    """The generator must reproduce the paper's dataset statistics in shape."""

    def test_votes_uncorrelated_with_time(self, clean):
        # Fig. 3: no tradeoff between quality and timing.
        corr = vote_time_correlation(clean)
        assert abs(corr["pearson"]) < 0.15

    def test_active_users_answer_faster(self, clean):
        # Fig. 4b: median response time falls with activity.
        groups = median_response_time_by_activity(clean, (1, 5))
        if len(groups[5]) < 5:
            pytest.skip("too few highly active users at this scale")
        assert np.median(groups[5]) < np.median(groups[1])

    def test_heavy_tailed_activity(self, clean):
        # Fig. 4a: a sizeable fraction of users answer repeatedly.
        counts = np.array(list(clean.answers_per_user().values()))
        frac_multi = (counts >= 2).mean()
        assert 0.2 < frac_multi < 0.8

    def test_vote_range_with_tail(self, clean):
        votes = np.array([r.votes for r in clean.answer_records()])
        assert votes.min() >= -6
        assert votes.max() > 3  # some tail
        assert abs(np.median(votes)) <= 2  # most answers near zero

    def test_word_lengths_around_median_300(self, forum):
        lengths = [
            split_text_and_code(t.question.body).word_length
            for t in forum.dataset.threads[:200]
        ]
        assert 150 < np.median(lengths) < 500

    def test_code_length_higher_variance_than_words(self, forum):
        # Fig. 4e: code length varies much more than word length.
        posts = [
            split_text_and_code(t.question.body)
            for t in forum.dataset.threads[:300]
        ]
        words = np.array([p.word_length for p in posts], dtype=float)
        code = np.array([p.code_length for p in posts], dtype=float)
        assert np.std(np.log(code + 1)) > np.std(np.log(words + 1))

    def test_topic_match_drives_answering(self, forum, clean):
        # Answerers should match question topics better than random users.
        rng = np.random.default_rng(0)
        matched, random_match = [], []
        for t in clean.threads[:200]:
            mix = forum.question_topics[t.thread_id]
            for u in t.answerers:
                matched.append(forum.user_interests[u] @ mix)
            random_match.append(
                forum.user_interests[rng.integers(SMALL.n_users)] @ mix
            )
        assert np.mean(matched) > np.mean(random_match)

    def test_expertise_drives_votes(self, forum, clean):
        records = clean.answer_records()
        votes = np.array([r.votes for r in records], dtype=float)
        expertise = np.array([forum.user_expertise[r.user] for r in records])
        corr = np.corrcoef(votes, expertise)[0, 1]
        assert corr > 0.3


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_users": 5},
            {"n_questions": 5},
            {"n_topics": 1},
            {"unanswered_fraction": 1.0},
            {"duration_days": 0},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            ForumConfig(**kwargs)

    def test_duration_hours(self):
        assert ForumConfig(duration_days=2).duration_hours == 48.0


class TestAnswerExcitation:
    def test_default_no_excitation(self):
        config = ForumConfig(n_users=150, n_questions=150)
        assert config.answer_excitation == 0.0

    def test_excitation_increases_answers(self):
        base_cfg = ForumConfig(n_users=300, n_questions=300)
        excited_cfg = ForumConfig(
            n_users=300, n_questions=300, answer_excitation=0.5
        )
        base = generate_forum(base_cfg, seed=11).dataset.num_answers
        excited = generate_forum(excited_cfg, seed=11).dataset.num_answers
        assert excited > base * 1.2

    def test_followups_arrive_after_seeds(self):
        cfg = ForumConfig(n_users=300, n_questions=300, answer_excitation=0.6)
        forum = generate_forum(cfg, seed=12)
        for thread in forum.dataset:
            for answer in thread.answers:
                assert answer.timestamp >= thread.created_at

    def test_invalid_excitation(self):
        with pytest.raises(ValueError):
            ForumConfig(answer_excitation=1.0)


class TestDiurnalArrivals:
    def test_default_uniform(self):
        assert ForumConfig(n_users=100, n_questions=100).diurnal_amplitude == 0.0

    def test_diurnal_concentrates_daytime(self):
        """With a strong cycle, more questions arrive in the sine peak
        half of the day (hours 0-12 of each cycle) than the trough."""
        cfg = ForumConfig(
            n_users=200, n_questions=2000, diurnal_amplitude=0.9
        )
        forum = generate_forum(cfg, seed=13)
        hours_of_day = np.array(
            [t.created_at % 24.0 for t in forum.dataset]
        )
        peak = np.sum(hours_of_day < 12.0)
        trough = np.sum(hours_of_day >= 12.0)
        assert peak > trough * 1.3

    def test_uniform_is_flat(self):
        cfg = ForumConfig(n_users=200, n_questions=2000)
        forum = generate_forum(cfg, seed=13)
        hours_of_day = np.array(
            [t.created_at % 24.0 for t in forum.dataset]
        )
        peak = np.sum(hours_of_day < 12.0)
        trough = np.sum(hours_of_day >= 12.0)
        assert 0.8 < peak / trough < 1.25

    def test_question_count_preserved(self):
        cfg = ForumConfig(
            n_users=100, n_questions=150, diurnal_amplitude=0.5
        )
        forum = generate_forum(cfg, seed=14)
        assert len(forum.dataset) == 150

    def test_times_sorted_within_window(self):
        cfg = ForumConfig(
            n_users=100, n_questions=150, diurnal_amplitude=0.5
        )
        forum = generate_forum(cfg, seed=15)
        times = [t.created_at for t in forum.dataset]
        assert times == sorted(times)
        assert all(0 <= t <= cfg.duration_hours for t in times)

    def test_invalid_amplitude(self):
        with pytest.raises(ValueError):
            ForumConfig(diurnal_amplitude=1.0)
