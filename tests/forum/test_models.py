"""Tests for repro.forum.models."""

import pytest

from repro.forum.models import Post, Thread


def make_question(thread_id=0, author=1, timestamp=0.0, votes=2):
    return Post(
        post_id=0,
        thread_id=thread_id,
        author=author,
        timestamp=timestamp,
        votes=votes,
        body="<p>q</p>",
        is_question=True,
    )


def make_answer(post_id, thread_id=0, author=2, timestamp=1.0, votes=1):
    return Post(
        post_id=post_id,
        thread_id=thread_id,
        author=author,
        timestamp=timestamp,
        votes=votes,
        body="<p>a</p>",
        is_question=False,
    )


class TestPost:
    def test_negative_timestamp_rejected(self):
        with pytest.raises(ValueError):
            make_question(timestamp=-1.0)

    def test_frozen(self):
        post = make_question()
        with pytest.raises(AttributeError):
            post.votes = 10


class TestThread:
    def test_basic_properties(self):
        t = Thread(question=make_question(), answers=[make_answer(1)])
        assert t.thread_id == 0
        assert t.asker == 1
        assert t.answerers == [2]
        assert t.created_at == 0.0
        assert len(t.posts) == 2

    def test_root_must_be_question(self):
        with pytest.raises(ValueError, match="must be a question"):
            Thread(question=make_answer(1))

    def test_answer_must_not_be_question(self):
        bad = make_question()
        with pytest.raises(ValueError):
            Thread(question=make_question(), answers=[bad])

    def test_answer_thread_id_checked(self):
        with pytest.raises(ValueError, match="different thread"):
            Thread(question=make_question(), answers=[make_answer(1, thread_id=9)])

    def test_answers_sorted_by_time(self):
        t = Thread(
            question=make_question(),
            answers=[make_answer(2, timestamp=5.0), make_answer(1, timestamp=2.0)],
        )
        assert [a.timestamp for a in t.answers] == [2.0, 5.0]

    def test_add_answer_keeps_order(self):
        t = Thread(question=make_question(), answers=[make_answer(1, timestamp=3.0)])
        t.add_answer(make_answer(2, timestamp=1.0))
        assert [a.post_id for a in t.answers] == [2, 1]

    def test_answerers_deduplicated_in_order(self):
        t = Thread(
            question=make_question(),
            answers=[
                make_answer(1, author=5, timestamp=1.0),
                make_answer(2, author=7, timestamp=2.0),
                make_answer(3, author=5, timestamp=3.0),
            ],
        )
        assert t.answerers == [5, 7]

    def test_response_time(self):
        t = Thread(
            question=make_question(timestamp=10.0),
            answers=[make_answer(1, timestamp=12.5)],
        )
        assert t.response_time(2) == pytest.approx(2.5)

    def test_response_time_unknown_user_raises(self):
        t = Thread(question=make_question(), answers=[make_answer(1)])
        with pytest.raises(KeyError):
            t.response_time(99)

    def test_answer_by_returns_first(self):
        t = Thread(
            question=make_question(),
            answers=[
                make_answer(1, author=5, timestamp=1.0, votes=3),
                make_answer(2, author=5, timestamp=2.0, votes=9),
            ],
        )
        assert t.answer_by(5).post_id == 1
