"""Tests for repro.forum.dataset."""

import numpy as np
import pytest

from repro.forum.dataset import ForumDataset
from repro.forum.models import Post, Thread


def post(pid, tid, author, ts, votes=0, question=False):
    return Post(
        post_id=pid,
        thread_id=tid,
        author=author,
        timestamp=ts,
        votes=votes,
        body="<p>text</p>",
        is_question=question,
    )


def small_dataset():
    """Three threads: answered, answered-with-issues, unanswered."""
    t0 = Thread(
        question=post(0, 0, author=1, ts=0.0, votes=3, question=True),
        answers=[
            post(1, 0, author=2, ts=1.0, votes=5),
            post(2, 0, author=3, ts=2.0, votes=1),
        ],
    )
    t1 = Thread(
        question=post(3, 1, author=2, ts=10.0, question=True),
        answers=[
            post(4, 1, author=4, ts=11.0, votes=1),  # duplicate user, lower vote
            post(5, 1, author=4, ts=12.0, votes=7),  # duplicate user, higher vote
            post(6, 1, author=5, ts=10.0, votes=2),  # zero delay -> dropped
        ],
    )
    t2 = Thread(question=post(7, 2, author=6, ts=20.0, question=True))
    return ForumDataset([t0, t1, t2])


class TestBasics:
    def test_ordering_by_creation(self):
        ds = small_dataset()
        assert [t.thread_id for t in ds] == [0, 1, 2]

    def test_duplicate_thread_ids_rejected(self):
        t = Thread(question=post(0, 0, 1, 0.0, question=True))
        t2 = Thread(question=post(1, 0, 2, 1.0, question=True))
        with pytest.raises(ValueError):
            ForumDataset([t, t2])

    def test_user_sets(self):
        ds = small_dataset()
        assert ds.askers == {1, 2, 6}
        assert ds.answerers == {2, 3, 4, 5}
        assert ds.users == {1, 2, 3, 4, 5, 6}

    def test_counts(self):
        ds = small_dataset()
        assert len(ds) == 3
        assert ds.num_answers == 5

    def test_duration(self):
        assert small_dataset().duration_hours == 20.0

    def test_thread_lookup(self):
        ds = small_dataset()
        assert ds.thread(1).asker == 2
        assert 2 in ds
        assert 99 not in ds


class TestPreprocess:
    def test_unanswered_dropped(self):
        ds, report = small_dataset().preprocess()
        assert report.questions_dropped_unanswered == 1
        assert 2 not in ds

    def test_duplicate_keeps_highest_vote(self):
        ds, report = small_dataset().preprocess()
        assert report.duplicate_answers_removed == 1
        kept = ds.thread(1).answer_by(4)
        assert kept.votes == 7

    def test_zero_delay_dropped(self):
        ds, report = small_dataset().preprocess()
        assert report.zero_delay_answers_removed == 1
        assert 5 not in ds.thread(1).answerers

    def test_thread_emptied_by_filters_is_dropped(self):
        t = Thread(
            question=post(0, 0, 1, 5.0, question=True),
            answers=[post(1, 0, 2, 5.0)],  # only answer has zero delay
        )
        ds, report = ForumDataset([t]).preprocess()
        assert len(ds) == 0
        assert report.questions_dropped_unanswered == 1

    def test_preprocess_idempotent(self):
        once, _ = small_dataset().preprocess()
        twice, report = once.preprocess()
        assert len(twice) == len(once)
        assert report.duplicate_answers_removed == 0
        assert report.zero_delay_answers_removed == 0


class TestDerivedViews:
    def test_answer_records(self):
        ds, _ = small_dataset().preprocess()
        records = ds.answer_records()
        by_pair = {(r.user, r.thread_id): r for r in records}
        assert by_pair[(2, 0)].response_time == pytest.approx(1.0)
        assert by_pair[(4, 1)].votes == 7

    def test_participant_tuples(self):
        ds, _ = small_dataset().preprocess()
        tuples = ds.participant_tuples()
        asker, answerers = tuples[0]
        assert asker == 1
        assert set(answerers) == {2, 3}

    def test_density(self):
        ds, _ = small_dataset().preprocess()
        # 3 positive pairs over 3 answerers x 2 questions.
        assert ds.answer_matrix_density() == pytest.approx(3 / 6)

    def test_answers_per_user(self):
        ds, _ = small_dataset().preprocess()
        counts = ds.answers_per_user()
        assert counts[2] == 1 and counts[4] == 1


class TestPartitioning:
    def test_window(self):
        ds = small_dataset()
        window = ds.threads_in_window(5.0, 15.0)
        assert [t.thread_id for t in window] == [1]

    def test_days(self):
        t_day1 = Thread(question=post(0, 0, 1, 5.0, question=True))
        t_day2 = Thread(question=post(1, 1, 1, 30.0, question=True))
        ds = ForumDataset([t_day1, t_day2])
        assert [t.thread_id for t in ds.threads_in_days(1, 1)] == [0]
        assert [t.thread_id for t in ds.threads_in_days(2, 2)] == [1]
        assert len(ds.threads_in_days(1, 2)) == 2

    def test_invalid_windows(self):
        ds = small_dataset()
        with pytest.raises(ValueError):
            ds.threads_in_window(5.0, 5.0)
        with pytest.raises(ValueError):
            ds.threads_in_days(0, 5)

    def test_threads_before(self):
        ds = small_dataset()
        before = ds.threads_before(1)
        assert [t.thread_id for t in before] == [0, 1]

    def test_subset(self):
        ds = small_dataset()
        sub = ds.subset([0, 2])
        assert len(sub) == 2
        with pytest.raises(KeyError):
            ds.subset([99])


class TestNegativeSampling:
    def test_samples_are_true_negatives(self):
        ds, _ = small_dataset().preprocess()
        pairs = ds.sample_negative_pairs(10, seed=0)
        assert len(pairs) == 10
        for user, tid in pairs:
            thread = ds.thread(tid)
            assert user != thread.asker
            assert user not in thread.answerers

    def test_deterministic(self):
        ds, _ = small_dataset().preprocess()
        assert ds.sample_negative_pairs(5, seed=3) == ds.sample_negative_pairs(
            5, seed=3
        )

    def test_spread_across_questions(self):
        ds, _ = small_dataset().preprocess()
        pairs = ds.sample_negative_pairs(20, seed=1)
        tids = {tid for _, tid in pairs}
        assert len(tids) == 2  # both questions used

    def test_empty_dataset_raises(self):
        with pytest.raises(ValueError):
            ForumDataset([]).sample_negative_pairs(1)
