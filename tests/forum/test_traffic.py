"""Tests for repro.forum.traffic — the seeded bursty load generator."""

import pytest

from repro.forum.generator import ForumConfig, generate_forum
from repro.forum.traffic import TrafficConfig, TrafficRequest, generate_traffic


@pytest.fixture(scope="module")
def dataset():
    forum = generate_forum(ForumConfig(n_users=80, n_questions=90), seed=5)
    clean, _ = forum.dataset.preprocess()
    return clean


@pytest.fixture(scope="module")
def traffic(dataset):
    return generate_traffic(
        dataset,
        TrafficConfig(n_askers=120, n_events=30, duration_s=30.0, seed=9),
    )


class TestConfigValidation:
    def test_bounds(self):
        with pytest.raises(ValueError, match="n_askers"):
            TrafficConfig(n_askers=0)
        with pytest.raises(ValueError, match="burst_fraction"):
            TrafficConfig(burst_fraction=1.5)
        with pytest.raises(ValueError, match="durations"):
            TrafficConfig(duration_s=0.0)

    def test_empty_dataset_rejected(self):
        from repro.forum.dataset import ForumDataset

        with pytest.raises(ValueError, match="non-empty"):
            generate_traffic(ForumDataset([]), TrafficConfig())


class TestSchedule:
    def test_counts_and_kinds(self, traffic):
        assert len(traffic) == 150
        assert sum(r.kind == "query" for r in traffic) == 120
        assert sum(r.kind == "event" for r in traffic) == 30

    def test_arrivals_sorted_and_in_range(self, traffic):
        arrivals = [r.arrival_s for r in traffic]
        assert arrivals == sorted(arrivals)
        assert all(0.0 <= a < 30.0 for a in arrivals)

    def test_created_at_monotone_and_continues_history(self, dataset, traffic):
        t0 = max(t.created_at for t in dataset)
        created = [r.thread.created_at for r in traffic]
        assert created == sorted(created)
        assert all(c >= t0 for c in created)

    def test_bursts_actually_clump(self, dataset):
        bursty = generate_traffic(
            dataset,
            TrafficConfig(
                n_askers=400, n_events=0, duration_s=100.0,
                n_bursts=2, burst_fraction=0.8, burst_width_s=0.3, seed=1,
            ),
        )
        arrivals = sorted(r.arrival_s for r in bursty)
        # 80% of arrivals share 2 half-second-wide clumps, so some
        # 1-second window must hold far more than the uniform share.
        best = max(
            sum(1 for a in arrivals if lo <= a < lo + 1.0)
            for lo in range(100)
        )
        assert best > 0.2 * len(arrivals)


class TestIdentifiers:
    def test_query_askers_are_fresh_users(self, dataset, traffic):
        known = {t.asker for t in dataset} | {
            a for t in dataset for a in t.answerers
        }
        query_askers = [
            r.thread.asker for r in traffic if r.kind == "query"
        ]
        assert not set(query_askers) & known
        assert len(set(query_askers)) == len(query_askers)  # one each

    def test_thread_and_post_ids_fresh_and_unique(self, dataset, traffic):
        known_threads = {t.thread_id for t in dataset}
        known_posts = {p.post_id for t in dataset for p in t.posts}
        new_threads = [r.thread.thread_id for r in traffic]
        new_posts = [
            p.post_id for r in traffic for p in r.thread.posts
        ]
        assert not set(new_threads) & known_threads
        assert not set(new_posts) & known_posts
        assert len(set(new_threads)) == len(new_threads)
        assert len(set(new_posts)) == len(new_posts)

    def test_events_reuse_historical_populations(self, dataset, traffic):
        askers = {t.asker for t in dataset}
        answerers = {a for t in dataset for a in t.answerers}
        for r in traffic:
            if r.kind != "event":
                continue
            assert r.thread.asker in askers
            assert r.thread.answerers
            assert set(r.thread.answerers) <= answerers

    def test_bodies_resampled_from_history(self, dataset, traffic):
        question_bodies = {t.question.body for t in dataset}
        assert all(
            r.thread.question.body in question_bodies for r in traffic
        )


class TestDeterminism:
    def test_same_seed_identical_schedule(self, dataset, traffic):
        again = generate_traffic(
            dataset,
            TrafficConfig(n_askers=120, n_events=30, duration_s=30.0, seed=9),
        )
        assert len(again) == len(traffic)
        for a, b in zip(traffic, again):
            assert a.kind == b.kind
            assert a.arrival_s == b.arrival_s
            assert a.thread.thread_id == b.thread.thread_id
            assert a.thread.created_at == b.thread.created_at
            assert [p.post_id for p in a.thread.posts] == [
                p.post_id for p in b.thread.posts
            ]

    def test_different_seed_differs(self, dataset, traffic):
        other = generate_traffic(
            dataset,
            TrafficConfig(n_askers=120, n_events=30, duration_s=30.0, seed=10),
        )
        assert [r.arrival_s for r in other] != [r.arrival_s for r in traffic]
