"""Cross-module integration and robustness tests."""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ForumPredictor,
    PredictorConfig,
    build_extractor,
    build_pair_dataset,
)
from repro.forum import (
    ForumConfig,
    ForumDataset,
    Post,
    Thread,
    generate_forum,
    load_dataset,
    save_dataset,
)

FAST = PredictorConfig(
    n_topics=3,
    vote_epochs=30,
    timing_epochs=30,
    betweenness_sample_size=50,
)


def tiny_forum(seed=0):
    forum = generate_forum(ForumConfig(n_users=120, n_questions=150), seed=seed)
    dataset, _ = forum.dataset.preprocess()
    return dataset


class TestEndToEndFlows:
    def test_generate_save_load_train_predict(self, tmp_path):
        """The full adopter workflow, file round trip included."""
        dataset = tiny_forum()
        path = tmp_path / "forum.jsonl.gz"
        save_dataset(dataset, path)
        reloaded = load_dataset(path)
        predictor = ForumPredictor(FAST).fit(reloaded)
        thread = reloaded.threads[-1]
        pred = predictor.predict(next(iter(reloaded.answerers)), thread)
        assert 0.0 <= pred.answer_probability <= 1.0
        assert np.isfinite(pred.votes)
        assert pred.response_time > 0

    def test_stack_exchange_json_through_pipeline(self, tmp_path):
        """API-format data flows through preprocessing and featurization."""
        rng = np.random.default_rng(0)
        items = []
        base = 1_528_020_000
        for q in range(40):
            answers = [
                {
                    "answer_id": 10_000 + 10 * q + j,
                    "creation_date": base + q * 3600 + (j + 1) * 600,
                    "score": int(rng.integers(-2, 8)),
                    "body": f"<p>answer topic{q % 3}word{j} detail</p>",
                    "owner": {"user_id": 500 + int(rng.integers(0, 20))},
                }
                for j in range(int(rng.integers(1, 3)))
            ]
            items.append(
                {
                    "question_id": q,
                    "creation_date": base + q * 3600,
                    "score": int(rng.integers(0, 10)),
                    "body": f"<p>question topic{q % 3}word0 words here</p>"
                    "<pre><code>x = 1</code></pre>",
                    "owner": {"user_id": int(rng.integers(0, 200))},
                    "answers": answers,
                }
            )
        path = tmp_path / "api.json"
        path.write_text(json.dumps({"items": items}))
        from repro.forum import load_api_json

        dataset, _ = load_api_json(path).preprocess()
        extractor = build_extractor(dataset, FAST)
        pairs = build_pair_dataset(dataset, extractor, seed=0)
        assert pairs.n_pairs > 0
        assert np.all(np.isfinite(pairs.x))


class TestRobustness:
    def test_posts_with_empty_bodies(self):
        """Threads whose posts carry no text must not break featurization."""
        threads = []
        pid = 0
        for q in range(25):
            question = Post(
                post_id=pid,
                thread_id=q,
                author=q % 5,
                timestamp=float(q),
                votes=1,
                body="",
                is_question=True,
            )
            pid += 1
            answer = Post(
                post_id=pid,
                thread_id=q,
                author=5 + q % 7,
                timestamp=float(q) + 0.5,
                votes=0,
                body="",
                is_question=False,
            )
            pid += 1
            threads.append(Thread(question=question, answers=[answer]))
        dataset = ForumDataset(threads)
        with pytest.raises(ValueError, match="vocabulary is empty"):
            build_extractor(dataset, FAST)

    def test_mixed_empty_and_real_bodies(self):
        """A few empty posts among real ones are tolerated."""
        dataset = tiny_forum(seed=2)
        threads = list(dataset.threads)
        # Replace one question body with an empty string.
        victim = threads[0]
        empty_question = Post(
            post_id=victim.question.post_id,
            thread_id=victim.thread_id,
            author=victim.asker,
            timestamp=victim.created_at,
            votes=victim.question.votes,
            body="",
            is_question=True,
        )
        threads[0] = Thread(question=empty_question, answers=victim.answers)
        patched = ForumDataset(threads)
        extractor = build_extractor(patched, FAST)
        x = extractor.features(
            next(iter(patched.answerers)), patched.threads[0]
        )
        assert np.all(np.isfinite(x))

    def test_constant_votes_dataset(self):
        """Zero-variance vote targets must not produce NaNs anywhere."""
        dataset = tiny_forum(seed=3)
        flat_threads = []
        for t in dataset.threads:
            answers = [
                Post(
                    post_id=a.post_id,
                    thread_id=a.thread_id,
                    author=a.author,
                    timestamp=a.timestamp,
                    votes=1,
                    body=a.body,
                    is_question=False,
                )
                for a in t.answers
            ]
            flat_threads.append(Thread(question=t.question, answers=answers))
        flat = ForumDataset(flat_threads)
        predictor = ForumPredictor(FAST).fit(flat)
        pred = predictor.predict(
            next(iter(flat.answerers)), flat.threads[0]
        )
        assert np.isfinite(pred.votes)

    def test_single_thread_window(self):
        """An extractor over a one-thread window stays finite."""
        dataset = tiny_forum(seed=4)
        window = ForumDataset([dataset.threads[0]])
        extractor = build_extractor(window, FAST)
        x = extractor.features(12345, dataset.threads[-1])
        assert np.all(np.isfinite(x))


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 10_000))
def test_io_roundtrip_property(seed):
    """Any generated forum survives a JSON round trip byte-exactly."""
    import io as _io
    import tempfile
    from pathlib import Path

    forum = generate_forum(ForumConfig(n_users=30, n_questions=15), seed=seed)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "f.jsonl"
        save_dataset(forum.dataset, path)
        back = load_dataset(path)
    assert len(back) == len(forum.dataset)
    for a, b in zip(forum.dataset, back):
        assert a.question.body == b.question.body
        assert a.created_at == b.created_at
        assert [p.votes for p in a.answers] == [p.votes for p in b.answers]
