"""Tests for repro.topics.vocabulary."""

import numpy as np
import pytest

from repro.topics.vocabulary import Vocabulary

DOCS = [
    ["apple", "banana", "apple"],
    ["banana", "cherry"],
    ["apple", "date"],
]


class TestFit:
    def test_all_tokens_kept_with_min_count_1(self):
        vocab = Vocabulary().fit(DOCS)
        assert set(vocab.tokens) == {"apple", "banana", "cherry", "date"}

    def test_min_count_filters(self):
        vocab = Vocabulary(min_count=2).fit(DOCS)
        assert set(vocab.tokens) == {"apple", "banana"}

    def test_frequency_ordering(self):
        vocab = Vocabulary().fit(DOCS)
        assert vocab.token(0) == "apple"  # 3 occurrences
        assert vocab.token(1) == "banana"  # 2 occurrences

    def test_alphabetical_tiebreak(self):
        vocab = Vocabulary().fit([["zebra", "ant"]])
        assert vocab.tokens == ["ant", "zebra"]

    def test_max_size_truncates(self):
        vocab = Vocabulary(max_size=2).fit(DOCS)
        assert len(vocab) == 2
        assert vocab.tokens == ["apple", "banana"]

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            Vocabulary(min_count=0)
        with pytest.raises(ValueError):
            Vocabulary(max_size=0)


class TestEncode:
    def test_roundtrip(self):
        vocab = Vocabulary().fit(DOCS)
        ids = vocab.encode(["apple", "cherry"])
        assert [vocab.token(i) for i in ids] == ["apple", "cherry"]

    def test_oov_skipped(self):
        vocab = Vocabulary().fit(DOCS)
        ids = vocab.encode(["apple", "unknown", "banana"])
        assert len(ids) == 2

    def test_empty_doc(self):
        vocab = Vocabulary().fit(DOCS)
        ids = vocab.encode([])
        assert ids.shape == (0,)
        assert ids.dtype == np.int64

    def test_encode_corpus(self):
        vocab = Vocabulary().fit(DOCS)
        encoded = vocab.encode_corpus(DOCS)
        assert len(encoded) == 3
        assert all(isinstance(e, np.ndarray) for e in encoded)

    def test_contains(self):
        vocab = Vocabulary().fit(DOCS)
        assert "apple" in vocab
        assert "unknown" not in vocab

    def test_token_id_raises_for_unknown(self):
        vocab = Vocabulary().fit(DOCS)
        with pytest.raises(KeyError):
            vocab.token_id("unknown")


class TestStateRoundTrip:
    def test_round_trip_preserves_mapping(self):
        vocab = Vocabulary(min_count=2).fit(DOCS)
        restored = Vocabulary.from_state(vocab.to_state())
        assert restored.tokens == vocab.tokens
        assert restored.min_count == vocab.min_count
        assert restored.max_size == vocab.max_size
        for token in vocab.tokens:
            assert restored.token_id(token) == vocab.token_id(token)

    def test_state_is_json_serializable(self):
        import json

        vocab = Vocabulary().fit(DOCS)
        state = json.loads(json.dumps(vocab.to_state()))
        assert Vocabulary.from_state(state).tokens == vocab.tokens

    def test_duplicate_tokens_rejected(self):
        with pytest.raises(ValueError):
            Vocabulary.from_state({"tokens": ["apple", "apple"]})
