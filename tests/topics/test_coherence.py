"""Tests for repro.topics.coherence."""

import numpy as np
import pytest

from repro.topics.coherence import mean_coherence, umass_coherence
from repro.topics.lda import LdaVariational


def block_corpus(n_docs=60, doc_len=25, seed=0):
    rng = np.random.default_rng(seed)
    docs = []
    for d in range(n_docs):
        low, high = (0, 10) if d < n_docs // 2 else (10, 20)
        docs.append(rng.integers(low, high, size=doc_len))
    return docs


class TestUmassCoherence:
    def test_coherent_topic_scores_higher(self):
        """A topic whose top words co-occur scores above a scrambled one."""
        docs = block_corpus()
        # Topic 0 concentrated on block words 0-9 (co-occur constantly).
        coherent = np.zeros((2, 20))
        coherent[0, :10] = 0.1
        coherent[1, 10:] = 0.1
        # Scrambled topic mixes the two blocks (its top words never co-occur
        # beyond half the pairs).
        scrambled = np.zeros((2, 20))
        scrambled[0, ::2] = 0.1
        scrambled[1, 1::2] = 0.1
        good = umass_coherence(docs, coherent, 0, top_n=6)
        bad = umass_coherence(docs, scrambled, 0, top_n=6)
        assert good > bad

    def test_fitted_lda_beats_random_topics(self):
        docs = block_corpus()
        model = LdaVariational(2, 20, seed=0).fit(docs)
        fitted = mean_coherence(docs, model.topic_word_, top_n=6)
        rng = np.random.default_rng(1)
        random_topics = rng.dirichlet(np.ones(20), size=2)
        random_score = mean_coherence(docs, random_topics, top_n=6)
        assert fitted > random_score

    def test_perfect_cooccurrence_near_zero(self):
        # All top words in every document: log((D+1)/D) ~ 0 per pair.
        docs = [np.arange(5) for _ in range(20)]
        topic_word = np.zeros((1, 5))
        topic_word[0] = 0.2
        score = umass_coherence(docs, topic_word, 0, top_n=5)
        assert score == pytest.approx(10 * np.log(21 / 20))

    def test_validation(self):
        docs = block_corpus(n_docs=4)
        topics = np.ones((2, 20)) / 20
        with pytest.raises(ValueError):
            umass_coherence(docs, topics, 0, top_n=1)
        with pytest.raises(ValueError):
            umass_coherence(docs, topics, 5)
        with pytest.raises(ValueError):
            umass_coherence([], topics, 0)
