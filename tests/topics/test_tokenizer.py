"""Tests for repro.topics.tokenizer."""

import pytest

from repro.topics.tokenizer import split_text_and_code, tokenize


class TestSplitTextAndCode:
    def test_inline_code_extracted(self):
        post = split_text_and_code("Use <code>print(x)</code> to debug")
        assert post.code == "print(x)"
        assert "print(x)" not in post.words
        assert "Use" in post.words and "debug" in post.words

    def test_multiple_code_blocks_joined(self):
        body = "a <code>x = 1</code> b <code>y = 2</code> c"
        post = split_text_and_code(body)
        assert post.code == "x = 1\ny = 2"

    def test_pre_code_block(self):
        body = "<p>See:</p><pre><code>for i in range(10):\n    pass</code></pre>"
        post = split_text_and_code(body)
        assert "for i in range(10)" in post.code
        assert post.words == "See:"

    def test_html_tags_stripped_from_words(self):
        post = split_text_and_code("<p>Hello <b>world</b></p>")
        assert post.words == "Hello world"

    def test_no_code(self):
        post = split_text_and_code("just plain text")
        assert post.code == ""
        assert post.words == "just plain text"

    def test_lengths(self):
        post = split_text_and_code("ab <code>xyz</code>")
        assert post.word_length == len("ab")
        assert post.code_length == 3

    def test_case_insensitive_code_tag(self):
        post = split_text_and_code("a <CODE>b</CODE> c")
        assert post.code == "b"

    def test_multiline_code(self):
        post = split_text_and_code("<code>line1\nline2</code>")
        assert post.code == "line1\nline2"


class TestTokenize:
    def test_lowercases(self):
        assert tokenize("Python NumPy") == ["python", "numpy"]

    def test_removes_stopwords(self):
        assert tokenize("the quick fox") == ["quick", "fox"]

    def test_keeps_stopwords_when_disabled(self):
        assert "the" in tokenize("the fox", remove_stopwords=False)

    def test_programming_terms_survive(self):
        toks = tokenize("c++ and c# with numpy.array")
        assert "c++" in toks
        assert "c#" in toks
        assert "numpy.array" in toks

    def test_min_length_filter(self):
        assert tokenize("a ab abc", remove_stopwords=False) == ["ab", "abc"]

    def test_strips_trailing_punctuation(self):
        assert tokenize("works.") == ["works"]

    def test_numbers_alone_dropped(self):
        assert tokenize("error 404 found") == ["error", "found"]

    def test_empty_string(self):
        assert tokenize("") == []
