"""Tests for repro.topics.similarity."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.topics.similarity import (
    pairwise_tv_similarity,
    total_variation_similarity,
)


def simplex_vectors(k):
    return (
        st.lists(st.floats(0.01, 1.0), min_size=k, max_size=k)
        .map(np.array)
        .map(lambda v: v / v.sum())
    )


class TestTotalVariationSimilarity:
    def test_identical_is_one(self):
        p = np.array([0.2, 0.3, 0.5])
        assert total_variation_similarity(p, p) == pytest.approx(1.0)

    def test_disjoint_is_zero(self):
        p = np.array([1.0, 0.0])
        q = np.array([0.0, 1.0])
        assert total_variation_similarity(p, q) == pytest.approx(0.0)

    def test_known_value(self):
        p = np.array([0.5, 0.5])
        q = np.array([0.75, 0.25])
        assert total_variation_similarity(p, q) == pytest.approx(0.75)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            total_variation_similarity(np.ones(2) / 2, np.ones(3) / 3)

    @given(simplex_vectors(4), simplex_vectors(4))
    def test_bounded_and_symmetric(self, p, q):
        s = total_variation_similarity(p, q)
        assert 0.0 <= s <= 1.0 + 1e-12
        assert s == pytest.approx(total_variation_similarity(q, p))

    @given(simplex_vectors(5), simplex_vectors(5), simplex_vectors(5))
    def test_triangle_inequality_on_distance(self, p, q, r):
        # 1 - s is a metric (total variation distance).
        d = lambda a, b: 1.0 - total_variation_similarity(a, b)
        assert d(p, r) <= d(p, q) + d(q, r) + 1e-12


class TestPairwise:
    def test_matches_scalar_version(self):
        rng = np.random.default_rng(0)
        rows = rng.dirichlet(np.ones(4), size=10)
        against = rng.dirichlet(np.ones(4))
        vectorized = pairwise_tv_similarity(rows, against)
        scalar = [total_variation_similarity(r, against) for r in rows]
        np.testing.assert_allclose(vectorized, scalar)

    def test_single_row(self):
        out = pairwise_tv_similarity(np.array([0.5, 0.5]), np.array([0.5, 0.5]))
        assert out.shape == (1,)
        assert out[0] == pytest.approx(1.0)

    def test_dimension_mismatch_raises(self):
        with pytest.raises(ValueError):
            pairwise_tv_similarity(np.ones((2, 3)) / 3, np.ones(2) / 2)
