"""Tests for repro.topics.lda.

The recovery tests use a synthetic corpus with two disjoint word blocks:
documents draw exclusively from one block, so a 2-topic model must
separate them.
"""

import numpy as np
import pytest

from repro.topics.lda import LdaGibbs, LdaVariational, fit_lda

VOCAB_SIZE = 20


def make_block_corpus(n_docs=60, doc_len=30, seed=0):
    """Docs 0..n/2 use words 0-9, the rest use words 10-19."""
    rng = np.random.default_rng(seed)
    docs = []
    labels = []
    for d in range(n_docs):
        block = 0 if d < n_docs // 2 else 1
        low, high = (0, 10) if block == 0 else (10, 20)
        docs.append(rng.integers(low, high, size=doc_len))
        labels.append(block)
    return docs, np.array(labels)


def topic_block_mass(topic_word_row):
    """Probability mass a topic puts on the first word block."""
    return topic_word_row[:10].sum()


@pytest.mark.parametrize("cls", [LdaGibbs, LdaVariational], ids=["gibbs", "vb"])
@pytest.mark.slow
class TestRecovery:
    def test_distributions_are_simplex(self, cls):
        docs, _ = make_block_corpus()
        model = cls(2, VOCAB_SIZE, seed=1).fit(docs)
        np.testing.assert_allclose(model.doc_topic_.sum(axis=1), 1.0, atol=1e-8)
        np.testing.assert_allclose(model.topic_word_.sum(axis=1), 1.0, atol=1e-8)
        assert np.all(model.doc_topic_ >= 0)
        assert np.all(model.topic_word_ >= 0)

    def test_recovers_two_blocks(self, cls):
        docs, labels = make_block_corpus()
        model = cls(2, VOCAB_SIZE, seed=2).fit(docs)
        # Each topic should concentrate on one block.
        masses = [topic_block_mass(model.topic_word_[t]) for t in range(2)]
        assert max(masses) > 0.9
        assert min(masses) < 0.1
        # Doc assignments should match labels (up to topic permutation).
        block0_topic = int(np.argmax(masses))
        assigned = np.argmax(model.doc_topic_, axis=1)
        predicted_block0 = assigned == block0_topic
        true_block0 = labels == 0
        agreement = np.mean(predicted_block0 == true_block0)
        assert agreement > 0.95

    def test_transform_held_out(self, cls):
        docs, _ = make_block_corpus()
        model = cls(2, VOCAB_SIZE, seed=3).fit(docs)
        rng = np.random.default_rng(9)
        held_out = [rng.integers(0, 10, size=25), rng.integers(10, 20, size=25)]
        dist = model.transform(held_out)
        np.testing.assert_allclose(dist.sum(axis=1), 1.0, atol=1e-8)
        # The two held-out docs are from opposite blocks -> opposite topics.
        assert np.argmax(dist[0]) != np.argmax(dist[1])
        assert dist.max() > 0.8

    def test_empty_document_gets_uniform(self, cls):
        docs, _ = make_block_corpus(n_docs=10)
        model = cls(2, VOCAB_SIZE, seed=4).fit(docs)
        dist = model.transform([np.array([], dtype=np.int64)])
        np.testing.assert_allclose(dist[0], 0.5, atol=0.05)

    def test_deterministic_given_seed(self, cls):
        docs, _ = make_block_corpus(n_docs=20)
        a = cls(2, VOCAB_SIZE, seed=7, n_iter=10).fit(docs)
        b = cls(2, VOCAB_SIZE, seed=7, n_iter=10).fit(docs)
        np.testing.assert_array_equal(a.doc_topic_, b.doc_topic_)

    def test_out_of_range_token_raises(self, cls):
        with pytest.raises(ValueError, match="token ids"):
            cls(2, VOCAB_SIZE).fit([np.array([0, VOCAB_SIZE])])

    def test_unfitted_transform_raises(self, cls):
        with pytest.raises(RuntimeError):
            cls(2, VOCAB_SIZE).transform([np.array([0])])


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_topics": 0},
            {"vocab_size": 0},
            {"alpha": 0.0},
            {"beta": -1.0},
            {"n_iter": 0},
        ],
    )
    def test_invalid_constructor_args(self, kwargs):
        defaults = {"n_topics": 2, "vocab_size": 5}
        with pytest.raises(ValueError):
            LdaGibbs(**{**defaults, **kwargs})

    def test_top_words(self):
        docs, _ = make_block_corpus()
        model = LdaVariational(2, VOCAB_SIZE, seed=5).fit(docs)
        top = model.top_words(0, n=5)
        assert len(top) == 5
        # Top words of one topic should come from a single block.
        assert np.all(top < 10) or np.all(top >= 10)


class TestFactory:
    def test_variational_default(self):
        docs, _ = make_block_corpus(n_docs=10)
        model = fit_lda(docs, 2, VOCAB_SIZE)
        assert isinstance(model, LdaVariational)
        assert model.doc_topic_ is not None

    def test_gibbs_by_name(self):
        docs, _ = make_block_corpus(n_docs=10)
        model = fit_lda(docs, 2, VOCAB_SIZE, method="gibbs", n_iter=5)
        assert isinstance(model, LdaGibbs)

    def test_unknown_method(self):
        with pytest.raises(ValueError, match="unknown LDA method"):
            fit_lda([], 2, VOCAB_SIZE, method="svd")


class TestVariationalStateRoundTrip:
    def test_transform_identical_after_restore(self):
        docs, _ = make_block_corpus()
        model = LdaVariational(2, VOCAB_SIZE, seed=3).fit(docs)
        meta, lam = model.to_state()
        restored = LdaVariational.from_state(meta, lam)
        held_out = docs[:7]
        np.testing.assert_array_equal(
            model.transform(held_out), restored.transform(held_out)
        )

    def test_topic_word_restored(self):
        docs, _ = make_block_corpus()
        model = LdaVariational(2, VOCAB_SIZE, seed=3).fit(docs)
        restored = LdaVariational.from_state(*model.to_state())
        np.testing.assert_allclose(
            restored.topic_word_, model.topic_word_, rtol=0, atol=1e-12
        )

    def test_unfitted_rejected(self):
        with pytest.raises(RuntimeError):
            LdaVariational(2, VOCAB_SIZE).to_state()

    def test_shape_mismatch_rejected(self):
        docs, _ = make_block_corpus()
        model = LdaVariational(2, VOCAB_SIZE, seed=3).fit(docs)
        meta, lam = model.to_state()
        with pytest.raises(ValueError, match="shape"):
            LdaVariational.from_state(meta, lam[:, :-1])
