"""Equivalence of the three LdaVariational E-step engines.

The batched active-set engine is the performance path; the per-document
loop is the readable reference.  The ISSUE requires them to agree to
1e-8; by construction they perform identical arithmetic in identical
order, so we actually hold them to bit-level agreement and keep the
1e-8 tolerance only as the documented contract.
"""

import numpy as np
import pytest

from repro.topics.lda import LdaVariational


def _docs(seed: int, n_docs: int = 40, vocab: int = 30) -> list[np.ndarray]:
    rng = np.random.default_rng(seed)
    docs = []
    for _ in range(n_docs):
        length = int(rng.integers(0, 25))
        docs.append(rng.integers(0, vocab, size=length))
    docs.append(np.array([], dtype=int))  # empty doc keeps the prior
    return docs


def _fit(e_step: str, seed: int = 3) -> LdaVariational:
    model = LdaVariational(
        n_topics=4, vocab_size=30, n_iter=15, seed=seed, e_step=e_step
    )
    model.fit(_docs(seed))
    return model


class TestEngineEquivalence:
    def test_batched_matches_perdoc_exactly(self):
        batched = _fit("batched")
        perdoc = _fit("perdoc")
        assert np.max(np.abs(batched.doc_topic_ - perdoc.doc_topic_)) <= 1e-8
        assert np.max(np.abs(batched.topic_word_ - perdoc.topic_word_)) <= 1e-8
        np.testing.assert_array_equal(batched.doc_topic_, perdoc.doc_topic_)
        np.testing.assert_array_equal(batched.topic_word_, perdoc.topic_word_)

    def test_transform_matches_perdoc_exactly(self):
        batched = _fit("batched")
        perdoc = _fit("perdoc")
        held_out = _docs(99, n_docs=15)
        np.testing.assert_array_equal(
            batched.transform(held_out), perdoc.transform(held_out)
        )

    def test_global_engine_still_trains(self):
        model = _fit("global")
        np.testing.assert_allclose(model.doc_topic_.sum(axis=1), 1.0)
        np.testing.assert_allclose(model.topic_word_.sum(axis=1), 1.0)

    @pytest.mark.parametrize("engine", ["batched", "global"])
    def test_engines_recover_block_structure(self, engine):
        # Warm-started per-document E-steps follow a different ascent
        # trajectory than the legacy corpus-wide one, so the engines
        # need not land on identical optima — but on a separable corpus
        # both must recover the same block structure.
        rng = np.random.default_rng(0)
        docs = []
        for i in range(60):
            block = rng.integers(0, 15) if i % 2 else rng.integers(15, 30)
            docs.append(
                rng.integers(15 * (i % 2 == 0), 15 + 15 * (i % 2 == 0), 40)
            )
        model = LdaVariational(
            n_topics=2, vocab_size=30, n_iter=30, seed=1, e_step=engine
        )
        model.fit(docs)
        block_mass = model.topic_word_[:, :15].sum(axis=1)
        assert (block_mass.min() < 0.05) and (block_mass.max() > 0.95)


class TestEngineConfig:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="e_step"):
            LdaVariational(n_topics=2, vocab_size=5, e_step="bogus")

    @pytest.mark.parametrize("engine", ["batched", "perdoc", "global"])
    def test_state_round_trip_preserves_engine(self, engine):
        model = _fit(engine)
        restored = LdaVariational.from_state(*model.to_state())
        assert restored.e_step == engine
        held_out = _docs(7, n_docs=10)
        np.testing.assert_array_equal(
            model.transform(held_out), restored.transform(held_out)
        )
