"""Tests for repro.cli — the end-to-end command-line workflow."""

import pytest

from repro.cli import build_parser, main
from repro.forum import load_dataset


@pytest.fixture(scope="module")
def dataset_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "forum.jsonl"
    code = main(
        [
            "generate",
            "--output",
            str(path),
            "--questions",
            "250",
            "--users",
            "200",
            "--topics",
            "4",
            "--seed",
            "1",
        ]
    )
    assert code == 0
    return path


@pytest.fixture(scope="module")
def model_path(dataset_path, tmp_path_factory):
    path = tmp_path_factory.mktemp("cli-model") / "predictor.npz"
    code = main(
        [
            "train",
            "--input",
            str(dataset_path),
            "--model",
            str(path),
            "--topics",
            "4",
            "--betweenness-samples",
            "80",
        ]
    )
    assert code == 0
    return path


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestGenerate:
    def test_writes_loadable_dataset(self, dataset_path):
        dataset = load_dataset(dataset_path)
        assert len(dataset) > 50
        # Default (non --raw) output is preprocessed: every thread answered.
        assert all(t.answers for t in dataset)

    def test_raw_keeps_unanswered(self, tmp_path):
        path = tmp_path / "raw.jsonl"
        main(
            [
                "generate", "--output", str(path),
                "--questions", "100", "--users", "80", "--raw",
            ]
        )
        dataset = load_dataset(path)
        assert any(not t.answers for t in dataset)


class TestStats:
    def test_prints_summary(self, dataset_path, capsys):
        assert main(["stats", "--input", str(dataset_path)]) == 0
        out = capsys.readouterr().out
        assert "questions:" in out
        assert "density:" in out
        assert "graph qa:" in out


class TestTrainAndRoute:
    def test_model_file_created(self, model_path):
        assert model_path.exists()

    def test_route_prints_ranking(self, dataset_path, model_path, capsys):
        dataset = load_dataset(dataset_path)
        qid = dataset.threads[-1].thread_id
        code = main(
            [
                "route",
                "--input", str(dataset_path),
                "--model", str(model_path),
                "--question-id", str(qid),
                "--epsilon", "0.2",
            ]
        )
        out = capsys.readouterr().out
        if code == 0:
            assert "user" in out
            assert len(out.strip().splitlines()) >= 2
        else:
            assert "no eligible" in out

    def test_route_unknown_question(self, dataset_path, model_path, capsys):
        code = main(
            [
                "route",
                "--input", str(dataset_path),
                "--model", str(model_path),
                "--question-id", "99999999",
            ]
        )
        assert code == 1


class TestReplayFaults:
    def test_fault_spec_parsed(self):
        from repro.cli import _parse_fault_plan

        plan = _parse_fault_plan("seed=7,dup=0.05,ooo=0.1,nan=0.02")
        assert plan.seed == 7
        assert plan.duplicate_rate == 0.05
        assert plan.out_of_order_rate == 0.1
        assert plan.missing_field_rate == 0.02
        assert plan.truncate_rate == 0.0

    def test_bad_fault_spec_rejected(self):
        from repro.cli import _parse_fault_plan

        with pytest.raises(ValueError, match="bad --faults entry"):
            _parse_fault_plan("seed=7,bogus=1")

    def test_bad_spec_exits_with_usage_error(self, dataset_path, capsys):
        code = main(
            [
                "replay",
                "--input", str(dataset_path),
                "--faults", "nonsense",
            ]
        )
        assert code == 2
        assert "faults" in capsys.readouterr().err

    @pytest.mark.slow
    def test_faulted_replay_prints_degradation(self, dataset_path, capsys):
        code = main(
            [
                "replay",
                "--input", str(dataset_path),
                "--topics", "2",
                "--betweenness-samples", "50",
                "--refit-interval", "96",
                "--window", "360",
                "--warmup", "96",
                "--faults", "seed=7,dup=0.1,ooo=0.1,nan=0.05",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "degradation:" in out
        assert "faults injected:" in out


@pytest.mark.slow
class TestServe:
    def test_load_run_prints_latency_and_admission(self, dataset_path, capsys):
        code = main(
            [
                "serve",
                "--input",
                str(dataset_path),
                "--askers",
                "150",
                "--events",
                "30",
                "--duration",
                "20",
                "--seed",
                "3",
                "--topics",
                "4",
                "--betweenness-samples",
                "80",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "150 queries + 30 events" in out
        assert "query latency (virtual): p50 " in out
        assert "admission: " in out
        assert "batching: " in out
        assert "health: ok" in out


class TestEvaluate:
    def test_prints_table(self, dataset_path, capsys):
        code = main(
            [
                "evaluate",
                "--input", str(dataset_path),
                "--folds", "3",
                "--topics", "4",
                "--betweenness-samples", "80",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "a_uq" in out and "v_uq" in out and "r_uq" in out


class TestValidate:
    def test_clean_dataset_ok(self, dataset_path, capsys):
        assert main(["validate", "--input", str(dataset_path)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_strict_fails_on_violations(self, tmp_path, capsys):
        import json

        from repro.forum.io import thread_to_dict
        from repro.forum.models import Post, Thread

        bad = Thread(
            question=Post(
                post_id=0, thread_id=0, author=1, timestamp=5.0,
                votes=0, body="<p>q</p>", is_question=True,
            ),
            answers=[
                Post(
                    post_id=1, thread_id=0, author=1, timestamp=3.0,
                    votes=0, body="<p>a</p>", is_question=False,
                )
            ],
        )
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps(thread_to_dict(bad)) + "\n")
        assert main(["validate", "--input", str(path), "--strict"]) == 1
        out = capsys.readouterr().out
        assert "self_answer" in out
        assert "answer_before_question" in out

    def test_repair_to_writes_clean_copy(self, tmp_path, capsys):
        import json

        from repro.forum.io import thread_to_dict
        from repro.forum.models import Post, Thread

        bad = Thread(
            question=Post(
                post_id=0, thread_id=0, author=1, timestamp=5.0,
                votes=0, body="<p>q</p>", is_question=True,
            ),
            answers=[
                Post(
                    post_id=1, thread_id=0, author=1, timestamp=6.0,
                    votes=0, body="<p>a</p>", is_question=False,
                ),
                Post(
                    post_id=2, thread_id=0, author=3, timestamp=7.0,
                    votes=0, body="<p>b</p>", is_question=False,
                ),
            ],
        )
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps(thread_to_dict(bad)) + "\n")
        fixed = tmp_path / "fixed.jsonl"
        code = main(
            ["validate", "--input", str(path), "--repair-to", str(fixed)]
        )
        assert code == 0
        repaired = load_dataset(fixed)
        assert repaired.thread(0).answerers == [3]  # self-answer dropped


class TestScale:
    def test_streams_and_prints_report(self, capsys):
        code = main(
            [
                "scale",
                "--users",
                "2000",
                "--questions",
                "1500",
                "--shards",
                "3",
                "--chunk-questions",
                "500",
                "--seed",
                "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "streamed 1500 questions" in out
        assert "shard 2:" in out
        assert "peak RSS" in out
