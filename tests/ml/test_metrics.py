"""Tests for repro.ml.metrics."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ml.metrics import (
    auc_score,
    mae,
    pearson_correlation,
    rmse,
    roc_curve,
    spearman_correlation,
)


class TestAUC:
    def test_perfect_classifier(self):
        y = np.array([0, 0, 1, 1])
        s = np.array([0.1, 0.2, 0.8, 0.9])
        assert auc_score(y, s) == 1.0

    def test_inverted_classifier(self):
        y = np.array([0, 0, 1, 1])
        s = np.array([0.9, 0.8, 0.2, 0.1])
        assert auc_score(y, s) == 0.0

    def test_random_scores_near_half(self):
        rng = np.random.default_rng(0)
        y = rng.integers(0, 2, size=2000)
        if y.sum() in (0, len(y)):  # pragma: no cover - astronomically unlikely
            pytest.skip("degenerate draw")
        s = rng.uniform(size=2000)
        assert abs(auc_score(y, s) - 0.5) < 0.05

    def test_ties_give_half_credit(self):
        y = np.array([0, 1])
        s = np.array([0.5, 0.5])
        assert auc_score(y, s) == 0.5

    def test_single_class_raises(self):
        with pytest.raises(ValueError):
            auc_score(np.array([1, 1]), np.array([0.1, 0.2]))

    def test_non_binary_raises(self):
        with pytest.raises(ValueError):
            auc_score(np.array([0, 2]), np.array([0.1, 0.2]))

    @given(st.integers(1, 20), st.integers(1, 20), st.integers(0, 10_000))
    def test_monotone_transform_invariance(self, n_pos, n_neg, seed):
        rng = np.random.default_rng(seed)
        y = np.r_[np.ones(n_pos), np.zeros(n_neg)]
        s = rng.normal(size=n_pos + n_neg)
        base = auc_score(y, s)
        assert auc_score(y, 3 * s + 7) == pytest.approx(base)
        assert auc_score(y, np.exp(s)) == pytest.approx(base)

    def test_matches_roc_trapezoid(self):
        rng = np.random.default_rng(5)
        y = rng.integers(0, 2, size=200)
        s = rng.normal(size=200) + y  # informative scores
        fpr, tpr, _ = roc_curve(y, s)
        assert auc_score(y, s) == pytest.approx(np.trapezoid(tpr, fpr), abs=1e-9)


class TestROC:
    def test_endpoints(self):
        y = np.array([0, 1, 0, 1])
        s = np.array([0.1, 0.9, 0.4, 0.6])
        fpr, tpr, thr = roc_curve(y, s)
        assert fpr[0] == 0.0 and tpr[0] == 0.0
        assert fpr[-1] == 1.0 and tpr[-1] == 1.0
        assert thr[0] == np.inf

    def test_monotone_nondecreasing(self):
        rng = np.random.default_rng(1)
        y = rng.integers(0, 2, size=100)
        s = rng.normal(size=100)
        fpr, tpr, _ = roc_curve(y, s)
        assert np.all(np.diff(fpr) >= 0)
        assert np.all(np.diff(tpr) >= 0)


class TestRegressionMetrics:
    def test_rmse_known(self):
        assert rmse([0, 0], [3, 4]) == pytest.approx(np.sqrt(12.5))

    def test_rmse_zero_for_equal(self):
        assert rmse([1.0, 2.0], [1.0, 2.0]) == 0.0

    def test_mae_known(self):
        assert mae([0, 0], [3, -4]) == pytest.approx(3.5)

    def test_rmse_ge_mae(self):
        rng = np.random.default_rng(2)
        a, b = rng.normal(size=50), rng.normal(size=50)
        assert rmse(a, b) >= mae(a, b)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            rmse([], [])
        with pytest.raises(ValueError):
            mae([], [])

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            rmse([1, 2], [1])


class TestCorrelations:
    def test_pearson_perfect_linear(self):
        x = np.arange(10.0)
        assert pearson_correlation(x, 2 * x + 1) == pytest.approx(1.0)
        assert pearson_correlation(x, -x) == pytest.approx(-1.0)

    def test_pearson_constant_input_is_zero(self):
        assert pearson_correlation(np.ones(5), np.arange(5.0)) == 0.0

    def test_spearman_monotone_nonlinear(self):
        x = np.arange(1.0, 11.0)
        assert spearman_correlation(x, x**3) == pytest.approx(1.0)

    def test_spearman_with_ties(self):
        x = np.array([1.0, 1.0, 2.0, 3.0])
        y = np.array([1.0, 2.0, 3.0, 4.0])
        assert -1.0 <= spearman_correlation(x, y) <= 1.0

    def test_too_few_points_raises(self):
        with pytest.raises(ValueError):
            pearson_correlation([1.0], [2.0])
