"""Tests for repro.ml.ranking."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ml.ranking import (
    mean_reciprocal_rank,
    ndcg_at_k,
    precision_at_k,
    recall_at_k,
)


class TestPrecisionRecall:
    def test_perfect_top(self):
        assert precision_at_k(["a", "b", "c"], {"a", "b"}, 2) == 1.0
        assert recall_at_k(["a", "b", "c"], {"a", "b"}, 2) == 1.0

    def test_miss(self):
        assert precision_at_k(["x", "y"], {"a"}, 2) == 0.0
        assert recall_at_k(["x", "y"], {"a"}, 2) == 0.0

    def test_partial(self):
        assert precision_at_k(["a", "x", "b"], {"a", "b"}, 3) == pytest.approx(2 / 3)
        assert recall_at_k(["a", "x"], {"a", "b"}, 2) == pytest.approx(0.5)

    def test_k_beyond_list(self):
        # Precision divides by k even when the list is shorter.
        assert precision_at_k(["a"], {"a"}, 5) == pytest.approx(0.2)

    def test_empty_ranking(self):
        assert precision_at_k([], {"a"}, 3) == 0.0

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            precision_at_k(["a"], {"a"}, 0)

    def test_recall_no_relevant_raises(self):
        with pytest.raises(ValueError):
            recall_at_k(["a"], set(), 1)

    @given(st.lists(st.integers(0, 20), unique=True, min_size=1, max_size=15),
           st.sets(st.integers(0, 20), min_size=1, max_size=10),
           st.integers(1, 15))
    def test_bounds(self, ranked, relevant, k):
        assert 0.0 <= precision_at_k(ranked, relevant, k) <= 1.0
        assert 0.0 <= recall_at_k(ranked, relevant, k) <= 1.0


class TestNDCG:
    def test_ideal_ranking_is_one(self):
        assert ndcg_at_k(["a", "b", "x"], {"a", "b"}, 3) == pytest.approx(1.0)

    def test_worst_position_discounted(self):
        good = ndcg_at_k(["a", "x", "y"], {"a"}, 3)
        bad = ndcg_at_k(["x", "y", "a"], {"a"}, 3)
        assert good == pytest.approx(1.0)
        assert bad < good

    def test_known_value(self):
        # Relevant at position 2 of 2, one relevant total: DCG = 1/log2(3).
        got = ndcg_at_k(["x", "a"], {"a"}, 2)
        assert got == pytest.approx(1.0 / np.log2(3))

    def test_no_relevant_raises(self):
        with pytest.raises(ValueError):
            ndcg_at_k(["a"], set(), 1)

    @given(st.lists(st.integers(0, 20), unique=True, min_size=1, max_size=15),
           st.sets(st.integers(0, 20), min_size=1, max_size=10),
           st.integers(1, 15))
    def test_bounds(self, ranked, relevant, k):
        assert 0.0 <= ndcg_at_k(ranked, relevant, k) <= 1.0 + 1e-12


class TestMRR:
    def test_first_position(self):
        assert mean_reciprocal_rank([(["a", "b"], {"a"})]) == 1.0

    def test_second_position(self):
        assert mean_reciprocal_rank([(["x", "a"], {"a"})]) == 0.5

    def test_averages(self):
        rankings = [(["a"], {"a"}), (["x", "a"], {"a"})]
        assert mean_reciprocal_rank(rankings) == pytest.approx(0.75)

    def test_no_hit_contributes_zero(self):
        rankings = [(["x"], {"a"}), (["a"], {"a"})]
        assert mean_reciprocal_rank(rankings) == pytest.approx(0.5)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean_reciprocal_rank([])
