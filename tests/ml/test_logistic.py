"""Tests for repro.ml.logistic."""

import numpy as np
import pytest

from repro.ml.logistic import LogisticRegression
from repro.ml.metrics import auc_score


def make_separable(n=200, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 2))
    y = (x[:, 0] + 0.5 * x[:, 1] > 0).astype(float)
    return x, y


class TestFit:
    def test_separable_data_high_accuracy(self):
        x, y = make_separable()
        model = LogisticRegression().fit(x, y)
        acc = np.mean(model.predict(x) == y)
        assert acc > 0.95

    def test_recovers_coefficient_signs(self):
        x, y = make_separable()
        model = LogisticRegression().fit(x, y)
        assert model.coef_[0] > 0
        assert model.coef_[1] > 0
        assert model.coef_[0] > model.coef_[1]

    def test_probabilities_in_unit_interval(self):
        x, y = make_separable()
        p = LogisticRegression().fit(x, y).predict_proba(x)
        assert np.all(p >= 0) and np.all(p <= 1)

    def test_auc_beats_chance(self):
        x, y = make_separable(seed=4)
        p = LogisticRegression().fit(x, y).predict_proba(x)
        assert auc_score(y, p) > 0.9

    def test_loss_monotone_overall(self):
        x, y = make_separable(seed=2)
        model = LogisticRegression(max_iter=300).fit(x, y)
        assert model.loss_history_[-1] < model.loss_history_[0]

    def test_stronger_l2_shrinks_coefficients(self):
        x, y = make_separable(seed=3)
        weak = LogisticRegression(l2=1e-4).fit(x, y)
        strong = LogisticRegression(l2=50.0).fit(x, y)
        assert np.linalg.norm(strong.coef_) < np.linalg.norm(weak.coef_)

    def test_noisy_labels_still_converge(self):
        rng = np.random.default_rng(5)
        x, y = make_separable(seed=5)
        flip = rng.uniform(size=len(y)) < 0.2
        y = np.where(flip, 1 - y, y)
        model = LogisticRegression().fit(x, y)
        assert np.all(np.isfinite(model.coef_))


class TestValidation:
    def test_unfitted_predict_raises(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            LogisticRegression().predict_proba(np.zeros((1, 2)))

    def test_non_binary_labels_raise(self):
        with pytest.raises(ValueError, match="binary"):
            LogisticRegression().fit(np.zeros((3, 2)), np.array([0, 1, 2]))

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            LogisticRegression().fit(np.zeros((3, 2)), np.array([0, 1]))

    def test_1d_input_raises(self):
        with pytest.raises(ValueError):
            LogisticRegression().fit(np.zeros(3), np.array([0, 1, 0]))

    def test_negative_l2_raises(self):
        with pytest.raises(ValueError):
            LogisticRegression(l2=-1.0)

    def test_predict_single_row(self):
        x, y = make_separable()
        model = LogisticRegression().fit(x, y)
        p = model.predict_proba(np.array([1.0, 1.0]))
        assert p.shape == (1,)
