"""Tests for repro.ml.network — including full gradient checks."""

import numpy as np
import pytest

from repro.ml.losses import MeanSquaredError
from repro.ml.network import MLP, Dense
from repro.ml.optimizers import Adam


def network_loss(net, x, y, loss):
    return loss.value(net.forward(x), y)


def numeric_param_gradients(net, x, y, loss, eps=1e-6):
    grads = []
    for p in net.parameters():
        g = np.zeros_like(p)
        flat = p.ravel()
        gflat = g.ravel()
        for i in range(flat.size):
            orig = flat[i]
            flat[i] = orig + eps
            up = network_loss(net, x, y, loss)
            flat[i] = orig - eps
            down = network_loss(net, x, y, loss)
            flat[i] = orig
            gflat[i] = (up - down) / (2 * eps)
        grads.append(g)
    return grads


class TestDense:
    def test_forward_shape(self):
        rng = np.random.default_rng(0)
        layer = Dense(3, 5, "relu", rng=rng)
        out = layer.forward(np.zeros((7, 3)))
        assert out.shape == (7, 5)

    def test_identity_layer_is_affine(self):
        rng = np.random.default_rng(0)
        layer = Dense(2, 2, "identity", rng=rng)
        x = np.array([[1.0, 2.0]])
        np.testing.assert_allclose(
            layer.forward(x), x @ layer.weight + layer.bias
        )

    def test_backward_before_forward_raises(self):
        layer = Dense(2, 2, rng=np.random.default_rng(0))
        with pytest.raises(RuntimeError, match="before forward"):
            layer.backward(np.zeros((1, 2)))

    def test_invalid_dims_raise(self):
        with pytest.raises(ValueError):
            Dense(0, 2, rng=np.random.default_rng(0))


class TestMLPGradients:
    @pytest.mark.parametrize("hidden_act", ["tanh", "sigmoid", "softplus"])
    def test_param_gradients_match_numeric(self, hidden_act):
        # Smooth activations only: numeric diff at ReLU kinks is unreliable.
        rng = np.random.default_rng(42)
        net = MLP([4, 6, 3, 1], hidden_activation=hidden_act, seed=1)
        x = rng.normal(size=(8, 4))
        y = rng.normal(size=(8, 1))
        loss = MeanSquaredError()
        pred = net.forward(x)
        net.backward(loss.gradient(pred, y))
        analytic = net.gradients()
        numeric = numeric_param_gradients(net, x, y, loss)
        for a, n in zip(analytic, numeric):
            np.testing.assert_allclose(a, n, atol=1e-5)

    def test_input_gradient_matches_numeric(self):
        rng = np.random.default_rng(7)
        net = MLP([3, 5, 1], hidden_activation="tanh", seed=2)
        x = rng.normal(size=(4, 3))
        y = rng.normal(size=(4, 1))
        loss = MeanSquaredError()
        pred = net.forward(x)
        grad_x = net.backward(loss.gradient(pred, y))
        eps = 1e-6
        numeric = np.zeros_like(x)
        for i in range(x.shape[0]):
            for j in range(x.shape[1]):
                x[i, j] += eps
                up = network_loss(net, x, y, loss)
                x[i, j] -= 2 * eps
                down = network_loss(net, x, y, loss)
                x[i, j] += eps
                numeric[i, j] = (up - down) / (2 * eps)
        np.testing.assert_allclose(grad_x, numeric, atol=1e-5)

    def test_l2_gradient_contribution(self):
        net = MLP([2, 3, 1], hidden_activation="tanh", seed=3, l2=0.5)
        x = np.zeros((2, 2))
        y = np.zeros((2, 1))
        loss = MeanSquaredError()
        pred = net.forward(x)
        net.backward(loss.gradient(pred, y))
        # With zero input, first-layer weight gradient is purely the L2 term.
        np.testing.assert_allclose(
            net.layers[0].grad_weight, 0.5 * net.layers[0].weight
        )


class TestMLPTraining:
    def test_fits_linear_function(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(200, 3))
        w = np.array([1.0, -2.0, 0.5])
        y = x @ w + 0.3
        net = MLP([3, 16, 1], hidden_activation="tanh", seed=0)
        net.fit(
            x, y, optimizer=Adam(learning_rate=0.01), epochs=300, batch_size=32, seed=0
        )
        pred = net.predict(x)
        assert np.sqrt(np.mean((pred - y) ** 2)) < 0.1

    def test_fits_nonlinear_function(self):
        rng = np.random.default_rng(1)
        x = rng.uniform(-2, 2, size=(300, 2))
        y = np.sin(x[:, 0]) * x[:, 1]
        net = MLP([2, 32, 32, 1], hidden_activation="relu", seed=1)
        net.fit(x, y, epochs=400, batch_size=32, seed=1)
        pred = net.predict(x)
        assert np.sqrt(np.mean((pred - y) ** 2)) < 0.25

    def test_loss_decreases(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(100, 2))
        y = x[:, :1] * 2
        net = MLP([2, 8, 1], seed=2)
        result = net.fit(x, y, epochs=50, seed=2)
        assert result.loss_history[-1] < result.loss_history[0]
        assert result.final_loss == result.loss_history[-1]

    def test_deterministic_given_seeds(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(50, 2))
        y = x[:, :1]
        preds = []
        for _ in range(2):
            net = MLP([2, 4, 1], seed=9)
            net.fit(x, y, epochs=20, seed=9)
            preds.append(net.predict(x))
        np.testing.assert_array_equal(preds[0], preds[1])


class TestMLPValidation:
    def test_too_few_layer_sizes(self):
        with pytest.raises(ValueError):
            MLP([4])

    def test_mismatched_batch(self):
        net = MLP([2, 1])
        with pytest.raises(ValueError):
            net.fit(np.zeros((3, 2)), np.zeros(4))

    def test_empty_dataset(self):
        net = MLP([2, 1])
        with pytest.raises(ValueError):
            net.fit(np.zeros((0, 2)), np.zeros(0))

    def test_non_2d_input(self):
        net = MLP([2, 1])
        with pytest.raises(ValueError):
            net.forward(np.zeros(2))

    def test_dims_properties(self):
        net = MLP([5, 7, 3])
        assert net.in_dim == 5
        assert net.out_dim == 3
