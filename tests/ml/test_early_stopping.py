"""Tests for validation-based early stopping in MLP.fit."""

import numpy as np
import pytest

from repro.ml.network import MLP
from repro.ml.optimizers import Adam


def noisy_data(n=120, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 3))
    y = x[:, 0] + rng.normal(0, 0.5, size=n)
    return x, y


class TestEarlyStopping:
    def test_validation_history_recorded(self):
        x, y = noisy_data()
        net = MLP([3, 8, 1], seed=0)
        result = net.fit(
            x, y, epochs=50, validation_fraction=0.2, patience=50, seed=0
        )
        assert len(result.validation_history) == len(result.loss_history)
        assert result.best_epoch is not None

    def test_stops_before_max_epochs_when_overfitting(self):
        x, y = noisy_data(n=40, seed=1)
        net = MLP([3, 32, 32, 1], seed=1)
        result = net.fit(
            x,
            y,
            optimizer=Adam(learning_rate=0.01),
            epochs=2000,
            validation_fraction=0.25,
            patience=10,
            seed=1,
        )
        assert len(result.loss_history) < 2000

    def test_best_weights_restored(self):
        """After fit, the network's validation loss equals the best seen."""
        x, y = noisy_data(n=60, seed=2)
        rng = np.random.default_rng(99)
        # Use an explicit holdout identical to fit's internal split logic:
        # instead, check indirectly — final val loss <= last recorded val loss.
        net = MLP([3, 16, 1], seed=2)
        result = net.fit(
            x,
            y,
            optimizer=Adam(learning_rate=0.01),
            epochs=300,
            validation_fraction=0.25,
            patience=15,
            seed=2,
        )
        best = min(result.validation_history)
        assert result.validation_history[result.best_epoch] == pytest.approx(best)

    def test_no_validation_runs_all_epochs(self):
        x, y = noisy_data()
        net = MLP([3, 4, 1], seed=3)
        result = net.fit(x, y, epochs=25, seed=3)
        assert len(result.loss_history) == 25
        assert result.validation_history == []
        assert result.best_epoch is None

    def test_invalid_fraction(self):
        x, y = noisy_data()
        net = MLP([3, 4, 1])
        with pytest.raises(ValueError):
            net.fit(x, y, validation_fraction=1.0)

    def test_tiny_dataset_split_guard(self):
        net = MLP([2, 2, 1])
        with pytest.raises(ValueError):
            net.fit(np.zeros((1, 2)), np.zeros(1), validation_fraction=0.9)


class TestPointProcessEarlyStopping:
    def test_validation_history_and_stop(self):
        from repro.pointprocess.model import ExcitationPointProcess

        rng = np.random.default_rng(0)
        n = 150
        x = rng.normal(size=(n, 2))
        is_event = (rng.uniform(size=n) < 0.5).astype(float)
        times = np.where(is_event > 0, rng.uniform(0.1, 5.0, size=n), 0.0)
        horizons = np.full(n, 10.0)
        model = ExcitationPointProcess(2, excitation_hidden=(8,), seed=0)
        result = model.fit(
            x,
            times,
            horizons,
            is_event,
            epochs=400,
            validation_fraction=0.2,
            patience=5,
            seed=0,
        )
        assert result.validation_history
        assert len(result.nll_history) <= 400

    def test_invalid_fraction(self):
        from repro.pointprocess.model import ExcitationPointProcess

        model = ExcitationPointProcess(1)
        with pytest.raises(ValueError):
            model.fit(
                np.zeros((2, 1)),
                np.zeros(2),
                np.ones(2),
                np.zeros(2),
                validation_fraction=-0.1,
            )
