"""Tests for repro.ml.losses."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.ml.losses import (
    BinaryCrossEntropy,
    MeanSquaredError,
    PoissonNLL,
    get_loss,
)


def numeric_gradient(loss, pred, target, eps=1e-6):
    grad = np.zeros_like(pred)
    flat = pred.ravel()
    gflat = grad.ravel()
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        up = loss.value(pred, target)
        flat[i] = orig - eps
        down = loss.value(pred, target)
        flat[i] = orig
        gflat[i] = (up - down) / (2 * eps)
    return grad


class TestMSE:
    def test_zero_when_equal(self):
        y = np.array([1.0, -2.0, 3.0])
        assert MeanSquaredError().value(y, y) == 0.0

    def test_known_value(self):
        pred = np.array([1.0, 2.0])
        target = np.array([0.0, 0.0])
        assert MeanSquaredError().value(pred, target) == pytest.approx(2.5)

    def test_gradient_matches_numeric(self):
        rng = np.random.default_rng(1)
        pred = rng.normal(size=(4, 2))
        target = rng.normal(size=(4, 2))
        loss = MeanSquaredError()
        np.testing.assert_allclose(
            loss.gradient(pred, target),
            numeric_gradient(loss, pred, target),
            atol=1e-6,
        )

    @given(
        hnp.arrays(dtype=float, shape=5, elements=st.floats(-100, 100)),
        hnp.arrays(dtype=float, shape=5, elements=st.floats(-100, 100)),
    )
    def test_non_negative(self, pred, target):
        assert MeanSquaredError().value(pred, target) >= 0.0


class TestBCE:
    def test_perfect_prediction_near_zero(self):
        pred = np.array([0.999999, 0.000001])
        target = np.array([1.0, 0.0])
        assert BinaryCrossEntropy().value(pred, target) < 1e-5

    def test_known_value_at_half(self):
        pred = np.array([0.5])
        target = np.array([1.0])
        assert BinaryCrossEntropy().value(pred, target) == pytest.approx(np.log(2))

    def test_clipping_handles_exact_zero_one(self):
        pred = np.array([0.0, 1.0])
        target = np.array([1.0, 0.0])
        assert np.isfinite(BinaryCrossEntropy().value(pred, target))

    def test_gradient_matches_numeric(self):
        rng = np.random.default_rng(2)
        pred = rng.uniform(0.05, 0.95, size=6)
        target = rng.integers(0, 2, size=6).astype(float)
        loss = BinaryCrossEntropy()
        np.testing.assert_allclose(
            loss.gradient(pred, target),
            numeric_gradient(loss, pred, target),
            atol=1e-5,
        )


class TestPoissonNLL:
    def test_minimized_at_target(self):
        # For a single observation the NLL lam - t*log(lam) is minimized at lam = t.
        loss = PoissonNLL()
        target = np.array([3.0])
        at_target = loss.value(np.array([3.0]), target)
        for lam in (1.0, 2.0, 4.0, 10.0):
            assert loss.value(np.array([lam]), target) > at_target

    def test_gradient_matches_numeric(self):
        rng = np.random.default_rng(3)
        pred = rng.uniform(0.5, 5.0, size=6)
        target = rng.poisson(2.0, size=6).astype(float)
        loss = PoissonNLL()
        np.testing.assert_allclose(
            loss.gradient(pred, target),
            numeric_gradient(loss, pred, target),
            atol=1e-5,
        )

    def test_gradient_zero_at_optimum(self):
        loss = PoissonNLL()
        target = np.array([2.0, 5.0])
        grad = loss.gradient(target.copy(), target)
        np.testing.assert_allclose(grad, 0.0, atol=1e-12)


class TestRegistry:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("mse", MeanSquaredError),
            ("bce", BinaryCrossEntropy),
            ("poisson_nll", PoissonNLL),
        ],
    )
    def test_lookup(self, name, cls):
        assert isinstance(get_loss(name), cls)

    def test_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown loss"):
            get_loss("hinge")
