"""Tests for repro.ml.tuning."""

import pytest

from repro.ml.tuning import GridSearchResult, expand_grid, grid_search


class TestExpandGrid:
    def test_cartesian_product(self):
        combos = expand_grid({"a": [1, 2], "b": ["x", "y"]})
        assert len(combos) == 4
        assert {"a": 1, "b": "x"} in combos
        assert {"a": 2, "b": "y"} in combos

    def test_single_parameter(self):
        assert expand_grid({"k": [2, 5, 8]}) == [
            {"k": 2},
            {"k": 5},
            {"k": 8},
        ]

    def test_stable_order(self):
        combos = expand_grid({"a": [1, 2], "b": [10, 20]})
        assert combos[0] == {"a": 1, "b": 10}
        assert combos[1] == {"a": 1, "b": 20}

    def test_empty_grid_raises(self):
        with pytest.raises(ValueError):
            expand_grid({})

    def test_empty_values_raise(self):
        with pytest.raises(ValueError):
            expand_grid({"a": []})


class TestGridSearch:
    def test_finds_maximum(self):
        result = grid_search(
            {"x": [-2, -1, 0, 1, 2]},
            lambda x: -(x - 1) ** 2,
            higher_is_better=True,
        )
        assert result.best_params == {"x": 1}
        assert result.best_score == 0.0

    def test_finds_minimum(self):
        result = grid_search(
            {"x": [0, 1, 2, 3]},
            lambda x: (x - 2) ** 2,
            higher_is_better=False,
        )
        assert result.best_params == {"x": 2}

    def test_multi_parameter(self):
        result = grid_search(
            {"a": [0, 1], "b": [0, 10]},
            lambda a, b: a + b,
            higher_is_better=True,
        )
        assert result.best_params == {"a": 1, "b": 10}
        assert len(result.scores) == 4

    def test_ranked_order(self):
        result = grid_search(
            {"x": [3, 1, 2]}, lambda x: x, higher_is_better=True
        )
        assert [s for _, s in result.ranked()] == [3.0, 2.0, 1.0]

    def test_evaluation_errors_propagate(self):
        def boom(x):
            raise RuntimeError("fit failed")

        with pytest.raises(RuntimeError):
            grid_search({"x": [1]}, boom)

    def test_usable_for_topic_count_selection(self, tmp_path):
        """End-to-end: pick K by a cheap proxy (planted-topic separation)."""
        import numpy as np

        from repro.topics.lda import LdaVariational

        rng = np.random.default_rng(0)
        docs = [
            rng.integers(0, 10, size=20) if d % 2 == 0 else rng.integers(10, 20, size=20)
            for d in range(40)
        ]

        def score(k):
            model = LdaVariational(k, 20, seed=0, n_iter=15).fit(docs)
            # Mass concentration: best when topics align with blocks.
            return float(model.topic_word_.max(axis=1).mean())

        result = grid_search({"k": [1, 2]}, score, higher_is_better=True)
        assert result.best_params["k"] == 2
