"""Tests for repro.ml.calibration."""

import numpy as np
import pytest

from repro.ml.calibration import PlattCalibrator, brier_score, reliability_curve


def miscalibrated_data(n=3000, seed=0):
    """True P(y|p) = sigmoid(2 * logit(p)): overconfident scores."""
    rng = np.random.default_rng(seed)
    p = rng.uniform(0.05, 0.95, size=n)
    logit = np.log(p / (1 - p))
    true_p = 1 / (1 + np.exp(-0.5 * logit))  # flatter than reported
    y = (rng.uniform(size=n) < true_p).astype(float)
    return p, y


class TestBrier:
    def test_perfect_zero(self):
        assert brier_score([1, 0], [1.0, 0.0]) == 0.0

    def test_known_value(self):
        assert brier_score([1, 0], [0.5, 0.5]) == pytest.approx(0.25)

    def test_validation(self):
        with pytest.raises(ValueError):
            brier_score([1], [1.5])
        with pytest.raises(ValueError):
            brier_score([], [])
        with pytest.raises(ValueError):
            brier_score([1, 0], [0.5])


class TestReliabilityCurve:
    def test_calibrated_data_on_diagonal(self):
        rng = np.random.default_rng(1)
        p = rng.uniform(size=20000)
        y = (rng.uniform(size=20000) < p).astype(float)
        mean_pred, observed, counts = reliability_curve(y, p, n_bins=10)
        np.testing.assert_allclose(mean_pred, observed, atol=0.05)
        assert counts.sum() == 20000

    def test_empty_bins_dropped(self):
        p = np.array([0.05, 0.06, 0.95])
        y = np.array([0.0, 0.0, 1.0])
        mean_pred, observed, counts = reliability_curve(y, p, n_bins=10)
        assert len(mean_pred) == 2

    def test_invalid_bins(self):
        with pytest.raises(ValueError):
            reliability_curve([1.0], [0.5], n_bins=1)


class TestPlatt:
    def test_improves_brier_on_miscalibrated_scores(self):
        p, y = miscalibrated_data()
        half = len(p) // 2
        calibrator = PlattCalibrator().fit(p[:half], y[:half])
        before = brier_score(y[half:], p[half:])
        after = brier_score(y[half:], calibrator.transform(p[half:]))
        assert after < before

    def test_identity_on_calibrated_scores(self):
        rng = np.random.default_rng(2)
        p = rng.uniform(0.05, 0.95, size=5000)
        y = (rng.uniform(size=5000) < p).astype(float)
        calibrator = PlattCalibrator().fit(p, y)
        # Near-identity mapping: a stays near 1, b near 0.
        assert calibrator.a_ == pytest.approx(1.0, abs=0.25)
        assert calibrator.b_ == pytest.approx(0.0, abs=0.25)

    def test_output_is_probability(self):
        p, y = miscalibrated_data(seed=3)
        calibrator = PlattCalibrator().fit(p, y)
        out = calibrator.transform(p)
        assert np.all((out >= 0) & (out <= 1))

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            PlattCalibrator().transform([0.5])

    def test_non_binary_rejected(self):
        with pytest.raises(ValueError):
            PlattCalibrator().fit([0.5, 0.6], [0.0, 2.0])
