"""Tests for repro.ml.scaler."""

import numpy as np
import pytest

from repro.ml.scaler import StandardScaler


class TestStandardScaler:
    def test_zero_mean_unit_variance(self):
        rng = np.random.default_rng(0)
        x = rng.normal(loc=5.0, scale=3.0, size=(100, 4))
        z = StandardScaler().fit_transform(x)
        np.testing.assert_allclose(z.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(z.std(axis=0), 1.0, atol=1e-10)

    def test_constant_feature_no_nan(self):
        x = np.column_stack([np.ones(10), np.arange(10.0)])
        z = StandardScaler().fit_transform(x)
        assert np.all(np.isfinite(z))
        np.testing.assert_allclose(z[:, 0], 0.0)

    def test_inverse_roundtrip(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(30, 3))
        scaler = StandardScaler().fit(x)
        np.testing.assert_allclose(
            scaler.inverse_transform(scaler.transform(x)), x, atol=1e-12
        )

    def test_transform_uses_training_stats(self):
        train = np.array([[0.0], [2.0]])
        scaler = StandardScaler().fit(train)
        np.testing.assert_allclose(scaler.transform(np.array([[1.0]])), [[0.0]])

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.zeros((1, 1)))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            StandardScaler().fit(np.zeros((0, 3)))

    def test_1d_raises(self):
        with pytest.raises(ValueError):
            StandardScaler().fit(np.zeros(5))
