"""Tests for repro.ml.optimizers."""

import numpy as np
import pytest

from repro.ml.optimizers import SGD, Adam, get_optimizer


def quadratic_grad(p):
    """Gradient of f(p) = 0.5 * ||p - target||^2 with target = [1, -2]."""
    return p - np.array([1.0, -2.0])


class TestSGD:
    def test_plain_step(self):
        p = np.array([0.0, 0.0])
        SGD(learning_rate=0.1).step([p], [np.array([1.0, -1.0])])
        np.testing.assert_allclose(p, [-0.1, 0.1])

    def test_converges_on_quadratic(self):
        p = np.array([5.0, 5.0])
        opt = SGD(learning_rate=0.2)
        for _ in range(200):
            opt.step([p], [quadratic_grad(p)])
        np.testing.assert_allclose(p, [1.0, -2.0], atol=1e-6)

    def test_momentum_accelerates(self):
        losses = {}
        for mom in (0.0, 0.9):
            p = np.array([5.0, 5.0])
            opt = SGD(learning_rate=0.01, momentum=mom)
            for _ in range(50):
                opt.step([p], [quadratic_grad(p)])
            losses[mom] = np.sum((p - np.array([1.0, -2.0])) ** 2)
        assert losses[0.9] < losses[0.0]

    def test_reset_clears_velocity(self):
        p = np.array([1.0])
        opt = SGD(learning_rate=0.1, momentum=0.9)
        opt.step([p], [np.array([1.0])])
        opt.reset()
        assert opt._velocity is None

    @pytest.mark.parametrize("kwargs", [{"learning_rate": 0}, {"momentum": 1.0}])
    def test_invalid_params(self, kwargs):
        with pytest.raises(ValueError):
            SGD(**{"learning_rate": 0.1, **kwargs})


class TestAdam:
    def test_first_step_size_is_learning_rate(self):
        # With bias correction, the first Adam step is ~lr * sign(grad).
        p = np.array([0.0])
        Adam(learning_rate=0.1).step([p], [np.array([3.0])])
        assert p[0] == pytest.approx(-0.1, rel=1e-5)

    def test_converges_on_quadratic(self):
        p = np.array([5.0, 5.0])
        opt = Adam(learning_rate=0.3)
        for _ in range(500):
            opt.step([p], [quadratic_grad(p)])
        np.testing.assert_allclose(p, [1.0, -2.0], atol=1e-4)

    def test_handles_sparse_gradients(self):
        p = np.array([0.0, 0.0])
        opt = Adam(learning_rate=0.1)
        for i in range(10):
            g = np.array([1.0, 0.0]) if i % 2 == 0 else np.array([0.0, 1.0])
            opt.step([p], [g])
        assert np.all(np.isfinite(p))

    def test_reset(self):
        p = np.array([0.0])
        opt = Adam()
        opt.step([p], [np.array([1.0])])
        opt.reset()
        assert opt._t == 0 and opt._m is None

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            Adam().step([np.zeros(1)], [])

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            Adam(beta1=1.0)


class TestRegistry:
    def test_by_name(self):
        assert isinstance(get_optimizer("adam"), Adam)
        assert isinstance(get_optimizer("sgd", learning_rate=0.5), SGD)

    def test_passthrough(self):
        opt = Adam()
        assert get_optimizer(opt) is opt

    def test_unknown(self):
        with pytest.raises(ValueError, match="unknown optimizer"):
            get_optimizer("rmsprop")
