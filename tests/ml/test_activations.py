"""Tests for repro.ml.activations."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.ml.activations import (
    Identity,
    ReLU,
    Sigmoid,
    Softplus,
    Tanh,
    get_activation,
    sigmoid,
    softplus,
)

ALL_ACTIVATIONS = [Identity(), ReLU(), Tanh(), Sigmoid(), Softplus()]

finite_arrays = hnp.arrays(
    dtype=float,
    shape=hnp.array_shapes(max_dims=2, max_side=5),
    elements=st.floats(-30, 30),
)


def numeric_derivative(act, z, eps=1e-6):
    return (act.forward(z + eps) - act.forward(z - eps)) / (2 * eps)


class TestForwardValues:
    def test_identity(self):
        z = np.array([-2.0, 0.0, 3.0])
        np.testing.assert_array_equal(Identity().forward(z), z)

    def test_relu(self):
        z = np.array([-2.0, 0.0, 3.0])
        np.testing.assert_array_equal(ReLU().forward(z), [0.0, 0.0, 3.0])

    def test_tanh_matches_numpy(self):
        z = np.linspace(-3, 3, 7)
        np.testing.assert_allclose(Tanh().forward(z), np.tanh(z))

    def test_sigmoid_midpoint(self):
        assert sigmoid(np.array([0.0]))[0] == pytest.approx(0.5)

    def test_sigmoid_extremes_are_finite(self):
        out = sigmoid(np.array([-1000.0, 1000.0]))
        assert np.all(np.isfinite(out))
        assert out[0] == pytest.approx(0.0, abs=1e-12)
        assert out[1] == pytest.approx(1.0, abs=1e-12)

    def test_softplus_at_zero(self):
        assert softplus(np.array([0.0]))[0] == pytest.approx(np.log(2.0))

    def test_softplus_large_input_no_overflow(self):
        out = softplus(np.array([800.0]))
        assert out[0] == pytest.approx(800.0)

    def test_softplus_is_positive(self):
        z = np.linspace(-50, 50, 101)
        assert np.all(softplus(z) > 0)


class TestBackwardMatchesNumericDerivative:
    @pytest.mark.parametrize("act", ALL_ACTIVATIONS, ids=lambda a: a.name)
    def test_gradient(self, act):
        rng = np.random.default_rng(0)
        z = rng.normal(size=20) * 3
        # Avoid the ReLU kink where the numeric derivative is ill-defined.
        z = z[np.abs(z) > 1e-3]
        grad = act.backward(z, np.ones_like(z))
        np.testing.assert_allclose(grad, numeric_derivative(act, z), atol=1e-5)

    @pytest.mark.parametrize("act", ALL_ACTIVATIONS, ids=lambda a: a.name)
    def test_chain_rule_scaling(self, act):
        z = np.array([0.7, -1.3])
        upstream = np.array([2.0, -3.0])
        expected = act.backward(z, np.ones_like(z)) * upstream
        np.testing.assert_allclose(act.backward(z, upstream), expected)


class TestProperties:
    @given(finite_arrays)
    def test_sigmoid_in_unit_interval(self, z):
        out = sigmoid(z)
        assert np.all(out >= 0) and np.all(out <= 1)

    @given(finite_arrays)
    def test_relu_non_negative(self, z):
        assert np.all(ReLU().forward(z) >= 0)

    @given(finite_arrays)
    def test_softplus_upper_bounds_relu(self, z):
        assert np.all(softplus(z) >= ReLU().forward(z))

    @given(finite_arrays)
    def test_tanh_bounded(self, z):
        out = Tanh().forward(z)
        assert np.all(np.abs(out) <= 1.0)


class TestRegistry:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("identity", Identity),
            ("relu", ReLU),
            ("tanh", Tanh),
            ("sigmoid", Sigmoid),
            ("softplus", Softplus),
        ],
    )
    def test_lookup_by_name(self, name, cls):
        assert isinstance(get_activation(name), cls)

    def test_passthrough_instance(self):
        act = ReLU()
        assert get_activation(act) is act

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown activation"):
            get_activation("gelu")
