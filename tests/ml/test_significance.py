"""Tests for repro.ml.significance."""

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.ml.significance import bootstrap_ci, paired_t_test


@pytest.mark.slow
class TestBootstrapCI:
    def test_contains_true_mean(self):
        rng = np.random.default_rng(0)
        values = rng.normal(5.0, 1.0, size=200)
        low, high = bootstrap_ci(values, seed=1)
        assert low < 5.0 < high
        assert low < values.mean() < high

    def test_narrows_with_more_data(self):
        rng = np.random.default_rng(1)
        small = rng.normal(0, 1, size=20)
        large = rng.normal(0, 1, size=2000)
        ls, hs = bootstrap_ci(small, seed=2)
        ll, hl = bootstrap_ci(large, seed=2)
        assert (hl - ll) < (hs - ls)

    def test_custom_statistic(self):
        values = np.array([1.0, 2.0, 3.0, 100.0] * 10)
        low, high = bootstrap_ci(values, statistic=np.median, seed=3)
        assert low <= np.median(values) <= high
        assert high < 50  # the median CI ignores the outlier tail

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_ci(np.array([1.0]))
        with pytest.raises(ValueError):
            bootstrap_ci(np.array([1.0, 2.0]), confidence=1.0)


class TestPairedTTest:
    def test_matches_scipy(self):
        rng = np.random.default_rng(2)
        a = rng.normal(1.0, 1.0, size=30)
        b = rng.normal(0.5, 1.0, size=30)
        ours = paired_t_test(a, b)
        theirs = scipy_stats.ttest_rel(a, b)
        assert ours.statistic == pytest.approx(theirs.statistic, rel=1e-9)
        assert ours.p_value == pytest.approx(theirs.pvalue, rel=1e-9)

    def test_identical_samples_not_significant(self):
        a = np.array([1.0, 2.0, 3.0])
        result = paired_t_test(a, a)
        assert result.p_value == 1.0
        assert not result.significant()

    def test_constant_shift_significant(self):
        a = np.array([1.0, 2.0, 3.0, 4.0])
        result = paired_t_test(a + 0.5, a)
        assert result.p_value == 0.0
        assert result.significant()

    def test_clear_difference_detected(self):
        rng = np.random.default_rng(3)
        base = rng.normal(0, 1, size=50)
        result = paired_t_test(base + 1.0 + rng.normal(0, 0.1, 50), base)
        assert result.significant(0.01)
        assert result.mean_difference == pytest.approx(1.0, abs=0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            paired_t_test([1.0], [2.0])
        with pytest.raises(ValueError):
            paired_t_test([1.0, 2.0], [1.0])
