"""Finite-difference gradient checks for the manual backprop stack.

The fused training engine rewrote every backward pass to run in place
through preallocated buffers; these checks pin the analytic gradients of
each activation/loss pairing (and the point-process NLL path, whose
gradient is injected by hand rather than through a loss object) against
central differences.
"""

import numpy as np
import pytest

from repro.ml.losses import get_loss
from repro.ml.network import MLP, Dense
from repro.pointprocess.model import ExcitationPointProcess

_EPS = 1e-6


def _numeric_grad(f, params: list[np.ndarray]) -> list[np.ndarray]:
    """Central-difference gradient of scalar ``f()`` w.r.t. each array."""
    grads = []
    for p in params:
        g = np.zeros_like(p)
        flat_p = p.ravel()
        flat_g = g.ravel()
        for i in range(flat_p.size):
            orig = flat_p[i]
            flat_p[i] = orig + _EPS
            hi = f()
            flat_p[i] = orig - _EPS
            lo = f()
            flat_p[i] = orig
            flat_g[i] = (hi - lo) / (2.0 * _EPS)
        grads.append(g)
    return grads


def _mlp_loss(net: MLP, loss, x: np.ndarray, y: np.ndarray) -> float:
    return float(loss.value(net.forward(x), y))


def _check_mlp(net: MLP, loss_name: str, x: np.ndarray, y: np.ndarray):
    loss = get_loss(loss_name)
    y = y[:, None]  # MLP.fit trains against column targets
    pred = net.forward(x)
    net.backward(loss.gradient(pred, y))
    analytic = [g.copy() for g in net.gradients()]
    numeric = _numeric_grad(
        lambda: _mlp_loss(net, loss, x, y), net.parameters()
    )
    for a, n in zip(analytic, numeric):
        np.testing.assert_allclose(a, n, rtol=1e-5, atol=1e-7)


@pytest.mark.parametrize(
    "hidden_activation,output_activation,loss_name,target",
    [
        ("tanh", "identity", "mse", "real"),
        ("relu", "identity", "mse", "real"),
        ("tanh", "sigmoid", "bce", "binary"),
        ("sigmoid", "sigmoid", "bce", "binary"),
        ("tanh", "softplus", "poisson_nll", "counts"),
        ("relu", "softplus", "poisson_nll", "counts"),
    ],
)
def test_mlp_gradients_match_finite_differences(
    hidden_activation, output_activation, loss_name, target
):
    rng = np.random.default_rng(11)
    x = rng.normal(size=(12, 5))
    if target == "binary":
        y = rng.integers(0, 2, size=12).astype(float)
    elif target == "counts":
        y = rng.poisson(2.0, size=12).astype(float)
    else:
        y = rng.normal(size=12)
    net = MLP(
        [5, 7, 4, 1],
        hidden_activation=hidden_activation,
        output_activation=output_activation,
        seed=3,
    )
    if hidden_activation == "relu":
        # Keep pre-activations away from the ReLU kink, where the
        # analytic subgradient and the central difference disagree.
        pre = net.layers[0].weight.T @ x.T + net.layers[0].bias[:, None]
        assert np.min(np.abs(pre)) > 1e-4
    _check_mlp(net, loss_name, x, y)


def test_l2_regularized_gradients():
    rng = np.random.default_rng(5)
    x = rng.normal(size=(10, 4))
    y = rng.normal(size=10)
    net = MLP([4, 6, 1], seed=1, l2=0.3)
    loss = get_loss("mse")
    y = y[:, None]

    def full_loss():
        value = float(loss.value(net.forward(x), y))
        return value + 0.5 * net.l2 * sum(
            float(np.sum(layer.weight**2)) for layer in net.layers
        )

    net.backward(loss.gradient(net.forward(x), y))
    numeric = _numeric_grad(full_loss, net.parameters())
    for a, n in zip(net.gradients(), numeric):
        np.testing.assert_allclose(a, n, rtol=1e-5, atol=1e-7)


def test_buffered_backward_matches_unbuffered_bitwise():
    rng = np.random.default_rng(17)
    x = rng.normal(size=(8, 5))
    y = rng.normal(size=8)[:, None]
    loss = get_loss("mse")

    def run(buffered: bool):
        net = MLP([5, 6, 1], hidden_activation="tanh", seed=2)
        grad = loss.gradient(net.forward(x, buffered=buffered), y)
        net.backward(grad.copy(), buffered=buffered)
        return [g.copy() for g in net.gradients()]

    for a, b in zip(run(False), run(True)):
        np.testing.assert_array_equal(a, b)


def test_dense_layer_input_gradient():
    """dL/dx returned by backward, checked against finite differences."""
    rng = np.random.default_rng(23)
    x = rng.normal(size=(6, 4))
    layer = Dense(4, 3, activation="tanh", rng=np.random.default_rng(9))
    upstream = rng.normal(size=(6, 3))

    def scalar():
        return float(np.sum(layer.forward(x) * upstream))

    layer.forward(x)
    grad_x = layer.backward(upstream.copy())
    g = np.zeros_like(x)
    for i in range(x.size):
        orig = x.flat[i]
        x.flat[i] = orig + _EPS
        hi = scalar()
        x.flat[i] = orig - _EPS
        lo = scalar()
        x.flat[i] = orig
        g.flat[i] = (hi - lo) / (2.0 * _EPS)
    np.testing.assert_allclose(grad_x, g, rtol=1e-5, atol=1e-7)


@pytest.mark.parametrize("decay", ["constant", "network"])
def test_point_process_parameter_gradients(decay):
    """The hand-injected NLL gradient path through both networks."""
    rng = np.random.default_rng(31)
    n, d = 10, 4
    x = rng.normal(size=(n, d))
    times = rng.uniform(0.1, 5.0, size=n)
    horizons = rng.uniform(6.0, 20.0, size=n)
    is_event = (rng.random(n) < 0.6).astype(float)
    pp = ExcitationPointProcess(
        d, excitation_hidden=(6,), decay=decay, decay_hidden=(5,), seed=13
    )
    params = pp.excitation_net.parameters()
    if pp.decay_net is not None:
        params = params + pp.decay_net.parameters()

    def nll():
        value, _, _ = pp._batch_nll_and_grads(x, times, horizons, is_event)
        return value

    _, grad_mu, grad_omega = pp._batch_nll_and_grads(
        x, times, horizons, is_event
    )
    pp.excitation_net.backward(grad_mu[:, None])
    analytic = [g.copy() for g in pp.excitation_net.gradients()]
    if pp.decay_net is not None:
        pp.decay_net.backward(grad_omega[:, None])
        analytic += [g.copy() for g in pp.decay_net.gradients()]
    numeric = _numeric_grad(nll, params)
    for a, n_ in zip(analytic, numeric):
        np.testing.assert_allclose(a, n_, rtol=1e-4, atol=1e-6)
