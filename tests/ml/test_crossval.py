"""Tests for repro.ml.crossval."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ml.crossval import (
    kfold_indices,
    stratified_kfold_indices,
    train_test_split_indices,
)


class TestKFold:
    def test_partitions_everything(self):
        n = 23
        seen = []
        for train, test in kfold_indices(n, 5, seed=0):
            assert len(np.intersect1d(train, test)) == 0
            assert len(train) + len(test) == n
            seen.extend(test.tolist())
        assert sorted(seen) == list(range(n))

    def test_fold_sizes_balanced(self):
        sizes = [len(test) for _, test in kfold_indices(20, 4, seed=1)]
        assert sizes == [5, 5, 5, 5]

    def test_invalid_folds(self):
        with pytest.raises(ValueError):
            list(kfold_indices(10, 1))
        with pytest.raises(ValueError):
            list(kfold_indices(2, 5))

    @given(st.integers(5, 60), st.integers(2, 5), st.integers(0, 1000))
    def test_property_partition(self, n, k, seed):
        all_test = np.concatenate([t for _, t in kfold_indices(n, k, seed=seed)])
        assert sorted(all_test.tolist()) == list(range(n))


class TestStratifiedKFold:
    def test_heavy_group_in_every_fold(self):
        # One user with 10 samples must appear in all 5 test folds.
        groups = ["heavy"] * 10 + ["a", "b", "c", "d", "e"]
        for train, test in stratified_kfold_indices(groups, 5, seed=0):
            test_groups = [groups[i] for i in test]
            assert "heavy" in test_groups

    def test_group_spread_is_uniform(self):
        groups = ["u"] * 10 + ["v"] * 5
        counts = []
        for _, test in stratified_kfold_indices(groups, 5, seed=1):
            counts.append(sum(1 for i in test if groups[i] == "u"))
        assert counts == [2, 2, 2, 2, 2]

    def test_partition_complete(self):
        rng = np.random.default_rng(2)
        groups = rng.integers(0, 7, size=40).tolist()
        seen = []
        for train, test in stratified_kfold_indices(groups, 4, seed=2):
            assert len(np.intersect1d(train, test)) == 0
            seen.extend(test.tolist())
        assert sorted(seen) == list(range(40))

    def test_singleton_groups_rotate(self):
        # 10 singleton groups over 5 folds: each fold should get exactly 2.
        groups = [f"g{i}" for i in range(10)]
        sizes = [len(t) for _, t in stratified_kfold_indices(groups, 5, seed=0)]
        assert sizes == [2, 2, 2, 2, 2]

    def test_too_few_samples_raises(self):
        with pytest.raises(ValueError):
            list(stratified_kfold_indices(["a"], 2))


class TestTrainTestSplit:
    def test_disjoint_and_complete(self):
        train, test = train_test_split_indices(50, 0.2, seed=0)
        assert len(np.intersect1d(train, test)) == 0
        assert len(train) + len(test) == 50
        assert len(test) == 10

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            train_test_split_indices(10, 0.0)
        with pytest.raises(ValueError):
            train_test_split_indices(10, 1.0)

    def test_tiny_dataset(self):
        train, test = train_test_split_indices(2, 0.4, seed=1)
        assert len(test) == 1 and len(train) == 1
