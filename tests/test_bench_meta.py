"""Every ``BENCH_*.json`` must carry the shared provenance header.

Benchmark records are compared across commits; a file written without
the ``benchmarks/_meta.py`` header loses the seed/revision/platform
context that makes the comparison meaningful.  Two guards:

* every checked-in ``BENCH_*.json`` at the repo root has a well-formed
  ``meta`` block, and
* every benchmark module that emits a record imports its writer from
  ``_meta`` and never serialises JSON by hand.
"""

import json
import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_DIR = REPO_ROOT / "benchmarks"

REQUIRED_META_KEYS = {
    "schema_version",
    "seed",
    "git_rev",
    "generated_at",
    "python",
    "numpy",
    "platform",
    "machine",
    "cpu_count",
    "bench_scale",
}


def bench_records():
    return sorted(REPO_ROOT.glob("BENCH_*.json"))


def bench_modules():
    return sorted(BENCH_DIR.glob("bench_*.py"))


class TestBenchRecords:
    def test_records_exist(self):
        assert bench_records(), "no BENCH_*.json records at the repo root"

    @pytest.mark.parametrize(
        "path", bench_records(), ids=lambda p: p.name
    )
    def test_record_carries_meta_header(self, path):
        record = json.loads(path.read_text())
        assert "meta" in record, f"{path.name} lacks the shared meta header"
        meta = record["meta"]
        missing = REQUIRED_META_KEYS - meta.keys()
        assert not missing, f"{path.name} meta missing keys: {sorted(missing)}"
        assert meta["schema_version"] == 1
        assert isinstance(meta["seed"], int)
        # Beyond the header there must be at least one payload section.
        assert len(record) > 1, f"{path.name} has a header but no payload"


class TestScenarioRecord:
    """BENCH_scenarios.json must cover the registered preset matrix."""

    @pytest.fixture()
    def record(self):
        path = REPO_ROOT / "BENCH_scenarios.json"
        assert path.exists(), "BENCH_scenarios.json missing from repo root"
        return json.loads(path.read_text())

    def test_smoke_section_shape(self, record):
        assert "smoke" in record, "scenario record lacks a smoke section"
        smoke = record["smoke"]
        assert smoke["digest_deterministic"] is True
        for name, report in smoke["scenarios"].items():
            assert report["digest"], f"{name} stored without a digest"
            assert "accuracy" in report and "latency_ms" in report

    def test_matrix_lists_every_registered_preset(self, record):
        from repro.forum.scenarios import list_scenarios

        assert "matrix" in record, "scenario record lacks the full matrix"
        assert record["matrix"]["presets"] == sorted(list_scenarios())
        assert set(record["matrix"]["scenarios"]) == set(list_scenarios())


class TestBenchWriters:
    @pytest.mark.parametrize(
        "path", bench_modules(), ids=lambda p: p.name
    )
    def test_writers_route_through_meta(self, path):
        source = path.read_text()
        if "BENCH_" not in source:
            return  # module measures without persisting a record
        assert re.search(
            r"from _meta import .*\b(write_bench|record_bench)\b", source
        ), f"{path.name} writes a BENCH record without the _meta writers"
        assert "json.dump" not in source and ".write_text(" not in source, (
            f"{path.name} serialises a BENCH record by hand; route it "
            "through benchmarks/_meta.py instead"
        )
