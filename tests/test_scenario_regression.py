"""Golden-replay and differential regression tests for the scenario matrix.

Two layers of protection for the full serving stack:

* **Golden replays** — every preset is replayed once at a pinned
  (seed, scale) through the guarded loop with its own fault plan; the
  sha256 digest of every routing decision and degradation record must
  match ``tests/golden/scenario_digests.json``.  Any behavioural drift
  anywhere in the stack (generation, distortion, featurization, refit
  scheduling, ranking, LP routing, guard decisions) changes a digest.
  Regenerate deliberately with ``REPRO_REGEN_GOLDEN=1 pytest
  tests/test_scenario_regression.py`` and commit the diff.

* **Differential replays** — on a clean stream (no fault plan) the
  hardened path must be bit-identical to the plain path for every
  preset, and the 2-shard inline engine must be bit-identical to the
  single-process engine.  This is the guarded==plain contract of
  :mod:`repro.core.online` extended across every scenario regime.
"""

import json
import os
from dataclasses import replace
from pathlib import Path

import pytest

from repro.core import OnlineRecommendationLoop, ResilienceConfig
from repro.forum.scenarios import build_scenario, list_scenarios, scenario_digest
from repro.forum.scenarios.runner import SCENARIO_ONLINE, SCENARIO_PREDICTOR

GOLDEN_PATH = Path(__file__).resolve().parent / "golden" / "scenario_digests.json"
REGEN = os.environ.get("REPRO_REGEN_GOLDEN") == "1"

SEED = 11
SCALE = 0.3
ALL_PRESETS = list_scenarios()


def replay(dataset, fault_plan=None, *, guarded=True, shards=1):
    online = SCENARIO_ONLINE
    if shards != 1:
        online = replace(online, serving_shards=shards, shard_mode="inline")
    loop = OnlineRecommendationLoop(
        SCENARIO_PREDICTOR,
        online,
        ResilienceConfig() if guarded else None,
    )
    try:
        return loop.run(dataset, fault_plan)
    finally:
        loop.core.close()


@pytest.fixture(scope="module")
def scenario_data():
    return {
        name: build_scenario(name, seed=SEED, scale=SCALE)
        for name in ALL_PRESETS
    }


@pytest.fixture(scope="module")
def pinned_digests(scenario_data):
    """Digest of each preset's guarded replay under its own fault plan."""
    digests = {}
    for name, data in scenario_data.items():
        report = replay(data.dataset, data.preset.fault_plan)
        digests[name] = scenario_digest(report)
    return digests


class TestGoldenReplays:
    def test_golden_file_exists(self):
        if REGEN:
            pytest.skip("regenerating golden digests")
        assert GOLDEN_PATH.exists(), (
            "tests/golden/scenario_digests.json missing; generate it with "
            "REPRO_REGEN_GOLDEN=1 pytest tests/test_scenario_regression.py"
        )

    def test_digests_match_golden(self, pinned_digests):
        if REGEN:
            GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
            GOLDEN_PATH.write_text(
                json.dumps(
                    {"seed": SEED, "scale": SCALE, "digests": pinned_digests},
                    indent=1,
                    sort_keys=True,
                )
                + "\n"
            )
        golden = json.loads(GOLDEN_PATH.read_text())
        assert golden["seed"] == SEED and golden["scale"] == SCALE
        assert golden["digests"] == pinned_digests, (
            "scenario replay drifted from the committed golden digests; if "
            "the change is intentional, regenerate with REPRO_REGEN_GOLDEN=1 "
            "and commit the new digests"
        )

    def test_every_preset_is_pinned(self, pinned_digests):
        golden = json.loads(GOLDEN_PATH.read_text())
        assert sorted(golden["digests"]) == sorted(ALL_PRESETS)
        # Distinct regimes must not collapse onto one digest.
        assert len(set(pinned_digests.values())) == len(pinned_digests)


def assert_reports_identical(plain, other):
    assert plain.n_questions_seen == other.n_questions_seen
    assert plain.n_routed == other.n_routed
    assert plain.n_refits == other.n_refits
    assert len(plain.rankings) == len(other.rankings)
    for (ranked_a, actual_a), (ranked_b, actual_b) in zip(
        plain.rankings, other.rankings
    ):
        assert ranked_a == ranked_b
        assert actual_a == actual_b
    assert plain.routed_scores == other.routed_scores


class TestDifferentialReplays:
    """Guarded-no-faults == plain, at 1 and 2 shards, on every preset."""

    @pytest.mark.parametrize("name", ALL_PRESETS)
    def test_guarded_equals_plain(self, scenario_data, name):
        dataset = scenario_data[name].dataset
        plain = replay(dataset, guarded=False)
        guarded = replay(dataset, guarded=True)
        assert_reports_identical(plain, guarded)
        assert guarded.degradation is not None
        assert guarded.degradation.ok, (
            f"{name}: clean scenario stream triggered guard actions "
            f"{guarded.degradation.summary()}"
        )

    @pytest.mark.parametrize("name", ALL_PRESETS)
    def test_two_shards_bit_identical(self, scenario_data, name):
        dataset = scenario_data[name].dataset
        plain = replay(dataset, guarded=False, shards=1)
        sharded = replay(dataset, guarded=True, shards=2)
        assert_reports_identical(plain, sharded)
        assert sharded.degradation is not None and sharded.degradation.ok
