"""Tests for repro.graphs.centrality — cross-checked against networkx."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.centrality import betweenness_centrality, closeness_centrality
from repro.graphs.graph import UndirectedGraph


def to_nx(graph):
    g = nx.Graph()
    g.add_nodes_from(graph.nodes())
    g.add_edges_from(graph.edges())
    return g


def random_graph(n, p, seed):
    rng = np.random.default_rng(seed)
    g = UndirectedGraph()
    for i in range(n):
        g.add_node(i)
    for i in range(n):
        for j in range(i + 1, n):
            if rng.uniform() < p:
                g.add_edge(i, j)
    return g


class TestCloseness:
    def test_star_center(self):
        g = UndirectedGraph()
        for leaf in range(1, 5):
            g.add_edge(0, leaf)
        c = closeness_centrality(g)
        assert c[0] == pytest.approx(1.0)  # distance 1 to all 4 leaves
        assert c[1] == pytest.approx(4 / 7)  # 1 + 2*3 = 7

    def test_isolated_node_zero(self):
        g = UndirectedGraph()
        g.add_node("solo")
        g.add_edge("a", "b")
        assert closeness_centrality(g)["solo"] == 0.0

    def test_disconnected_uses_reachable_only(self):
        # Paper footnote 5: unreachable pairs removed from the sum.
        g = UndirectedGraph()
        g.add_edge(1, 2)
        g.add_edge(3, 4)
        c = closeness_centrality(g)
        # (n-1)/sum(dist to reachable) = 3/1.
        assert c[1] == pytest.approx(3.0)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(2, 15), st.floats(0.2, 0.9), st.integers(0, 100))
    def test_matches_networkx_on_connected(self, n, p, seed):
        g = random_graph(n, p, seed)
        if len(g.connected_components()) != 1:
            return  # networkx normalizes differently on disconnected graphs
        ours = closeness_centrality(g)
        theirs = nx.closeness_centrality(to_nx(g))
        for node in g.nodes():
            assert ours[node] == pytest.approx(theirs[node], abs=1e-10)


class TestBetweenness:
    def test_path_middle_node(self):
        g = UndirectedGraph()
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        b = betweenness_centrality(g)
        assert b[1] == pytest.approx(1.0)  # on the single (0,2) path
        assert b[0] == 0.0 and b[2] == 0.0

    def test_star_center(self):
        g = UndirectedGraph()
        for leaf in range(1, 5):
            g.add_edge(0, leaf)
        b = betweenness_centrality(g)
        assert b[0] == pytest.approx(6.0)  # C(4,2) leaf pairs
        for leaf in range(1, 5):
            assert b[leaf] == 0.0

    def test_split_paths_half_credit(self):
        # Diamond: 0-1-3 and 0-2-3 are the two shortest 0->3 paths.
        g = UndirectedGraph()
        g.add_edges([(0, 1), (0, 2), (1, 3), (2, 3)])
        b = betweenness_centrality(g)
        assert b[1] == pytest.approx(0.5)
        assert b[2] == pytest.approx(0.5)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(2, 15), st.floats(0.1, 0.9), st.integers(0, 100))
    def test_matches_networkx(self, n, p, seed):
        g = random_graph(n, p, seed)
        ours = betweenness_centrality(g)
        theirs = nx.betweenness_centrality(to_nx(g), normalized=False)
        for node in g.nodes():
            assert ours[node] == pytest.approx(theirs[node], abs=1e-9)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(3, 12), st.floats(0.2, 0.9), st.integers(0, 50))
    def test_normalized_matches_networkx(self, n, p, seed):
        g = random_graph(n, p, seed)
        ours = betweenness_centrality(g, normalized=True)
        theirs = nx.betweenness_centrality(to_nx(g), normalized=True)
        for node in g.nodes():
            assert ours[node] == pytest.approx(theirs[node], abs=1e-9)
