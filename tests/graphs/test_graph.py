"""Tests for repro.graphs.graph."""

import pytest

from repro.graphs.graph import UndirectedGraph


def path_graph(n):
    g = UndirectedGraph()
    for i in range(n - 1):
        g.add_edge(i, i + 1)
    return g


class TestConstruction:
    def test_add_edge_creates_nodes(self):
        g = UndirectedGraph()
        g.add_edge("a", "b")
        assert "a" in g and "b" in g
        assert g.num_edges == 1

    def test_self_loop_ignored(self):
        g = UndirectedGraph()
        g.add_edge("a", "a")
        assert g.num_edges == 0
        # Node is not created either since the edge was rejected outright.

    def test_duplicate_edge_idempotent(self):
        g = UndirectedGraph()
        g.add_edge(1, 2)
        g.add_edge(2, 1)
        assert g.num_edges == 1

    def test_add_isolated_node(self):
        g = UndirectedGraph()
        g.add_node("x")
        assert g.num_nodes == 1
        assert g.degree("x") == 0

    def test_add_edges_bulk(self):
        g = UndirectedGraph()
        g.add_edges([(1, 2), (2, 3)])
        assert g.num_edges == 2


class TestQueries:
    def test_symmetry(self):
        g = UndirectedGraph()
        g.add_edge("u", "v")
        assert g.has_edge("u", "v") and g.has_edge("v", "u")
        assert "v" in g.neighbors("u")
        assert "u" in g.neighbors("v")

    def test_edges_iterated_once(self):
        g = path_graph(4)
        edges = list(g.edges())
        assert len(edges) == 3
        normalized = {frozenset(e) for e in edges}
        assert len(normalized) == 3

    def test_average_degree(self):
        g = path_graph(3)  # degrees 1, 2, 1
        assert g.average_degree() == pytest.approx(4 / 3)

    def test_average_degree_empty(self):
        assert UndirectedGraph().average_degree() == 0.0

    def test_unknown_node_raises(self):
        with pytest.raises(KeyError):
            UndirectedGraph().neighbors("missing")


class TestTraversal:
    def test_bfs_distances_path(self):
        g = path_graph(5)
        dist = g.bfs_distances(0)
        assert dist == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_bfs_unreachable_excluded(self):
        g = UndirectedGraph()
        g.add_edge(1, 2)
        g.add_node(3)
        assert 3 not in g.bfs_distances(1)

    def test_bfs_unknown_source_raises(self):
        with pytest.raises(KeyError):
            path_graph(3).bfs_distances(99)

    def test_connected_components_sorted_by_size(self):
        g = UndirectedGraph()
        g.add_edges([(1, 2), (2, 3)])
        g.add_edge("a", "b")
        g.add_node("solo")
        comps = g.connected_components()
        assert [len(c) for c in comps] == [3, 2, 1]
        assert comps[0] == {1, 2, 3}

    def test_subgraph_induced(self):
        g = UndirectedGraph()
        g.add_edges([(1, 2), (2, 3), (1, 3)])
        sub = g.subgraph([1, 2])
        assert sub.num_nodes == 2
        assert sub.num_edges == 1
        assert not sub.has_edge(1, 3)

    def test_subgraph_with_absent_nodes(self):
        g = path_graph(3)
        sub = g.subgraph([0, 99])
        assert sub.num_nodes == 1
