"""Tests for repro.graphs.builders."""

import pytest

from repro.graphs.builders import build_dense_graph, build_qa_graph

# Thread participant tuples: (asker, [answerers])
THREADS = [
    ("alice", ["bob", "carol"]),
    ("bob", ["dave"]),
    ("eve", []),  # unanswered thread: asker still becomes a node
]


class TestQAGraph:
    def test_asker_answerer_links(self):
        g = build_qa_graph(THREADS)
        assert g.has_edge("alice", "bob")
        assert g.has_edge("alice", "carol")
        assert g.has_edge("bob", "dave")

    def test_no_answerer_answerer_links(self):
        g = build_qa_graph(THREADS)
        assert not g.has_edge("bob", "carol")

    def test_asker_without_answers_is_isolated(self):
        g = build_qa_graph(THREADS)
        assert "eve" in g
        assert g.degree("eve") == 0

    def test_symmetric(self):
        g = build_qa_graph(THREADS)
        for u, v in g.edges():
            assert g.has_edge(v, u)

    def test_self_answer_ignored(self):
        g = build_qa_graph([("u", ["u"])])
        assert g.num_edges == 0


class TestDenseGraph:
    def test_includes_qa_links(self):
        g = build_dense_graph(THREADS)
        assert g.has_edge("alice", "bob")
        assert g.has_edge("alice", "carol")

    def test_answerers_linked_to_each_other(self):
        g = build_dense_graph(THREADS)
        assert g.has_edge("bob", "carol")

    def test_dense_is_superset_of_qa(self):
        qa = build_qa_graph(THREADS)
        dense = build_dense_graph(THREADS)
        for u, v in qa.edges():
            assert dense.has_edge(u, v)
        assert dense.num_edges >= qa.num_edges

    def test_average_degree_higher_or_equal(self):
        # Paper Sec. III-A: 2.6 in G_QA rises to 3.7 in G_D.
        qa = build_qa_graph(THREADS)
        dense = build_dense_graph(THREADS)
        assert dense.average_degree() >= qa.average_degree()

    def test_duplicate_answerers_deduplicated(self):
        g = build_dense_graph([("a", ["b", "b", "c"])])
        assert g.num_edges == 3  # a-b, a-c, b-c
