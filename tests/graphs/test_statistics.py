"""Tests for repro.graphs.statistics — cross-checked against networkx."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.graph import UndirectedGraph
from repro.graphs.statistics import (
    average_clustering,
    degree_assortativity,
    degree_histogram,
    local_clustering,
)


def random_graph(n, p, seed):
    rng = np.random.default_rng(seed)
    g = UndirectedGraph()
    nxg = nx.Graph()
    for i in range(n):
        g.add_node(i)
        nxg.add_node(i)
    for i in range(n):
        for j in range(i + 1, n):
            if rng.uniform() < p:
                g.add_edge(i, j)
                nxg.add_edge(i, j)
    return g, nxg


def triangle_with_tail():
    g = UndirectedGraph()
    g.add_edges([(0, 1), (1, 2), (0, 2), (2, 3)])
    return g


class TestDegreeHistogram:
    def test_triangle_tail(self):
        hist = degree_histogram(triangle_with_tail())
        # Degrees: 2, 2, 3, 1.
        np.testing.assert_array_equal(hist, [0, 1, 2, 1])

    def test_empty(self):
        np.testing.assert_array_equal(degree_histogram(UndirectedGraph()), [0])

    def test_sums_to_node_count(self):
        g, _ = random_graph(20, 0.3, 0)
        assert degree_histogram(g).sum() == g.num_nodes


class TestClustering:
    def test_triangle_values(self):
        g = triangle_with_tail()
        assert local_clustering(g, 0) == 1.0  # both neighbors linked
        assert local_clustering(g, 2) == pytest.approx(1 / 3)
        assert local_clustering(g, 3) == 0.0  # degree 1

    @settings(max_examples=20, deadline=None)
    @given(st.integers(3, 15), st.floats(0.2, 0.9), st.integers(0, 100))
    def test_matches_networkx(self, n, p, seed):
        g, nxg = random_graph(n, p, seed)
        ours = {v: local_clustering(g, v) for v in g.nodes()}
        theirs = nx.clustering(nxg)
        for node in g.nodes():
            assert ours[node] == pytest.approx(theirs[node], abs=1e-12)
        assert average_clustering(g) == pytest.approx(
            nx.average_clustering(nxg), abs=1e-12
        )

    def test_empty_graph(self):
        assert average_clustering(UndirectedGraph()) == 0.0


class TestAssortativity:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(4, 15), st.floats(0.2, 0.8), st.integers(0, 100))
    def test_matches_networkx(self, n, p, seed):
        g, nxg = random_graph(n, p, seed)
        if g.num_edges < 2:
            return
        ours = degree_assortativity(g)
        theirs = nx.degree_assortativity_coefficient(nxg)
        if np.isnan(theirs):
            # Constant degree over edge endpoints: networkx yields nan,
            # we define the correlation as 0.
            assert ours == 0.0
            return
        assert ours == pytest.approx(theirs, abs=1e-9)

    def test_star_is_disassortative(self):
        g = UndirectedGraph()
        for leaf in range(1, 6):
            g.add_edge(0, leaf)
        assert degree_assortativity(g) < 0.0

    def test_no_edges_zero(self):
        g = UndirectedGraph()
        g.add_node(1)
        assert degree_assortativity(g) == 0.0
