"""Tests for repro.graphs.link_metrics — cross-checked against networkx."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.graph import UndirectedGraph
from repro.graphs.link_metrics import (
    common_neighbors,
    jaccard_coefficient,
    resource_allocation_index,
)


def triangle_plus_tail():
    g = UndirectedGraph()
    g.add_edges([("a", "b"), ("b", "c"), ("a", "c"), ("c", "d")])
    return g


class TestResourceAllocation:
    def test_known_value(self):
        g = triangle_plus_tail()
        # Common neighbor of a and b is c with degree 3.
        assert resource_allocation_index(g, "a", "b") == pytest.approx(1 / 3)

    def test_no_common_neighbors_zero(self):
        g = triangle_plus_tail()
        assert resource_allocation_index(g, "a", "d") == pytest.approx(
            1 / 3
        )  # common neighbor c
        g2 = UndirectedGraph()
        g2.add_edge(1, 2)
        g2.add_edge(3, 4)
        assert resource_allocation_index(g2, 1, 3) == 0.0

    def test_absent_node_zero(self):
        g = triangle_plus_tail()
        assert resource_allocation_index(g, "a", "zz") == 0.0

    @settings(max_examples=20, deadline=None)
    @given(st.integers(3, 12), st.floats(0.2, 0.9), st.integers(0, 100))
    def test_matches_networkx(self, n, p, seed):
        rng = np.random.default_rng(seed)
        g = UndirectedGraph()
        nxg = nx.Graph()
        for i in range(n):
            g.add_node(i)
            nxg.add_node(i)
        for i in range(n):
            for j in range(i + 1, n):
                if rng.uniform() < p:
                    g.add_edge(i, j)
                    nxg.add_edge(i, j)
        pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
        expected = {(u, v): r for u, v, r in nx.resource_allocation_index(nxg, pairs)}
        for (u, v), r in expected.items():
            assert resource_allocation_index(g, u, v) == pytest.approx(r)


class TestCommonNeighborsAndJaccard:
    def test_common_neighbors(self):
        g = triangle_plus_tail()
        assert common_neighbors(g, "a", "b") == 1
        assert common_neighbors(g, "b", "d") == 1  # via c
        assert common_neighbors(g, "a", "missing") == 0

    def test_jaccard(self):
        g = triangle_plus_tail()
        # Gamma_a = {b, c}, Gamma_b = {a, c}: intersection {c}, union {a,b,c}.
        assert jaccard_coefficient(g, "a", "b") == pytest.approx(1 / 3)

    def test_jaccard_isolated_zero(self):
        g = UndirectedGraph()
        g.add_node(1)
        g.add_node(2)
        assert jaccard_coefficient(g, 1, 2) == 0.0
