"""The paper's proposed A/B test, run in simulation (Sec. VI future work).

Trains the recommender on historical threads, then runs a randomized
experiment over the final days: treatment questions are routed through
the Sec.-V LP (with the recommended user's counterfactual answer drawn
from the forum simulator's ground truth), control questions keep their
organic outcomes.  Reports the comparison the paper proposes: net votes
and response times, treatment vs. control.

Run with:  python examples/ab_testing.py
"""

import numpy as np

from repro.core import (
    ABTestConfig,
    ABTestSimulator,
    ForumPredictor,
    PredictorConfig,
    QuestionRouter,
)
from repro.forum import ForumConfig, generate_forum


def main() -> None:
    forum = generate_forum(
        ForumConfig(n_users=600, n_questions=800, activity_tail=1.4), seed=3
    )
    dataset, _ = forum.dataset.preprocess()
    split = dataset.duration_hours - 96.0
    history = dataset.threads_in_window(0.0, split)
    test_window = dataset.threads_in_window(split, dataset.duration_hours + 1)
    print(
        f"history: {len(history)} questions | experiment window: "
        f"{len(test_window)} questions"
    )

    config = PredictorConfig(
        vote_epochs=120, timing_epochs=120, betweenness_sample_size=150
    )
    predictor = ForumPredictor(config).fit(history)
    router = QuestionRouter(predictor, epsilon=0.3, default_capacity=5.0)
    candidates = sorted(history.answerers)

    # Note the deck is stacked against the treatment on *time*: the
    # control outcome is the organically FIRST answer — the minimum
    # delay over every responder — while treatment gets one routed
    # user's answer.  The asker-set lambda knob trades quality against
    # that handicap, exactly as Sec. V intends.
    print(f"\n{'lambda':>7s} {'n routed':>9s} {'vote lift':>10s} {'time saving (h)':>16s}")
    for tradeoff in (0.0, 0.5, 5.0):
        lifts, savings, routed = [], [], 0
        for seed in range(4):
            simulator = ABTestSimulator(
                forum,
                router,
                candidates=candidates,
                config=ABTestConfig(
                    acceptance_rate=0.9, tradeoff=tradeoff, seed=seed
                ),
            )
            result = simulator.run(test_window)
            lifts.append(result.vote_lift)
            savings.append(result.response_time_reduction)
            routed += result.n_routed
        print(
            f"{tradeoff:7.1f} {routed:9d} {np.mean(lifts):+10.3f} "
            f"{np.mean(savings):+16.3f}"
        )


if __name__ == "__main__":
    main()
