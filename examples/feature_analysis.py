"""Descriptive analytics and feature inspection (paper Sec. III, Fig. 4).

Prints the dataset summary, SLN graph statistics, the votes-vs-timing
correlation, and the answer-model coefficients per feature — a compact
text version of the paper's exploratory figures.

Run with:  python examples/feature_analysis.py
"""

import numpy as np

from repro.core import (
    AnswerModel,
    PredictorConfig,
    build_extractor,
    build_pair_dataset,
)
from repro.forum import ForumConfig, generate_forum
from repro.forum.stats import (
    median_response_time_by_activity,
    summarize_dataset,
    summarize_graphs,
    vote_time_correlation,
)


def main() -> None:
    forum = generate_forum(
        ForumConfig(n_users=500, n_questions=650, activity_tail=1.4), seed=2
    )
    dataset, _ = forum.dataset.preprocess()

    summary = summarize_dataset(dataset)
    print("dataset summary (paper Sec. III-A)")
    print(f"  questions: {summary.n_questions}")
    print(f"  answers:   {summary.n_answers}")
    print(f"  users:     {summary.n_users} ({summary.n_answerers} answerers)")
    print(f"  answer-matrix density: {100 * summary.answer_matrix_density:.3f}%")

    print("\nSLN graphs (paper Fig. 2)")
    for name, g in summarize_graphs(dataset).items():
        print(
            f"  {name:5s}: {g.n_nodes} nodes, {g.n_edges} edges, "
            f"avg degree {g.average_degree:.2f}, {g.n_components} components"
        )

    corr = vote_time_correlation(dataset)
    print("\nvotes vs response time (paper Fig. 3)")
    print(f"  pearson {corr['pearson']:+.4f}, spearman {corr['spearman']:+.4f}")

    print("\nmedian response time by activity (paper Fig. 4b)")
    for threshold, values in median_response_time_by_activity(dataset).items():
        if len(values):
            print(
                f"  a_u >= {threshold}: median of medians "
                f"{np.median(values):6.2f} h over {len(values)} users"
            )

    # Feature weights of the (linear) answer model, per standardized column.
    config = PredictorConfig(betweenness_sample_size=150)
    extractor = build_extractor(dataset, config)
    pairs = build_pair_dataset(dataset, extractor, seed=0)
    model = AnswerModel().fit(pairs.x, pairs.is_event)
    names = extractor.spec.column_names()
    order = np.argsort(-np.abs(model.coefficients))
    print("\ntop-10 answer-model coefficients (standardized features)")
    for j in order[:10]:
        print(f"  {names[j]:36s} {model.coefficients[j]:+.3f}")


if __name__ == "__main__":
    main()
