"""Question routing (paper Sec. V): recommend answerers for new questions.

Trains the predictors on the first 29 days of the forum, then replays
the final day's new questions through the recommendation LP, comparing
the router's picks against random eligible routing on predicted quality
and latency.

Run with:  python examples/question_routing.py
"""

import numpy as np

from repro.core import ForumPredictor, PredictorConfig, QuestionRouter
from repro.forum import ForumConfig, generate_forum


def main() -> None:
    forum = generate_forum(
        ForumConfig(n_users=600, n_questions=800, activity_tail=1.4), seed=1
    )
    dataset, _ = forum.dataset.preprocess()
    split = dataset.duration_hours - 24.0
    history = dataset.threads_in_window(0.0, split)
    final_day = dataset.threads_in_window(split, dataset.duration_hours + 1)
    print(
        f"history: {len(history)} questions | final day: {len(final_day)} questions"
    )

    config = PredictorConfig(
        vote_epochs=120, timing_epochs=120, betweenness_sample_size=150
    )
    predictor = ForumPredictor(config).fit(history)
    router = QuestionRouter(predictor, epsilon=0.3, default_capacity=3.0)
    candidates = sorted(history.answerers)
    load = router.recent_load(history, split)
    rng = np.random.default_rng(0)

    routed, random_scores, routed_scores = 0, [], []
    print(f"\n{'question':>9s} {'routed user':>12s} {'p':>6s} {'v_hat':>7s} {'r_hat':>7s}")
    for thread in final_day.threads[:25]:
        result = router.recommend(
            thread, candidates, tradeoff=0.2, recent_load=load
        )
        if result is None:
            continue
        routed += 1
        user, prob = result.ranked_users()[0]
        idx = int(np.flatnonzero(result.users == user)[0])
        print(
            f"{thread.thread_id:9d} {user:12d} {prob:6.2f} "
            f"{result.predictions['votes'][idx]:7.2f} "
            f"{result.predictions['response_time'][idx]:7.2f}"
        )
        routed_scores.append(result.scores[idx])
        random_scores.append(float(rng.choice(result.scores)))

    print(f"\nrouted {routed} questions")
    print(
        f"mean objective (v_hat - lambda r_hat): routed {np.mean(routed_scores):.3f}"
        f" vs random eligible {np.mean(random_scores):.3f}"
    )


if __name__ == "__main__":
    main()
