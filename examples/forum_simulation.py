"""Exploring the synthetic forum generator and its calibration targets.

The generator substitutes for the paper's Stack Exchange dump; this
example sweeps its knobs and prints the statistics the substitution is
calibrated against (paper Sec. III), so you can see how each knob moves
the dataset shape.

Run with:  python examples/forum_simulation.py
"""

import numpy as np

from repro.forum import ForumConfig, generate_forum
from repro.forum.stats import summarize_dataset, vote_time_correlation
from repro.topics.tokenizer import split_text_and_code


def describe(config: ForumConfig, seed: int = 0) -> None:
    forum = generate_forum(config, seed=seed)
    dataset, _ = forum.dataset.preprocess()
    summary = summarize_dataset(dataset)
    counts = np.array(list(dataset.answers_per_user().values()))
    corr = vote_time_correlation(dataset)
    lengths = [
        split_text_and_code(t.question.body).word_length
        for t in dataset.threads[:300]
    ]
    records = dataset.answer_records()
    times = np.array([r.response_time for r in records])
    votes = np.array([r.votes for r in records])
    print(
        f"  questions={summary.n_questions} answers={summary.n_answers} "
        f"users={summary.n_users}"
    )
    print(
        f"  density={100 * summary.answer_matrix_density:.3f}%  "
        f"P(a_u>=2)={np.mean(counts >= 2):.2f}  max a_u={counts.max()}"
    )
    print(
        f"  median delay={np.median(times):.2f}h  "
        f"median |votes|={np.median(np.abs(votes)):.0f}  "
        f"vote-time corr={corr['pearson']:+.3f}"
    )
    print(f"  median question words={np.median(lengths):.0f} chars")


def main() -> None:
    print("default configuration (calibrated to paper Sec. III):")
    describe(ForumConfig(n_users=600, n_questions=800))

    print("\nheavier activity tail (more Stack Overflow-like power users):")
    describe(ForumConfig(n_users=600, n_questions=800, activity_tail=1.8))

    print("\nmore answers per question:")
    describe(
        ForumConfig(n_users=600, n_questions=800, mean_extra_answers=1.5)
    )

    print("\nmostly unanswered forum (cold community):")
    describe(
        ForumConfig(n_users=600, n_questions=800, unanswered_fraction=0.7)
    )


if __name__ == "__main__":
    main()
