"""Online deployment replay: strictly-causal routing over a live stream.

Simulates the paper's proposed deployment (Sec. VI): models are refit
periodically on a sliding window of past threads, every arriving
question is ranked and routed while still unanswered, and the rankings
are scored afterwards against the users who actually answered.

Run with:  python examples/online_deployment.py
"""

import numpy as np

from repro.core import (
    OnlineConfig,
    OnlineRecommendationLoop,
    PredictorConfig,
)
from repro.forum import ForumConfig, generate_forum


def main() -> None:
    forum = generate_forum(
        ForumConfig(n_users=500, n_questions=700, activity_tail=1.4), seed=4
    )
    dataset, _ = forum.dataset.preprocess()
    print(f"streaming {len(dataset)} questions over 30 days")

    loop = OnlineRecommendationLoop(
        PredictorConfig(
            vote_epochs=100, timing_epochs=100, betweenness_sample_size=150
        ),
        OnlineConfig(
            refit_interval_hours=168.0,  # weekly refits
            window_hours=336.0,  # two-week training window
            warmup_hours=168.0,
            epsilon=0.25,
        ),
    )
    report = loop.run(dataset)

    pool = len(dataset.answerers)
    mean_relevant = float(np.mean([len(a) for _, a in report.rankings]))
    print(f"\nquestions seen after warmup: {report.n_questions_seen}")
    print(f"routed: {report.n_routed} | model refits: {report.n_refits}")
    print("\nwho-will-answer ranking vs. reality:")
    print(f"  hit@1:  {report.hit_rate_at_1:.3f}")
    print(f"  P@5:    {report.precision_at(5):.3f} "
          f"(chance {mean_relevant / pool:.3f})")
    print(f"  MRR:    {report.mrr:.3f}")
    print(f"  NDCG@5: {report.ndcg_at(5):.3f}")
    print(f"\nmean LP objective of routed picks: "
          f"{np.mean(report.routed_scores):+.3f}")


if __name__ == "__main__":
    main()
