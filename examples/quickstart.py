"""Quickstart: generate a forum, train the predictors, make predictions.

Run with:  python examples/quickstart.py
"""

from repro.core import ForumPredictor, PredictorConfig
from repro.forum import ForumConfig, generate_forum


def main() -> None:
    # 1. Generate a synthetic Stack Overflow-like forum (the offline
    #    substitute for the paper's Stack Exchange API dump) and apply
    #    the paper's Sec. III-A preprocessing.
    forum = generate_forum(ForumConfig(n_users=400, n_questions=500), seed=0)
    dataset, report = forum.dataset.preprocess()
    print(
        f"dataset: {len(dataset)} questions, {dataset.num_answers} answers, "
        f"{len(dataset.users)} users"
    )
    print(
        f"preprocessing removed {report.questions_dropped_unanswered} "
        f"unanswered questions, {report.duplicate_answers_removed} duplicate "
        f"answers, {report.zero_delay_answers_removed} zero-delay answers"
    )

    # 2. Train the three predictors (topics, graphs and the 20 features
    #    are built internally).
    config = PredictorConfig(
        n_topics=8,
        vote_epochs=120,
        timing_epochs=120,
        betweenness_sample_size=150,
    )
    predictor = ForumPredictor(config).fit(dataset)
    print("trained answer, vote and timing models")

    # 3. Predict all three quantities for candidate answerers of the
    #    newest question.
    thread = dataset.threads[-1]
    candidates = sorted(dataset.answerers)[:8]
    print(f"\npredictions for question {thread.thread_id}:")
    print(f"{'user':>8s} {'P(answer)':>10s} {'votes':>7s} {'hours':>7s}")
    for user in candidates:
        pred = predictor.predict(user, thread)
        print(
            f"{user:8d} {pred.answer_probability:10.3f} "
            f"{pred.votes:7.2f} {pred.response_time:7.2f}"
        )


if __name__ == "__main__":
    main()
