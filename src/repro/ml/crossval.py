"""Cross-validation splitters.

The paper's protocol (Sec. IV-A): 5-fold stratified cross validation where
each *user's* answers are allocated uniformly across folds (stratified by
user), repeated 5 times for 25 iterations total.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Hashable, Iterator, Sequence

import numpy as np

__all__ = ["kfold_indices", "stratified_kfold_indices", "train_test_split_indices"]


def kfold_indices(
    n: int, n_folds: int, seed: int | np.random.Generator = 0
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield ``(train_idx, test_idx)`` for plain shuffled k-fold CV."""
    if n_folds < 2:
        raise ValueError("n_folds must be >= 2")
    if n < n_folds:
        raise ValueError("need at least one sample per fold")
    rng = (
        seed
        if isinstance(seed, np.random.Generator)
        else np.random.default_rng(seed)
    )
    order = rng.permutation(n)
    folds = np.array_split(order, n_folds)
    for k in range(n_folds):
        test = np.sort(folds[k])
        train = np.sort(np.concatenate([folds[j] for j in range(n_folds) if j != k]))
        yield train, test


def stratified_kfold_indices(
    groups: Sequence[Hashable],
    n_folds: int,
    seed: int | np.random.Generator = 0,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Stratified k-fold: each group's samples spread uniformly over folds.

    ``groups[i]`` is the stratification key of sample ``i`` (the paper uses
    the answering user, so heavy answerers appear in every fold).  Groups
    with fewer samples than folds are placed on a rotating fold offset so
    that rare users still land in test sets overall.
    """
    if n_folds < 2:
        raise ValueError("n_folds must be >= 2")
    rng = (
        seed
        if isinstance(seed, np.random.Generator)
        else np.random.default_rng(seed)
    )
    by_group: dict[Hashable, list[int]] = defaultdict(list)
    for i, g in enumerate(groups):
        by_group[g].append(i)
    fold_members: list[list[int]] = [[] for _ in range(n_folds)]
    offset = 0
    # Deterministic group order, then shuffle within each group.
    for g in sorted(by_group, key=repr):
        idx = np.array(by_group[g])
        rng.shuffle(idx)
        for j, sample in enumerate(idx):
            fold_members[(j + offset) % n_folds].append(int(sample))
        offset += 1
    for k in range(n_folds):
        test = np.sort(np.array(fold_members[k], dtype=int))
        train = np.sort(
            np.concatenate(
                [np.array(fold_members[j], dtype=int) for j in range(n_folds) if j != k]
            )
        )
        if len(test) == 0 or len(train) == 0:
            raise ValueError("a fold ended up empty; too few samples for n_folds")
        yield train, test


def train_test_split_indices(
    n: int, test_fraction: float = 0.2, seed: int | np.random.Generator = 0
) -> tuple[np.ndarray, np.ndarray]:
    """Single shuffled split; returns ``(train_idx, test_idx)``."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    rng = (
        seed
        if isinstance(seed, np.random.Generator)
        else np.random.default_rng(seed)
    )
    order = rng.permutation(n)
    n_test = max(1, int(round(n * test_fraction)))
    if n_test >= n:
        raise ValueError("test_fraction leaves no training data")
    return np.sort(order[n_test:]), np.sort(order[:n_test])
