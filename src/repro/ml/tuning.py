"""Exhaustive grid search over hyperparameter configurations.

The paper tunes K by sweeping it (Fig. 5); this utility generalizes
that pattern: give it a parameter grid and a scoring callable, get back
every configuration's score and the best one.
"""

from __future__ import annotations

import itertools
from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass

__all__ = ["GridSearchResult", "grid_search", "expand_grid"]


def expand_grid(grid: Mapping[str, Sequence]) -> list[dict]:
    """All combinations of a ``{name: [values...]}`` grid, in stable order."""
    if not grid:
        raise ValueError("grid must have at least one parameter")
    names = list(grid)
    for name in names:
        if not grid[name]:
            raise ValueError(f"parameter {name!r} has no candidate values")
    combos = itertools.product(*(grid[name] for name in names))
    return [dict(zip(names, combo)) for combo in combos]


@dataclass(frozen=True)
class GridSearchResult:
    """Scores for every configuration plus the winner."""

    scores: tuple[tuple[dict, float], ...]
    higher_is_better: bool

    @property
    def best_params(self) -> dict:
        return self.best[0]

    @property
    def best_score(self) -> float:
        return self.best[1]

    @property
    def best(self) -> tuple[dict, float]:
        key = (lambda kv: -kv[1]) if self.higher_is_better else (lambda kv: kv[1])
        return min(self.scores, key=key)

    def ranked(self) -> list[tuple[dict, float]]:
        """Configurations best-first."""
        key = (lambda kv: -kv[1]) if self.higher_is_better else (lambda kv: kv[1])
        return sorted(self.scores, key=key)


def grid_search(
    grid: Mapping[str, Sequence],
    evaluate: Callable[..., float],
    *,
    higher_is_better: bool = True,
) -> GridSearchResult:
    """Score every grid point with ``evaluate(**params)``.

    ``evaluate`` failures are not caught — a scoring error is a bug in
    the caller's harness, not a signal to skip silently.
    """
    scores = []
    for params in expand_grid(grid):
        scores.append((params, float(evaluate(**params))))
    return GridSearchResult(
        scores=tuple(scores), higher_is_better=higher_is_better
    )
