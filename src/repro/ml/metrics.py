"""Evaluation metrics used in the paper (Sec. IV-A) and supporting stats.

The paper evaluates the binary task with AUC (because of class imbalance)
and the two regression tasks with RMSE.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "auc_score",
    "rmse",
    "mae",
    "pearson_correlation",
    "spearman_correlation",
    "roc_curve",
]


def _rankdata(values: np.ndarray) -> np.ndarray:
    """Ranks starting at 1 with ties given their average rank."""
    values = np.asarray(values, dtype=float)
    order = np.argsort(values, kind="mergesort")
    ranks = np.empty(len(values), dtype=float)
    sorted_vals = values[order]
    i = 0
    while i < len(values):
        j = i
        while j + 1 < len(values) and sorted_vals[j + 1] == sorted_vals[i]:
            j += 1
        avg_rank = (i + j) / 2.0 + 1.0
        ranks[order[i : j + 1]] = avg_rank
        i = j + 1
    return ranks


def auc_score(y_true: np.ndarray, y_score: np.ndarray) -> float:
    """Area under the ROC curve via the Mann-Whitney rank statistic.

    Handles ties by average ranking.  Requires at least one positive and
    one negative sample.
    """
    y_true = np.asarray(y_true, dtype=float).ravel()
    y_score = np.asarray(y_score, dtype=float).ravel()
    if y_true.shape != y_score.shape:
        raise ValueError("y_true and y_score shapes differ")
    n_pos = int(np.sum(y_true == 1))
    n_neg = int(np.sum(y_true == 0))
    if n_pos == 0 or n_neg == 0:
        raise ValueError("AUC needs both positive and negative samples")
    if n_pos + n_neg != len(y_true):
        raise ValueError("y_true must be binary 0/1")
    ranks = _rankdata(y_score)
    pos_rank_sum = float(ranks[y_true == 1].sum())
    return (pos_rank_sum - n_pos * (n_pos + 1) / 2.0) / (n_pos * n_neg)


def roc_curve(
    y_true: np.ndarray, y_score: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """False/true positive rates at every distinct score threshold.

    Returns ``(fpr, tpr, thresholds)`` with thresholds descending.
    """
    y_true = np.asarray(y_true, dtype=float).ravel()
    y_score = np.asarray(y_score, dtype=float).ravel()
    order = np.argsort(-y_score, kind="mergesort")
    y_true = y_true[order]
    y_score = y_score[order]
    distinct = np.where(np.diff(y_score))[0]
    idx = np.r_[distinct, len(y_true) - 1]
    tps = np.cumsum(y_true)[idx]
    fps = (idx + 1) - tps
    n_pos = y_true.sum()
    n_neg = len(y_true) - n_pos
    if n_pos == 0 or n_neg == 0:
        raise ValueError("ROC needs both positive and negative samples")
    tpr = np.r_[0.0, tps / n_pos]
    fpr = np.r_[0.0, fps / n_neg]
    thresholds = np.r_[np.inf, y_score[idx]]
    return fpr, tpr, thresholds


def rmse(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Root mean squared error (paper Sec. IV-A metric for v and r)."""
    y_true = np.asarray(y_true, dtype=float).ravel()
    y_pred = np.asarray(y_pred, dtype=float).ravel()
    if y_true.shape != y_pred.shape:
        raise ValueError("shapes differ")
    if y_true.size == 0:
        raise ValueError("rmse of empty arrays is undefined")
    diff = y_true - y_pred
    return float(np.sqrt(np.mean(diff * diff)))


def mae(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Mean absolute error."""
    y_true = np.asarray(y_true, dtype=float).ravel()
    y_pred = np.asarray(y_pred, dtype=float).ravel()
    if y_true.shape != y_pred.shape:
        raise ValueError("shapes differ")
    if y_true.size == 0:
        raise ValueError("mae of empty arrays is undefined")
    return float(np.mean(np.abs(y_true - y_pred)))


def pearson_correlation(x: np.ndarray, y: np.ndarray) -> float:
    """Pearson correlation coefficient; 0.0 when either side is constant."""
    x = np.asarray(x, dtype=float).ravel()
    y = np.asarray(y, dtype=float).ravel()
    if x.shape != y.shape:
        raise ValueError("shapes differ")
    if x.size < 2:
        raise ValueError("correlation needs at least 2 points")
    xc = x - x.mean()
    yc = y - y.mean()
    denom = np.sqrt((xc * xc).sum() * (yc * yc).sum())
    if denom == 0.0:
        return 0.0
    return float((xc * yc).sum() / denom)


def spearman_correlation(x: np.ndarray, y: np.ndarray) -> float:
    """Spearman rank correlation (Pearson on average ranks)."""
    x = np.asarray(x, dtype=float).ravel()
    y = np.asarray(y, dtype=float).ravel()
    if x.shape != y.shape:
        raise ValueError("shapes differ")
    return pearson_correlation(_rankdata(x), _rankdata(y))
