"""Feature standardization."""

from __future__ import annotations

import numpy as np

__all__ = ["StandardScaler"]


class StandardScaler:
    """Standardize features to zero mean and unit variance.

    Constant features are left centered but not scaled (scale forced to 1)
    so that downstream models never see NaN/inf.

    ``clip`` bounds transformed values to ``[-clip, +clip]`` standard
    deviations — a guard against wild extrapolation when a test point
    lies far outside the training range.
    """

    def __init__(self, clip: float | None = None):
        if clip is not None and clip <= 0:
            raise ValueError("clip must be positive when given")
        self.clip = clip
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, x: np.ndarray) -> "StandardScaler":
        x = np.asarray(x, dtype=float)
        if x.ndim != 2:
            raise ValueError("x must be 2-D")
        if x.shape[0] == 0:
            raise ValueError("cannot fit scaler on empty data")
        self.mean_ = x.mean(axis=0)
        std = x.std(axis=0)
        std[std == 0.0] = 1.0
        self.scale_ = std
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("scaler is not fitted")
        x = np.asarray(x, dtype=float)
        z = (x - self.mean_) / self.scale_
        if self.clip is not None:
            z = np.clip(z, -self.clip, self.clip)
        return z

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        return self.fit(x).transform(x)

    def inverse_transform(self, x: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("scaler is not fitted")
        x = np.asarray(x, dtype=float)
        return x * self.scale_ + self.mean_
