"""Machine-learning substrate: numpy MLPs, optimizers, metrics, CV.

Everything the paper's predictors need that would otherwise come from
TensorFlow/scikit-learn, implemented from scratch on numpy.
"""

from .activations import (
    Activation,
    Identity,
    ReLU,
    Sigmoid,
    Softplus,
    Tanh,
    get_activation,
    sigmoid,
    softplus,
)
from .calibration import PlattCalibrator, brier_score, reliability_curve
from .crossval import (
    kfold_indices,
    stratified_kfold_indices,
    train_test_split_indices,
)
from .initializers import get_initializer, glorot_uniform, he_normal
from .logistic import LogisticRegression
from .losses import (
    BinaryCrossEntropy,
    Loss,
    MeanSquaredError,
    PoissonNLL,
    get_loss,
)
from .metrics import (
    auc_score,
    mae,
    pearson_correlation,
    rmse,
    roc_curve,
    spearman_correlation,
)
from .network import MLP, Dense, FitResult
from .optimizers import SGD, Adam, Optimizer, get_optimizer
from .ranking import (
    mean_reciprocal_rank,
    ndcg_at_k,
    precision_at_k,
    recall_at_k,
)
from .scaler import StandardScaler
from .significance import PairedTestResult, bootstrap_ci, paired_t_test
from .tuning import GridSearchResult, expand_grid, grid_search

__all__ = [
    "Activation",
    "Identity",
    "ReLU",
    "Sigmoid",
    "Softplus",
    "Tanh",
    "get_activation",
    "sigmoid",
    "softplus",
    "PlattCalibrator",
    "brier_score",
    "reliability_curve",
    "kfold_indices",
    "stratified_kfold_indices",
    "train_test_split_indices",
    "get_initializer",
    "glorot_uniform",
    "he_normal",
    "LogisticRegression",
    "BinaryCrossEntropy",
    "Loss",
    "MeanSquaredError",
    "PoissonNLL",
    "get_loss",
    "auc_score",
    "mae",
    "pearson_correlation",
    "rmse",
    "roc_curve",
    "spearman_correlation",
    "MLP",
    "Dense",
    "FitResult",
    "SGD",
    "Adam",
    "Optimizer",
    "get_optimizer",
    "mean_reciprocal_rank",
    "ndcg_at_k",
    "precision_at_k",
    "recall_at_k",
    "StandardScaler",
    "PairedTestResult",
    "bootstrap_ci",
    "paired_t_test",
    "GridSearchResult",
    "expand_grid",
    "grid_search",
]
