"""Fully-connected neural network with manual backpropagation.

This implements the network of paper Eq. (1): a stack of dense layers
``h_{l+1} = sigma(W_l^T h_l + b_l)``, trained with minibatch gradient
descent.  The network exposes raw ``forward``/``backward`` so that models
with custom likelihoods (the point process of Sec. II-A.3) can inject
their own output gradients, plus a convenience ``fit`` for standard
regression losses.

The training engine is fused: every parameter and gradient lives in one
flat vector (layer arrays are views into it), layers keep per-batch-size
activation/gradient buffers that forward/backward write into with
``out=`` ufuncs, and minibatches are gathered with ``np.take`` into
preallocated arrays.  One optimizer step therefore touches two arrays
instead of ``2 * n_layers``, and a training step allocates almost
nothing.  ``fit(..., fused=False)`` keeps the original allocate-per-step
loop as a reference/baseline; both paths consume randomness identically
and produce the same parameter trajectory up to floating-point
reassociation inside the optimizer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .activations import Activation, get_activation
from .initializers import get_initializer
from .losses import Loss, get_loss
from .optimizers import Optimizer, get_optimizer

__all__ = ["Dense", "MLP", "FitResult"]


class Dense:
    """A single dense layer with an activation.

    Caches the forward inputs needed for the backward pass; ``backward``
    must be called with the same batch that was last passed to ``forward``.
    With ``buffered=True`` both passes reuse preallocated per-batch-size
    buffers (pre-activation, activation output, input gradient) and write
    the weight/bias gradients into stable arrays instead of allocating.
    """

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        activation: str | Activation = "identity",
        *,
        rng: np.random.Generator,
        initializer: str | None = None,
        dtype: np.dtype | type = np.float64,
    ):
        if in_dim <= 0 or out_dim <= 0:
            raise ValueError("layer dimensions must be positive")
        self.activation = get_activation(activation)
        if initializer is None:
            initializer = (
                "he_normal" if self.activation.name == "relu" else "glorot_uniform"
            )
        init = get_initializer(initializer)
        self.dtype = np.dtype(dtype)
        self.weight = init(in_dim, out_dim, rng).astype(self.dtype, copy=False)
        self.bias = np.zeros(out_dim, dtype=self.dtype)
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)
        self._input: np.ndarray | None = None
        self._pre_activation: np.ndarray | None = None
        self._output: np.ndarray | None = None
        self._bufs: dict[int, tuple[np.ndarray, np.ndarray, np.ndarray]] = {}

    @property
    def in_dim(self) -> int:
        return self.weight.shape[0]

    @property
    def out_dim(self) -> int:
        return self.weight.shape[1]

    def _buffers(self, rows: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(pre-activation, output, input-gradient) buffers for a batch size."""
        bufs = self._bufs.get(rows)
        if bufs is None:
            bufs = (
                np.empty((rows, self.out_dim), dtype=self.dtype),
                np.empty((rows, self.out_dim), dtype=self.dtype),
                np.empty((rows, self.in_dim), dtype=self.dtype),
            )
            self._bufs[rows] = bufs
        return bufs

    def forward(self, x: np.ndarray, *, buffered: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=self.dtype)
        self._input = x
        if buffered:
            z, out, _ = self._buffers(x.shape[0])
            np.matmul(x, self.weight, out=z)
            z += self.bias
            self._pre_activation = z
            self._output = self.activation.forward(z, out=out)
        else:
            self._pre_activation = x @ self.weight + self.bias
            self._output = self.activation.forward(self._pre_activation)
        return self._output

    def backward(self, grad_out: np.ndarray, *, buffered: bool = False) -> np.ndarray:
        if self._input is None or self._pre_activation is None:
            raise RuntimeError("backward called before forward")
        if buffered:
            grad_z = self.activation.backward(
                self._pre_activation,
                grad_out,
                out=grad_out,
                cached_output=self._output,
            )
            np.matmul(self._input.T, grad_z, out=self.grad_weight)
            grad_z.sum(axis=0, out=self.grad_bias)
            grad_x = self._buffers(grad_z.shape[0])[2]
            return np.matmul(grad_z, self.weight.T, out=grad_x)
        grad_z = self.activation.backward(
            self._pre_activation, grad_out, cached_output=self._output
        )
        np.matmul(self._input.T, grad_z, out=self.grad_weight)
        grad_z.sum(axis=0, out=self.grad_bias)
        return grad_z @ self.weight.T

    def __getstate__(self):
        state = self.__dict__.copy()
        # Transient batch state never survives pickling (workers of the
        # parallel fit path receive a clean layer).
        state["_input"] = None
        state["_pre_activation"] = None
        state["_output"] = None
        state["_bufs"] = {}
        return state


@dataclass
class FitResult:
    """Training history returned by ``MLP.fit``."""

    loss_history: list[float] = field(default_factory=list)
    validation_history: list[float] = field(default_factory=list)
    best_epoch: int | None = None
    stopped_early: str | None = None  # "validation" / "train_plateau" / None

    @property
    def final_loss(self) -> float:
        return self.loss_history[-1] if self.loss_history else float("nan")


class MLP:
    """Multi-layer perceptron over 2-D inputs ``(batch, features)``.

    Parameters
    ----------
    layer_sizes:
        Sizes ``[in_dim, h1, ..., out_dim]``; at least two entries.
    hidden_activation:
        Activation for every hidden layer (paper uses ReLU for the vote
        network and tanh for the excitation network).
    output_activation:
        Activation on the final layer (paper Eq. (1) applies sigma at the
        output too; the point-process excitation uses ReLU there, and we
        default to identity for plain regression).
    dtype:
        Compute precision.  float64 (default) matches the reference
        numerics; float32 halves memory traffic for throughput-bound
        fits at the cost of ~1e-6 relative parameter drift.
    """

    def __init__(
        self,
        layer_sizes: list[int],
        *,
        hidden_activation: str | Activation = "relu",
        output_activation: str | Activation = "identity",
        seed: int | np.random.Generator = 0,
        l2: float = 0.0,
        dtype: np.dtype | type = np.float64,
    ):
        if len(layer_sizes) < 2:
            raise ValueError("layer_sizes needs at least input and output dims")
        if l2 < 0:
            raise ValueError("l2 must be non-negative")
        rng = (
            seed
            if isinstance(seed, np.random.Generator)
            else np.random.default_rng(seed)
        )
        self.l2 = l2
        self.dtype = np.dtype(dtype)
        if self.dtype.kind != "f":
            raise ValueError("dtype must be a floating-point type")
        self.layers: list[Dense] = []
        for i in range(len(layer_sizes) - 1):
            is_last = i == len(layer_sizes) - 2
            act = output_activation if is_last else hidden_activation
            self.layers.append(
                Dense(
                    layer_sizes[i],
                    layer_sizes[i + 1],
                    act,
                    rng=rng,
                    dtype=self.dtype,
                )
            )
        self._flat_params: np.ndarray | None = None
        self._flat_grads: np.ndarray | None = None
        self._flatten()

    def _flatten(self) -> None:
        """Re-home every layer's weight/bias (and gradients) as views into
        one flat parameter vector and one flat gradient vector.

        The fused optimizer step then updates two arrays regardless of
        depth, and ``backward`` writes gradients straight into the flat
        vector through the per-layer views.
        """
        total = sum(l.weight.size + l.bias.size for l in self.layers)
        flat_p = np.empty(total, dtype=self.dtype)
        flat_g = np.zeros(total, dtype=self.dtype)
        offset = 0
        for layer in self.layers:
            for name, gname in (("weight", "grad_weight"), ("bias", "grad_bias")):
                arr = getattr(layer, name)
                n = arr.size
                view = flat_p[offset : offset + n].reshape(arr.shape)
                view[...] = arr
                setattr(layer, name, view)
                gview = flat_g[offset : offset + n].reshape(arr.shape)
                gview[...] = getattr(layer, gname)
                setattr(layer, gname, gview)
                offset += n
        self._flat_params = flat_p
        self._flat_grads = flat_g

    @property
    def in_dim(self) -> int:
        return self.layers[0].in_dim

    @property
    def out_dim(self) -> int:
        return self.layers[-1].out_dim

    def forward(self, x: np.ndarray, *, buffered: bool = False) -> np.ndarray:
        out = np.asarray(x, dtype=self.dtype)
        if out.ndim != 2:
            raise ValueError("MLP input must be 2-D (batch, features)")
        for layer in self.layers:
            out = layer.forward(out, buffered=buffered)
        return out

    def backward(
        self, grad_out: np.ndarray, *, buffered: bool = False
    ) -> np.ndarray:
        """Backpropagate ``dLoss/doutput``; returns ``dLoss/dinput``.

        Layer gradients are stored on each layer and include the L2 term.
        """
        grad = np.asarray(grad_out, dtype=self.dtype)
        for layer in reversed(self.layers):
            grad = layer.backward(grad, buffered=buffered)
        if self.l2 > 0.0:
            for layer in self.layers:
                layer.grad_weight += self.l2 * layer.weight
        return grad

    def parameters(self) -> list[np.ndarray]:
        params: list[np.ndarray] = []
        for layer in self.layers:
            params.extend((layer.weight, layer.bias))
        return params

    def gradients(self) -> list[np.ndarray]:
        grads: list[np.ndarray] = []
        for layer in self.layers:
            grads.extend((layer.grad_weight, layer.grad_bias))
        return grads

    def flat_parameters(self) -> np.ndarray:
        """All parameters as one flat vector (layer arrays are views of it)."""
        return self._flat_params

    def flat_gradients(self) -> np.ndarray:
        """All gradients as one flat vector, filled by ``backward``."""
        return self._flat_grads

    def __getstate__(self):
        state = self.__dict__.copy()
        # Views do not survive pickling as views; rebuild on restore.
        state["_flat_params"] = None
        state["_flat_grads"] = None
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._flatten()

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Forward pass; squeezes a single-output network to shape (batch,)."""
        out = self.forward(np.atleast_2d(np.asarray(x, dtype=self.dtype)))
        return out[:, 0] if out.shape[1] == 1 else out

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        *,
        loss: str | Loss = "mse",
        optimizer: str | Optimizer = "adam",
        epochs: int = 200,
        batch_size: int = 32,
        seed: int = 0,
        validation_fraction: float = 0.0,
        patience: int = 20,
        train_tol: float = 0.0,
        fused: bool = True,
        verbose: bool = False,
    ) -> FitResult:
        """Train with minibatch gradient descent on a standard loss.

        With ``validation_fraction > 0`` a held-out slice is tracked
        each epoch; training stops after ``patience`` epochs without
        improvement and the best-epoch weights are restored.  With
        ``train_tol > 0`` (and no validation split) training also stops
        once the epoch training loss has not improved by at least
        ``train_tol`` for ``patience`` epochs — converged fits stop
        burning their remaining epoch budget.  ``fused=False`` selects
        the reference allocate-per-step loop (same batches, same
        randomness).
        """
        x = np.asarray(x, dtype=self.dtype)
        y = np.asarray(y, dtype=self.dtype)
        if y.ndim == 1:
            y = y[:, None]
        if x.shape[0] != y.shape[0]:
            raise ValueError("x and y batch sizes differ")
        if x.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        if not 0.0 <= validation_fraction < 1.0:
            raise ValueError("validation_fraction must be in [0, 1)")
        if train_tol < 0.0:
            raise ValueError("train_tol must be non-negative")
        loss_fn = get_loss(loss)
        opt = get_optimizer(optimizer)
        rng = np.random.default_rng(seed)
        x_val = y_val = None
        if validation_fraction > 0.0:
            n_val = max(1, int(round(x.shape[0] * validation_fraction)))
            if n_val >= x.shape[0]:
                raise ValueError("validation split leaves no training data")
            order = rng.permutation(x.shape[0])
            val_idx, train_idx = order[:n_val], order[n_val:]
            x_val, y_val = x[val_idx], y[val_idx]
            x, y = x[train_idx], y[train_idx]
        n = x.shape[0]
        result = FitResult()
        best_val = np.inf
        best_params: np.ndarray | None = None
        best_train = np.inf
        stale = 0
        train_stale = 0
        bs = min(batch_size, n)
        if fused:
            step_params = [self._flat_params]
            step_grads = [self._flat_grads]
            rem = n % bs
            xb = np.empty((bs, x.shape[1]), dtype=self.dtype)
            yb = np.empty((bs, y.shape[1]), dtype=self.dtype)
            xr = np.empty((rem, x.shape[1]), dtype=self.dtype) if rem else None
            yr = np.empty((rem, y.shape[1]), dtype=self.dtype) if rem else None
        else:
            step_params = self.parameters()
        for epoch in range(epochs):
            order = rng.permutation(n)
            epoch_loss = 0.0
            for start in range(0, n, bs):
                idx = order[start : start + bs]
                if fused:
                    bx, by = (xb, yb) if idx.size == bs else (xr, yr)
                    np.take(x, idx, axis=0, out=bx)
                    np.take(y, idx, axis=0, out=by)
                    pred = self.forward(bx, buffered=True)
                    batch_loss = loss_fn.value(pred, by)
                    self.backward(loss_fn.gradient(pred, by), buffered=True)
                    opt.step(step_params, step_grads)
                else:
                    bx, by = x[idx], y[idx]
                    pred = self.forward(bx)
                    batch_loss = loss_fn.value(pred, by)
                    self.backward(loss_fn.gradient(pred, by))
                    opt.step(step_params, self.gradients())
                epoch_loss += batch_loss * idx.size
            train_loss = epoch_loss / n
            result.loss_history.append(train_loss)
            if x_val is not None:
                val_loss = loss_fn.value(
                    self.forward(x_val, buffered=fused), y_val
                )
                result.validation_history.append(val_loss)
                if val_loss < best_val - 1e-12:
                    best_val = val_loss
                    best_params = self._flat_params.copy()
                    result.best_epoch = epoch
                    stale = 0
                else:
                    stale += 1
                    if stale >= patience:
                        result.stopped_early = "validation"
                        break
            elif train_tol > 0.0:
                if train_loss < best_train - train_tol:
                    best_train = train_loss
                    train_stale = 0
                else:
                    train_stale += 1
                    if train_stale >= patience:
                        result.stopped_early = "train_plateau"
                        break
            if verbose and (epoch % max(1, epochs // 10) == 0):
                print(f"epoch {epoch}: loss={result.loss_history[-1]:.6f}")
        if best_params is not None:
            self._flat_params[...] = best_params
        return result
