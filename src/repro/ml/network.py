"""Fully-connected neural network with manual backpropagation.

This implements the network of paper Eq. (1): a stack of dense layers
``h_{l+1} = sigma(W_l^T h_l + b_l)``, trained with minibatch gradient
descent.  The network exposes raw ``forward``/``backward`` so that models
with custom likelihoods (the point process of Sec. II-A.3) can inject
their own output gradients, plus a convenience ``fit`` for standard
regression losses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .activations import Activation, get_activation
from .initializers import get_initializer
from .losses import Loss, get_loss
from .optimizers import Optimizer, get_optimizer

__all__ = ["Dense", "MLP", "FitResult"]


class Dense:
    """A single dense layer with an activation.

    Caches the forward inputs needed for the backward pass; ``backward``
    must be called with the same batch that was last passed to ``forward``.
    """

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        activation: str | Activation = "identity",
        *,
        rng: np.random.Generator,
        initializer: str | None = None,
    ):
        if in_dim <= 0 or out_dim <= 0:
            raise ValueError("layer dimensions must be positive")
        self.activation = get_activation(activation)
        if initializer is None:
            initializer = (
                "he_normal" if self.activation.name == "relu" else "glorot_uniform"
            )
        init = get_initializer(initializer)
        self.weight = init(in_dim, out_dim, rng)
        self.bias = np.zeros(out_dim)
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)
        self._input: np.ndarray | None = None
        self._pre_activation: np.ndarray | None = None

    @property
    def in_dim(self) -> int:
        return self.weight.shape[0]

    @property
    def out_dim(self) -> int:
        return self.weight.shape[1]

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        self._input = x
        self._pre_activation = x @ self.weight + self.bias
        return self.activation.forward(self._pre_activation)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._input is None or self._pre_activation is None:
            raise RuntimeError("backward called before forward")
        grad_z = self.activation.backward(self._pre_activation, grad_out)
        self.grad_weight = self._input.T @ grad_z
        self.grad_bias = grad_z.sum(axis=0)
        return grad_z @ self.weight.T


@dataclass
class FitResult:
    """Training history returned by ``MLP.fit``."""

    loss_history: list[float] = field(default_factory=list)
    validation_history: list[float] = field(default_factory=list)
    best_epoch: int | None = None

    @property
    def final_loss(self) -> float:
        return self.loss_history[-1] if self.loss_history else float("nan")


class MLP:
    """Multi-layer perceptron over 2-D inputs ``(batch, features)``.

    Parameters
    ----------
    layer_sizes:
        Sizes ``[in_dim, h1, ..., out_dim]``; at least two entries.
    hidden_activation:
        Activation for every hidden layer (paper uses ReLU for the vote
        network and tanh for the excitation network).
    output_activation:
        Activation on the final layer (paper Eq. (1) applies sigma at the
        output too; the point-process excitation uses ReLU there, and we
        default to identity for plain regression).
    """

    def __init__(
        self,
        layer_sizes: list[int],
        *,
        hidden_activation: str | Activation = "relu",
        output_activation: str | Activation = "identity",
        seed: int | np.random.Generator = 0,
        l2: float = 0.0,
    ):
        if len(layer_sizes) < 2:
            raise ValueError("layer_sizes needs at least input and output dims")
        if l2 < 0:
            raise ValueError("l2 must be non-negative")
        rng = (
            seed
            if isinstance(seed, np.random.Generator)
            else np.random.default_rng(seed)
        )
        self.l2 = l2
        self.layers: list[Dense] = []
        for i in range(len(layer_sizes) - 1):
            is_last = i == len(layer_sizes) - 2
            act = output_activation if is_last else hidden_activation
            self.layers.append(
                Dense(layer_sizes[i], layer_sizes[i + 1], act, rng=rng)
            )

    @property
    def in_dim(self) -> int:
        return self.layers[0].in_dim

    @property
    def out_dim(self) -> int:
        return self.layers[-1].out_dim

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = np.asarray(x, dtype=float)
        if out.ndim != 2:
            raise ValueError("MLP input must be 2-D (batch, features)")
        for layer in self.layers:
            out = layer.forward(out)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Backpropagate ``dLoss/doutput``; returns ``dLoss/dinput``.

        Layer gradients are stored on each layer and include the L2 term.
        """
        grad = np.asarray(grad_out, dtype=float)
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        if self.l2 > 0.0:
            for layer in self.layers:
                layer.grad_weight += self.l2 * layer.weight
        return grad

    def parameters(self) -> list[np.ndarray]:
        params: list[np.ndarray] = []
        for layer in self.layers:
            params.extend((layer.weight, layer.bias))
        return params

    def gradients(self) -> list[np.ndarray]:
        grads: list[np.ndarray] = []
        for layer in self.layers:
            grads.extend((layer.grad_weight, layer.grad_bias))
        return grads

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Forward pass; squeezes a single-output network to shape (batch,)."""
        out = self.forward(np.atleast_2d(np.asarray(x, dtype=float)))
        return out[:, 0] if out.shape[1] == 1 else out

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        *,
        loss: str | Loss = "mse",
        optimizer: str | Optimizer = "adam",
        epochs: int = 200,
        batch_size: int = 32,
        seed: int = 0,
        validation_fraction: float = 0.0,
        patience: int = 20,
        verbose: bool = False,
    ) -> FitResult:
        """Train with minibatch gradient descent on a standard loss.

        With ``validation_fraction > 0`` a held-out slice is tracked
        each epoch; training stops after ``patience`` epochs without
        improvement and the best-epoch weights are restored.
        """
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if y.ndim == 1:
            y = y[:, None]
        if x.shape[0] != y.shape[0]:
            raise ValueError("x and y batch sizes differ")
        if x.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        if not 0.0 <= validation_fraction < 1.0:
            raise ValueError("validation_fraction must be in [0, 1)")
        loss_fn = get_loss(loss)
        opt = get_optimizer(optimizer)
        rng = np.random.default_rng(seed)
        x_val = y_val = None
        if validation_fraction > 0.0:
            n_val = max(1, int(round(x.shape[0] * validation_fraction)))
            if n_val >= x.shape[0]:
                raise ValueError("validation split leaves no training data")
            order = rng.permutation(x.shape[0])
            val_idx, train_idx = order[:n_val], order[n_val:]
            x_val, y_val = x[val_idx], y[val_idx]
            x, y = x[train_idx], y[train_idx]
        n = x.shape[0]
        result = FitResult()
        params = self.parameters()
        best_val = np.inf
        best_params: list[np.ndarray] | None = None
        stale = 0
        for epoch in range(epochs):
            order = rng.permutation(n)
            epoch_loss = 0.0
            for start in range(0, n, batch_size):
                idx = order[start : start + batch_size]
                pred = self.forward(x[idx])
                batch_loss = loss_fn.value(pred, y[idx])
                self.backward(loss_fn.gradient(pred, y[idx]))
                opt.step(params, self.gradients())
                epoch_loss += batch_loss * len(idx)
            result.loss_history.append(epoch_loss / n)
            if x_val is not None:
                val_loss = loss_fn.value(self.forward(x_val), y_val)
                result.validation_history.append(val_loss)
                if val_loss < best_val - 1e-12:
                    best_val = val_loss
                    best_params = [p.copy() for p in params]
                    result.best_epoch = epoch
                    stale = 0
                else:
                    stale += 1
                    if stale >= patience:
                        break
            if verbose and (epoch % max(1, epochs // 10) == 0):
                print(f"epoch {epoch}: loss={result.loss_history[-1]:.6f}")
        if best_params is not None:
            for p, best in zip(params, best_params):
                p[...] = best
        return result
