"""Loss functions with value and gradient.

Each loss exposes ``value(pred, target)`` returning a scalar mean loss and
``gradient(pred, target)`` returning ``dLoss/dpred`` with the same shape as
``pred`` (already divided by the batch size, so optimizers see the gradient
of the *mean* loss).
"""

from __future__ import annotations

import numpy as np

__all__ = ["Loss", "MeanSquaredError", "BinaryCrossEntropy", "PoissonNLL", "get_loss"]

_EPS = 1e-12


class Loss:
    """Base class for losses."""

    name = "base"

    def value(self, pred: np.ndarray, target: np.ndarray) -> float:
        raise NotImplementedError

    def gradient(self, pred: np.ndarray, target: np.ndarray) -> np.ndarray:
        raise NotImplementedError


class MeanSquaredError(Loss):
    """Mean squared error, ``mean((pred - target)^2)``."""

    name = "mse"

    def value(self, pred: np.ndarray, target: np.ndarray) -> float:
        diff = np.asarray(pred, dtype=float) - np.asarray(target, dtype=float)
        return float(np.mean(diff * diff))

    def gradient(self, pred: np.ndarray, target: np.ndarray) -> np.ndarray:
        pred = np.asarray(pred, dtype=float)
        target = np.asarray(target, dtype=float)
        return 2.0 * (pred - target) / pred.size


class BinaryCrossEntropy(Loss):
    """Binary cross entropy on probabilities in ``(0, 1)``."""

    name = "bce"

    def value(self, pred: np.ndarray, target: np.ndarray) -> float:
        p = np.clip(np.asarray(pred, dtype=float), _EPS, 1.0 - _EPS)
        t = np.asarray(target, dtype=float)
        return float(-np.mean(t * np.log(p) + (1.0 - t) * np.log(1.0 - p)))

    def gradient(self, pred: np.ndarray, target: np.ndarray) -> np.ndarray:
        p = np.clip(np.asarray(pred, dtype=float), _EPS, 1.0 - _EPS)
        t = np.asarray(target, dtype=float)
        return (p - t) / (p * (1.0 - p)) / p.size


class PoissonNLL(Loss):
    """Poisson negative log likelihood for positive rate predictions.

    ``value = mean(pred - target * log(pred))`` (dropping the constant
    ``log(target!)`` term).
    """

    name = "poisson_nll"

    def value(self, pred: np.ndarray, target: np.ndarray) -> float:
        lam = np.clip(np.asarray(pred, dtype=float), _EPS, None)
        t = np.asarray(target, dtype=float)
        return float(np.mean(lam - t * np.log(lam)))

    def gradient(self, pred: np.ndarray, target: np.ndarray) -> np.ndarray:
        lam = np.clip(np.asarray(pred, dtype=float), _EPS, None)
        t = np.asarray(target, dtype=float)
        return (1.0 - t / lam) / lam.size


_REGISTRY: dict[str, type[Loss]] = {
    cls.name: cls for cls in (MeanSquaredError, BinaryCrossEntropy, PoissonNLL)
}


def get_loss(name_or_obj: str | Loss) -> Loss:
    """Resolve a loss by name or pass an instance through."""
    if isinstance(name_or_obj, Loss):
        return name_or_obj
    try:
        return _REGISTRY[name_or_obj]()
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(f"unknown loss {name_or_obj!r}; known: {known}") from None
