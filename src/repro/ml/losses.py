"""Loss functions with value and gradient.

Each loss exposes ``value(pred, target)`` returning a scalar mean loss and
``gradient(pred, target)`` returning ``dLoss/dpred`` with the same shape as
``pred`` (already divided by the batch size, so optimizers see the gradient
of the *mean* loss).

Losses preserve the prediction dtype: float32 predictions produce float32
gradients, so a network trained in single precision never silently
upcasts its backward pass.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Loss", "MeanSquaredError", "BinaryCrossEntropy", "PoissonNLL", "get_loss"]

_EPS = 1e-12


def _aligned(pred: np.ndarray, target: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """(pred, target) as floating arrays sharing the prediction dtype."""
    pred = np.asarray(pred)
    if not np.issubdtype(pred.dtype, np.floating):
        pred = pred.astype(float)
    target = np.asarray(target, dtype=pred.dtype)
    return pred, target


class Loss:
    """Base class for losses."""

    name = "base"

    def value(self, pred: np.ndarray, target: np.ndarray) -> float:
        raise NotImplementedError

    def gradient(self, pred: np.ndarray, target: np.ndarray) -> np.ndarray:
        raise NotImplementedError


class MeanSquaredError(Loss):
    """Mean squared error, ``mean((pred - target)^2)``."""

    name = "mse"

    def value(self, pred: np.ndarray, target: np.ndarray) -> float:
        pred, target = _aligned(pred, target)
        diff = pred - target
        return float(np.mean(diff * diff))

    def gradient(self, pred: np.ndarray, target: np.ndarray) -> np.ndarray:
        pred, target = _aligned(pred, target)
        out = pred - target
        out *= 2.0 / pred.size
        return out


class BinaryCrossEntropy(Loss):
    """Binary cross entropy on probabilities in ``(0, 1)``."""

    name = "bce"

    def value(self, pred: np.ndarray, target: np.ndarray) -> float:
        pred, t = _aligned(pred, target)
        p = np.clip(pred, _EPS, 1.0 - _EPS)
        return float(-np.mean(t * np.log(p) + (1.0 - t) * np.log(1.0 - p)))

    def gradient(self, pred: np.ndarray, target: np.ndarray) -> np.ndarray:
        pred, t = _aligned(pred, target)
        p = np.clip(pred, _EPS, 1.0 - _EPS)
        return (p - t) / (p * (1.0 - p)) / p.size


class PoissonNLL(Loss):
    """Poisson negative log likelihood for positive rate predictions.

    ``value = mean(pred - target * log(pred))`` (dropping the constant
    ``log(target!)`` term).
    """

    name = "poisson_nll"

    def value(self, pred: np.ndarray, target: np.ndarray) -> float:
        pred, t = _aligned(pred, target)
        lam = np.clip(pred, _EPS, None)
        return float(np.mean(lam - t * np.log(lam)))

    def gradient(self, pred: np.ndarray, target: np.ndarray) -> np.ndarray:
        pred, t = _aligned(pred, target)
        lam = np.clip(pred, _EPS, None)
        return (1.0 - t / lam) / lam.size


_REGISTRY: dict[str, type[Loss]] = {
    cls.name: cls for cls in (MeanSquaredError, BinaryCrossEntropy, PoissonNLL)
}


def get_loss(name_or_obj: str | Loss) -> Loss:
    """Resolve a loss by name or pass an instance through."""
    if isinstance(name_or_obj, Loss):
        return name_or_obj
    try:
        return _REGISTRY[name_or_obj]()
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(f"unknown loss {name_or_obj!r}; known: {known}") from None
