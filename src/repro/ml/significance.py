"""Significance testing for model comparisons.

The paper reports Table I as mean ± std over 25 CV iterations; these
utilities put confidence intervals and paired tests behind the same
comparisons (implemented from scratch; the t CDF comes from scipy's
incomplete beta).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.special import betainc

__all__ = ["bootstrap_ci", "paired_t_test", "PairedTestResult"]


def bootstrap_ci(
    values: np.ndarray,
    *,
    confidence: float = 0.95,
    n_resamples: int = 10_000,
    statistic=np.mean,
    seed: int = 0,
) -> tuple[float, float]:
    """Percentile-bootstrap confidence interval of a statistic."""
    values = np.asarray(values, dtype=float).ravel()
    if values.size < 2:
        raise ValueError("need at least 2 observations")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, values.size, size=(n_resamples, values.size))
    stats = statistic(values[idx], axis=1)
    alpha = (1.0 - confidence) / 2.0
    return (
        float(np.quantile(stats, alpha)),
        float(np.quantile(stats, 1.0 - alpha)),
    )


def _t_sf(t: float, df: float) -> float:
    """Survival function of Student's t via the regularized beta."""
    x = df / (df + t * t)
    p = 0.5 * betainc(df / 2.0, 0.5, x)
    return p if t >= 0 else 1.0 - p


@dataclass(frozen=True)
class PairedTestResult:
    """Outcome of a paired t-test."""

    statistic: float
    p_value: float  # two-sided
    mean_difference: float
    n: int

    def significant(self, alpha: float = 0.05) -> bool:
        return self.p_value < alpha


def paired_t_test(a: np.ndarray, b: np.ndarray) -> PairedTestResult:
    """Two-sided paired t-test of ``mean(a - b) == 0``.

    Use on per-fold metric pairs (model vs. baseline on identical
    folds).  Zero-variance differences produce p = 0 when the mean
    difference is nonzero and p = 1 otherwise.
    """
    a = np.asarray(a, dtype=float).ravel()
    b = np.asarray(b, dtype=float).ravel()
    if a.shape != b.shape:
        raise ValueError("paired samples must have equal length")
    if a.size < 2:
        raise ValueError("need at least 2 pairs")
    diff = a - b
    mean = float(diff.mean())
    std = float(diff.std(ddof=1))
    n = diff.size
    if std == 0.0:
        p = 1.0 if mean == 0.0 else 0.0
        return PairedTestResult(
            statistic=float("inf") if mean else 0.0,
            p_value=p,
            mean_difference=mean,
            n=n,
        )
    t = mean / (std / np.sqrt(n))
    p = 2.0 * _t_sf(abs(t), n - 1)
    return PairedTestResult(
        statistic=float(t), p_value=float(min(p, 1.0)), mean_difference=mean, n=n
    )
