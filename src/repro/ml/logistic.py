"""Logistic regression classifier.

The paper (Sec. II-A.1) deliberately uses a *linear* model for the
answer-probability task ``a_uq`` to avoid overfitting the extremely sparse
user-question matrix.  This implementation minimizes the L2-regularized
negative log likelihood with full-batch Adam, which is deterministic given
the data.
"""

from __future__ import annotations

import numpy as np

from .activations import sigmoid
from .optimizers import Adam

__all__ = ["LogisticRegression"]


class LogisticRegression:
    """Binary logistic regression: ``P(y=1|x) = sigmoid(x^T beta + b)``.

    Parameters
    ----------
    l2:
        L2 penalty on the coefficients (not the intercept).
    learning_rate, max_iter, tol:
        Full-batch Adam settings; training stops early when the loss
        improvement falls below ``tol``.
    """

    def __init__(
        self,
        l2: float = 1e-3,
        learning_rate: float = 0.05,
        max_iter: int = 2000,
        tol: float = 1e-8,
    ):
        if l2 < 0:
            raise ValueError("l2 must be non-negative")
        self.l2 = l2
        self.learning_rate = learning_rate
        self.max_iter = max_iter
        self.tol = tol
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0
        self.loss_history_: list[float] = []

    def _check_fitted(self) -> None:
        if self.coef_ is None:
            raise RuntimeError("model is not fitted")

    def fit(self, x: np.ndarray, y: np.ndarray) -> "LogisticRegression":
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if x.ndim != 2:
            raise ValueError("x must be 2-D")
        if x.shape[0] != y.shape[0]:
            raise ValueError("x and y lengths differ")
        if not np.all(np.isin(y, (0.0, 1.0))):
            raise ValueError("y must be binary 0/1")
        n, d = x.shape
        beta = np.zeros(d)
        intercept = np.zeros(1)
        opt = Adam(learning_rate=self.learning_rate)
        self.loss_history_ = []
        prev_loss = np.inf
        for _ in range(self.max_iter):
            z = x @ beta + intercept[0]
            p = sigmoid(z)
            # Mean NLL with a stable formulation log(1+e^z) - y z.
            nll = float(
                np.mean(np.maximum(z, 0) + np.log1p(np.exp(-np.abs(z))) - y * z)
            )
            loss = nll + 0.5 * self.l2 * float(beta @ beta) / n
            self.loss_history_.append(loss)
            residual = (p - y) / n
            grad_beta = x.T @ residual + self.l2 * beta / n
            grad_intercept = np.array([residual.sum()])
            opt.step([beta, intercept], [grad_beta, grad_intercept])
            if abs(prev_loss - loss) < self.tol:
                break
            prev_loss = loss
        self.coef_ = beta
        self.intercept_ = float(intercept[0])
        return self

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Probability of the positive class for each row of ``x``."""
        self._check_fitted()
        x = np.atleast_2d(np.asarray(x, dtype=float))
        return sigmoid(x @ self.coef_ + self.intercept_)

    def predict(self, x: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        """Hard 0/1 predictions at the given probability threshold."""
        return (self.predict_proba(x) >= threshold).astype(int)
