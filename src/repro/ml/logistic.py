"""Logistic regression classifier.

The paper (Sec. II-A.1) deliberately uses a *linear* model for the
answer-probability task ``a_uq`` to avoid overfitting the extremely sparse
user-question matrix.  This implementation minimizes the L2-regularized
negative log likelihood with full-batch Adam, which is deterministic given
the data.
"""

from __future__ import annotations

import numpy as np

from .activations import sigmoid
from .optimizers import Adam

__all__ = ["LogisticRegression"]


class LogisticRegression:
    """Binary logistic regression: ``P(y=1|x) = sigmoid(x^T beta + b)``.

    Parameters
    ----------
    l2:
        L2 penalty on the coefficients (not the intercept).
    learning_rate, max_iter, tol:
        Full-batch Adam settings; training stops early when the loss
        improvement falls below ``tol``.
    """

    def __init__(
        self,
        l2: float = 1e-3,
        learning_rate: float = 0.05,
        max_iter: int = 2000,
        tol: float = 1e-8,
    ):
        if l2 < 0:
            raise ValueError("l2 must be non-negative")
        self.l2 = l2
        self.learning_rate = learning_rate
        self.max_iter = max_iter
        self.tol = tol
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0
        self.loss_history_: list[float] = []

    def _check_fitted(self) -> None:
        if self.coef_ is None:
            raise RuntimeError("model is not fitted")

    def fit(self, x: np.ndarray, y: np.ndarray) -> "LogisticRegression":
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if x.ndim != 2:
            raise ValueError("x must be 2-D")
        if x.shape[0] != y.shape[0]:
            raise ValueError("x and y lengths differ")
        if not np.all(np.isin(y, (0.0, 1.0))):
            raise ValueError("y must be binary 0/1")
        n, d = x.shape
        # Coefficients and intercept share one flat vector so the fused
        # Adam step updates a single array; buffers below are reused
        # across all full-batch iterations (nothing allocates per iter).
        wb = np.zeros(d + 1)
        beta = wb[:d]
        grad = np.empty(d + 1)
        z = np.empty(n)
        p = np.empty(n)
        r = np.empty(n)
        t = np.empty(n)
        opt = Adam(learning_rate=self.learning_rate)
        self.loss_history_ = []
        prev_loss = np.inf
        for _ in range(self.max_iter):
            np.matmul(x, beta, out=z)
            z += wb[d]
            sigmoid(z, out=p)
            # Mean NLL with a stable formulation log(1+e^z) - y z.
            np.abs(z, out=t)
            np.negative(t, out=t)
            np.exp(t, out=t)
            np.log1p(t, out=t)
            t += np.maximum(z, 0.0)
            np.multiply(y, z, out=r)
            t -= r
            nll = float(np.mean(t))
            loss = nll + 0.5 * self.l2 * float(beta @ beta) / n
            self.loss_history_.append(loss)
            np.subtract(p, y, out=r)
            r /= n
            np.matmul(x.T, r, out=grad[:d])
            grad[:d] += (self.l2 / n) * beta
            grad[d] = r.sum()
            opt.step([wb], [grad])
            if abs(prev_loss - loss) < self.tol:
                break
            prev_loss = loss
        self.coef_ = wb[:d].copy()
        self.intercept_ = float(wb[d])
        return self

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Probability of the positive class for each row of ``x``."""
        self._check_fitted()
        x = np.atleast_2d(np.asarray(x, dtype=float))
        return sigmoid(x @ self.coef_ + self.intercept_)

    def predict(self, x: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        """Hard 0/1 predictions at the given probability threshold."""
        return (self.predict_proba(x) >= threshold).astype(int)
