"""Activation functions with forward and backward passes.

Each activation is a stateless object exposing ``forward(z)`` and
``backward(z, grad_out)`` where ``z`` is the pre-activation input that was
given to ``forward`` and ``grad_out`` is the gradient of the loss with
respect to the activation output.  ``backward`` returns the gradient with
respect to ``z``.

Both passes accept an optional ``out`` array so the training engine can
reuse preallocated buffers instead of allocating per minibatch, and
``backward`` accepts ``cached_output`` — the activation output computed by
the matching ``forward`` — which lets tanh/sigmoid derivatives reuse the
forward value instead of recomputing the transcendental.  ``out`` may
alias ``grad_out`` (the fused path passes ``out=grad_out``); it must not
alias ``z``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "Activation",
    "Identity",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "Softplus",
    "get_activation",
]


class Activation:
    """Base class for activations."""

    name = "base"

    def forward(self, z: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        raise NotImplementedError

    def backward(
        self,
        z: np.ndarray,
        grad_out: np.ndarray,
        out: np.ndarray | None = None,
        cached_output: np.ndarray | None = None,
    ) -> np.ndarray:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class Identity(Activation):
    """Linear (no-op) activation."""

    name = "identity"

    def forward(self, z: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        if out is None or out is z:
            return z
        out[...] = z
        return out

    def backward(
        self,
        z: np.ndarray,
        grad_out: np.ndarray,
        out: np.ndarray | None = None,
        cached_output: np.ndarray | None = None,
    ) -> np.ndarray:
        if out is None or out is grad_out:
            return grad_out
        out[...] = grad_out
        return out


class ReLU(Activation):
    """Rectified linear unit: ``max(0, z)``."""

    name = "relu"

    def forward(self, z: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        return np.maximum(z, 0.0, out=out)

    def backward(
        self,
        z: np.ndarray,
        grad_out: np.ndarray,
        out: np.ndarray | None = None,
        cached_output: np.ndarray | None = None,
    ) -> np.ndarray:
        return np.multiply(grad_out, z > 0.0, out=out)


class Tanh(Activation):
    """Hyperbolic tangent activation."""

    name = "tanh"

    def forward(self, z: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        return np.tanh(z, out=out)

    def backward(
        self,
        z: np.ndarray,
        grad_out: np.ndarray,
        out: np.ndarray | None = None,
        cached_output: np.ndarray | None = None,
    ) -> np.ndarray:
        t = cached_output if cached_output is not None else np.tanh(z)
        return np.multiply(grad_out, 1.0 - t * t, out=out)


class Sigmoid(Activation):
    """Logistic sigmoid, computed stably for large ``|z|``."""

    name = "sigmoid"

    def forward(self, z: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        return sigmoid(z, out=out)

    def backward(
        self,
        z: np.ndarray,
        grad_out: np.ndarray,
        out: np.ndarray | None = None,
        cached_output: np.ndarray | None = None,
    ) -> np.ndarray:
        s = cached_output if cached_output is not None else sigmoid(z)
        return np.multiply(grad_out, s * (1.0 - s), out=out)


class Softplus(Activation):
    """Softplus ``log(1 + exp(z))`` — a smooth, strictly positive output.

    Used for point-process rate parameters that must stay positive.
    """

    name = "softplus"

    def forward(self, z: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        return softplus(z, out=out)

    def backward(
        self,
        z: np.ndarray,
        grad_out: np.ndarray,
        out: np.ndarray | None = None,
        cached_output: np.ndarray | None = None,
    ) -> np.ndarray:
        # softplus' = sigmoid(z); the forward output does not give the
        # sigmoid any cheaper, so it is recomputed.
        return np.multiply(grad_out, sigmoid(z), out=out)


def _as_float(z: np.ndarray) -> np.ndarray:
    """View as-is for float inputs (any precision), cast otherwise."""
    z = np.asarray(z)
    if not np.issubdtype(z.dtype, np.floating):
        z = z.astype(float)
    return z


def sigmoid(z: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """Numerically stable logistic sigmoid."""
    z = _as_float(z)
    if out is None:
        out = np.empty_like(z)
    pos = z >= 0
    neg_vals = z[~pos]  # gather before out (which may alias z) is written
    out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    ez = np.exp(neg_vals)
    out[~pos] = ez / (1.0 + ez)
    return out


def softplus(z: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """Numerically stable ``log(1 + exp(z))``."""
    z = _as_float(z)
    if out is None:
        out = np.empty_like(z)
    mx = np.maximum(z, 0.0)  # before out (which may alias z) is written
    np.abs(z, out=out)
    np.negative(out, out=out)
    np.exp(out, out=out)
    np.log1p(out, out=out)
    out += mx
    return out


_REGISTRY: dict[str, type[Activation]] = {
    cls.name: cls for cls in (Identity, ReLU, Tanh, Sigmoid, Softplus)
}


def get_activation(name_or_obj: str | Activation) -> Activation:
    """Resolve an activation by name or pass an instance through.

    Raises ``ValueError`` on an unknown name.
    """
    if isinstance(name_or_obj, Activation):
        return name_or_obj
    try:
        return _REGISTRY[name_or_obj]()
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(
            f"unknown activation {name_or_obj!r}; known: {known}"
        ) from None
