"""Activation functions with forward and backward passes.

Each activation is a stateless object exposing ``forward(z)`` and
``backward(z, grad_out)`` where ``z`` is the pre-activation input that was
given to ``forward`` and ``grad_out`` is the gradient of the loss with
respect to the activation output.  ``backward`` returns the gradient with
respect to ``z``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "Activation",
    "Identity",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "Softplus",
    "get_activation",
]


class Activation:
    """Base class for activations."""

    name = "base"

    def forward(self, z: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, z: np.ndarray, grad_out: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class Identity(Activation):
    """Linear (no-op) activation."""

    name = "identity"

    def forward(self, z: np.ndarray) -> np.ndarray:
        return z

    def backward(self, z: np.ndarray, grad_out: np.ndarray) -> np.ndarray:
        return grad_out


class ReLU(Activation):
    """Rectified linear unit: ``max(0, z)``."""

    name = "relu"

    def forward(self, z: np.ndarray) -> np.ndarray:
        return np.maximum(z, 0.0)

    def backward(self, z: np.ndarray, grad_out: np.ndarray) -> np.ndarray:
        return grad_out * (z > 0.0)


class Tanh(Activation):
    """Hyperbolic tangent activation."""

    name = "tanh"

    def forward(self, z: np.ndarray) -> np.ndarray:
        return np.tanh(z)

    def backward(self, z: np.ndarray, grad_out: np.ndarray) -> np.ndarray:
        t = np.tanh(z)
        return grad_out * (1.0 - t * t)


class Sigmoid(Activation):
    """Logistic sigmoid, computed stably for large ``|z|``."""

    name = "sigmoid"

    def forward(self, z: np.ndarray) -> np.ndarray:
        return sigmoid(z)

    def backward(self, z: np.ndarray, grad_out: np.ndarray) -> np.ndarray:
        s = sigmoid(z)
        return grad_out * s * (1.0 - s)


class Softplus(Activation):
    """Softplus ``log(1 + exp(z))`` — a smooth, strictly positive output.

    Used for point-process rate parameters that must stay positive.
    """

    name = "softplus"

    def forward(self, z: np.ndarray) -> np.ndarray:
        return softplus(z)

    def backward(self, z: np.ndarray, grad_out: np.ndarray) -> np.ndarray:
        return grad_out * sigmoid(z)


def sigmoid(z: np.ndarray) -> np.ndarray:
    """Numerically stable logistic sigmoid."""
    z = np.asarray(z, dtype=float)
    out = np.empty_like(z)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    ez = np.exp(z[~pos])
    out[~pos] = ez / (1.0 + ez)
    return out


def softplus(z: np.ndarray) -> np.ndarray:
    """Numerically stable ``log(1 + exp(z))``."""
    z = np.asarray(z, dtype=float)
    return np.maximum(z, 0.0) + np.log1p(np.exp(-np.abs(z)))


_REGISTRY: dict[str, type[Activation]] = {
    cls.name: cls for cls in (Identity, ReLU, Tanh, Sigmoid, Softplus)
}


def get_activation(name_or_obj: str | Activation) -> Activation:
    """Resolve an activation by name or pass an instance through.

    Raises ``ValueError`` on an unknown name.
    """
    if isinstance(name_or_obj, Activation):
        return name_or_obj
    try:
        return _REGISTRY[name_or_obj]()
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(
            f"unknown activation {name_or_obj!r}; known: {known}"
        ) from None
