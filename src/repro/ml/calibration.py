"""Probability calibration for the answer classifier.

The router's eligibility threshold ``epsilon`` (paper Sec. V) only
means "probability" if the classifier is calibrated.  This module
provides Platt scaling (a logistic recalibration of scores), a binned
reliability curve, and the Brier score.
"""

from __future__ import annotations

import numpy as np

from .activations import sigmoid

__all__ = ["PlattCalibrator", "brier_score", "reliability_curve"]


def brier_score(y_true: np.ndarray, y_prob: np.ndarray) -> float:
    """Mean squared error between outcomes and predicted probabilities."""
    y_true = np.asarray(y_true, dtype=float).ravel()
    y_prob = np.asarray(y_prob, dtype=float).ravel()
    if y_true.shape != y_prob.shape:
        raise ValueError("shapes differ")
    if y_true.size == 0:
        raise ValueError("empty inputs")
    if np.any((y_prob < 0) | (y_prob > 1)):
        raise ValueError("probabilities must lie in [0, 1]")
    return float(np.mean((y_prob - y_true) ** 2))


def reliability_curve(
    y_true: np.ndarray, y_prob: np.ndarray, n_bins: int = 10
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Binned (mean predicted, observed frequency, count) triplets.

    Empty bins are dropped.  A calibrated classifier has observed
    frequency tracking mean prediction along the diagonal.
    """
    if n_bins < 2:
        raise ValueError("n_bins must be >= 2")
    y_true = np.asarray(y_true, dtype=float).ravel()
    y_prob = np.asarray(y_prob, dtype=float).ravel()
    edges = np.linspace(0.0, 1.0, n_bins + 1)
    which = np.clip(np.digitize(y_prob, edges) - 1, 0, n_bins - 1)
    mean_pred, observed, counts = [], [], []
    for b in range(n_bins):
        mask = which == b
        if not mask.any():
            continue
        mean_pred.append(float(y_prob[mask].mean()))
        observed.append(float(y_true[mask].mean()))
        counts.append(int(mask.sum()))
    return np.array(mean_pred), np.array(observed), np.array(counts)


class PlattCalibrator:
    """Platt scaling: fit ``sigmoid(a * logit(p) + b)`` on held-out data."""

    def __init__(self, max_iter: int = 500, learning_rate: float = 0.1):
        self.max_iter = max_iter
        self.learning_rate = learning_rate
        self.a_: float | None = None
        self.b_: float | None = None

    @staticmethod
    def _logit(p: np.ndarray) -> np.ndarray:
        p = np.clip(np.asarray(p, dtype=float), 1e-9, 1 - 1e-9)
        return np.log(p / (1 - p))

    def fit(self, y_prob: np.ndarray, y_true: np.ndarray) -> "PlattCalibrator":
        y_true = np.asarray(y_true, dtype=float).ravel()
        scores = self._logit(y_prob)
        if scores.shape != y_true.shape:
            raise ValueError("shapes differ")
        if not np.all(np.isin(y_true, (0.0, 1.0))):
            raise ValueError("y_true must be binary")
        a, b = 1.0, 0.0
        n = len(y_true)
        for _ in range(self.max_iter):
            z = a * scores + b
            p = sigmoid(z)
            residual = (p - y_true) / n
            grad_a = float(residual @ scores)
            grad_b = float(residual.sum())
            a -= self.learning_rate * grad_a
            b -= self.learning_rate * grad_b
        self.a_, self.b_ = float(a), float(b)
        return self

    def transform(self, y_prob: np.ndarray) -> np.ndarray:
        """Calibrated probabilities."""
        if self.a_ is None:
            raise RuntimeError("calibrator is not fitted")
        return sigmoid(self.a_ * self._logit(y_prob) + self.b_)
