"""Weight initialization schemes for dense layers."""

from __future__ import annotations

import numpy as np

__all__ = ["glorot_uniform", "he_normal", "get_initializer"]


def glorot_uniform(
    in_dim: int, out_dim: int, rng: np.random.Generator
) -> np.ndarray:
    """Glorot/Xavier uniform initialization — suits tanh/sigmoid layers."""
    limit = np.sqrt(6.0 / (in_dim + out_dim))
    return rng.uniform(-limit, limit, size=(in_dim, out_dim))


def he_normal(in_dim: int, out_dim: int, rng: np.random.Generator) -> np.ndarray:
    """He normal initialization — suits ReLU layers."""
    std = np.sqrt(2.0 / in_dim)
    return rng.normal(0.0, std, size=(in_dim, out_dim))


_REGISTRY = {"glorot_uniform": glorot_uniform, "he_normal": he_normal}


def get_initializer(name: str):
    """Look up an initializer function by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(f"unknown initializer {name!r}; known: {known}") from None
