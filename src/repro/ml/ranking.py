"""Ranking metrics for the question-routing evaluation.

The routing system (paper Sec. V) produces a ranking of candidate
answerers per question; these metrics quantify how well a ranking
surfaces the users who actually answered.
"""

from __future__ import annotations

import numpy as np

__all__ = ["precision_at_k", "recall_at_k", "ndcg_at_k", "mean_reciprocal_rank"]


def _validate(ranked, relevant, k=None):
    ranked = list(ranked)
    relevant = set(relevant)
    if k is not None and k < 1:
        raise ValueError("k must be >= 1")
    return ranked, relevant


def precision_at_k(ranked: list, relevant: set, k: int) -> float:
    """Fraction of the top-k ranked items that are relevant."""
    ranked, relevant = _validate(ranked, relevant, k)
    if not ranked:
        return 0.0
    top = ranked[:k]
    return sum(1 for item in top if item in relevant) / k


def recall_at_k(ranked: list, relevant: set, k: int) -> float:
    """Fraction of relevant items appearing in the top k."""
    ranked, relevant = _validate(ranked, relevant, k)
    if not relevant:
        raise ValueError("recall undefined with no relevant items")
    top = ranked[:k]
    return sum(1 for item in top if item in relevant) / len(relevant)


def ndcg_at_k(ranked: list, relevant: set, k: int) -> float:
    """Normalized discounted cumulative gain with binary relevance."""
    ranked, relevant = _validate(ranked, relevant, k)
    if not relevant:
        raise ValueError("NDCG undefined with no relevant items")
    gains = np.array(
        [1.0 if item in relevant else 0.0 for item in ranked[:k]]
    )
    discounts = 1.0 / np.log2(np.arange(2, len(gains) + 2))
    dcg = float((gains * discounts).sum())
    ideal_hits = min(len(relevant), k)
    ideal = float((1.0 / np.log2(np.arange(2, ideal_hits + 2))).sum())
    return dcg / ideal if ideal > 0 else 0.0


def mean_reciprocal_rank(rankings: list[tuple[list, set]]) -> float:
    """Mean of ``1 / rank`` of the first relevant item per query.

    Queries whose ranking contains no relevant item contribute 0.
    """
    if not rankings:
        raise ValueError("need at least one ranking")
    total = 0.0
    for ranked, relevant in rankings:
        relevant = set(relevant)
        rr = 0.0
        for position, item in enumerate(ranked, start=1):
            if item in relevant:
                rr = 1.0 / position
                break
        total += rr
    return total / len(rankings)
