"""First-order optimizers operating on lists of parameter arrays.

An optimizer is constructed once and then repeatedly fed matching lists of
parameters and gradients via ``step(params, grads)``; parameters are updated
in place.  State (momenta, Adam moments) is keyed by position in the list, so
the same parameter list must be passed on every step.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Optimizer", "SGD", "Adam", "get_optimizer"]


class Optimizer:
    """Base class for optimizers."""

    def step(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        raise NotImplementedError

    def reset(self) -> None:
        """Clear accumulated state (momenta etc.)."""


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(self, learning_rate: float = 0.01, momentum: float = 0.0):
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.learning_rate = learning_rate
        self.momentum = momentum
        self._velocity: list[np.ndarray] | None = None

    def step(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        if len(params) != len(grads):
            raise ValueError("params and grads length mismatch")
        if self.momentum == 0.0:
            for p, g in zip(params, grads):
                p -= self.learning_rate * g
            return
        if self._velocity is None:
            self._velocity = [np.zeros_like(p) for p in params]
        for v, p, g in zip(self._velocity, params, grads):
            v *= self.momentum
            v -= self.learning_rate * g
            p += v

    def reset(self) -> None:
        self._velocity = None


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015) with bias correction.

    The paper trains both its vote network and the point-process excitation
    network with Adam (via TensorFlow); this is a faithful numpy port.
    """

    def __init__(
        self,
        learning_rate: float = 0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ):
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("betas must be in [0, 1)")
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._m: list[np.ndarray] | None = None
        self._v: list[np.ndarray] | None = None
        self._t = 0

    def step(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        if len(params) != len(grads):
            raise ValueError("params and grads length mismatch")
        if self._m is None:
            self._m = [np.zeros_like(p) for p in params]
            self._v = [np.zeros_like(p) for p in params]
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        # Fold both bias corrections into a single step size.
        alpha = self.learning_rate * np.sqrt(1.0 - b2**self._t) / (1.0 - b1**self._t)
        for m, v, p, g in zip(self._m, self._v, params, grads):
            m *= b1
            m += (1.0 - b1) * g
            v *= b2
            v += (1.0 - b2) * g * g
            p -= alpha * m / (np.sqrt(v) + self.epsilon)

    def reset(self) -> None:
        self._m = None
        self._v = None
        self._t = 0


def get_optimizer(name_or_obj: str | Optimizer, **kwargs) -> Optimizer:
    """Resolve an optimizer by name (``"sgd"``/``"adam"``) or instance."""
    if isinstance(name_or_obj, Optimizer):
        return name_or_obj
    registry = {"sgd": SGD, "adam": Adam}
    try:
        return registry[name_or_obj](**kwargs)
    except KeyError:
        known = ", ".join(sorted(registry))
        raise ValueError(
            f"unknown optimizer {name_or_obj!r}; known: {known}"
        ) from None
