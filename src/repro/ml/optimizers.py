"""First-order optimizers operating on lists of parameter arrays.

An optimizer is constructed once and then repeatedly fed matching lists of
parameters and gradients via ``step(params, grads)``; parameters are updated
in place.  State (momenta, Adam moments) is keyed by position in the list, so
the same parameter list must be passed on every step.

``step`` is fused: updates run through preallocated per-parameter scratch
buffers with in-place ufuncs, so the hot training loop allocates nothing
per step.  Call :meth:`Optimizer.reset` to drop accumulated state when
reusing one optimizer across independent fits (the warm-refit path does
this explicitly).
"""

from __future__ import annotations

import numpy as np

__all__ = ["Optimizer", "SGD", "Adam", "get_optimizer"]


class Optimizer:
    """Base class for optimizers."""

    def step(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        raise NotImplementedError

    def reset(self) -> None:
        """Clear accumulated state (momenta etc.)."""


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(self, learning_rate: float = 0.01, momentum: float = 0.0):
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.learning_rate = learning_rate
        self.momentum = momentum
        self._velocity: list[np.ndarray] | None = None
        self._scratch: list[np.ndarray] | None = None

    def step(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        if len(params) != len(grads):
            raise ValueError("params and grads length mismatch")
        if self._scratch is None:
            self._scratch = [np.empty_like(p) for p in params]
        if self.momentum == 0.0:
            for s, p, g in zip(self._scratch, params, grads):
                np.multiply(g, self.learning_rate, out=s)
                p -= s
            return
        if self._velocity is None:
            self._velocity = [np.zeros_like(p) for p in params]
        for v, s, p, g in zip(self._velocity, self._scratch, params, grads):
            v *= self.momentum
            np.multiply(g, self.learning_rate, out=s)
            v -= s
            p += v

    def reset(self) -> None:
        self._velocity = None
        self._scratch = None


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015) with bias correction.

    The paper trains both its vote network and the point-process excitation
    network with Adam (via TensorFlow); this is a faithful numpy port.
    """

    def __init__(
        self,
        learning_rate: float = 0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ):
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("betas must be in [0, 1)")
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._m: list[np.ndarray] | None = None
        self._v: list[np.ndarray] | None = None
        self._scratch: list[np.ndarray] | None = None
        self._t = 0

    def step(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        if len(params) != len(grads):
            raise ValueError("params and grads length mismatch")
        if self._m is None:
            self._m = [np.zeros_like(p) for p in params]
            self._v = [np.zeros_like(p) for p in params]
            self._scratch = [np.empty_like(p) for p in params]
        if len(self._m) != len(params):
            raise ValueError(
                "parameter list changed length since the last step; "
                "call reset() before reusing the optimizer"
            )
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        # Fold both bias corrections into a single step size.
        alpha = self.learning_rate * np.sqrt(1.0 - b2**self._t) / (1.0 - b1**self._t)
        for m, v, s, p, g in zip(self._m, self._v, self._scratch, params, grads):
            # m = b1 m + (1-b1) g ; v = b2 v + (1-b2) g^2, all in place
            m *= b1
            np.multiply(g, 1.0 - b1, out=s)
            m += s
            v *= b2
            np.multiply(g, g, out=s)
            s *= 1.0 - b2
            v += s
            # p -= alpha * m / (sqrt(v) + eps)
            np.sqrt(v, out=s)
            s += self.epsilon
            np.divide(m, s, out=s)
            s *= alpha
            p -= s

    def reset(self) -> None:
        self._m = None
        self._v = None
        self._scratch = None
        self._t = 0


def get_optimizer(name_or_obj: str | Optimizer, **kwargs) -> Optimizer:
    """Resolve an optimizer by name (``"sgd"``/``"adam"``) or instance."""
    if isinstance(name_or_obj, Optimizer):
        return name_or_obj
    registry = {"sgd": SGD, "adam": Adam}
    try:
        return registry[name_or_obj](**kwargs)
    except KeyError:
        known = ", ".join(sorted(registry))
        raise ValueError(
            f"unknown optimizer {name_or_obj!r}; known: {known}"
        ) from None
