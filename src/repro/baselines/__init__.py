"""The paper's three baselines (Sec. IV-A)."""

from .mf import MatrixFactorization
from .poisson import PoissonRegression
from .sparfa import Sparfa

__all__ = ["MatrixFactorization", "PoissonRegression", "Sparfa"]
