"""Poisson regression — the paper's response-time baseline.

A GLM with log link: ``y ~ Poisson(exp(x^T beta + b))``.  The paper uses
the feature vector ``x_uq`` as regressors and the discretized (ceiling)
response time as the target, so the predicted mean serves as the
response-time prediction.  Fit by Newton-Raphson (IRLS) with an L2
ridge for stability.
"""

from __future__ import annotations

import numpy as np

__all__ = ["PoissonRegression"]

_MAX_LINK = 30.0  # exp overflow guard on the linear predictor


class PoissonRegression:
    """L2-regularized Poisson GLM fit by damped Newton iterations."""

    def __init__(self, l2: float = 1e-4, max_iter: int = 100, tol: float = 1e-8):
        if l2 < 0:
            raise ValueError("l2 must be non-negative")
        self.l2 = l2
        self.max_iter = max_iter
        self.tol = tol
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0

    def fit(self, x: np.ndarray, y: np.ndarray) -> "PoissonRegression":
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if x.ndim != 2:
            raise ValueError("x must be 2-D")
        if x.shape[0] != y.shape[0]:
            raise ValueError("x and y lengths differ")
        if np.any(y < 0):
            raise ValueError("Poisson targets must be non-negative")
        n, d = x.shape
        design = np.column_stack([x, np.ones(n)])
        beta = np.zeros(d + 1)
        # Initialize the intercept at log(mean) for immediate calibration.
        beta[-1] = np.log(max(y.mean(), 1e-8))
        ridge = np.full(d + 1, self.l2)
        ridge[-1] = 0.0  # do not penalize the intercept
        prev_nll = np.inf
        for _ in range(self.max_iter):
            eta = np.clip(design @ beta, -_MAX_LINK, _MAX_LINK)
            mu = np.exp(eta)
            nll = float(np.sum(mu - y * eta)) + 0.5 * float(ridge @ beta**2)
            grad = design.T @ (mu - y) + ridge * beta
            hess = (design * mu[:, None]).T @ design + np.diag(ridge)
            try:
                step = np.linalg.solve(hess, grad)
            except np.linalg.LinAlgError:
                step = np.linalg.lstsq(hess, grad, rcond=None)[0]
            # Damped update: halve the step until the NLL improves.
            step_size = 1.0
            for _ in range(30):
                candidate = beta - step_size * step
                eta_c = np.clip(design @ candidate, -_MAX_LINK, _MAX_LINK)
                nll_c = float(np.sum(np.exp(eta_c) - y * eta_c)) + 0.5 * float(
                    ridge @ candidate**2
                )
                if nll_c <= nll:
                    break
                step_size *= 0.5
            beta = beta - step_size * step
            if abs(prev_nll - nll) < self.tol:
                break
            prev_nll = nll
        self.coef_ = beta[:-1]
        self.intercept_ = float(beta[-1])
        return self

    def predict_mean(self, x: np.ndarray) -> np.ndarray:
        """Predicted Poisson mean ``exp(x beta + b)`` per row."""
        if self.coef_ is None:
            raise RuntimeError("model is not fitted")
        x = np.atleast_2d(np.asarray(x, dtype=float))
        eta = np.clip(x @ self.coef_ + self.intercept_, -_MAX_LINK, _MAX_LINK)
        return np.exp(eta)
