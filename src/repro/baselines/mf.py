"""Biased matrix factorization — the paper's net-vote baseline.

Koren-style collaborative filtering (paper reference [21]):
``v_hat_uq = mu + b_u + b_q + p_u^T q_q`` over observed (user,
question, votes) triples, fit by full-gradient Adam with L2
regularization.  The paper uses latent dimension 5.
"""

from __future__ import annotations

import numpy as np

from ..ml.optimizers import Adam

__all__ = ["MatrixFactorization"]


class MatrixFactorization:
    """Regularized biased MF on sparse real-valued observations."""

    def __init__(
        self,
        n_rows: int,
        n_cols: int,
        *,
        n_factors: int = 5,
        l2: float = 0.05,
        learning_rate: float = 0.05,
        n_iter: int = 500,
        seed: int = 0,
    ):
        if n_rows < 1 or n_cols < 1:
            raise ValueError("matrix dimensions must be positive")
        if n_factors < 1:
            raise ValueError("n_factors must be >= 1")
        if l2 < 0:
            raise ValueError("l2 must be non-negative")
        self.n_rows = n_rows
        self.n_cols = n_cols
        self.n_factors = n_factors
        self.l2 = l2
        self.learning_rate = learning_rate
        self.n_iter = n_iter
        self.seed = seed
        self.global_mean_: float = 0.0
        self.row_bias_: np.ndarray | None = None
        self.col_bias_: np.ndarray | None = None
        self.row_factors_: np.ndarray | None = None
        self.col_factors_: np.ndarray | None = None
        self.loss_history_: list[float] = []

    def fit(
        self,
        rows,
        cols,
        values,
        *,
        row_bias_init=None,
        col_bias_init=None,
        row_factors_init=None,
        col_factors_init=None,
    ) -> "MatrixFactorization":
        """Fit on observed entries given as parallel index/value arrays.

        The ``*_init`` arrays warm-start the corresponding parameters
        (shape-checked copies); omitted ones keep the seeded random
        initialization, which is drawn identically either way so a
        warm-started fit stays deterministic under the same seed.
        """
        rows = np.asarray(rows, dtype=int)
        cols = np.asarray(cols, dtype=int)
        values = np.asarray(values, dtype=float)
        if not (rows.shape == cols.shape == values.shape):
            raise ValueError("rows, cols and values must share a shape")
        if rows.size == 0:
            raise ValueError("need at least one observation")
        if rows.min() < 0 or rows.max() >= self.n_rows:
            raise ValueError("row index out of range")
        if cols.min() < 0 or cols.max() >= self.n_cols:
            raise ValueError("column index out of range")
        rng = np.random.default_rng(self.seed)
        n_obs = rows.size
        self.global_mean_ = float(values.mean())
        row_bias = np.zeros(self.n_rows)
        col_bias = np.zeros(self.n_cols)
        row_factors = rng.normal(0.0, 0.05, size=(self.n_rows, self.n_factors))
        col_factors = rng.normal(0.0, 0.05, size=(self.n_cols, self.n_factors))
        for target, init in (
            (row_bias, row_bias_init),
            (col_bias, col_bias_init),
            (row_factors, row_factors_init),
            (col_factors, col_factors_init),
        ):
            if init is not None:
                init = np.asarray(init, dtype=float)
                if init.shape != target.shape:
                    raise ValueError(
                        f"warm-start shape {init.shape} != {target.shape}"
                    )
                target[...] = init
        params = [row_bias, col_bias, row_factors, col_factors]
        opt = Adam(learning_rate=self.learning_rate)
        self.loss_history_ = []
        for _ in range(self.n_iter):
            pred = (
                self.global_mean_
                + row_bias[rows]
                + col_bias[cols]
                + np.sum(row_factors[rows] * col_factors[cols], axis=1)
            )
            err = pred - values
            mse = float(np.mean(err * err))
            self.loss_history_.append(mse)
            scale = 2.0 / n_obs
            grad_rb = np.zeros_like(row_bias)
            np.add.at(grad_rb, rows, scale * err)
            grad_cb = np.zeros_like(col_bias)
            np.add.at(grad_cb, cols, scale * err)
            grad_rf = np.zeros_like(row_factors)
            np.add.at(grad_rf, rows, scale * err[:, None] * col_factors[cols])
            grad_cf = np.zeros_like(col_factors)
            np.add.at(grad_cf, cols, scale * err[:, None] * row_factors[rows])
            grad_rb += self.l2 * row_bias / n_obs
            grad_cb += self.l2 * col_bias / n_obs
            grad_rf += self.l2 * row_factors / n_obs
            grad_cf += self.l2 * col_factors / n_obs
            opt.step(params, [grad_rb, grad_cb, grad_rf, grad_cf])
        self.row_bias_, self.col_bias_ = row_bias, col_bias
        self.row_factors_, self.col_factors_ = row_factors, col_factors
        return self

    def predict(self, rows, cols) -> np.ndarray:
        """Predicted values for (row, col) index pairs.

        Unseen rows/columns fall back to the learned biases (zero for a
        never-observed index), i.e. effectively the global mean.
        """
        if self.row_bias_ is None:
            raise RuntimeError("model is not fitted")
        rows = np.asarray(rows, dtype=int)
        cols = np.asarray(cols, dtype=int)
        return (
            self.global_mean_
            + self.row_bias_[rows]
            + self.col_bias_[cols]
            + np.sum(self.row_factors_[rows] * self.col_factors_[cols], axis=1)
        )
