"""SPARFA — sparse factor analysis for binary matrix completion.

The paper's baseline for the "who will answer" task (Sec. IV-A) is the
SPARFA model of Lan et al. (2014): observed binary entries are modeled
as ``P(Y_uq = 1) = sigmoid(w_q^T c_u + b_q)`` with a non-negative,
sparse question-loading matrix ``W`` and low-dimensional user concept
vectors ``C``.  This implementation follows the SPARFA-M recipe:
maximum likelihood with an L1 penalty on ``W`` (sparsity), an L2
penalty on ``C``, a non-negativity projection on ``W``, fit by Adam.

Entries not in the observation set are treated as unobserved, matching
the matrix-completion setting.
"""

from __future__ import annotations

import numpy as np

from ..ml.activations import sigmoid
from ..ml.optimizers import Adam

__all__ = ["Sparfa"]


class Sparfa:
    """Sparse factor analysis on (row, col, value) binary observations.

    Rows index users, columns index questions, mirroring the paper's
    answering matrix ``A = [a_uq]``.
    """

    def __init__(
        self,
        n_rows: int,
        n_cols: int,
        *,
        n_factors: int = 3,
        l1_loading: float = 1e-3,
        l2_concept: float = 1e-3,
        learning_rate: float = 0.05,
        n_iter: int = 500,
        seed: int = 0,
    ):
        if n_rows < 1 or n_cols < 1:
            raise ValueError("matrix dimensions must be positive")
        if n_factors < 1:
            raise ValueError("n_factors must be >= 1")
        if l1_loading < 0 or l2_concept < 0:
            raise ValueError("penalties must be non-negative")
        self.n_rows = n_rows
        self.n_cols = n_cols
        self.n_factors = n_factors
        self.l1_loading = l1_loading
        self.l2_concept = l2_concept
        self.learning_rate = learning_rate
        self.n_iter = n_iter
        self.seed = seed
        self.concepts_: np.ndarray | None = None  # C: (n_rows, k)
        self.loadings_: np.ndarray | None = None  # W: (n_cols, k), >= 0
        self.intercepts_: np.ndarray | None = None  # b: (n_cols,)
        self.loss_history_: list[float] = []

    def _check_observations(self, rows, cols, values):
        rows = np.asarray(rows, dtype=int)
        cols = np.asarray(cols, dtype=int)
        values = np.asarray(values, dtype=float)
        if not (rows.shape == cols.shape == values.shape):
            raise ValueError("rows, cols and values must share a shape")
        if rows.size == 0:
            raise ValueError("need at least one observation")
        if rows.min() < 0 or rows.max() >= self.n_rows:
            raise ValueError("row index out of range")
        if cols.min() < 0 or cols.max() >= self.n_cols:
            raise ValueError("column index out of range")
        if not np.all(np.isin(values, (0.0, 1.0))):
            raise ValueError("values must be binary")
        return rows, cols, values

    def fit(self, rows, cols, values) -> "Sparfa":
        """Fit on observed binary entries given as parallel index arrays."""
        rows, cols, values = self._check_observations(rows, cols, values)
        rng = np.random.default_rng(self.seed)
        n_obs = rows.size
        concepts = rng.normal(0.0, 0.1, size=(self.n_rows, self.n_factors))
        loadings = np.abs(rng.normal(0.0, 0.1, size=(self.n_cols, self.n_factors)))
        intercepts = np.zeros(self.n_cols)
        opt = Adam(learning_rate=self.learning_rate)
        params = [concepts, loadings, intercepts]
        self.loss_history_ = []
        for _ in range(self.n_iter):
            z = np.sum(concepts[rows] * loadings[cols], axis=1) + intercepts[cols]
            p = sigmoid(z)
            nll = float(
                np.mean(np.maximum(z, 0) + np.log1p(np.exp(-np.abs(z))) - values * z)
            )
            penalty = (
                self.l1_loading * np.abs(loadings).sum()
                + 0.5 * self.l2_concept * (concepts**2).sum()
            ) / n_obs
            self.loss_history_.append(nll + penalty)
            residual = (p - values) / n_obs
            grad_concepts = np.zeros_like(concepts)
            np.add.at(grad_concepts, rows, residual[:, None] * loadings[cols])
            grad_concepts += self.l2_concept * concepts / n_obs
            grad_loadings = np.zeros_like(loadings)
            np.add.at(grad_loadings, cols, residual[:, None] * concepts[rows])
            grad_loadings += self.l1_loading * np.sign(loadings) / n_obs
            grad_intercepts = np.zeros_like(intercepts)
            np.add.at(grad_intercepts, cols, residual)
            opt.step(params, [grad_concepts, grad_loadings, grad_intercepts])
            np.maximum(loadings, 0.0, out=loadings)  # non-negativity projection
        self.concepts_, self.loadings_, self.intercepts_ = (
            concepts,
            loadings,
            intercepts,
        )
        return self

    def predict_proba(self, rows, cols) -> np.ndarray:
        """P(Y=1) for (row, col) index pairs."""
        if self.concepts_ is None:
            raise RuntimeError("model is not fitted")
        rows = np.asarray(rows, dtype=int)
        cols = np.asarray(cols, dtype=int)
        z = (
            np.sum(self.concepts_[rows] * self.loadings_[cols], axis=1)
            + self.intercepts_[cols]
        )
        return sigmoid(z)
