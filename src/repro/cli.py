"""Command-line interface.

Subcommands cover the library's end-to-end workflow:

* ``generate``  — create a synthetic forum dataset and write it to disk;
* ``stats``     — print the Sec.-III descriptive summary of a dataset;
* ``train``     — fit the three predictors and save them;
* ``evaluate``  — run the Table-I comparison on a dataset;
* ``route``     — recommend answerers for a question with a saved model;
* ``replay``    — stream a dataset through the online deployment loop;
* ``serve``     — run a seeded concurrent load test against the async
  serving stack and print latency percentiles;
* ``validate``  — check a dataset file for integrity violations;
* ``scale``     — stream a large synthetic forum into sharded columnar logs;
* ``scenarios`` — run the scenario preset matrix (support desk, flash
  crowd, brigading, ...) through replay + serving and print per-regime
  accuracy deltas, latency percentiles and degradation counts.

Usage: ``python -m repro <subcommand> ...`` (see ``--help`` per command).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .core import (
    ForumPredictor,
    OnlineConfig,
    OnlineRecommendationLoop,
    PredictorConfig,
    QuestionRouter,
    ResilienceConfig,
    RetrievalConfig,
    run_table1,
)
from .core.persistence import load_predictor, save_predictor
from .forum import ForumConfig, generate_forum, load_dataset, save_dataset
from .forum.stats import summarize_dataset, summarize_graphs, vote_time_correlation
from .forum.validation import validate_dataset

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Joint prediction of answer timing and quality in CQA forums "
        "(reproduction of Hansen et al., ICDCS 2019).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a synthetic forum dataset")
    gen.add_argument("--output", type=Path, required=True, help="output .jsonl[.gz]")
    gen.add_argument("--questions", type=int, default=3000)
    gen.add_argument("--users", type=int, default=2000)
    gen.add_argument("--topics", type=int, default=8)
    gen.add_argument("--days", type=float, default=30.0)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument(
        "--raw",
        action="store_true",
        help="skip the paper's Sec. III-A preprocessing before saving",
    )

    stats = sub.add_parser("stats", help="summarize a dataset")
    stats.add_argument("--input", type=Path, required=True)

    train = sub.add_parser("train", help="train the three predictors")
    train.add_argument("--input", type=Path, required=True)
    train.add_argument("--model", type=Path, required=True, help="output .npz")
    train.add_argument("--topics", type=int, default=8)
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--betweenness-samples", type=int, default=None)

    evaluate = sub.add_parser("evaluate", help="run the Table-I comparison")
    evaluate.add_argument("--input", type=Path, required=True)
    evaluate.add_argument("--folds", type=int, default=5)
    evaluate.add_argument("--repeats", type=int, default=1)
    evaluate.add_argument("--topics", type=int, default=8)
    evaluate.add_argument("--seed", type=int, default=0)
    evaluate.add_argument("--betweenness-samples", type=int, default=None)

    validate = sub.add_parser("validate", help="check dataset integrity")
    validate.add_argument("--input", type=Path, required=True)
    validate.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero when any violation is found",
    )
    validate.add_argument(
        "--repair-to",
        type=Path,
        default=None,
        help="write a repaired copy (invalid posts dropped) to this path",
    )

    replay = sub.add_parser(
        "replay", help="stream a dataset through the online deployment loop"
    )
    replay.add_argument("--input", type=Path, required=True)
    replay.add_argument("--topics", type=int, default=8)
    replay.add_argument("--seed", type=int, default=0)
    replay.add_argument("--betweenness-samples", type=int, default=None)
    replay.add_argument(
        "--strategy",
        choices=("incremental", "rebuild"),
        default="incremental",
        help="refit by updating the live window state or by full rebuild",
    )
    replay.add_argument(
        "--cold-start",
        action="store_true",
        help="refit topics and networks from scratch every refit "
        "(rebuild strategy only)",
    )
    replay.add_argument("--refit-interval", type=float, default=120.0)
    replay.add_argument("--window", type=float, default=480.0)
    replay.add_argument("--warmup", type=float, default=120.0)
    replay.add_argument("--top-k", type=int, default=5)
    replay.add_argument(
        "--two-stage",
        action="store_true",
        help="route through two-stage candidate retrieval (topic inverted "
        "index + recency + MF embeddings, rank-fusion pool) instead of "
        "scoring every candidate",
    )
    replay.add_argument(
        "--retrieval-top-k",
        type=int,
        default=None,
        metavar="K",
        help="per-generator candidate budget for --two-stage "
        "(default: RetrievalConfig defaults)",
    )
    replay.add_argument(
        "--perf", action="store_true", help="print the stage-timer report"
    )
    replay.add_argument(
        "--faults",
        default=None,
        metavar="SPEC",
        help="replay through the fault injector + hardened loop; SPEC is "
        "comma-separated key=value pairs, e.g. "
        "'seed=7,dup=0.05,ooo=0.1,nan=0.02,skew=0.05,trunc=0.02' "
        "(keys: seed, dup[licate], ooo/out_of_order, nan/missing, "
        "skew/clock_skew, skew_hours, trunc[ate], delay/max_delay)",
    )

    serve = sub.add_parser(
        "serve",
        help="drive a seeded concurrent load test against the async "
        "serving stack (admission control + micro-batching) and print "
        "latency percentiles",
    )
    serve.add_argument("--input", type=Path, required=True)
    serve.add_argument("--askers", type=int, default=1000,
                       help="concurrent question askers in the load run")
    serve.add_argument("--events", type=int, default=200,
                       help="event submissions interleaved with the queries")
    serve.add_argument("--duration", type=float, default=60.0,
                       help="virtual seconds the arrival schedule spans")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--topics", type=int, default=8)
    serve.add_argument("--betweenness-samples", type=int, default=None)
    serve.add_argument("--max-batch", type=int, default=8,
                       help="micro-batcher coalescing limit")
    serve.add_argument("--max-wait-ms", type=float, default=2.0,
                       help="micro-batcher max collection window")
    serve.add_argument("--max-pending-queries", type=int, default=512,
                       help="admission bound on the query queue")
    serve.add_argument("--max-pending-events", type=int, default=4096,
                       help="admission bound on the event queue")
    serve.add_argument("--shards", type=int, default=1,
                       help="shard workers for candidate featurization "
                       "(1 = single-process)")
    serve.add_argument("--shard-mode", choices=("inline", "process"),
                       default="process",
                       help="run shards inline or on worker processes")
    serve.add_argument("--transport", choices=("shm", "pickle"),
                       default="shm",
                       help="shard state transport (process mode)")
    serve.add_argument("--cache-pairs", type=int, default=0,
                       help="capacity of the refit-epoch prediction cache "
                       "in (user, thread) pairs; 0 disables")
    serve.add_argument("--repeat-fraction", type=float, default=0.0,
                       help="share of queries re-asking an earlier "
                       "question (exercises the prediction cache)")

    scale = sub.add_parser(
        "scale",
        help="stream a synthetic forum into sharded columnar logs "
        "(bounded memory; prints throughput and peak RSS)",
    )
    scale.add_argument("--users", type=int, default=100_000)
    scale.add_argument("--questions", type=int, default=150_000)
    scale.add_argument("--topics", type=int, default=8)
    scale.add_argument("--days", type=float, default=30.0)
    scale.add_argument("--shards", type=int, default=4)
    scale.add_argument(
        "--chunk-questions",
        type=int,
        default=50_000,
        help="questions generated per streamed chunk (memory/throughput knob)",
    )
    scale.add_argument("--seed", type=int, default=0)

    scenarios = sub.add_parser(
        "scenarios",
        help="run the scenario preset matrix through the full stack and "
        "print per-regime accuracy deltas, latency and degradation",
    )
    scenarios.add_argument(
        "--preset",
        action="append",
        default=None,
        metavar="NAME",
        help="preset to run (repeatable; default: all registered); "
        "baseline always runs for the accuracy deltas",
    )
    scenarios.add_argument("--seed", type=int, default=0)
    scenarios.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="forum size multiplier (users and questions together)",
    )
    scenarios.add_argument(
        "--no-serving",
        action="store_true",
        help="skip the async serving leg (replay metrics only)",
    )
    scenarios.add_argument(
        "--list", action="store_true", help="list presets and exit"
    )
    scenarios.add_argument(
        "--output",
        type=Path,
        default=None,
        help="also write the full matrix report as JSON",
    )

    route = sub.add_parser("route", help="recommend answerers for a question")
    route.add_argument("--input", type=Path, required=True)
    route.add_argument("--model", type=Path, required=True)
    route.add_argument("--question-id", type=int, required=True)
    route.add_argument("--epsilon", type=float, default=0.3)
    route.add_argument("--tradeoff", type=float, default=0.1)
    route.add_argument("--top", type=int, default=10)
    return parser


def _cmd_generate(args) -> int:
    config = ForumConfig(
        n_users=args.users,
        n_questions=args.questions,
        n_topics=args.topics,
        duration_days=args.days,
    )
    forum = generate_forum(config, seed=args.seed)
    dataset = forum.dataset
    if not args.raw:
        dataset, report = dataset.preprocess()
        print(
            f"preprocessed: dropped {report.questions_dropped_unanswered} "
            f"unanswered, {report.duplicate_answers_removed} duplicates, "
            f"{report.zero_delay_answers_removed} zero-delay answers"
        )
    save_dataset(dataset, args.output)
    print(
        f"wrote {len(dataset)} threads ({dataset.num_answers} answers) "
        f"to {args.output}"
    )
    return 0


def _cmd_stats(args) -> int:
    dataset = load_dataset(args.input)
    summary = summarize_dataset(dataset)
    print(f"questions:  {summary.n_questions}")
    print(f"answers:    {summary.n_answers}")
    print(f"askers:     {summary.n_askers}")
    print(f"answerers:  {summary.n_answerers}")
    print(f"users:      {summary.n_users}")
    print(f"density:    {100 * summary.answer_matrix_density:.4f}%")
    if dataset.num_answers >= 2:
        corr = vote_time_correlation(dataset)
        print(f"vote-time correlation: pearson {corr['pearson']:+.4f}")
    for name, g in summarize_graphs(dataset).items():
        print(
            f"graph {name}: {g.n_nodes} nodes, {g.n_edges} edges, "
            f"avg degree {g.average_degree:.2f}, {g.n_components} components"
        )
    return 0


def _config_from_args(args) -> PredictorConfig:
    return PredictorConfig(
        n_topics=args.topics,
        seed=args.seed,
        betweenness_sample_size=args.betweenness_samples,
    )


def _cmd_train(args) -> int:
    dataset = load_dataset(args.input)
    predictor = ForumPredictor(_config_from_args(args)).fit(dataset)
    save_predictor(predictor, args.model)
    print(f"trained on {len(dataset)} threads; model saved to {args.model}")
    return 0


def _cmd_evaluate(args) -> int:
    dataset = load_dataset(args.input)
    result = run_table1(
        dataset,
        config=_config_from_args(args),
        n_folds=args.folds,
        n_repeats=args.repeats,
    )
    print(f"{'task':6s} {'metric':6s} {'baseline':>10s} {'model':>10s} {'improve':>9s}")
    for task, metric, base, model, imp in result.as_rows():
        print(f"{task:6s} {metric:6s} {base:10.3f} {model:10.3f} {imp:8.1f}%")
    return 0


_FAULT_KEYS = {
    "seed": "seed",
    "dup": "duplicate_rate",
    "duplicate": "duplicate_rate",
    "ooo": "out_of_order_rate",
    "out_of_order": "out_of_order_rate",
    "nan": "missing_field_rate",
    "missing": "missing_field_rate",
    "skew": "clock_skew_rate",
    "clock_skew": "clock_skew_rate",
    "skew_hours": "clock_skew_hours",
    "trunc": "truncate_rate",
    "truncate": "truncate_rate",
    "delay": "max_delay_slots",
    "max_delay": "max_delay_slots",
}


def _parse_fault_plan(spec: str):
    from .core.resilience import FaultPlan

    kwargs: dict = {}
    for item in spec.split(","):
        item = item.strip()
        if not item:
            continue
        key, sep, value = item.partition("=")
        field_name = _FAULT_KEYS.get(key.strip())
        if not sep or field_name is None:
            raise ValueError(
                f"bad --faults entry {item!r}; keys: "
                + ", ".join(sorted(set(_FAULT_KEYS)))
            )
        if field_name in ("seed", "max_delay_slots"):
            kwargs[field_name] = int(value)
        else:
            kwargs[field_name] = float(value)
    return FaultPlan(**kwargs)


def _cmd_replay(args) -> int:
    from . import perf

    if args.cold_start and args.strategy == "incremental":
        print(
            "error: --cold-start requires --strategy rebuild", file=sys.stderr
        )
        return 2
    fault_plan = None
    if args.faults is not None:
        try:
            fault_plan = _parse_fault_plan(args.faults)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    dataset = load_dataset(args.input)
    retrieval = None
    if args.two_stage:
        overrides = {"seed": args.seed}
        if args.retrieval_top_k is not None:
            overrides.update(
                topic_top_k=args.retrieval_top_k,
                recency_top_k=args.retrieval_top_k,
                mf_top_k=args.retrieval_top_k,
                pool_size=2 * args.retrieval_top_k,
            )
        retrieval = RetrievalConfig(**overrides)
    online = OnlineConfig(
        refit_interval_hours=args.refit_interval,
        window_hours=args.window,
        warmup_hours=args.warmup,
        top_k=args.top_k,
        refit_strategy=args.strategy,
        warm_start=not args.cold_start,
        retrieval=retrieval,
    )
    resilience = ResilienceConfig() if fault_plan is not None else None
    loop = OnlineRecommendationLoop(_config_from_args(args), online, resilience)
    with perf.use_registry() as registry:
        report = loop.run(dataset, fault_plan=fault_plan)
    print(
        f"strategy {args.strategy}: {report.n_refits} refits, "
        f"{report.n_questions_seen} questions seen, {report.n_routed} routed"
    )
    refit = registry.stage("online.refit")
    print(
        f"refit time: {refit.total_seconds:.2f}s total, "
        f"{refit.mean_seconds:.2f}s mean over {refit.calls} refits"
    )
    if args.two_stage:
        queries = registry.counter("retrieval.queries")
        pooled = registry.counter("retrieval.pool_users")
        fallbacks = registry.counter("retrieval.dense_fallbacks")
        mean_pool = pooled / queries if queries else 0.0
        print(
            f"retrieval: {queries} pool queries, "
            f"{mean_pool:.1f} candidates/pool mean, "
            f"{fallbacks} dense fallbacks"
        )
    if report.rankings:
        print(
            f"hit@1 {report.hit_rate_at_1:.4f}  "
            f"P@{args.top_k} {report.precision_at(args.top_k):.4f}  "
            f"MRR {report.mrr:.4f}  "
            f"NDCG@{args.top_k} {report.ndcg_at(args.top_k):.4f}"
        )
    if report.degradation is not None:
        summary = report.degradation.summary()
        if summary:
            print("degradation:")
            for action, count in sorted(summary.items()):
                print(f"  {action}: {count}")
        else:
            print("degradation: none (stream replayed clean)")
        injected = registry.counter("resilience.faults_injected")
        if injected:
            print(f"faults injected: {injected}")
    if args.perf:
        print(registry.report())
    return 0


def _cmd_serve(args) -> int:
    from .core.serving import (
        AdmissionConfig,
        BatchPolicy,
        RecommendationService,
        ServiceConfig,
        ServingCore,
        run_load,
    )
    from .forum.traffic import TrafficConfig, generate_traffic

    dataset = load_dataset(args.input)
    core = ServingCore(
        _config_from_args(args),
        OnlineConfig(
            serving_shards=args.shards,
            shard_mode=args.shard_mode,
            shard_transport=args.transport,
            feature_cache_pairs=args.cache_pairs,
        ),
    )
    service = RecommendationService(
        core,
        ServiceConfig(
            admission=AdmissionConfig(
                max_pending_events=args.max_pending_events,
                max_pending_queries=args.max_pending_queries,
            ),
            batch=BatchPolicy(
                max_batch=args.max_batch,
                max_wait_s=args.max_wait_ms / 1000.0,
            ),
        ),
    )
    print(f"warming on {len(dataset)} threads ...")
    service.warm(dataset)
    health = service.health()
    if not health["warmed"]:
        print("error: dataset too small to warm the model", file=sys.stderr)
        return 1
    traffic = generate_traffic(
        dataset,
        TrafficConfig(
            n_askers=args.askers,
            n_events=args.events,
            duration_s=args.duration,
            repeat_fraction=args.repeat_fraction,
            seed=args.seed,
        ),
    )
    # close_core guarantees shard workers and shm blocks are released
    # even when the load run raises.
    report = run_load(service, traffic, close_core=True)
    metrics = report.metrics
    print(
        f"load: {report.n_queries} queries + {report.n_events} events over "
        f"{args.duration:.0f}s virtual ({report.wall_s:.2f}s wall, "
        f"{report.requests_per_wall_s:.0f} req/s sustained)"
    )
    print(
        f"admission: {metrics['queries']['admitted']} queries admitted, "
        f"{metrics['queries']['rejected']} rejected; "
        f"{metrics['events']['admitted']} events admitted, "
        f"{metrics['events']['rejected']} rejected"
    )
    print(
        f"batching: {metrics['queries']['batches']} batches, "
        f"mean size {metrics['queries']['mean_batch_size']:.2f}"
    )
    latency = metrics["query_latency"]
    if latency["count"]:
        print(
            f"query latency (virtual): p50 {latency['p50_ms']:.2f}ms  "
            f"p95 {latency['p95_ms']:.2f}ms  p99 {latency['p99_ms']:.2f}ms"
        )
    cache = metrics["cache"]
    if cache["max_pairs"]:
        print(
            f"prediction cache: {cache['hits']} hits / "
            f"{cache['misses']} misses, {cache['evictions']} evictions "
            f"({cache['size']}/{cache['max_pairs']} pairs held)"
        )
    if "sharding" in metrics:
        sharding = metrics["sharding"]
        print(
            f"sharding: {sharding['n_shards']} shards "
            f"({sharding['mode']}/{sharding['transport']}), "
            f"epoch {sharding['epoch']}, {sharding['scatters']} scatters, "
            f"{sharding['shm_bytes_published'] / 1024**2:.1f} MB published"
        )
    statuses = ", ".join(
        f"{status}={count}"
        for status, count in sorted(report.query_statuses.items())
    )
    print(f"responses: {statuses}; {report.n_degraded} degraded")
    summary = service.degradation.summary()
    if summary:
        print("degradation:")
        for action, count in sorted(summary.items()):
            print(f"  {action}: {count}")
    print(f"health: {service.health()['status']}")
    return 0


def _cmd_scale(args) -> int:
    import time

    from .forum.streaming import ingest_to_shards

    config = ForumConfig(
        n_users=args.users,
        n_questions=args.questions,
        n_topics=args.topics,
        duration_days=args.days,
    )
    start = time.perf_counter()
    logs, questions, report = ingest_to_shards(
        config,
        seed=args.seed,
        n_shards=args.shards,
        chunk_questions=args.chunk_questions,
    )
    seconds = time.perf_counter() - start
    posts = report.n_questions + report.n_answers
    print(
        f"streamed {report.n_questions} questions + {report.n_answers} "
        f"answers ({report.n_active_users} active of {report.n_users} "
        f"users) in {seconds:.2f}s ({posts / seconds:.0f} posts/s)"
    )
    print(
        f"columnar store: {questions.n_rows} question rows "
        f"({report.question_bytes / 1024**2:.1f} MB), "
        f"{sum(log.n_rows for log in logs)} answer rows across "
        f"{args.shards} shards ({report.answer_bytes / 1024**2:.1f} MB)"
    )
    for shard, count in enumerate(report.answers_per_shard):
        print(f"  shard {shard}: {count} answers")
    print(
        f"{report.n_chunks} chunks of <= {args.chunk_questions} questions; "
        f"peak RSS {report.peak_rss_bytes / 1024**2:.0f} MB"
    )
    return 0


def _cmd_scenarios(args) -> int:
    import json

    from .forum.scenarios import (
        ScenarioMatrixRunner,
        get_scenario,
        list_scenarios,
    )

    if args.list:
        for name in list_scenarios():
            print(f"{name:16s} {get_scenario(name).description}")
        return 0
    names = args.preset or list_scenarios()
    for name in names:
        get_scenario(name)  # fail fast on typos, before any model fits
    runner = ScenarioMatrixRunner(
        names,
        seed=args.seed,
        scale=args.scale,
        include_serving=not args.no_serving,
    )
    result = runner.run()
    header = (
        f"{'scenario':16s} {'threads':>7s} {'hit@1':>7s} {'Δhit@1':>8s} "
        f"{'MRR':>7s} {'p50ms':>8s} {'p99ms':>8s} {'shed':>5s} {'degr':>5s}"
    )
    print(header)
    for name, rep in result["scenarios"].items():
        latency = rep["latency_ms"]
        delta = rep["accuracy_delta"].get("hit_rate_at_1")
        print(
            f"{name:16s} {rep['n_threads']:7d} "
            f"{rep['accuracy']['hit_rate_at_1']:7.4f} "
            f"{('%+8.4f' % delta) if delta is not None else '       -'} "
            f"{rep['accuracy']['mrr']:7.4f} "
            f"{latency.get('p50_ms', float('nan')):8.2f} "
            f"{latency.get('p99_ms', float('nan')):8.2f} "
            f"{rep['n_rejected']:5d} {rep['n_degradations']:5d}"
        )
        if rep["degradation"]:
            for action, count in sorted(rep["degradation"].items()):
                print(f"  {action}: {count}")
    if args.output is not None:
        args.output.write_text(json.dumps(result, indent=1, sort_keys=True))
        print(f"matrix report written to {args.output}")
    return 0


def _cmd_route(args) -> int:
    dataset = load_dataset(args.input)
    if args.question_id not in dataset:
        print(f"error: question {args.question_id} not in dataset", file=sys.stderr)
        return 1
    predictor = load_predictor(args.model, dataset)
    router = QuestionRouter(predictor, epsilon=args.epsilon)
    thread = dataset.thread(args.question_id)
    candidates = sorted(dataset.answerers - {thread.asker})
    result = router.recommend(thread, candidates, tradeoff=args.tradeoff)
    if result is None:
        print("no eligible answerers for this question")
        return 1
    print(f"{'user':>8s} {'p':>6s} {'P(answer)':>10s} {'votes':>7s} {'hours':>7s}")
    for user, prob in result.ranked_users()[: args.top]:
        idx = int(result.users.tolist().index(user))
        print(
            f"{user:8d} {prob:6.2f} {result.predictions['answer'][idx]:10.3f} "
            f"{result.predictions['votes'][idx]:7.2f} "
            f"{result.predictions['response_time'][idx]:7.2f}"
        )
    return 0


def _cmd_validate(args) -> int:
    dataset = load_dataset(args.input)
    report = validate_dataset(dataset)
    if report.ok:
        print(f"{args.input}: OK ({len(dataset)} threads)")
        return 0
    for code, count in sorted(report.summary().items()):
        print(f"{code}: {count}")
    for issue in report.issues[:20]:
        print(f"  thread {issue.thread_id}: [{issue.code}] {issue.detail}")
    if len(report.issues) > 20:
        print(f"  ... and {len(report.issues) - 20} more")
    if args.repair_to is not None:
        from .forum.repair import repair_dataset

        repaired, repair_report = repair_dataset(dataset)
        save_dataset(repaired, args.repair_to)
        print(f"repaired copy written to {args.repair_to}: {repair_report}")
        return 0
    return 1 if args.strict else 0


_COMMANDS = {
    "generate": _cmd_generate,
    "stats": _cmd_stats,
    "train": _cmd_train,
    "evaluate": _cmd_evaluate,
    "validate": _cmd_validate,
    "route": _cmd_route,
    "replay": _cmd_replay,
    "serve": _cmd_serve,
    "scale": _cmd_scale,
    "scenarios": _cmd_scenarios,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
