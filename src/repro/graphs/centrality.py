"""Centrality measures on the SLN graphs.

The paper's social features (xv), (xvi), (xviii), (xix) are closeness and
betweenness centralities.  Footnote 5 specifies the disconnected-graph
convention: node pairs with no connecting path are simply removed from
the sums, so closeness is ``(|U| - 1) / sum(dist to reachable nodes)``
and betweenness only counts source/target pairs in the same component.

Both measures run level-synchronous BFS over a CSR adjacency, expanding
every source of a block simultaneously with vectorized gathers — the
per-refit centrality recompute of the online loop is the hot path here,
and the per-node Python BFS it replaced dominated it.
"""

from __future__ import annotations

from collections.abc import Hashable

import numpy as np

from .graph import UndirectedGraph

__all__ = ["closeness_centrality", "betweenness_centrality"]

# Sources per BFS block: bounds the dist/sigma working set to
# _BLOCK x num_nodes while keeping the gathers wide enough to amortize.
_BLOCK = 256


def _csr(graph: UndirectedGraph) -> tuple[list, np.ndarray, np.ndarray]:
    """Nodes in iteration order plus CSR ``(indptr, indices)`` adjacency."""
    nodes = list(graph.nodes())
    index = {v: i for i, v in enumerate(nodes)}
    degrees = np.fromiter(
        (len(graph.neighbors(v)) for v in nodes), dtype=np.int64, count=len(nodes)
    )
    indptr = np.zeros(len(nodes) + 1, dtype=np.int64)
    np.cumsum(degrees, out=indptr[1:])
    indices = np.empty(int(indptr[-1]), dtype=np.int64)
    for i, v in enumerate(nodes):
        indices[indptr[i] : indptr[i + 1]] = [index[w] for w in graph.neighbors(v)]
    return nodes, indptr, indices


def _expand(
    indptr: np.ndarray,
    indices: np.ndarray,
    srcs: np.ndarray,
    frontier: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """All (source, frontier-node, neighbor) edge triples of one level."""
    counts = indptr[frontier + 1] - indptr[frontier]
    total = int(counts.sum())
    offsets = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(counts) - counts, counts
    )
    neighbors = indices[np.repeat(indptr[frontier], counts) + offsets]
    return np.repeat(srcs, counts), np.repeat(frontier, counts), neighbors


def _bfs_block(
    indptr: np.ndarray,
    indices: np.ndarray,
    sources: np.ndarray,
    n: int,
    *,
    count_paths: bool = True,
) -> tuple[np.ndarray, np.ndarray, list[tuple[np.ndarray, np.ndarray]]]:
    """Level-synchronous BFS from a block of sources at once.

    Returns the distance matrix (block x n, -1 unreachable), the
    shortest-path counts ``sigma`` and the per-level (source, node)
    frontiers.  ``count_paths=False`` skips the sigma accumulation —
    closeness only needs distances, and the scatter-add is the costly
    part.
    """
    b = len(sources)
    dist = np.full((b, n), -1, dtype=np.int64)
    sigma = np.zeros((b, n))
    rows = np.arange(b, dtype=np.int64)
    dist[rows, sources] = 0
    sigma[rows, sources] = 1.0
    levels = [(rows, sources.astype(np.int64))]
    depth = 0
    while levels[-1][0].size:
        depth += 1
        srcs, via, nbrs = _expand(indptr, indices, *levels[-1])
        fresh = dist[srcs, nbrs] < 0
        found = fresh.any()
        if found:
            # Dedup (source, node) pairs discovered via several parents:
            # duplicate writes into the mask are harmless, and nonzero
            # yields each pair once in row-major order.
            mask = np.zeros((b, n), dtype=bool)
            mask[srcs[fresh], nbrs[fresh]] = True
            new_srcs, new_nodes = np.nonzero(mask)
            dist[new_srcs, new_nodes] = depth
        if count_paths:
            # Path counts flow over every edge that lands on this level,
            # including edges into nodes discovered at an earlier gather.
            on_level = dist[srcs, nbrs] == depth
            np.add.at(
                sigma,
                (srcs[on_level], nbrs[on_level]),
                sigma[srcs[on_level], via[on_level]],
            )
        if not found:
            break
        levels.append((new_srcs, new_nodes))
    return dist, sigma, levels


def closeness_centrality(graph: UndirectedGraph) -> dict[Hashable, float]:
    """Closeness ``l_u = (|U| - 1) / sum_{v reachable} z_uv`` for every node.

    Isolated nodes (no reachable neighbors) get closeness 0.
    """
    nodes, indptr, indices = _csr(graph)
    n = len(nodes)
    out: dict[Hashable, float] = {}
    for start in range(0, n, _BLOCK):
        sources = np.arange(start, min(start + _BLOCK, n), dtype=np.int64)
        dist, _, _ = _bfs_block(indptr, indices, sources, n, count_paths=False)
        totals = np.where(dist > 0, dist, 0).sum(axis=1)
        for i, total in zip(sources, totals):
            out[nodes[i]] = (n - 1) / total if total > 0 else 0.0
    return out


def betweenness_centrality(
    graph: UndirectedGraph,
    *,
    normalized: bool = False,
    sample_sources: int | None = None,
    seed: int = 0,
) -> dict[Hashable, float]:
    """Betweenness via Brandes' algorithm on the unweighted graph.

    ``b_u = sum_{s != t != u} sigma_st(u) / sigma_st`` over unordered
    pairs (undirected convention: each pair counted once).  With
    ``normalized=True`` values are divided by ``(n-1)(n-2)/2``.

    ``sample_sources`` caps the number of BFS sources (Brandes-Pich
    approximation): dependencies are accumulated from a uniform random
    subset of sources and rescaled by ``n / |sample|``.  Exact when the
    cap is None or at least the node count.
    """
    nodes, indptr, indices = _csr(graph)
    n = len(nodes)
    scale_sources = 1.0
    if sample_sources is not None and 0 < sample_sources < n:
        rng = np.random.default_rng(seed)
        source_ids = rng.choice(n, size=sample_sources, replace=False)
        scale_sources = n / sample_sources
    else:
        source_ids = np.arange(n, dtype=np.int64)
    betweenness = np.zeros(n)
    for start in range(0, len(source_ids), _BLOCK):
        sources = np.asarray(source_ids[start : start + _BLOCK], dtype=np.int64)
        dist, sigma, levels = _bfs_block(indptr, indices, sources, n)
        b = len(sources)
        delta = np.zeros((b, n))
        # Dependency accumulation, deepest level first; within the BFS
        # DAG a node's successors all sit exactly one level deeper.
        for srcs_l, nodes_l in levels[:0:-1]:
            srcs, w, nbrs = _expand(indptr, indices, srcs_l, nodes_l)
            pred = dist[srcs, nbrs] == dist[srcs, w] - 1
            srcs, w, nbrs = srcs[pred], w[pred], nbrs[pred]
            np.add.at(
                delta,
                (srcs, nbrs),
                sigma[srcs, nbrs] * (1.0 + delta[srcs, w]) / sigma[srcs, w],
            )
        delta[np.arange(b), sources] = 0.0  # s's own dependency is not counted
        betweenness += delta.sum(axis=0)
    scale = 0.5 * scale_sources
    if normalized and n > 2:
        scale /= (n - 1) * (n - 2) / 2.0
    return {v: betweenness[i] * scale for i, v in enumerate(nodes)}
