"""Centrality measures on the SLN graphs.

The paper's social features (xv), (xvi), (xviii), (xix) are closeness and
betweenness centralities.  Footnote 5 specifies the disconnected-graph
convention: node pairs with no connecting path are simply removed from
the sums, so closeness is ``(|U| - 1) / sum(dist to reachable nodes)``
and betweenness only counts source/target pairs in the same component.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable, Iterable

import numpy as np

from .graph import UndirectedGraph

__all__ = ["closeness_centrality", "betweenness_centrality"]


def closeness_centrality(graph: UndirectedGraph) -> dict[Hashable, float]:
    """Closeness ``l_u = (|U| - 1) / sum_{v reachable} z_uv`` for every node.

    Isolated nodes (no reachable neighbors) get closeness 0.
    """
    n = graph.num_nodes
    out: dict[Hashable, float] = {}
    for u in graph.nodes():
        dist = graph.bfs_distances(u)
        total = sum(dist.values())  # distance to self is 0
        out[u] = (n - 1) / total if total > 0 else 0.0
    return out


def betweenness_centrality(
    graph: UndirectedGraph,
    *,
    normalized: bool = False,
    sample_sources: int | None = None,
    seed: int = 0,
) -> dict[Hashable, float]:
    """Betweenness via Brandes' algorithm on the unweighted graph.

    ``b_u = sum_{s != t != u} sigma_st(u) / sigma_st`` over unordered
    pairs (undirected convention: each pair counted once).  With
    ``normalized=True`` values are divided by ``(n-1)(n-2)/2``.

    ``sample_sources`` caps the number of BFS sources (Brandes-Pich
    approximation): dependencies are accumulated from a uniform random
    subset of sources and rescaled by ``n / |sample|``.  Exact when the
    cap is None or at least the node count.
    """
    nodes = list(graph.nodes())
    n = len(nodes)
    index = {v: i for i, v in enumerate(nodes)}
    adjacency: list[list[int]] = [
        [index[w] for w in graph.neighbors(v)] for v in nodes
    ]
    scale_sources = 1.0
    if sample_sources is not None and 0 < sample_sources < n:
        rng = np.random.default_rng(seed)
        source_ids = rng.choice(n, size=sample_sources, replace=False).tolist()
        scale_sources = n / sample_sources
    else:
        source_ids = range(n)
    betweenness = np.zeros(n)
    for s in source_ids:
        # Single-source shortest paths (BFS) with path counting.
        stack: list[int] = []
        predecessors: list[list[int]] = [[] for _ in range(n)]
        sigma = np.zeros(n)
        sigma[s] = 1.0
        dist = np.full(n, -1, dtype=np.int64)
        dist[s] = 0
        queue: deque[int] = deque([s])
        while queue:
            v = queue.popleft()
            stack.append(v)
            dv1 = dist[v] + 1
            for w in adjacency[v]:
                if dist[w] < 0:
                    dist[w] = dv1
                    queue.append(w)
                if dist[w] == dv1:
                    sigma[w] += sigma[v]
                    predecessors[w].append(v)
        # Accumulate dependencies.
        delta = np.zeros(n)
        while stack:
            w = stack.pop()
            coeff = (1.0 + delta[w]) / sigma[w]
            for v in predecessors[w]:
                delta[v] += sigma[v] * coeff
            if w != s:
                betweenness[w] += delta[w]
        # Each unordered pair is visited from both endpoints; halve below.
    scale = 0.5 * scale_sources
    if normalized and n > 2:
        scale /= (n - 1) * (n - 2) / 2.0
    return {v: betweenness[i] * scale for v, i in index.items()}
