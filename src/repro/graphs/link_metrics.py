"""Pairwise link metrics on the SLN graphs.

Implements the resource-allocation index of features (xvii)/(xx):
``Re_uv = sum_{n in Gamma_u ∩ Gamma_v} 1 / |Gamma_n|``, with the paper's
convention that the index is 0 when the pair has no common neighbors (or
when either node is absent from the graph).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable

from .graph import UndirectedGraph

__all__ = [
    "resource_allocation_index",
    "resource_allocation_indices",
    "common_neighbors",
    "jaccard_coefficient",
]


def resource_allocation_index(
    graph: UndirectedGraph, u: Hashable, v: Hashable
) -> float:
    """Resource-allocation index of a node pair; 0 when undefined."""
    if u not in graph or v not in graph:
        return 0.0
    common = graph.neighbors(u) & graph.neighbors(v)
    return sum(1.0 / graph.degree(n) for n in common if graph.degree(n) > 0)


def resource_allocation_indices(
    graph: UndirectedGraph, pairs: Iterable[tuple[Hashable, Hashable]]
) -> list[float]:
    """Resource-allocation index for many node pairs at once.

    Reuses inverse degrees across the whole batch, so featurizing a
    block of (user, asker) pairs touches each common neighbor's degree
    once instead of once per pair.
    """
    inv_degree: dict[Hashable, float] = {}
    out: list[float] = []
    for u, v in pairs:
        if u not in graph or v not in graph:
            out.append(0.0)
            continue
        total = 0.0
        for n in graph.neighbors(u) & graph.neighbors(v):
            inv = inv_degree.get(n)
            if inv is None:
                degree = graph.degree(n)
                inv = 1.0 / degree if degree > 0 else 0.0
                inv_degree[n] = inv
            total += inv
        out.append(total)
    return out


def common_neighbors(graph: UndirectedGraph, u: Hashable, v: Hashable) -> int:
    """Number of shared neighbors; 0 when either node is absent."""
    if u not in graph or v not in graph:
        return 0
    return len(graph.neighbors(u) & graph.neighbors(v))


def jaccard_coefficient(graph: UndirectedGraph, u: Hashable, v: Hashable) -> float:
    """Jaccard overlap of neighbor sets; 0 when undefined."""
    if u not in graph or v not in graph:
        return 0.0
    nu, nv = graph.neighbors(u), graph.neighbors(v)
    union = len(nu | nv)
    return len(nu & nv) / union if union else 0.0
