"""Pairwise link metrics on the SLN graphs.

Implements the resource-allocation index of features (xvii)/(xx):
``Re_uv = sum_{n in Gamma_u ∩ Gamma_v} 1 / |Gamma_n|``, with the paper's
convention that the index is 0 when the pair has no common neighbors (or
when either node is absent from the graph).
"""

from __future__ import annotations

from collections.abc import Hashable

from .graph import UndirectedGraph

__all__ = ["resource_allocation_index", "common_neighbors", "jaccard_coefficient"]


def resource_allocation_index(
    graph: UndirectedGraph, u: Hashable, v: Hashable
) -> float:
    """Resource-allocation index of a node pair; 0 when undefined."""
    if u not in graph or v not in graph:
        return 0.0
    common = graph.neighbors(u) & graph.neighbors(v)
    return sum(1.0 / graph.degree(n) for n in common if graph.degree(n) > 0)


def common_neighbors(graph: UndirectedGraph, u: Hashable, v: Hashable) -> int:
    """Number of shared neighbors; 0 when either node is absent."""
    if u not in graph or v not in graph:
        return 0
    return len(graph.neighbors(u) & graph.neighbors(v))


def jaccard_coefficient(graph: UndirectedGraph, u: Hashable, v: Hashable) -> float:
    """Jaccard overlap of neighbor sets; 0 when undefined."""
    if u not in graph or v not in graph:
        return 0.0
    nu, nv = graph.neighbors(u), graph.neighbors(v)
    union = len(nu | nv)
    return len(nu & nv) / union if union else 0.0
