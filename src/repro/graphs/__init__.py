"""Graph substrate: the Social Learning Network graphs and their metrics."""

from .builders import build_dense_graph, build_qa_graph
from .centrality import betweenness_centrality, closeness_centrality
from .graph import UndirectedGraph
from .statistics import (
    average_clustering,
    degree_assortativity,
    degree_histogram,
    local_clustering,
)
from .link_metrics import (
    common_neighbors,
    jaccard_coefficient,
    resource_allocation_index,
    resource_allocation_indices,
)

__all__ = [
    "build_dense_graph",
    "build_qa_graph",
    "betweenness_centrality",
    "closeness_centrality",
    "UndirectedGraph",
    "average_clustering",
    "degree_assortativity",
    "degree_histogram",
    "local_clustering",
    "common_neighbors",
    "jaccard_coefficient",
    "resource_allocation_index",
    "resource_allocation_indices",
]
