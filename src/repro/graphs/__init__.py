"""Graph substrate: the Social Learning Network graphs and their metrics."""

from .builders import (
    EdgeMultiset,
    build_dense_graph,
    build_qa_graph,
    dense_links,
    qa_links,
    thread_participants,
)
from .centrality import betweenness_centrality, closeness_centrality
from .graph import UndirectedGraph
from .statistics import (
    average_clustering,
    degree_assortativity,
    degree_histogram,
    local_clustering,
)
from .link_metrics import (
    common_neighbors,
    jaccard_coefficient,
    resource_allocation_index,
    resource_allocation_indices,
)

__all__ = [
    "EdgeMultiset",
    "build_dense_graph",
    "build_qa_graph",
    "dense_links",
    "qa_links",
    "thread_participants",
    "betweenness_centrality",
    "closeness_centrality",
    "UndirectedGraph",
    "average_clustering",
    "degree_assortativity",
    "degree_histogram",
    "local_clustering",
    "common_neighbors",
    "jaccard_coefficient",
    "resource_allocation_index",
    "resource_allocation_indices",
]
