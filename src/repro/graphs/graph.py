"""A minimal undirected graph used for the Social Learning Network.

Both paper graphs (``G_QA`` and ``G_D``, Sec. II-B) are undirected and
unweighted with binary adjacency, so a dict-of-sets representation is
sufficient and fast.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator

__all__ = ["UndirectedGraph"]


class UndirectedGraph:
    """Undirected, unweighted graph over hashable node ids."""

    def __init__(self):
        self._adj: dict[Hashable, set[Hashable]] = {}

    # -- construction -----------------------------------------------------

    def add_node(self, node: Hashable) -> None:
        """Add an isolated node (no-op if present)."""
        self._adj.setdefault(node, set())

    def add_edge(self, u: Hashable, v: Hashable) -> None:
        """Add an undirected edge; self-loops are ignored."""
        if u == v:
            return
        self._adj.setdefault(u, set()).add(v)
        self._adj.setdefault(v, set()).add(u)

    def add_edges(self, edges: Iterable[tuple[Hashable, Hashable]]) -> None:
        for u, v in edges:
            self.add_edge(u, v)

    def remove_edge(self, u: Hashable, v: Hashable) -> None:
        """Remove an undirected edge; raises ``KeyError`` if absent."""
        if v not in self._adj.get(u, ()):
            raise KeyError((u, v))
        self._adj[u].discard(v)
        self._adj[v].discard(u)

    def remove_node(self, node: Hashable) -> None:
        """Remove a node and all its incident edges."""
        for nbr in self._adj.pop(node):
            self._adj[nbr].discard(node)

    # -- queries -----------------------------------------------------------

    def __contains__(self, node: Hashable) -> bool:
        return node in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    @property
    def num_nodes(self) -> int:
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        return sum(len(nbrs) for nbrs in self._adj.values()) // 2

    def nodes(self) -> Iterator[Hashable]:
        return iter(self._adj)

    def edges(self) -> Iterator[tuple[Hashable, Hashable]]:
        """Each undirected edge exactly once."""
        seen: set[Hashable] = set()
        for u, nbrs in self._adj.items():
            for v in nbrs:
                if v not in seen:
                    yield (u, v)
            seen.add(u)

    def neighbors(self, node: Hashable) -> set[Hashable]:
        """The neighbor set Gamma_u; raises ``KeyError`` for unknown nodes."""
        return self._adj[node]

    def degree(self, node: Hashable) -> int:
        return len(self._adj[node])

    def has_edge(self, u: Hashable, v: Hashable) -> bool:
        return u in self._adj and v in self._adj[u]

    def average_degree(self) -> float:
        """Mean node degree; 0.0 for the empty graph."""
        if not self._adj:
            return 0.0
        return 2.0 * self.num_edges / self.num_nodes

    # -- traversal ----------------------------------------------------------

    def bfs_distances(self, source: Hashable) -> dict[Hashable, int]:
        """Shortest-path (hop) distance from ``source`` to every reachable node."""
        if source not in self._adj:
            raise KeyError(source)
        dist = {source: 0}
        frontier = [source]
        while frontier:
            nxt = []
            for u in frontier:
                for v in self._adj[u]:
                    if v not in dist:
                        dist[v] = dist[u] + 1
                        nxt.append(v)
            frontier = nxt
        return dist

    def connected_components(self) -> list[set[Hashable]]:
        """All connected components, largest first."""
        seen: set[Hashable] = set()
        components = []
        for node in self._adj:
            if node in seen:
                continue
            comp = set(self.bfs_distances(node))
            seen |= comp
            components.append(comp)
        components.sort(key=len, reverse=True)
        return components

    def subgraph(self, nodes: Iterable[Hashable]) -> "UndirectedGraph":
        """Induced subgraph on the given nodes."""
        keep = set(nodes)
        sub = UndirectedGraph()
        for u in keep:
            if u in self._adj:
                sub.add_node(u)
                for v in self._adj[u] & keep:
                    sub.add_edge(u, v)
        return sub
