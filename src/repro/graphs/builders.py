"""Builders for the paper's two SLN graphs (Sec. II-B, Fig. 2).

* ``G_QA`` — the question-answer graph: a link between users u and v when
  one asked a question and the other answered it.
* ``G_D`` — the denser graph: every pair of users posting in the same
  thread (asker or answerer) is linked, so co-answerers connect too.

Both builders consume thread participant tuples ``(asker, answerers)``
so they stay decoupled from the forum data model.

For streaming windows, :class:`EdgeMultiset` maintains the same link
structure incrementally: each thread's links are reference-counted, so
appending and later evicting a thread restores the exact edge set, and
``version`` only advances when the *set* of present nodes or edges
actually changes — consumers key centrality caches on it and skip
recomputation when the topology is unchanged.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Sequence

from .graph import UndirectedGraph

__all__ = [
    "build_qa_graph",
    "build_dense_graph",
    "thread_participants",
    "qa_links",
    "dense_links",
    "EdgeMultiset",
]

ThreadParticipants = tuple[Hashable, Sequence[Hashable]]


def thread_participants(
    asker: Hashable, answerers: Sequence[Hashable]
) -> list[Hashable]:
    """Distinct thread participants, asker first."""
    participants = [asker]
    for answerer in answerers:
        if answerer not in participants:
            participants.append(answerer)
    return participants


def qa_links(
    participants: Sequence[Hashable],
) -> list[tuple[Hashable, Hashable]]:
    """Asker-to-answerer links of one thread (participants asker-first)."""
    asker = participants[0]
    return [(asker, answerer) for answerer in participants[1:]]


def dense_links(
    participants: Sequence[Hashable],
) -> list[tuple[Hashable, Hashable]]:
    """All co-participant pairs of one thread (participants asker-first)."""
    return [
        (u, v)
        for i, u in enumerate(participants)
        for v in participants[i + 1 :]
    ]


def build_qa_graph(threads: Iterable[ThreadParticipants]) -> UndirectedGraph:
    """Question-answer graph: asker linked to each distinct answerer."""
    graph = UndirectedGraph()
    for asker, answerers in threads:
        graph.add_node(asker)
        for answerer in answerers:
            graph.add_edge(asker, answerer)
    return graph


def build_dense_graph(threads: Iterable[ThreadParticipants]) -> UndirectedGraph:
    """Denser graph: all thread co-participants pairwise linked."""
    graph = UndirectedGraph()
    for asker, answerers in threads:
        participants = thread_participants(asker, answerers)
        for u in participants:
            graph.add_node(u)
        for u, v in dense_links(participants):
            graph.add_edge(u, v)
    return graph


class EdgeMultiset:
    """Reference-counted node/edge sets with change tracking.

    ``add_thread``/``remove_thread`` apply one thread's links (produced
    by ``qa_links`` or ``dense_links``); a node or edge is *present*
    while at least one live thread contributes it.  ``graph()`` returns
    the present topology as an :class:`UndirectedGraph` built in
    canonical (sorted) insertion order, so two multisets holding the
    same threads yield bit-identical graphs regardless of the
    add/remove history — a requirement for the incremental online loop
    to reproduce the full-rebuild path exactly.
    """

    def __init__(self, link_fn):
        self._link_fn = link_fn
        self._node_count: dict[Hashable, int] = {}
        self._edge_count: dict[tuple[Hashable, Hashable], int] = {}
        self.version = 0
        self._graph_cache: tuple[int, UndirectedGraph] | None = None

    @staticmethod
    def _key(u: Hashable, v: Hashable) -> tuple[Hashable, Hashable]:
        return (u, v) if u <= v else (v, u)

    def add_thread(
        self, asker: Hashable, answerers: Sequence[Hashable]
    ) -> None:
        """Reference one thread's nodes and links."""
        changed = False
        participants = thread_participants(asker, answerers)
        for node in participants:
            count = self._node_count.get(node, 0)
            self._node_count[node] = count + 1
            changed |= count == 0
        for u, v in self._link_fn(participants):
            if u == v:
                continue
            key = self._key(u, v)
            count = self._edge_count.get(key, 0)
            self._edge_count[key] = count + 1
            changed |= count == 0
        if changed:
            self.version += 1

    def remove_thread(
        self, asker: Hashable, answerers: Sequence[Hashable]
    ) -> None:
        """Drop one thread's references; present sets shrink at zero."""
        changed = False
        participants = thread_participants(asker, answerers)
        for node in participants:
            count = self._node_count[node] - 1
            if count == 0:
                del self._node_count[node]
                changed = True
            else:
                self._node_count[node] = count
        for u, v in self._link_fn(participants):
            if u == v:
                continue
            key = self._key(u, v)
            count = self._edge_count[key] - 1
            if count == 0:
                del self._edge_count[key]
                changed = True
            else:
                self._edge_count[key] = count
        if changed:
            self.version += 1

    @property
    def num_nodes(self) -> int:
        return len(self._node_count)

    @property
    def num_edges(self) -> int:
        return len(self._edge_count)

    def graph(self) -> UndirectedGraph:
        """Canonical graph of the present nodes/edges (cached per version)."""
        cached = self._graph_cache
        if cached is not None and cached[0] == self.version:
            return cached[1]
        graph = UndirectedGraph()
        for node in sorted(self._node_count):
            graph.add_node(node)
        for u, v in sorted(self._edge_count):
            graph.add_edge(u, v)
        self._graph_cache = (self.version, graph)
        return graph
