"""Builders for the paper's two SLN graphs (Sec. II-B, Fig. 2).

* ``G_QA`` — the question-answer graph: a link between users u and v when
  one asked a question and the other answered it.
* ``G_D`` — the denser graph: every pair of users posting in the same
  thread (asker or answerer) is linked, so co-answerers connect too.

Both builders consume thread participant tuples ``(asker, answerers)``
so they stay decoupled from the forum data model.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Sequence

from .graph import UndirectedGraph

__all__ = ["build_qa_graph", "build_dense_graph"]

ThreadParticipants = tuple[Hashable, Sequence[Hashable]]


def build_qa_graph(threads: Iterable[ThreadParticipants]) -> UndirectedGraph:
    """Question-answer graph: asker linked to each distinct answerer."""
    graph = UndirectedGraph()
    for asker, answerers in threads:
        graph.add_node(asker)
        for answerer in answerers:
            graph.add_edge(asker, answerer)
    return graph


def build_dense_graph(threads: Iterable[ThreadParticipants]) -> UndirectedGraph:
    """Denser graph: all thread co-participants pairwise linked."""
    graph = UndirectedGraph()
    for asker, answerers in threads:
        participants = [asker]
        for answerer in answerers:
            if answerer not in participants:
                participants.append(answerer)
        for u in participants:
            graph.add_node(u)
        for i, u in enumerate(participants):
            for v in participants[i + 1 :]:
                graph.add_edge(u, v)
    return graph
