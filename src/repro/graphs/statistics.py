"""Whole-graph statistics for the SLN analysis (paper Fig. 2 discussion).

Degree distributions, local/average clustering and degree assortativity
quantify the structure the paper's Fig. 2 visualizes qualitatively.
"""

from __future__ import annotations

from collections.abc import Hashable

import numpy as np

from .graph import UndirectedGraph

__all__ = [
    "degree_histogram",
    "local_clustering",
    "average_clustering",
    "degree_assortativity",
]


def degree_histogram(graph: UndirectedGraph) -> np.ndarray:
    """``h[d]`` = number of nodes with degree ``d`` (length max degree + 1)."""
    degrees = [graph.degree(v) for v in graph.nodes()]
    if not degrees:
        return np.zeros(1, dtype=np.int64)
    return np.bincount(np.array(degrees, dtype=np.int64))


def local_clustering(graph: UndirectedGraph, node: Hashable) -> float:
    """Fraction of the node's neighbor pairs that are themselves linked.

    Zero for nodes of degree < 2 (the networkx convention).
    """
    neighbors = list(graph.neighbors(node))
    k = len(neighbors)
    if k < 2:
        return 0.0
    links = 0
    for i, u in enumerate(neighbors):
        u_neighbors = graph.neighbors(u)
        for v in neighbors[i + 1 :]:
            if v in u_neighbors:
                links += 1
    return 2.0 * links / (k * (k - 1))


def average_clustering(graph: UndirectedGraph) -> float:
    """Mean local clustering over all nodes; 0.0 for the empty graph."""
    nodes = list(graph.nodes())
    if not nodes:
        return 0.0
    return float(np.mean([local_clustering(graph, v) for v in nodes]))


def degree_assortativity(graph: UndirectedGraph) -> float:
    """Pearson correlation of degrees across edges (Newman's r).

    Positive when high-degree nodes attach to each other; 0.0 when the
    graph has no edges or the degrees are constant.
    """
    x, y = [], []
    for u, v in graph.edges():
        du, dv = graph.degree(u), graph.degree(v)
        # Each undirected edge contributes both orientations.
        x.extend((du, dv))
        y.extend((dv, du))
    if not x:
        return 0.0
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    sx = x.std()
    sy = y.std()
    if sx == 0.0 or sy == 0.0:
        return 0.0
    return float(((x - x.mean()) * (y - y.mean())).mean() / (sx * sy))
