"""Topic-model substrate: tokenization, vocabulary and from-scratch LDA."""

from .coherence import mean_coherence, umass_coherence
from .lda import LdaGibbs, LdaVariational, fit_lda
from .similarity import pairwise_tv_similarity, total_variation_similarity
from .tokenizer import STOPWORDS, SplitPost, split_text_and_code, tokenize
from .vocabulary import Vocabulary

__all__ = [
    "mean_coherence",
    "umass_coherence",
    "LdaGibbs",
    "LdaVariational",
    "fit_lda",
    "pairwise_tv_similarity",
    "total_variation_similarity",
    "STOPWORDS",
    "SplitPost",
    "split_text_and_code",
    "tokenize",
    "Vocabulary",
]
