"""Post text processing: word/code splitting and tokenization.

The paper (Sec. II-B) divides each post into words ``x(p)`` and code
``c(p)`` "using the fact that code on forums is delimited by specific HTML
tags".  Stack Overflow wraps code in ``<code>...</code>`` (inline) and
``<pre><code>...</code></pre>`` (blocks); we treat anything inside
``<code>`` tags as code and everything else as words.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

__all__ = ["SplitPost", "split_text_and_code", "tokenize", "STOPWORDS"]

_CODE_RE = re.compile(r"<code>(.*?)</code>", re.DOTALL | re.IGNORECASE)
_TAG_RE = re.compile(r"<[^>]+>")
_TOKEN_RE = re.compile(r"[a-z][a-z0-9_+#.-]*")

# A compact English stopword list; enough to keep LDA topics from being
# dominated by function words.
STOPWORDS = frozenset(
    """a about after all also an and any are as at be because been before but
    by can could did do does doing down for from get got had has have he her
    here him his how i if in into is it its just like me more most my no not
    now of on one only or other our out over same she so some such than that
    the their them then there these they this those through to too under up
    use very was we were what when where which while who why will with would
    you your""".split()
)


@dataclass(frozen=True)
class SplitPost:
    """A post body split into its word text and its code text."""

    words: str
    code: str

    @property
    def word_length(self) -> int:
        """Character length of the word portion (paper feature x_q)."""
        return len(self.words)

    @property
    def code_length(self) -> int:
        """Character length of the code portion (paper feature c_q)."""
        return len(self.code)


def split_text_and_code(body: str) -> SplitPost:
    """Split an HTML post body into word text and code text.

    Code is the concatenation of all ``<code>`` spans (joined by newlines);
    words are whatever remains after removing code spans and stripping any
    other HTML tags.
    """
    code_parts = _CODE_RE.findall(body)
    without_code = _CODE_RE.sub(" ", body)
    words = _TAG_RE.sub(" ", without_code)
    words = re.sub(r"\s+", " ", words).strip()
    return SplitPost(words=words, code="\n".join(code_parts))


def tokenize(
    text: str,
    *,
    remove_stopwords: bool = True,
    min_length: int = 2,
) -> list[str]:
    """Lowercase and extract word tokens from plain text.

    Tokens start with a letter and may contain digits and the symbols
    ``_ + # . -`` so that terms like ``c++``, ``c#`` and ``numpy.array``
    survive.  Trailing punctuation is stripped.
    """
    tokens = []
    for tok in _TOKEN_RE.findall(text.lower()):
        tok = tok.rstrip(".-")
        if len(tok) < min_length:
            continue
        if remove_stopwords and tok in STOPWORDS:
            continue
        tokens.append(tok)
    return tokens
