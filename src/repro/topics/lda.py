"""Latent Dirichlet Allocation from scratch.

The paper infers per-post topic distributions ``d(p)`` with LDA (via
Gensim); here we provide two interchangeable implementations:

* :class:`LdaGibbs` — collapsed Gibbs sampling, the textbook reference
  implementation.  Exact but slow; used for tests and small corpora.
* :class:`LdaVariational` — batch mean-field variational Bayes (Blei et
  al. 2003 / Hoffman et al. 2010 without the online schedule).  Fast
  enough for the full synthetic Stack Overflow corpus; the pipeline
  default.

Both expose the same interface: ``fit(docs)`` on a list of token-id
arrays, ``doc_topic_`` (rows on the simplex), ``topic_word_`` (rows on
the simplex), and ``transform(docs)`` for held-out documents.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.special import digamma

__all__ = ["LdaGibbs", "LdaVariational", "fit_lda"]


@dataclass(frozen=True)
class _Corpus:
    """CSR-style token table shared by every E-step pass of one fit.

    Cells are the nonzero (doc, word) entries, sorted by document;
    ``doc_starts``/``doc_labels`` segment them per document and
    ``cell_pos`` maps each cell to its compact document row.  The
    word-major permutation (``word_order``/``word_starts``/
    ``word_labels``) is precomputed once so the M-step scatter does not
    re-sort the corpus every outer iteration; ``wm_doc_idx``/
    ``wm_word_idx``/``wm_counts`` are the cell columns already in that
    order, so the sufficient-statistics pass gathers straight into
    word-major layout instead of permuting an (nnz, k) block per call.
    """

    doc_idx: np.ndarray
    word_idx: np.ndarray
    counts: np.ndarray
    doc_starts: np.ndarray
    doc_labels: np.ndarray
    cell_pos: np.ndarray
    word_order: np.ndarray
    word_starts: np.ndarray
    word_labels: np.ndarray
    wm_doc_idx: np.ndarray
    wm_word_idx: np.ndarray
    wm_counts: np.ndarray


def _validate_docs(docs: list[np.ndarray], vocab_size: int) -> None:
    for i, doc in enumerate(docs):
        doc = np.asarray(doc)
        if doc.size and (doc.min() < 0 or doc.max() >= vocab_size):
            raise ValueError(f"document {i} has token ids outside [0, {vocab_size})")


class _LdaBase:
    """Shared validation and readout for the two LDA implementations."""

    def __init__(self, n_topics: int, vocab_size: int, alpha: float, beta: float):
        if n_topics < 1:
            raise ValueError("n_topics must be >= 1")
        if vocab_size < 1:
            raise ValueError("vocab_size must be >= 1")
        if alpha <= 0 or beta <= 0:
            raise ValueError("alpha and beta must be positive")
        self.n_topics = n_topics
        self.vocab_size = vocab_size
        self.alpha = alpha
        self.beta = beta
        self.doc_topic_: np.ndarray | None = None
        self.topic_word_: np.ndarray | None = None

    def _check_fitted(self) -> None:
        if self.topic_word_ is None:
            raise RuntimeError("model is not fitted")

    def top_words(self, topic: int, n: int = 10) -> np.ndarray:
        """Ids of the ``n`` highest-probability words in a topic."""
        self._check_fitted()
        return np.argsort(-self.topic_word_[topic])[:n]


class LdaGibbs(_LdaBase):
    """Collapsed Gibbs sampling LDA.

    Samples topic assignments ``z`` token by token from the collapsed
    conditional, then reads point estimates of the doc-topic and
    topic-word distributions from the final counts.
    """

    def __init__(
        self,
        n_topics: int,
        vocab_size: int,
        *,
        alpha: float = 0.1,
        beta: float = 0.01,
        n_iter: int = 100,
        seed: int = 0,
    ):
        super().__init__(n_topics, vocab_size, alpha, beta)
        if n_iter < 1:
            raise ValueError("n_iter must be >= 1")
        self.n_iter = n_iter
        self.seed = seed

    def fit(self, docs: list[np.ndarray]) -> "LdaGibbs":
        _validate_docs(docs, self.vocab_size)
        rng = np.random.default_rng(self.seed)
        k, v = self.n_topics, self.vocab_size
        n_docs = len(docs)
        doc_topic = np.zeros((n_docs, k), dtype=np.int64)
        topic_word = np.zeros((k, v), dtype=np.int64)
        topic_total = np.zeros(k, dtype=np.int64)
        assignments: list[np.ndarray] = []
        for d, doc in enumerate(docs):
            doc = np.asarray(doc, dtype=np.int64)
            z = rng.integers(0, k, size=doc.size)
            assignments.append(z)
            for w, t in zip(doc, z):
                doc_topic[d, t] += 1
                topic_word[t, w] += 1
                topic_total[t] += 1
        for _ in range(self.n_iter):
            for d, doc in enumerate(docs):
                z = assignments[d]
                for i, w in enumerate(doc):
                    t_old = z[i]
                    doc_topic[d, t_old] -= 1
                    topic_word[t_old, w] -= 1
                    topic_total[t_old] -= 1
                    probs = (
                        (doc_topic[d] + self.alpha)
                        * (topic_word[:, w] + self.beta)
                        / (topic_total + v * self.beta)
                    )
                    probs /= probs.sum()
                    t_new = rng.choice(k, p=probs)
                    z[i] = t_new
                    doc_topic[d, t_new] += 1
                    topic_word[t_new, w] += 1
                    topic_total[t_new] += 1
        self.doc_topic_ = (doc_topic + self.alpha) / (
            doc_topic.sum(axis=1, keepdims=True) + k * self.alpha
        )
        self.topic_word_ = (topic_word + self.beta) / (
            topic_word.sum(axis=1, keepdims=True) + v * self.beta
        )
        self._topic_word_counts = topic_word
        self._topic_totals = topic_total
        return self

    def transform(
        self, docs: list[np.ndarray], n_iter: int = 20, seed: int = 0
    ) -> np.ndarray:
        """Infer topic distributions for held-out docs with frozen topics."""
        self._check_fitted()
        _validate_docs(docs, self.vocab_size)
        rng = np.random.default_rng(seed)
        k = self.n_topics
        out = np.zeros((len(docs), k))
        word_given_topic = self.topic_word_
        for d, doc in enumerate(docs):
            doc = np.asarray(doc, dtype=np.int64)
            if doc.size == 0:
                out[d] = 1.0 / k
                continue
            z = rng.integers(0, k, size=doc.size)
            counts = np.bincount(z, minlength=k)
            for _ in range(n_iter):
                for i, w in enumerate(doc):
                    counts[z[i]] -= 1
                    probs = (counts + self.alpha) * word_given_topic[:, w]
                    probs /= probs.sum()
                    z[i] = rng.choice(k, p=probs)
                    counts[z[i]] += 1
            out[d] = (counts + self.alpha) / (doc.size + k * self.alpha)
        return out


class LdaVariational(_LdaBase):
    """Batch mean-field variational Bayes LDA.

    The E-step updates the variational Dirichlet ``gamma`` with the
    standard per-document fixed-point iteration; the M-step re-estimates
    the topic-word variational parameter ``lambda`` from expected
    counts.  Three E-step engines share the math:

    * ``"batched"`` (default) — all documents iterate simultaneously
      over the flat cell table, with a *per-document* convergence check:
      documents whose mean ``gamma`` change drops below ``tol`` leave
      the active set, so the corpus pass shrinks as documents converge
      (most converge in a fraction of ``inner_iter``).
    * ``"perdoc"`` — the textbook document-by-document Python loop.
      Arithmetically identical to ``"batched"`` (same operations in the
      same order per document), kept as the reference the batched engine
      is tested against.
    * ``"global"`` — the previous batched variant with a corpus-wide
      mean-change check; every document runs until the *corpus* mean
      converges, which in practice means the full ``inner_iter`` budget.
      Kept as the pre-optimization baseline for benchmarking.
    """

    def __init__(
        self,
        n_topics: int,
        vocab_size: int,
        *,
        alpha: float = 0.1,
        beta: float = 0.01,
        n_iter: int = 30,
        inner_iter: int = 40,
        tol: float = 1e-4,
        e_step: str = "batched",
        seed: int = 0,
    ):
        super().__init__(n_topics, vocab_size, alpha, beta)
        if n_iter < 1 or inner_iter < 1:
            raise ValueError("iteration counts must be >= 1")
        if e_step not in ("batched", "perdoc", "global"):
            raise ValueError("e_step must be 'batched', 'perdoc' or 'global'")
        self.n_iter = n_iter
        self.inner_iter = inner_iter
        self.tol = tol
        self.e_step = e_step
        self.seed = seed

    @staticmethod
    def _coo(docs: list[np.ndarray]):
        """Corpus as parallel (doc_idx, word_idx, count) arrays.

        ``doc_idx`` is sorted by construction, which lets the E-step
        aggregate per-document sums with ``np.add.reduceat`` instead of
        the much slower ``np.add.at``.
        """
        doc_idx: list[np.ndarray] = []
        word_idx: list[np.ndarray] = []
        counts: list[np.ndarray] = []
        for d, doc in enumerate(docs):
            doc = np.asarray(doc, dtype=np.int64)
            if doc.size == 0:
                continue
            ids, cnt = np.unique(doc, return_counts=True)
            doc_idx.append(np.full(ids.size, d, dtype=np.int64))
            word_idx.append(ids)
            counts.append(cnt.astype(float))
        if not doc_idx:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty, np.empty(0)
        return (
            np.concatenate(doc_idx),
            np.concatenate(word_idx),
            np.concatenate(counts),
        )

    @staticmethod
    def _segments(sorted_idx: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(segment starts, segment labels) of a sorted index array."""
        starts = np.r_[0, np.flatnonzero(np.diff(sorted_idx)) + 1]
        return starts, sorted_idx[starts]

    @classmethod
    def _corpus(cls, docs: list[np.ndarray]) -> _Corpus | None:
        """Precompute every index structure the E/M steps need, once.

        Returns ``None`` for a corpus with no in-vocabulary tokens.
        """
        doc_idx, word_idx, counts = cls._coo(docs)
        if doc_idx.size == 0:
            return None
        doc_starts, doc_labels = cls._segments(doc_idx)
        seg_lengths = np.diff(np.r_[doc_starts, doc_idx.size])
        cell_pos = np.repeat(np.arange(doc_labels.size), seg_lengths)
        word_order = np.argsort(word_idx, kind="stable")
        wm_word_idx = word_idx[word_order]
        word_starts, word_labels = cls._segments(wm_word_idx)
        return _Corpus(
            doc_idx=doc_idx,
            word_idx=word_idx,
            counts=counts,
            doc_starts=doc_starts,
            doc_labels=doc_labels,
            cell_pos=cell_pos,
            word_order=word_order,
            word_starts=word_starts,
            word_labels=word_labels,
            wm_doc_idx=doc_idx[word_order],
            wm_word_idx=wm_word_idx,
            wm_counts=counts[word_order],
        )

    def _gamma_batched(
        self, corpus: _Corpus, exp_elog_beta: np.ndarray, gamma: np.ndarray
    ) -> None:
        """Active-set fixed point: documents leave once they converge.

        All unconverged documents update simultaneously over the flat
        cell table; after each sweep the converged rows are frozen and
        every per-cell array is compacted to the surviving documents, so
        late sweeps touch only the stragglers.  Per-document arithmetic
        is identical to :meth:`_gamma_perdoc` (same operations, same
        order), which the test suite asserts to 1e-8.
        """
        k = self.n_topics
        act_docs = corpus.doc_labels
        gamma_act = gamma[act_docs]
        c_pos = corpus.cell_pos
        c_counts = corpus.counts
        c_beta = exp_elog_beta[:, corpus.word_idx].T  # (nnz, k)
        c_starts = corpus.doc_starts
        # Sweep buffers, rebuilt only when the active set is compacted;
        # every in-place op below is value-identical to the allocating
        # expression in _gamma_perdoc (multiplication/addition operand
        # order does not change IEEE results).
        elog = np.empty_like(gamma_act)
        gamma_new = np.empty_like(gamma_act)
        diff = np.empty_like(gamma_act)
        theta = np.empty((c_pos.size, k))
        phinorm = np.empty(c_pos.size)
        for _ in range(self.inner_iter):
            digamma(gamma_act, out=elog)
            elog -= digamma(gamma_act.sum(axis=1, keepdims=True))
            np.exp(elog, out=elog)
            np.take(elog, c_pos, axis=0, out=theta)
            np.einsum("ij,ij->i", theta, c_beta, out=phinorm)
            phinorm += 1e-100
            np.divide(c_counts, phinorm, out=phinorm)
            np.multiply(phinorm[:, None], c_beta, out=theta)
            np.add.reduceat(theta, c_starts, axis=0, out=gamma_new)
            np.multiply(elog, gamma_new, out=gamma_new)
            gamma_new += self.alpha
            np.subtract(gamma_new, gamma_act, out=diff)
            np.abs(diff, out=diff)
            delta = diff.mean(axis=1)
            conv = delta < self.tol
            if conv.all():
                gamma[act_docs] = gamma_new
                break
            if conv.any():
                keep = ~conv
                # A document's posterior is final the sweep it leaves the
                # active set, so gamma is only scattered into here and at
                # loop exit — never once per sweep.
                gamma[act_docs[conv]] = gamma_new[conv]
                seg_len = np.diff(np.append(c_starts, c_counts.size))[keep]
                act_docs = act_docs[keep]
                cell_keep = keep[c_pos]
                remap = np.cumsum(keep) - 1
                c_pos = remap[c_pos[cell_keep]]
                gamma_act = gamma_new[keep]
                c_beta = c_beta[cell_keep]
                c_counts = c_counts[cell_keep]
                c_starts = np.concatenate(([0], np.cumsum(seg_len[:-1])))
                elog = np.empty_like(gamma_act)
                gamma_new = np.empty_like(gamma_act)
                diff = np.empty_like(gamma_act)
                theta = np.empty((c_pos.size, k))
                phinorm = np.empty(c_pos.size)
            else:
                gamma_act, gamma_new = gamma_new, gamma_act
        else:
            gamma[act_docs] = gamma_act

    def _gamma_perdoc(
        self, corpus: _Corpus, exp_elog_beta: np.ndarray, gamma: np.ndarray
    ) -> None:
        """Reference document-by-document fixed point (slow, exact)."""
        bounds = np.r_[corpus.doc_starts, corpus.doc_idx.size]
        for seg, d in enumerate(corpus.doc_labels):
            lo, hi = bounds[seg], bounds[seg + 1]
            beta_d = exp_elog_beta[:, corpus.word_idx[lo:hi]].T
            cnt = corpus.counts[lo:hi]
            g = gamma[d]
            for _ in range(self.inner_iter):
                elog = np.exp(digamma(g) - digamma(g.sum()))
                theta = np.tile(elog, (hi - lo, 1))
                phinorm = np.einsum("ij,ij->i", theta, beta_d) + 1e-100
                weighted = (cnt / phinorm)[:, None] * beta_d
                s = np.add.reduceat(weighted, [0], axis=0)[0]
                g_new = self.alpha + elog * s
                delta = np.abs(g_new - g).mean()
                g = g_new
                if delta < self.tol:
                    break
            gamma[d] = g

    def _gamma_global(
        self, corpus: _Corpus, exp_elog_beta: np.ndarray, gamma: np.ndarray
    ) -> None:
        """Pre-optimization batched sweep with a corpus-wide tolerance."""
        k = self.n_topics
        n_docs = gamma.shape[0]
        beta_cells = exp_elog_beta[:, corpus.word_idx].T
        for _ in range(self.inner_iter):
            exp_elog_theta = np.exp(
                digamma(gamma) - digamma(gamma.sum(axis=1, keepdims=True))
            )
            theta_cells = exp_elog_theta[corpus.doc_idx]
            phinorm = np.einsum("ij,ij->i", theta_cells, beta_cells) + 1e-100
            weighted = (corpus.counts / phinorm)[:, None] * beta_cells
            s = np.zeros((n_docs, k))
            s[corpus.doc_labels] = np.add.reduceat(
                weighted, corpus.doc_starts, axis=0
            )
            gamma_new = self.alpha + exp_elog_theta * s
            delta = np.abs(gamma_new - gamma).mean()
            gamma[...] = gamma_new
            if delta < self.tol:
                break

    def _sstats(
        self, corpus: _Corpus, exp_elog_beta: np.ndarray, gamma: np.ndarray
    ) -> np.ndarray:
        """Expected topic-word counts from the final gamma of one E-step.

        Works on the cells in word-major order directly: the per-cell
        contributions are row-independent, so gathering into that layout
        up front yields the same reduceat sums bit for bit while saving
        the (nnz, k) permutation of a doc-major contribution block.
        """
        k = self.n_topics
        exp_elog_theta = np.exp(
            digamma(gamma) - digamma(gamma.sum(axis=1, keepdims=True))
        )
        theta_cells = exp_elog_theta[corpus.wm_doc_idx]
        beta_cells = exp_elog_beta[:, corpus.wm_word_idx].T
        phinorm = np.einsum("ij,ij->i", theta_cells, beta_cells) + 1e-100
        np.multiply(theta_cells, (corpus.wm_counts / phinorm)[:, None],
                    out=theta_cells)
        np.multiply(theta_cells, beta_cells, out=theta_cells)
        sstats_t = np.zeros((exp_elog_beta.shape[1], k))
        sstats_t[corpus.word_labels] = np.add.reduceat(
            theta_cells, corpus.word_starts, axis=0
        )
        return sstats_t.T

    def _e_step(
        self,
        n_docs: int,
        corpus: _Corpus | None,
        exp_elog_beta: np.ndarray,
        rng: np.random.Generator | None,
        collect_sstats: bool,
        gamma_init: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray | None]:
        """One gamma pass over the corpus with the configured engine.

        ``gamma_init`` warm-starts the fixed point from the previous
        outer iteration's posterior instead of a fresh draw — after the
        first few M-steps the topics barely move, so warm-started
        documents converge in a handful of sweeps instead of running the
        full ``inner_iter`` budget from a cold start every E-step.
        """
        k = self.n_topics
        if gamma_init is not None:
            gamma = gamma_init.copy()
        elif rng is not None:
            gamma = rng.gamma(100.0, 0.01, size=(n_docs, k))
        else:
            gamma = np.ones((n_docs, k))
        if corpus is None:
            gamma[:] = self.alpha
            sstats = np.zeros_like(exp_elog_beta) if collect_sstats else None
            return gamma, sstats
        if self.e_step == "perdoc":
            self._gamma_perdoc(corpus, exp_elog_beta, gamma)
        elif self.e_step == "global":
            self._gamma_global(corpus, exp_elog_beta, gamma)
        else:
            self._gamma_batched(corpus, exp_elog_beta, gamma)
        # Documents with no in-vocabulary words keep the prior.
        empty_docs = np.setdiff1d(np.arange(n_docs), corpus.doc_labels)
        gamma[empty_docs] = self.alpha
        sstats = (
            self._sstats(corpus, exp_elog_beta, gamma)
            if collect_sstats
            else None
        )
        return gamma, sstats

    def fit(self, docs: list[np.ndarray]) -> "LdaVariational":
        _validate_docs(docs, self.vocab_size)
        rng = np.random.default_rng(self.seed)
        corpus = self._corpus(docs)
        lam = rng.gamma(100.0, 0.01, size=(self.n_topics, self.vocab_size))
        gamma = None
        # The legacy engine redraws gamma every E-step (the pre-engine
        # behaviour, kept as the benchmark baseline); the per-document
        # engines carry the previous posterior across outer iterations.
        warm = self.e_step != "global"
        for _ in range(self.n_iter):
            exp_elog_beta = np.exp(
                digamma(lam) - digamma(lam.sum(axis=1, keepdims=True))
            )
            prev_gamma = gamma
            gamma, sstats = self._e_step(
                len(docs),
                corpus,
                exp_elog_beta,
                rng,
                collect_sstats=True,
                gamma_init=gamma if warm else None,
            )
            lam = self.beta + sstats
            # Warm engines stop outer iterations once the posterior stops
            # moving (same tolerance as the per-document check); batched
            # and perdoc see bit-identical gammas, so they stop at the
            # same iteration.  The legacy engine always runs the full
            # budget, as it did before the training engine existed.
            if (
                warm
                and prev_gamma is not None
                and np.abs(gamma - prev_gamma).mean() < self.tol
            ):
                break
        self._lambda = lam
        self.topic_word_ = lam / lam.sum(axis=1, keepdims=True)
        self.doc_topic_ = gamma / gamma.sum(axis=1, keepdims=True)
        return self

    def transform(self, docs: list[np.ndarray]) -> np.ndarray:
        """Infer topic distributions for held-out docs with frozen topics.

        The warm engines repeat the E-step from the previous pass's
        posterior until the gamma fixed point stops moving — documents
        the single ``inner_iter`` budget cannot settle get the same
        accumulated refinement the training gammas receive across outer
        iterations, so re-inference agrees with the training posterior.
        The legacy engine keeps its single pass.
        """
        self._check_fitted()
        _validate_docs(docs, self.vocab_size)
        corpus = self._corpus(docs)
        exp_elog_beta = np.exp(
            digamma(self._lambda)
            - digamma(self._lambda.sum(axis=1, keepdims=True))
        )
        gamma, _ = self._e_step(
            len(docs), corpus, exp_elog_beta, rng=None, collect_sstats=False
        )
        if self.e_step != "global" and corpus is not None:
            for _ in range(self.n_iter - 1):
                prev = gamma
                gamma, _ = self._e_step(
                    len(docs),
                    corpus,
                    exp_elog_beta,
                    rng=None,
                    collect_sstats=False,
                    gamma_init=gamma,
                )
                if np.abs(gamma - prev).mean() < self.tol:
                    break
        return gamma / gamma.sum(axis=1, keepdims=True)

    def to_state(self) -> tuple[dict, np.ndarray]:
        """(JSON-serializable metadata, lambda array) snapshot.

        ``lambda`` fully determines inference on held-out documents, so
        the pair restores a model whose :meth:`transform` is identical.
        """
        self._check_fitted()
        meta = {
            "n_topics": self.n_topics,
            "vocab_size": self.vocab_size,
            "alpha": self.alpha,
            "beta": self.beta,
            "n_iter": self.n_iter,
            "inner_iter": self.inner_iter,
            "tol": self.tol,
            "seed": self.seed,
            "e_step": self.e_step,
        }
        return meta, self._lambda

    @classmethod
    def from_state(cls, meta: dict, lam: np.ndarray) -> "LdaVariational":
        """Rebuild a fitted model from a :meth:`to_state` snapshot."""
        lam = np.asarray(lam, dtype=float)
        model = cls(
            int(meta["n_topics"]),
            int(meta.get("vocab_size", lam.shape[1])),
            alpha=meta["alpha"],
            beta=meta["beta"],
            n_iter=int(meta.get("n_iter", 30)),
            inner_iter=int(meta.get("inner_iter", 40)),
            tol=meta.get("tol", 1e-4),
            seed=int(meta.get("seed", 0)),
            e_step=meta.get("e_step", "batched"),
        )
        if lam.shape != (model.n_topics, model.vocab_size):
            raise ValueError(
                f"lambda shape {lam.shape} does not match "
                f"({model.n_topics}, {model.vocab_size})"
            )
        model._lambda = lam
        model.topic_word_ = lam / lam.sum(axis=1, keepdims=True)
        model.doc_topic_ = np.empty((0, model.n_topics))
        return model


def fit_lda(
    docs: list[np.ndarray],
    n_topics: int,
    vocab_size: int,
    *,
    method: str = "variational",
    seed: int = 0,
    **kwargs,
):
    """Fit an LDA model by method name (``"variational"`` or ``"gibbs"``)."""
    if method == "variational":
        model = LdaVariational(n_topics, vocab_size, seed=seed, **kwargs)
    elif method == "gibbs":
        model = LdaGibbs(n_topics, vocab_size, seed=seed, **kwargs)
    else:
        raise ValueError(f"unknown LDA method {method!r}")
    return model.fit(docs)
