"""Latent Dirichlet Allocation from scratch.

The paper infers per-post topic distributions ``d(p)`` with LDA (via
Gensim); here we provide two interchangeable implementations:

* :class:`LdaGibbs` — collapsed Gibbs sampling, the textbook reference
  implementation.  Exact but slow; used for tests and small corpora.
* :class:`LdaVariational` — batch mean-field variational Bayes (Blei et
  al. 2003 / Hoffman et al. 2010 without the online schedule).  Fast
  enough for the full synthetic Stack Overflow corpus; the pipeline
  default.

Both expose the same interface: ``fit(docs)`` on a list of token-id
arrays, ``doc_topic_`` (rows on the simplex), ``topic_word_`` (rows on
the simplex), and ``transform(docs)`` for held-out documents.
"""

from __future__ import annotations

import numpy as np
from scipy.special import digamma

__all__ = ["LdaGibbs", "LdaVariational", "fit_lda"]


def _validate_docs(docs: list[np.ndarray], vocab_size: int) -> None:
    for i, doc in enumerate(docs):
        doc = np.asarray(doc)
        if doc.size and (doc.min() < 0 or doc.max() >= vocab_size):
            raise ValueError(f"document {i} has token ids outside [0, {vocab_size})")


class _LdaBase:
    """Shared validation and readout for the two LDA implementations."""

    def __init__(self, n_topics: int, vocab_size: int, alpha: float, beta: float):
        if n_topics < 1:
            raise ValueError("n_topics must be >= 1")
        if vocab_size < 1:
            raise ValueError("vocab_size must be >= 1")
        if alpha <= 0 or beta <= 0:
            raise ValueError("alpha and beta must be positive")
        self.n_topics = n_topics
        self.vocab_size = vocab_size
        self.alpha = alpha
        self.beta = beta
        self.doc_topic_: np.ndarray | None = None
        self.topic_word_: np.ndarray | None = None

    def _check_fitted(self) -> None:
        if self.topic_word_ is None:
            raise RuntimeError("model is not fitted")

    def top_words(self, topic: int, n: int = 10) -> np.ndarray:
        """Ids of the ``n`` highest-probability words in a topic."""
        self._check_fitted()
        return np.argsort(-self.topic_word_[topic])[:n]


class LdaGibbs(_LdaBase):
    """Collapsed Gibbs sampling LDA.

    Samples topic assignments ``z`` token by token from the collapsed
    conditional, then reads point estimates of the doc-topic and
    topic-word distributions from the final counts.
    """

    def __init__(
        self,
        n_topics: int,
        vocab_size: int,
        *,
        alpha: float = 0.1,
        beta: float = 0.01,
        n_iter: int = 100,
        seed: int = 0,
    ):
        super().__init__(n_topics, vocab_size, alpha, beta)
        if n_iter < 1:
            raise ValueError("n_iter must be >= 1")
        self.n_iter = n_iter
        self.seed = seed

    def fit(self, docs: list[np.ndarray]) -> "LdaGibbs":
        _validate_docs(docs, self.vocab_size)
        rng = np.random.default_rng(self.seed)
        k, v = self.n_topics, self.vocab_size
        n_docs = len(docs)
        doc_topic = np.zeros((n_docs, k), dtype=np.int64)
        topic_word = np.zeros((k, v), dtype=np.int64)
        topic_total = np.zeros(k, dtype=np.int64)
        assignments: list[np.ndarray] = []
        for d, doc in enumerate(docs):
            doc = np.asarray(doc, dtype=np.int64)
            z = rng.integers(0, k, size=doc.size)
            assignments.append(z)
            for w, t in zip(doc, z):
                doc_topic[d, t] += 1
                topic_word[t, w] += 1
                topic_total[t] += 1
        for _ in range(self.n_iter):
            for d, doc in enumerate(docs):
                z = assignments[d]
                for i, w in enumerate(doc):
                    t_old = z[i]
                    doc_topic[d, t_old] -= 1
                    topic_word[t_old, w] -= 1
                    topic_total[t_old] -= 1
                    probs = (
                        (doc_topic[d] + self.alpha)
                        * (topic_word[:, w] + self.beta)
                        / (topic_total + v * self.beta)
                    )
                    probs /= probs.sum()
                    t_new = rng.choice(k, p=probs)
                    z[i] = t_new
                    doc_topic[d, t_new] += 1
                    topic_word[t_new, w] += 1
                    topic_total[t_new] += 1
        self.doc_topic_ = (doc_topic + self.alpha) / (
            doc_topic.sum(axis=1, keepdims=True) + k * self.alpha
        )
        self.topic_word_ = (topic_word + self.beta) / (
            topic_word.sum(axis=1, keepdims=True) + v * self.beta
        )
        self._topic_word_counts = topic_word
        self._topic_totals = topic_total
        return self

    def transform(
        self, docs: list[np.ndarray], n_iter: int = 20, seed: int = 0
    ) -> np.ndarray:
        """Infer topic distributions for held-out docs with frozen topics."""
        self._check_fitted()
        _validate_docs(docs, self.vocab_size)
        rng = np.random.default_rng(seed)
        k = self.n_topics
        out = np.zeros((len(docs), k))
        word_given_topic = self.topic_word_
        for d, doc in enumerate(docs):
            doc = np.asarray(doc, dtype=np.int64)
            if doc.size == 0:
                out[d] = 1.0 / k
                continue
            z = rng.integers(0, k, size=doc.size)
            counts = np.bincount(z, minlength=k)
            for _ in range(n_iter):
                for i, w in enumerate(doc):
                    counts[z[i]] -= 1
                    probs = (counts + self.alpha) * word_given_topic[:, w]
                    probs /= probs.sum()
                    z[i] = rng.choice(k, p=probs)
                    counts[z[i]] += 1
            out[d] = (counts + self.alpha) / (doc.size + k * self.alpha)
        return out


class LdaVariational(_LdaBase):
    """Batch mean-field variational Bayes LDA.

    Per-document E-step updates the variational Dirichlet ``gamma`` with
    the standard fixed-point iteration; the M-step re-estimates the
    topic-word variational parameter ``lambda`` from expected counts.
    """

    def __init__(
        self,
        n_topics: int,
        vocab_size: int,
        *,
        alpha: float = 0.1,
        beta: float = 0.01,
        n_iter: int = 30,
        inner_iter: int = 40,
        tol: float = 1e-4,
        seed: int = 0,
    ):
        super().__init__(n_topics, vocab_size, alpha, beta)
        if n_iter < 1 or inner_iter < 1:
            raise ValueError("iteration counts must be >= 1")
        self.n_iter = n_iter
        self.inner_iter = inner_iter
        self.tol = tol
        self.seed = seed

    @staticmethod
    def _coo(docs: list[np.ndarray]):
        """Corpus as parallel (doc_idx, word_idx, count) arrays.

        ``doc_idx`` is sorted by construction, which lets the E-step
        aggregate per-document sums with ``np.add.reduceat`` instead of
        the much slower ``np.add.at``.
        """
        doc_idx: list[np.ndarray] = []
        word_idx: list[np.ndarray] = []
        counts: list[np.ndarray] = []
        for d, doc in enumerate(docs):
            doc = np.asarray(doc, dtype=np.int64)
            if doc.size == 0:
                continue
            ids, cnt = np.unique(doc, return_counts=True)
            doc_idx.append(np.full(ids.size, d, dtype=np.int64))
            word_idx.append(ids)
            counts.append(cnt.astype(float))
        if not doc_idx:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty, np.empty(0)
        return (
            np.concatenate(doc_idx),
            np.concatenate(word_idx),
            np.concatenate(counts),
        )

    @staticmethod
    def _segments(sorted_idx: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(segment starts, segment labels) of a sorted index array."""
        starts = np.r_[0, np.flatnonzero(np.diff(sorted_idx)) + 1]
        return starts, sorted_idx[starts]

    def _e_step(
        self,
        n_docs: int,
        coo,
        exp_elog_beta: np.ndarray,
        rng: np.random.Generator | None,
        collect_sstats: bool,
    ) -> tuple[np.ndarray, np.ndarray | None]:
        """Vectorized gamma update over the whole corpus at once.

        Runs the standard per-document fixed point, but batched: every
        nonzero (doc, word) cell is updated simultaneously, with a
        global mean-change convergence check.
        """
        k = self.n_topics
        doc_idx, word_idx, counts = coo
        gamma = (
            rng.gamma(100.0, 0.01, size=(n_docs, k))
            if rng is not None
            else np.ones((n_docs, k))
        )
        if doc_idx.size == 0:
            gamma[:] = self.alpha
            sstats = np.zeros_like(exp_elog_beta) if collect_sstats else None
            return gamma, sstats
        beta_cells = exp_elog_beta[:, word_idx].T  # (nnz, k)
        doc_starts, doc_labels = self._segments(doc_idx)
        exp_elog_theta = np.empty_like(gamma)
        for _ in range(self.inner_iter):
            exp_elog_theta = np.exp(
                digamma(gamma) - digamma(gamma.sum(axis=1, keepdims=True))
            )
            theta_cells = exp_elog_theta[doc_idx]  # (nnz, k)
            phinorm = np.einsum("ij,ij->i", theta_cells, beta_cells) + 1e-100
            weighted = (counts / phinorm)[:, None] * beta_cells  # (nnz, k)
            s = np.zeros((n_docs, k))
            s[doc_labels] = np.add.reduceat(weighted, doc_starts, axis=0)
            gamma_new = self.alpha + exp_elog_theta * s
            delta = np.abs(gamma_new - gamma).mean()
            gamma = gamma_new
            if delta < self.tol:
                break
        # Documents with no in-vocabulary words keep the prior.
        empty_docs = np.setdiff1d(np.arange(n_docs), doc_labels)
        gamma[empty_docs] = self.alpha
        sstats = None
        if collect_sstats:
            exp_elog_theta = np.exp(
                digamma(gamma) - digamma(gamma.sum(axis=1, keepdims=True))
            )
            theta_cells = exp_elog_theta[doc_idx]
            phinorm = np.einsum("ij,ij->i", theta_cells, beta_cells) + 1e-100
            contrib = theta_cells * (counts / phinorm)[:, None] * beta_cells
            word_order = np.argsort(word_idx, kind="stable")
            word_starts, word_labels = self._segments(word_idx[word_order])
            sstats_t = np.zeros((exp_elog_beta.shape[1], k))
            sstats_t[word_labels] = np.add.reduceat(
                contrib[word_order], word_starts, axis=0
            )
            sstats = sstats_t.T
        return gamma, sstats

    def fit(self, docs: list[np.ndarray]) -> "LdaVariational":
        _validate_docs(docs, self.vocab_size)
        rng = np.random.default_rng(self.seed)
        coo = self._coo(docs)
        lam = rng.gamma(100.0, 0.01, size=(self.n_topics, self.vocab_size))
        gamma = None
        for _ in range(self.n_iter):
            exp_elog_beta = np.exp(
                digamma(lam) - digamma(lam.sum(axis=1, keepdims=True))
            )
            gamma, sstats = self._e_step(
                len(docs), coo, exp_elog_beta, rng, collect_sstats=True
            )
            lam = self.beta + sstats
        self._lambda = lam
        self.topic_word_ = lam / lam.sum(axis=1, keepdims=True)
        self.doc_topic_ = gamma / gamma.sum(axis=1, keepdims=True)
        return self

    def transform(self, docs: list[np.ndarray]) -> np.ndarray:
        """Infer topic distributions for held-out docs with frozen topics."""
        self._check_fitted()
        _validate_docs(docs, self.vocab_size)
        coo = self._coo(docs)
        exp_elog_beta = np.exp(
            digamma(self._lambda)
            - digamma(self._lambda.sum(axis=1, keepdims=True))
        )
        gamma, _ = self._e_step(
            len(docs), coo, exp_elog_beta, rng=None, collect_sstats=False
        )
        return gamma / gamma.sum(axis=1, keepdims=True)

    def to_state(self) -> tuple[dict, np.ndarray]:
        """(JSON-serializable metadata, lambda array) snapshot.

        ``lambda`` fully determines inference on held-out documents, so
        the pair restores a model whose :meth:`transform` is identical.
        """
        self._check_fitted()
        meta = {
            "n_topics": self.n_topics,
            "vocab_size": self.vocab_size,
            "alpha": self.alpha,
            "beta": self.beta,
            "n_iter": self.n_iter,
            "inner_iter": self.inner_iter,
            "tol": self.tol,
            "seed": self.seed,
        }
        return meta, self._lambda

    @classmethod
    def from_state(cls, meta: dict, lam: np.ndarray) -> "LdaVariational":
        """Rebuild a fitted model from a :meth:`to_state` snapshot."""
        lam = np.asarray(lam, dtype=float)
        model = cls(
            int(meta["n_topics"]),
            int(meta.get("vocab_size", lam.shape[1])),
            alpha=meta["alpha"],
            beta=meta["beta"],
            n_iter=int(meta.get("n_iter", 30)),
            inner_iter=int(meta.get("inner_iter", 40)),
            tol=meta.get("tol", 1e-4),
            seed=int(meta.get("seed", 0)),
        )
        if lam.shape != (model.n_topics, model.vocab_size):
            raise ValueError(
                f"lambda shape {lam.shape} does not match "
                f"({model.n_topics}, {model.vocab_size})"
            )
        model._lambda = lam
        model.topic_word_ = lam / lam.sum(axis=1, keepdims=True)
        model.doc_topic_ = np.empty((0, model.n_topics))
        return model


def fit_lda(
    docs: list[np.ndarray],
    n_topics: int,
    vocab_size: int,
    *,
    method: str = "variational",
    seed: int = 0,
    **kwargs,
):
    """Fit an LDA model by method name (``"variational"`` or ``"gibbs"``)."""
    if method == "variational":
        model = LdaVariational(n_topics, vocab_size, seed=seed, **kwargs)
    elif method == "gibbs":
        model = LdaGibbs(n_topics, vocab_size, seed=seed, **kwargs)
    else:
        raise ValueError(f"unknown LDA method {method!r}")
    return model.fit(docs)
