"""Vocabulary construction and document encoding for topic models."""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Sequence

import numpy as np

__all__ = ["Vocabulary"]


class Vocabulary:
    """A frozen token-to-id mapping built from a corpus.

    Tokens seen fewer than ``min_count`` times are dropped; encoding an
    unseen or dropped token silently skips it (topic models ignore
    out-of-vocabulary words).
    """

    def __init__(self, min_count: int = 1, max_size: int | None = None):
        if min_count < 1:
            raise ValueError("min_count must be >= 1")
        if max_size is not None and max_size < 1:
            raise ValueError("max_size must be >= 1 when given")
        self.min_count = min_count
        self.max_size = max_size
        self._token_to_id: dict[str, int] = {}
        self._id_to_token: list[str] = []

    def __len__(self) -> int:
        return len(self._id_to_token)

    def __contains__(self, token: str) -> bool:
        return token in self._token_to_id

    @property
    def tokens(self) -> list[str]:
        """All tokens in id order."""
        return list(self._id_to_token)

    def fit(self, documents: Iterable[Sequence[str]]) -> "Vocabulary":
        """Build the vocabulary from tokenized documents."""
        counts: Counter[str] = Counter()
        for doc in documents:
            counts.update(doc)
        kept = [
            (tok, cnt) for tok, cnt in counts.items() if cnt >= self.min_count
        ]
        # Most frequent first; ties broken alphabetically for determinism.
        kept.sort(key=lambda item: (-item[1], item[0]))
        if self.max_size is not None:
            kept = kept[: self.max_size]
        self._id_to_token = [tok for tok, _ in kept]
        self._token_to_id = {tok: i for i, tok in enumerate(self._id_to_token)}
        return self

    def to_state(self) -> dict:
        """JSON-serializable snapshot; restore with :meth:`from_state`."""
        return {
            "min_count": self.min_count,
            "max_size": self.max_size,
            "tokens": self.tokens,
        }

    @classmethod
    def from_state(cls, state: dict) -> "Vocabulary":
        """Rebuild a fitted vocabulary from a :meth:`to_state` snapshot."""
        vocab = cls(
            min_count=state.get("min_count", 1),
            max_size=state.get("max_size"),
        )
        vocab._id_to_token = list(state["tokens"])
        vocab._token_to_id = {
            tok: i for i, tok in enumerate(vocab._id_to_token)
        }
        if len(vocab._token_to_id) != len(vocab._id_to_token):
            raise ValueError("vocabulary state contains duplicate tokens")
        return vocab

    def token_id(self, token: str) -> int:
        """Id of a token; raises ``KeyError`` if absent."""
        return self._token_to_id[token]

    def token(self, token_id: int) -> str:
        """Token string for an id."""
        return self._id_to_token[token_id]

    def encode(self, document: Sequence[str]) -> np.ndarray:
        """Token-id array for a document, skipping out-of-vocab tokens."""
        ids = [self._token_to_id[t] for t in document if t in self._token_to_id]
        return np.array(ids, dtype=np.int64)

    def encode_corpus(
        self, documents: Iterable[Sequence[str]]
    ) -> list[np.ndarray]:
        """Encode every document."""
        return [self.encode(doc) for doc in documents]
