"""Topic-distribution similarity measures.

The paper's features (x), (xi), (xiii) all use the total-variation
distance between topic distributions expressed as a similarity:
``s = 1 - 0.5 * ||p - q||_1``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["total_variation_similarity", "pairwise_tv_similarity"]


def total_variation_similarity(p: np.ndarray, q: np.ndarray) -> float:
    """``1 - TV(p, q)`` for two distributions on the same support.

    Equals 1 when the distributions are identical and 0 when they have
    disjoint support.
    """
    p = np.asarray(p, dtype=float)
    q = np.asarray(q, dtype=float)
    if p.shape != q.shape:
        raise ValueError("distributions must have the same shape")
    return float(1.0 - 0.5 * np.abs(p - q).sum())


def pairwise_tv_similarity(rows: np.ndarray, against: np.ndarray) -> np.ndarray:
    """TV similarity of each row of ``rows`` against the vector ``against``.

    Vectorized form used when scoring one question's topic distribution
    against many candidate questions at once.
    """
    rows = np.atleast_2d(np.asarray(rows, dtype=float))
    against = np.asarray(against, dtype=float)
    if rows.shape[1] != against.shape[0]:
        raise ValueError("dimension mismatch")
    return 1.0 - 0.5 * np.abs(rows - against[None, :]).sum(axis=1)
