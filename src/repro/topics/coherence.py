"""Topic-coherence evaluation (UMass coherence).

A quality metric for fitted LDA models: coherent topics put their top
words in documents together.  UMass coherence (Mimno et al., 2011):

    C(topic) = sum_{i<j} log (D(w_i, w_j) + 1) / D(w_j)

over the topic's top-N word pairs, where ``D(w)`` counts documents
containing ``w`` and ``D(w_i, w_j)`` counts co-occurrences.  Higher
(closer to zero) is better.
"""

from __future__ import annotations

import numpy as np

__all__ = ["umass_coherence", "mean_coherence"]


def _document_frequencies(docs: list[np.ndarray], word_ids: np.ndarray):
    """Per-word and pairwise document frequencies over ``word_ids``."""
    word_ids = np.asarray(word_ids)
    index = {int(w): i for i, w in enumerate(word_ids)}
    n = len(word_ids)
    single = np.zeros(n)
    joint = np.zeros((n, n))
    for doc in docs:
        present = sorted({index[int(t)] for t in np.asarray(doc) if int(t) in index})
        for a, i in enumerate(present):
            single[i] += 1
            for j in present[a + 1 :]:
                joint[i, j] += 1
                joint[j, i] += 1
    return single, joint


def umass_coherence(
    docs: list[np.ndarray],
    topic_word: np.ndarray,
    topic: int,
    *,
    top_n: int = 10,
) -> float:
    """UMass coherence of one topic of a fitted model.

    ``docs`` are token-id arrays (the training corpus) and
    ``topic_word`` the model's topic-word distribution matrix.
    """
    if top_n < 2:
        raise ValueError("top_n must be >= 2")
    if not 0 <= topic < topic_word.shape[0]:
        raise ValueError("topic index out of range")
    if not docs:
        raise ValueError("need a non-empty corpus")
    top_words = np.argsort(-topic_word[topic])[:top_n]
    single, joint = _document_frequencies(docs, top_words)
    score = 0.0
    # Convention: words ordered by topic probability; w_j is the more
    # probable conditioning word.
    for i in range(1, len(top_words)):
        for j in range(i):
            if single[j] > 0:
                score += np.log((joint[i, j] + 1.0) / single[j])
    return float(score)


def mean_coherence(
    docs: list[np.ndarray], topic_word: np.ndarray, *, top_n: int = 10
) -> float:
    """Average UMass coherence over all topics."""
    k = topic_word.shape[0]
    return float(
        np.mean(
            [umass_coherence(docs, topic_word, t, top_n=top_n) for t in range(k)]
        )
    )
