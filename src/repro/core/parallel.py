"""Shared process-pool dispatch for embarrassingly parallel work.

Both the CV harness (:mod:`repro.core.evaluation`) and the per-task
model fits (:mod:`repro.core.pipeline`) dispatch through here.  Tasks
carry all of their own inputs (they are pickled to the workers), order
is always preserved, and all randomness derives from per-task seeds, so
serial and parallel runs produce bit-identical results.

Worker processes have their own process-wide :mod:`repro.perf` registry,
which would silently swallow stage timings recorded inside a task.  Pass
``merge_perf=True`` to wrap each task so the worker ships a registry
snapshot back with its result; the parent merges the snapshots into its
own registry, keeping per-stage stats identical to a serial run.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor

from .. import perf

__all__ = ["resolve_n_jobs", "parallel_map", "ShardPool"]


def resolve_n_jobs(n_jobs: int | None) -> int:
    """Explicit ``n_jobs`` wins; otherwise ``REPRO_N_JOBS``; otherwise 1."""
    if n_jobs is None:
        raw = os.environ.get("REPRO_N_JOBS", "")
        try:
            n_jobs = int(raw) if raw else 1
        except ValueError:
            n_jobs = 1
    return max(1, n_jobs)


class _PerfTask:
    """Run ``fn(task)`` in a fresh perf registry and return its snapshot.

    A class (not a closure) so it pickles to worker processes.
    """

    def __init__(self, fn):
        self.fn = fn

    def __call__(self, task):
        registry = perf.PerfRegistry()
        with perf.use_registry(registry):
            result = self.fn(task)
        return result, registry.snapshot()


def parallel_map(
    fn, tasks: list, n_jobs: int | None = None, *, merge_perf: bool = False
) -> list:
    """``[fn(t) for t in tasks]``, optionally across worker processes.

    Order is preserved, so serial and parallel runs aggregate results
    identically; each task must carry all of its own inputs (tasks are
    pickled to the workers).  With ``merge_perf=True``, perf stages and
    counters recorded inside the tasks are merged back into the calling
    process's registry (in task order) instead of being lost with the
    workers.
    """
    n_jobs = resolve_n_jobs(n_jobs)
    if n_jobs <= 1 or len(tasks) <= 1:
        return [fn(t) for t in tasks]
    if not merge_perf:
        with ProcessPoolExecutor(max_workers=min(n_jobs, len(tasks))) as pool:
            return list(pool.map(fn, tasks))
    with ProcessPoolExecutor(max_workers=min(n_jobs, len(tasks))) as pool:
        wrapped = list(pool.map(_PerfTask(fn), tasks))
    registry = perf.get_registry()
    results = []
    for result, snap in wrapped:
        registry.merge(snap)
        results.append(result)
    return results


# -- shard-addressed persistent workers -------------------------------------

# Per-worker shard state, built once by the pool initializer.  Each
# shard gets its *own* single-worker executor, so a call addressed to
# shard s always lands on the process holding shard s's state — the
# shared-nothing property the sharded state engine relies on.
_SHARD_STATE = None


def _shard_init(factory_bytes: bytes) -> None:
    global _SHARD_STATE
    factory, payload = pickle.loads(factory_bytes)
    _SHARD_STATE = factory(payload)


def _shard_call(item):
    method, args, kwargs = item
    return getattr(_SHARD_STATE, method)(*args, **kwargs)


def _shard_swap(factory_bytes: bytes):
    """Atomically replace this worker's shard state (refit handshake).

    The new state is built *before* the old one is released, so a
    failure leaves the worker serving the previous epoch; the caller
    learns the outcome from the returned acknowledgement.
    """
    global _SHARD_STATE
    factory, payload = pickle.loads(factory_bytes)
    fresh = factory(payload)
    stale, _SHARD_STATE = _SHARD_STATE, fresh
    release = getattr(stale, "release", None)
    if release is not None:
        release()
    return getattr(fresh, "epoch", None)


def _shard_release():
    """Drop this worker's shard state and free its mapped resources."""
    global _SHARD_STATE
    stale, _SHARD_STATE = _SHARD_STATE, None
    release = getattr(stale, "release", None)
    if release is not None:
        release()
    return True


class ShardPool:
    """Persistent shared-nothing worker processes, one per shard.

    ``factory(payload)`` runs once inside each worker at startup and
    returns the shard's state object; later calls name one of its
    methods.  Payloads ship exactly once (at initializer time), so the
    per-call IPC cost is the method arguments and the return value, not
    the shard state.

    Determinism: :meth:`call_all` scatters one call per shard and
    gathers results in shard order, so the merge step downstream sees
    the same sequence however the workers were scheduled.
    """

    def __init__(self, payloads: list, factory):
        self._executors = []
        try:
            for payload in payloads:
                self._executors.append(
                    ProcessPoolExecutor(
                        max_workers=1,
                        initializer=_shard_init,
                        initargs=(pickle.dumps((factory, payload)),),
                    )
                )
        except Exception:
            self.close()
            raise

    @property
    def n_shards(self) -> int:
        return len(self._executors)

    def submit(self, shard: int, method: str, *args, **kwargs):
        """Future of ``state.method(*args, **kwargs)`` on ``shard``."""
        return self._executors[shard].submit(
            _shard_call, (method, args, kwargs)
        )

    def call(self, shard: int, method: str, *args, **kwargs):
        return self.submit(shard, method, *args, **kwargs).result()

    def call_all(self, method: str, args_per_shard: list | None = None) -> list:
        """Scatter ``method`` to every shard; gather in shard order."""
        if args_per_shard is None:
            args_per_shard = [()] * self.n_shards
        futures = [
            self.submit(shard, method, *args)
            for shard, args in enumerate(args_per_shard)
        ]
        return [f.result() for f in futures]

    def swap_all(self, factory, payloads: list) -> list:
        """Swap every worker's state in place; returns the acks.

        Each worker builds its replacement state from ``payloads[shard]``
        and only then releases the old one, so a swap is atomic per
        worker: until it acknowledges, calls still see the previous
        state.  Gathered in shard order like :meth:`call_all`.
        """
        futures = [
            executor.submit(
                _shard_swap, pickle.dumps((factory, payloads[shard]))
            )
            for shard, executor in enumerate(self._executors)
        ]
        return [f.result() for f in futures]

    def release_all(self) -> None:
        """Ask every worker to drop its state before the pool shuts down."""
        futures = [
            executor.submit(_shard_release) for executor in self._executors
        ]
        for f in futures:
            try:
                f.result()
            except Exception:  # noqa: BLE001 — teardown is best-effort
                pass

    def close(self) -> None:
        for executor in self._executors:
            executor.shutdown(wait=True, cancel_futures=True)
        self._executors = []

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
