"""End-to-end forum predictor (paper Fig. 1).

``ForumPredictor`` glues the full methodology together: fit topics over
the feature window, build the SLN graphs, extract the 20 features, and
train the three task models (answer probability, net votes, response
time).  Prediction then works for any (user, question) pair, including
brand-new questions.

Training decomposes into three independently callable stages —
:meth:`ForumPredictor.fit_topics`, :meth:`ForumPredictor.build_state`
and :meth:`ForumPredictor.fit_models` — which :meth:`ForumPredictor.fit`
composes for the one-shot batch path.  Streaming callers instead keep a
long-lived :class:`~repro.core.state.ForumState` and call
:meth:`ForumPredictor.refit_from_state` on each refit: with
``warm_start`` the previously fitted topic model is kept (topic vectors
are embedded in the state, so refitting them would invalidate it) and
the vote/timing networks continue training from their current weights
instead of a fresh initialization.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import perf
from ..forum.dataset import ForumDataset
from ..forum.models import Thread
from .answer_model import AnswerModel
from .features import FeatureExtractor
from .parallel import parallel_map
from .resilience import NonFiniteFeatureError
from .state import ForumState
from .timing_model import TimingModel
from .topic_context import TopicModelContext
from .vote_model import VoteModel

__all__ = ["PredictorConfig", "Prediction", "ForumPredictor"]


def _fit_model_task(task):
    """Fit one task model; module-level so it pickles to workers.

    The model is fitted in place and returned — in a worker process the
    caller receives a fitted pickle round-trip of the model it sent.
    """
    name, model, args, kwargs = task
    with perf.timer(f"pipeline.fit_{name}"):
        model.fit(*args, **kwargs)
    return model


@dataclass(frozen=True)
class PredictorConfig:
    """Hyperparameters; defaults follow the paper's Sec. IV-A setup."""

    n_topics: int = 8  # paper's K = 8
    lda_method: str = "variational"
    lda_min_count: int = 2
    vote_hidden: tuple[int, ...] = (20, 20, 20, 20)  # L=4, 20 units
    excitation_hidden: tuple[int, ...] = (100, 50)
    decay: str = "network"
    omega: float = 0.5  # constant decay rate per hour when decay="constant"
    answer_l2: float = 1e-2
    vote_epochs: int = 300
    timing_epochs: int = 300
    warm_epochs: int = 60  # fine-tune budget when refitting warm
    negative_ratio: float = 1.0  # negatives per positive for task (i)
    betweenness_sample_size: int | None = None
    seed: int = 0
    # "fused" trains through the vectorized engine (buffered backprop,
    # in-place optimizer steps, active-set LDA E-step); "reference"
    # keeps the original per-layer/per-corpus loops for benchmarking.
    training_engine: str = "fused"

    def __post_init__(self):
        if self.n_topics < 1:
            raise ValueError("n_topics must be >= 1")
        if self.negative_ratio <= 0:
            raise ValueError("negative_ratio must be positive")
        if self.warm_epochs < 1:
            raise ValueError("warm_epochs must be >= 1")
        if self.training_engine not in ("fused", "reference"):
            raise ValueError(
                "training_engine must be 'fused' or 'reference'"
            )


@dataclass(frozen=True)
class Prediction:
    """Joint prediction for one (user, question) pair."""

    answer_probability: float  # hat a_uq
    votes: float  # hat v_uq
    response_time: float  # hat r_uq, hours


class ForumPredictor:
    """Trains and serves the paper's three predictors."""

    def __init__(self, config: PredictorConfig | None = None):
        self.config = config or PredictorConfig()
        self.topics: TopicModelContext | None = None
        self.extractor: FeatureExtractor | None = None
        self.answer_model: AnswerModel | None = None
        self.vote_model: VoteModel | None = None
        self.timing_model: TimingModel | None = None
        self._horizon_reference: float = 0.0

    # -- training -----------------------------------------------------------------

    def fit_topics(self, window: ForumDataset) -> TopicModelContext:
        """Stage 1: fit the topic model over the feature window."""
        cfg = self.config
        lda_kwargs = {}
        if cfg.lda_method == "variational":
            # The reference engine keeps the legacy corpus-wide E-step
            # convergence check; fused uses the active-set batch.
            lda_kwargs["e_step"] = (
                "batched" if cfg.training_engine == "fused" else "global"
            )
        with perf.timer("pipeline.fit_topics"):
            self.topics = TopicModelContext.fit(
                window,
                n_topics=cfg.n_topics,
                method=cfg.lda_method,
                min_count=cfg.lda_min_count,
                seed=cfg.seed,
                **lda_kwargs,
            )
        return self.topics

    def build_state(self, window: ForumDataset) -> ForumState:
        """Stage 2: a fresh incremental state holding the window.

        Fits topics first if :meth:`fit_topics` has not run — the state
        embeds per-post topic vectors, so it is bound to one context.
        """
        if self.topics is None:
            self.fit_topics(window)
        return ForumState.from_dataset(window, self.topics)

    def fit_models(
        self,
        dataset: ForumDataset,
        *,
        warm_start: bool = False,
        n_jobs: int | None = None,
    ) -> "ForumPredictor":
        """Stage 3: train the three task models over ``dataset``.

        Requires a bound extractor.  With ``warm_start`` the existing
        vote/timing networks continue training from their current
        weights; the answer model's logistic regression is convex and is
        always refit from scratch.

        The three fits are independent (separate seeded RNGs, no shared
        state), so with ``n_jobs > 1`` (or ``REPRO_N_JOBS``) they run in
        worker processes — each fit is deterministic and pickling
        preserves float bits, so results are identical to a serial run.
        """
        cfg = self.config
        if self.extractor is None:
            raise RuntimeError("fit_models requires a bound extractor")
        records = dataset.answer_records()
        if not records:
            raise ValueError("dataset has no answers to train on")
        pos_pairs = [(r.user, dataset.thread(r.thread_id)) for r in records]
        votes = np.array([r.votes for r in records], dtype=float)
        times = np.array([r.response_time for r in records], dtype=float)
        n_neg = max(1, int(round(len(records) * cfg.negative_ratio)))
        neg_pairs = [
            (u, dataset.thread(tid))
            for u, tid in dataset.sample_negative_pairs(n_neg, seed=cfg.seed)
        ]
        # One batched featurization for positives and negatives; the
        # answer and timing models share the stacked matrix.
        all_pairs = pos_pairs + neg_pairs
        with perf.timer("pipeline.features"):
            x_all = self.extractor.feature_matrix(all_pairs)
        if not np.isfinite(x_all).all():
            # Poisoned window: refuse to train rather than let NaN/inf
            # propagate silently into the model weights.  The resilient
            # online loop catches this and falls back to its last-good
            # snapshot; offline callers should repair the dataset first.
            n_bad = int((~np.isfinite(x_all)).sum())
            raise NonFiniteFeatureError(
                f"feature matrix contains {n_bad} non-finite entries "
                f"across {len(all_pairs)} pairs"
            )
        x_pos = x_all[: len(pos_pairs)]
        is_event = np.r_[np.ones(len(pos_pairs)), np.zeros(len(neg_pairs))]

        fused = cfg.training_engine == "fused"
        # Warm networks resume from trained weights, so a short
        # fine-tuning budget replaces the full epoch schedule.
        vote_warm = warm_start and self.vote_model is not None
        if not vote_warm:
            self.vote_model = VoteModel(
                x_pos.shape[1],
                hidden=cfg.vote_hidden,
                epochs=cfg.vote_epochs,
                seed=cfg.seed,
                fused=fused,
            )
        timing_warm = warm_start and self.timing_model is not None
        if not timing_warm:
            self.timing_model = TimingModel(
                x_pos.shape[1],
                excitation_hidden=cfg.excitation_hidden,
                decay=cfg.decay,
                omega=cfg.omega,
                epochs=cfg.timing_epochs,
                seed=cfg.seed,
                fused=fused,
            )
        times_all = np.r_[times, np.zeros(len(neg_pairs))]
        horizons_all = self._horizons([t for _, t in all_pairs])
        tasks = [
            ("answer", AnswerModel(l2=cfg.answer_l2), (x_all, is_event), {}),
            (
                "vote",
                self.vote_model,
                (x_pos, votes),
                {"epochs": cfg.warm_epochs if vote_warm else None},
            ),
            (
                "timing",
                self.timing_model,
                (x_all, times_all, horizons_all, is_event),
                {"epochs": cfg.warm_epochs if timing_warm else None},
            ),
        ]
        with perf.timer("pipeline.fit_models"):
            fitted = parallel_map(
                _fit_model_task, tasks, n_jobs, merge_perf=True
            )
        self.answer_model, self.vote_model, self.timing_model = fitted
        return self

    def fit(
        self,
        dataset: ForumDataset,
        *,
        feature_window: ForumDataset | None = None,
        warm_start: bool = False,
        n_jobs: int | None = None,
    ) -> "ForumPredictor":
        """Train all three models.

        ``dataset`` supplies the training pairs (the paper's Omega);
        ``feature_window`` the questions features are computed over (the
        paper's F(q)), defaulting to ``dataset`` itself.  With
        ``warm_start`` a previously fitted topic model is kept and the
        vote/timing networks resume from their current weights — the
        periodic-refit path of the online loop.
        """
        cfg = self.config
        window = feature_window if feature_window is not None else dataset
        if len(dataset) == 0 or len(window) == 0:
            raise ValueError("dataset and feature window must be non-empty")
        if not (warm_start and self.topics is not None):
            self.fit_topics(window)
        state = ForumState.from_dataset(window, self.topics)
        return self.refit_from_state(
            state, dataset=dataset, warm_start=warm_start, n_jobs=n_jobs
        )

    def refit_from_state(
        self,
        state: ForumState,
        *,
        dataset: ForumDataset | None = None,
        warm_start: bool = True,
        n_jobs: int | None = None,
    ) -> "ForumPredictor":
        """Retrain against a state's current window without rebuilding it.

        ``dataset`` (training pairs) defaults to the state's own window.
        The extractor binds a frozen snapshot, so the caller can keep
        appending to ``state`` while this predictor serves.
        """
        cfg = self.config
        self.topics = state.topics
        self.extractor = FeatureExtractor.from_state(
            state,
            betweenness_sample_size=cfg.betweenness_sample_size,
            seed=cfg.seed,
        )
        if dataset is None:
            dataset = self.extractor.window
        # The paper's horizon T: timestamp of the last post in the data.
        self._horizon_reference = max(
            dataset.duration_hours, state.duration_hours
        )
        return self.fit_models(
            dataset, warm_start=warm_start, n_jobs=n_jobs
        )

    def _horizons(self, threads: list[Thread]) -> np.ndarray:
        """Observation window T - t(p_q0) per thread, floored at one hour."""
        return np.maximum(
            self._horizon_reference
            - np.array([t.created_at for t in threads]),
            1.0,
        )

    def _check_fitted(self) -> None:
        if self.extractor is None:
            raise RuntimeError("predictor is not fitted")

    # -- prediction -----------------------------------------------------------------

    def predict(self, user: int, thread: Thread) -> Prediction:
        """Joint prediction for a single pair."""
        self._check_fitted()
        x = self.extractor.features(user, thread)[None, :]
        horizon = self._horizons([thread])
        return Prediction(
            answer_probability=float(self.answer_model.predict_proba(x)[0]),
            votes=float(self.vote_model.predict(x)[0]),
            response_time=float(self.timing_model.predict(x, horizon)[0]),
        )

    def predict_batch(
        self, pairs: list[tuple[int, Thread]]
    ) -> dict[str, np.ndarray]:
        """Vectorized predictions: arrays keyed answer/votes/response_time."""
        self._check_fitted()
        if not pairs:
            empty = np.empty(0)
            return {"answer": empty, "votes": empty, "response_time": empty}
        x = self.extractor.feature_matrix(pairs)
        horizons = self._horizons([t for _, t in pairs])
        return self.predict_matrix(x, horizons)

    def predict_matrix(
        self, x: np.ndarray, horizons: np.ndarray
    ) -> dict[str, np.ndarray]:
        """Model heads over prefeaturized rows (same keys as batch).

        Entry point for callers that already hold the feature matrix —
        the sharded serving path merges per-shard feature blocks (and
        cache-missed rows) and runs the heads once here.
        """
        self._check_fitted()
        return {
            "answer": self.answer_model.predict_proba(x),
            "votes": self.vote_model.predict(x),
            "response_time": self.timing_model.predict(x, horizons),
        }
