"""Quality/timing tradeoff analysis for the routing LP (paper Sec. V).

The router's lambda parameter weighs predicted response time against
predicted votes.  This module sweeps lambda to trace the achievable
(quality, latency) frontier over a set of questions — the curve an
asker (or platform) moves along when setting the knob — and extracts
its Pareto-efficient subset.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..forum.models import Thread
from .routing import QuestionRouter

__all__ = ["FrontierPoint", "TradeoffFrontier", "sweep_tradeoff", "pareto_front"]


@dataclass(frozen=True)
class FrontierPoint:
    """Mean routed outcome at one lambda setting."""

    tradeoff: float
    mean_votes: float  # mean predicted votes of the routed user
    mean_response_time: float  # mean predicted latency of the routed user
    n_routed: int


@dataclass(frozen=True)
class TradeoffFrontier:
    """The full sweep plus its Pareto-efficient subset."""

    points: tuple[FrontierPoint, ...]

    @property
    def pareto(self) -> tuple[FrontierPoint, ...]:
        return pareto_front(self.points)

    def as_rows(self) -> list[tuple[float, float, float, int]]:
        return [
            (p.tradeoff, p.mean_votes, p.mean_response_time, p.n_routed)
            for p in self.points
        ]


def pareto_front(points) -> tuple[FrontierPoint, ...]:
    """Points not dominated in (higher votes, lower response time)."""
    points = list(points)
    efficient = []
    for p in points:
        dominated = any(
            (q.mean_votes >= p.mean_votes)
            and (q.mean_response_time <= p.mean_response_time)
            and (
                q.mean_votes > p.mean_votes
                or q.mean_response_time < p.mean_response_time
            )
            for q in points
        )
        if not dominated:
            efficient.append(p)
    efficient.sort(key=lambda p: p.tradeoff)
    return tuple(efficient)


def sweep_tradeoff(
    router: QuestionRouter,
    threads: list[Thread],
    candidates: list[int],
    *,
    tradeoffs: tuple[float, ...] = (0.0, 0.1, 0.5, 1.0, 2.0, 5.0),
    recent_load: dict[int, int] | None = None,
) -> TradeoffFrontier:
    """Route every thread at each lambda and record mean routed outcomes."""
    if not threads:
        raise ValueError("need at least one thread")
    if not candidates:
        raise ValueError("need a non-empty candidate pool")
    points = []
    for lam in tradeoffs:
        votes, times = [], []
        for thread in threads:
            result = router.recommend(
                thread, candidates, tradeoff=lam, recent_load=recent_load
            )
            if result is None:
                continue
            top = result.ranked_users()[0][0]
            idx = int(np.flatnonzero(result.users == top)[0])
            votes.append(float(result.predictions["votes"][idx]))
            times.append(float(result.predictions["response_time"][idx]))
        points.append(
            FrontierPoint(
                tradeoff=float(lam),
                mean_votes=float(np.mean(votes)) if votes else float("nan"),
                mean_response_time=(
                    float(np.mean(times)) if times else float("nan")
                ),
                n_routed=len(votes),
            )
        )
    return TradeoffFrontier(points=tuple(points))
