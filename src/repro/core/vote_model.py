"""Task (ii): net votes v_uq on the answer.  (Paper Sec. II-A.2.)

A fully-connected network on standardized features.  The paper's
configuration is L = 4 hidden layers of 20 ReLU units; its Eq. (1)
applies the nonlinearity to the output as well, but votes are signed
integers, so we keep the output linear (recorded in DESIGN.md).
"""

from __future__ import annotations

import numpy as np

from ..ml.network import MLP, FitResult
from ..ml.optimizers import Adam
from ..ml.scaler import StandardScaler

__all__ = ["VoteModel"]


class VoteModel:
    """MLP regressor for answer net votes."""

    def __init__(
        self,
        n_features: int,
        *,
        hidden: tuple[int, ...] = (20, 20, 20, 20),
        l2: float = 0.05,
        learning_rate: float = 0.001,
        epochs: int = 300,
        batch_size: int = 64,
        validation_fraction: float = 0.15,
        patience: int = 25,
        seed: int = 0,
        fused: bool = True,
    ):
        if n_features < 1:
            raise ValueError("n_features must be >= 1")
        self.scaler = StandardScaler(clip=8.0)
        self.network = MLP(
            [n_features, *hidden, 1],
            hidden_activation="relu",
            output_activation="identity",
            seed=seed,
            l2=l2,
        )
        self.optimizer = Adam(learning_rate=learning_rate)
        self.fused = fused
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.batch_size = batch_size
        self.validation_fraction = validation_fraction
        self.patience = patience
        self.seed = seed
        self._fitted = False

    def fit(
        self, x: np.ndarray, votes: np.ndarray, *, epochs: int | None = None
    ) -> FitResult:
        """Train on feature rows of answered pairs and their net votes.

        Uses an internal validation split with early stopping — the small
        deep network of the paper overfits badly on a few hundred
        answers without it.  ``epochs`` overrides the configured budget
        for one call; warm refits pass a reduced budget to fine-tune the
        already-trained network instead of re-running the full schedule.
        """
        z = self.scaler.fit_transform(np.asarray(x, dtype=float))
        # Adam moments always restart: a warm refit fine-tunes from the
        # current *weights* but never from stale optimizer state, so the
        # outcome depends only on (weights, data), which the parallel
        # fit path and the warm-refit tests rely on.
        self.optimizer.reset()
        result = self.network.fit(
            z,
            np.asarray(votes, dtype=float),
            loss="mse",
            optimizer=self.optimizer,
            fused=self.fused,
            epochs=self.epochs if epochs is None else epochs,
            batch_size=self.batch_size,
            validation_fraction=self.validation_fraction,
            patience=self.patience,
            seed=self.seed,
        )
        self._fitted = True
        return result

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predicted net votes per row."""
        if not self._fitted:
            raise RuntimeError("model is not fitted")
        return self.network.predict(
            self.scaler.transform(np.atleast_2d(np.asarray(x, dtype=float)))
        )
