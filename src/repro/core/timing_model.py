"""Task (iii): response time r_uq via the point process.  (Sec. II-A.3.)

Wraps the excitation point process with feature standardization.  The
excitation ``f_Theta`` follows the paper's configuration (hidden layers
(100, 50), tanh).  Two documented deviations from the paper's final
setup, both recorded in DESIGN.md:

* the decay defaults to a *network* ``g_Theta`` rather than a constant —
  with a constant decay the predicted time is proportional to the
  excitation, which tracks answer *propensity* rather than speed;
* the default prediction is the *conditional* first moment
  ``E[t | answered]`` rather than the paper's unnormalized
  ``int t lambda dt`` (available as ``predictor="expected"``), because
  the unnormalized form conflates response probability with timing.
"""

from __future__ import annotations

import numpy as np

from ..ml.optimizers import Adam
from ..ml.scaler import StandardScaler
from ..pointprocess.exponential import conditional_expected_time
from ..pointprocess.model import ExcitationPointProcess, PointProcessFitResult

__all__ = ["TimingModel"]


class TimingModel:
    """Point-process regressor for response times (hours)."""

    def __init__(
        self,
        n_features: int,
        *,
        excitation_hidden: tuple[int, ...] = (100, 50),
        decay: str = "network",
        omega: float = 0.5,
        decay_hidden: tuple[int, ...] = (32,),
        predictor: str = "conditional",
        learning_rate: float = 0.01,
        epochs: int = 300,
        batch_size: int = 256,
        l2: float = 1e-3,
        validation_fraction: float = 0.15,
        patience: int = 25,
        seed: int = 0,
        fused: bool = True,
    ):
        if predictor not in ("conditional", "expected"):
            raise ValueError("predictor must be 'conditional' or 'expected'")
        self.scaler = StandardScaler(clip=8.0)
        self.process = ExcitationPointProcess(
            n_features,
            excitation_hidden=excitation_hidden,
            decay=decay,
            omega=omega,
            decay_hidden=decay_hidden,
            l2=l2,
            seed=seed,
        )
        self.optimizer = Adam(learning_rate=learning_rate)
        self.fused = fused
        self.predictor = predictor
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.batch_size = batch_size
        self.validation_fraction = validation_fraction
        self.patience = patience
        self.seed = seed
        self._fitted = False

    def fit(
        self,
        x: np.ndarray,
        times: np.ndarray,
        horizons: np.ndarray,
        is_event: np.ndarray,
        *,
        epochs: int | None = None,
    ) -> PointProcessFitResult:
        """Maximize the point-process likelihood over event/non-event pairs.

        ``horizons`` is the per-pair observation window ``T - t(p_q0)``
        (paper notation), ``times`` the observed response delay for
        event rows.  ``epochs`` overrides the configured budget for one
        call; warm refits pass a reduced budget to fine-tune the
        already-trained process instead of re-running the full schedule.
        """
        times = np.asarray(times, dtype=float)
        is_event = np.asarray(is_event, dtype=float)
        event_times = times[is_event == 1.0]
        # Cap predictions at the bulk of the training distribution; for
        # pairs with near-zero excitation the likelihood barely constrains
        # the decay, and an unconstrained decay inflates E[t | answered].
        self._max_train_time = (
            float(np.percentile(event_times, 99.0)) if event_times.size else 1.0
        )
        z = self.scaler.fit_transform(np.asarray(x, dtype=float))
        # Adam moments always restart: a warm refit fine-tunes from the
        # current *weights* but never from stale optimizer state, so the
        # outcome depends only on (weights, data), which the parallel
        # fit path and the warm-refit tests rely on.
        self.optimizer.reset()
        result = self.process.fit(
            z,
            np.asarray(times, dtype=float),
            np.asarray(horizons, dtype=float),
            np.asarray(is_event, dtype=float),
            optimizer=self.optimizer,
            fused=self.fused,
            epochs=self.epochs if epochs is None else epochs,
            batch_size=self.batch_size,
            validation_fraction=self.validation_fraction,
            patience=self.patience,
            seed=self.seed,
        )
        self._fitted = True
        return result

    def predict(
        self, x: np.ndarray, horizons: np.ndarray | float
    ) -> np.ndarray:
        """Predicted response time per row.

        ``predictor="conditional"`` returns ``E[t | answered]`` from the
        learned rate; ``"expected"`` returns the paper's unnormalized
        first moment.
        """
        if not self._fitted:
            raise RuntimeError("model is not fitted")
        z = self.scaler.transform(np.atleast_2d(np.asarray(x, dtype=float)))
        if self.predictor == "expected":
            return self.process.predict_response_time(z, horizons)
        horizons = np.broadcast_to(
            np.asarray(horizons, dtype=float), (z.shape[0],)
        )
        mu, omega = self.process.predict_parameters(z)
        preds = conditional_expected_time(mu, omega, horizons)
        # Guard against runaway extrapolation: a near-zero learned decay
        # pushes the conditional mean toward horizon/2, far beyond any
        # observed response; cap at the training range.
        return np.minimum(preds, self._max_train_time)

    def rate_parameters(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Learned (mu, omega) per row, for inspection."""
        if not self._fitted:
            raise RuntimeError("model is not fitted")
        z = self.scaler.transform(np.atleast_2d(np.asarray(x, dtype=float)))
        return self.process.predict_parameters(z)
