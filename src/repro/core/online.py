"""Online deployment loop for the recommendation system.

The paper's conclusion proposes "incorporating our recommendation
system into an online forum platform".  This module simulates exactly
that deployment: questions arrive in time order; the predictors are
periodically refit on a sliding window of history; each new question is
routed while it is still unanswered; and afterwards the recommendations
are scored against the users who *actually* answered, with standard
ranking metrics (hit rate, MRR, NDCG).

Unlike the cross-validation harness, nothing here ever looks into the
future: features, graphs and topics come only from threads created
before the question being routed.

The engine itself — fixed-grid refits, the two refit strategies,
candidate preparation, ranking + Sec.-V-LP routing, window state and
the resilient-recovery machinery — lives in
:class:`~repro.core.serving.service.ServingCore`, shared with the
async :class:`~repro.core.serving.service.RecommendationService`.
:class:`OnlineRecommendationLoop` is the thin chronological driver over
that core: it replays a dataset one thread at a time and produces the
same :class:`OnlineReport` it always did, bit for bit, so it remains
the reference both for the cross-validation comparison and for the
serving-stack equivalence tests.

Refits run on a fixed grid (``warmup_hours``, then every
``refit_interval_hours``) anchored to the stream clock, not to arrival
times, so cadence cannot drift when questions arrive in bursts; grid
points with no arrivals are caught up at the next question.

Two refit strategies share the loop:

* ``"incremental"`` (default) — one long-lived
  :class:`~repro.core.state.ForumState` absorbs each thread after it is
  routed (``append``) and drops expired ones at refit time (``evict``);
  each refit freezes the state and warm-starts the task models.  Topics
  are fitted once, at the first feasible refit.
* ``"rebuild"`` — the window state is rebuilt from scratch every refit
  (the pre-incremental behaviour).  With ``warm_start=True`` this is
  numerically identical to the incremental path — both freeze states
  holding the same threads under the same topic context — which the
  equivalence tests assert report-for-report.  With ``warm_start=False``
  topics and networks are refit cold each time.

One caveat inherited from the window semantics: refit windows are
end-exclusive at the refit instant (``[now - window, now)``), and the
incremental state holds *every* thread routed so far.  A thread whose
``created_at`` exactly ties the refit time would therefore be excluded
by the rebuild arm but included by the incremental one; with continuous
timestamps such ties do not occur.

Resilient serving: constructing the loop with a
:class:`~repro.core.resilience.ResilienceConfig` (or passing a
:class:`~repro.core.resilience.FaultPlan` to :meth:`run`) switches the
replay onto a hardened path.  Every event passes a
:class:`~repro.core.resilience.StreamGuard` (quarantine/repair/dedupe),
``_refit`` is wrapped in bounded retry with snapshot fallback and
schedule-level backoff, non-finite scores are masked before ranking,
and every decision is recorded in a per-step
:class:`~repro.core.resilience.DegradationReport` attached to the
returned :class:`OnlineReport`.  On a clean stream the resilient path
produces a report identical to the plain one, which the differential
tests assert.
"""

from __future__ import annotations

from ..forum.dataset import ForumDataset
from .pipeline import PredictorConfig
from .resilience import (
    DegradationReport,
    FaultInjector,
    FaultPlan,
    ResilienceConfig,
)
from .serving.service import OnlineConfig, OnlineReport, ServingCore

__all__ = ["OnlineConfig", "OnlineReport", "OnlineRecommendationLoop"]


class OnlineRecommendationLoop:
    """Replays a dataset through periodic-refit routing.

    A thin synchronous driver over :class:`ServingCore`: every refit,
    routing and state decision is delegated, so a replay here and a
    virtual-clock run of the async service execute the same engine
    code on the same schedule.
    """

    def __init__(
        self,
        predictor_config: PredictorConfig | None = None,
        online_config: OnlineConfig | None = None,
        resilience_config: ResilienceConfig | None = None,
    ):
        self.core = ServingCore(
            predictor_config, online_config, resilience_config
        )

    @property
    def predictor_config(self) -> PredictorConfig:
        return self.core.predictor_config

    @property
    def online_config(self) -> OnlineConfig:
        return self.core.online_config

    @property
    def resilience_config(self) -> ResilienceConfig | None:
        return self.core.resilience_config

    @property
    def guard(self):
        return self.core.guard

    # Tests wrap the refit entry point to inject failures; delegate to
    # the core's hook so the recovery path picks the wrapper up too.
    @property
    def _refit(self):
        return self.core.refit_hook

    @_refit.setter
    def _refit(self, hook) -> None:
        self.core.refit_hook = hook

    def run(
        self, dataset: ForumDataset, fault_plan: FaultPlan | None = None
    ) -> OnlineReport:
        """Stream the dataset's questions through the deployment loop.

        Questions are visited chronologically; the model in use at any
        point was trained strictly on earlier threads.

        With a ``fault_plan`` (or a loop-level
        :class:`~repro.core.resilience.ResilienceConfig`) the stream is
        perturbed by a :class:`~repro.core.resilience.FaultInjector`
        and replayed through the hardened path; the returned report then
        carries a :class:`~repro.core.resilience.DegradationReport`.
        """
        if fault_plan is None and self.core.resilience_config is None:
            return self._run_plain(dataset)
        return self._run_resilient(dataset, fault_plan)

    def _run_plain(self, dataset: ForumDataset) -> OnlineReport:
        core = self.core
        report = OnlineReport()
        for thread in dataset:  # already chronological
            now = thread.created_at
            core.maybe_refit(dataset, now, report)
            core.route(thread, now, report)
            # Fold the thread into the live window only after it has
            # been routed — it must not inform its own recommendation.
            core.observe(thread)
        return report

    def _run_resilient(
        self, dataset: ForumDataset, fault_plan: FaultPlan | None
    ) -> OnlineReport:
        """Hardened replay: guard every event, recover every refit.

        Mirrors :meth:`_run_plain` step for step — on a clean stream the
        two paths produce identical reports: refit windows are built
        from the admitted prefix with the same end-exclusive slicing,
        and routing/appending happen in the same order.
        """
        core = self.core
        res = core.resilience_config or ResilienceConfig()
        report = OnlineReport()
        degradation = DegradationReport()
        report.degradation = degradation
        guard = core.attach_guard(res, degradation)
        if fault_plan is not None:
            stream = FaultInjector(fault_plan).perturb(dataset)
        else:
            stream = list(dataset)
        for event in stream:
            thread = guard.admit(event)
            if thread is None:
                continue
            # The current event sits last in ``accepted``; the
            # end-exclusive window slice excludes it, exactly as the
            # plain path excludes it from the full dataset.
            core.accepted.append(thread)
            now = thread.created_at
            core.maybe_refit_resilient(now, report, degradation, res)
            core.route(thread, now, report, degradation)
            # Routed first, observed second — the thread must not
            # inform its own recommendation.
            core.observe_admitted(thread, degradation)
        return report
