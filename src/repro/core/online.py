"""Online deployment loop for the recommendation system.

The paper's conclusion proposes "incorporating our recommendation
system into an online forum platform".  This module simulates exactly
that deployment: questions arrive in time order; the predictors are
periodically refit on a sliding window of history; each new question is
routed while it is still unanswered; and afterwards the recommendations
are scored against the users who *actually* answered, with standard
ranking metrics (hit rate, MRR, NDCG).

Unlike the cross-validation harness, nothing here ever looks into the
future: features, graphs and topics come only from threads created
before the question being routed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import perf
from ..forum.dataset import ForumDataset
from ..ml.ranking import mean_reciprocal_rank, ndcg_at_k, precision_at_k
from .pipeline import ForumPredictor, PredictorConfig
from .routing import QuestionRouter

__all__ = ["OnlineConfig", "OnlineReport", "OnlineRecommendationLoop"]


@dataclass(frozen=True)
class OnlineConfig:
    """Deployment-loop parameters."""

    refit_interval_hours: float = 120.0
    window_hours: float = 480.0  # sliding feature/training window
    warmup_hours: float = 120.0  # history required before routing starts
    epsilon: float = 0.3
    tradeoff: float = 0.2
    default_capacity: float = 5.0
    top_k: int = 5

    def __post_init__(self):
        if self.refit_interval_hours <= 0 or self.window_hours <= 0:
            raise ValueError("intervals must be positive")
        if self.warmup_hours < 0:
            raise ValueError("warmup_hours must be non-negative")
        if self.top_k < 1:
            raise ValueError("top_k must be >= 1")


@dataclass
class OnlineReport:
    """Outcome of one simulated deployment.

    ``rankings`` orders candidates by predicted answer probability (the
    task-(i) model) and is scored against who actually answered;
    ``routed_scores`` records the LP objective of each routed pick.
    """

    n_questions_seen: int = 0
    n_routed: int = 0
    n_refits: int = 0
    rankings: list[tuple[list[int], set[int]]] = field(default_factory=list)
    routed_scores: list[float] = field(default_factory=list)

    @property
    def hit_rate_at_1(self) -> float:
        if not self.rankings:
            return float("nan")
        return float(
            np.mean([precision_at_k(r, rel, 1) for r, rel in self.rankings])
        )

    def precision_at(self, k: int) -> float:
        if not self.rankings:
            return float("nan")
        return float(
            np.mean([precision_at_k(r, rel, k) for r, rel in self.rankings])
        )

    @property
    def mrr(self) -> float:
        if not self.rankings:
            return float("nan")
        return mean_reciprocal_rank(self.rankings)

    def ndcg_at(self, k: int) -> float:
        if not self.rankings:
            return float("nan")
        return float(
            np.mean([ndcg_at_k(r, rel, k) for r, rel in self.rankings])
        )


class OnlineRecommendationLoop:
    """Replays a dataset through periodic-refit routing."""

    def __init__(
        self,
        predictor_config: PredictorConfig | None = None,
        online_config: OnlineConfig | None = None,
    ):
        self.predictor_config = predictor_config or PredictorConfig()
        self.online_config = online_config or OnlineConfig()
        self._router: QuestionRouter | None = None
        self._candidates: list[int] = []

    def _refit(self, history: ForumDataset) -> bool:
        """Fit the predictor on the current window; False when infeasible."""
        if len(history) < 10 or history.num_answers < 10:
            return False
        with perf.timer("online.refit"):
            predictor = ForumPredictor(self.predictor_config).fit(history)
        self._router = QuestionRouter(
            predictor,
            epsilon=self.online_config.epsilon,
            default_capacity=self.online_config.default_capacity,
        )
        self._candidates = sorted(history.answerers)
        return True

    def run(self, dataset: ForumDataset) -> OnlineReport:
        """Stream the dataset's questions through the deployment loop.

        Questions are visited chronologically; the model in use at any
        point was trained strictly on earlier threads.
        """
        cfg = self.online_config
        report = OnlineReport()
        next_refit = cfg.warmup_hours
        for thread in dataset:  # already chronological
            now = thread.created_at
            if now >= next_refit:
                window = dataset.threads_in_window(
                    max(0.0, now - cfg.window_hours), now
                )
                if self._refit(window):
                    report.n_refits += 1
                next_refit = now + cfg.refit_interval_hours
            if self._router is None or now < cfg.warmup_hours:
                continue
            report.n_questions_seen += 1
            candidates = [u for u in self._candidates if u != thread.asker]
            if not candidates:
                continue
            # Who-will-answer ranking: candidates by predicted a_uq
            # (batch-featurized across the whole candidate set).
            with perf.timer("online.rank"):
                predictions = self._router.predictor.predict_batch(
                    [(u, thread) for u in candidates]
                )
            perf.incr("online.candidate_pairs", len(candidates))
            order = np.argsort(-predictions["answer"], kind="stable")
            ranked = [candidates[i] for i in order[: cfg.top_k]]
            actual = set(thread.answerers)
            if actual:
                report.rankings.append((ranked, actual))
            # Routing pick: the Sec.-V LP over the eligible set.
            with perf.timer("online.route"):
                result = self._router.recommend(
                    thread, candidates, tradeoff=cfg.tradeoff
                )
            if result is None:
                continue
            report.n_routed += 1
            top_user = result.ranked_users()[0][0]
            idx = int(np.flatnonzero(result.users == top_user)[0])
            report.routed_scores.append(float(result.scores[idx]))
        return report
