"""Online deployment loop for the recommendation system.

The paper's conclusion proposes "incorporating our recommendation
system into an online forum platform".  This module simulates exactly
that deployment: questions arrive in time order; the predictors are
periodically refit on a sliding window of history; each new question is
routed while it is still unanswered; and afterwards the recommendations
are scored against the users who *actually* answered, with standard
ranking metrics (hit rate, MRR, NDCG).

Unlike the cross-validation harness, nothing here ever looks into the
future: features, graphs and topics come only from threads created
before the question being routed.

Refits run on a fixed grid (``warmup_hours``, then every
``refit_interval_hours``) anchored to the stream clock, not to arrival
times, so cadence cannot drift when questions arrive in bursts; grid
points with no arrivals are caught up at the next question.

Two refit strategies share the loop:

* ``"incremental"`` (default) — one long-lived
  :class:`~repro.core.state.ForumState` absorbs each thread after it is
  routed (``append``) and drops expired ones at refit time (``evict``);
  each refit freezes the state and warm-starts the task models.  Topics
  are fitted once, at the first feasible refit.
* ``"rebuild"`` — the window state is rebuilt from scratch every refit
  (the pre-incremental behaviour).  With ``warm_start=True`` this is
  numerically identical to the incremental path — both freeze states
  holding the same threads under the same topic context — which the
  equivalence tests assert report-for-report.  With ``warm_start=False``
  topics and networks are refit cold each time.

One caveat inherited from the window semantics: refit windows are
end-exclusive at the refit instant (``[now - window, now)``), and the
incremental state holds *every* thread routed so far.  A thread whose
``created_at`` exactly ties the refit time would therefore be excluded
by the rebuild arm but included by the incremental one; with continuous
timestamps such ties do not occur.

Resilient serving: constructing the loop with a
:class:`~repro.core.resilience.ResilienceConfig` (or passing a
:class:`~repro.core.resilience.FaultPlan` to :meth:`run`) switches the
replay onto a hardened path.  Every event passes a
:class:`~repro.core.resilience.StreamGuard` (quarantine/repair/dedupe),
``_refit`` is wrapped in bounded retry with snapshot fallback and
schedule-level backoff, non-finite scores are masked before ranking,
and every decision is recorded in a per-step
:class:`~repro.core.resilience.DegradationReport` attached to the
returned :class:`OnlineReport`.  On a clean stream the resilient path
produces a report identical to the plain one, which the differential
tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import perf
from ..forum.dataset import ForumDataset
from ..forum.models import Thread
from ..ml.ranking import mean_reciprocal_rank, ndcg_at_k, precision_at_k
from .pipeline import ForumPredictor, PredictorConfig
from .resilience import (
    DegradationReport,
    FaultInjector,
    FaultPlan,
    ResilienceConfig,
    StreamGuard,
)
from .retrieval import CandidateRetriever, RetrievalConfig
from .routing import QuestionRouter, UserLoadTracker
from .state import ForumState

__all__ = ["OnlineConfig", "OnlineReport", "OnlineRecommendationLoop"]

# A refit window must hold at least this many threads and answers for
# the models to be trainable at all.
_MIN_THREADS = 10
_MIN_ANSWERS = 10


@dataclass(frozen=True)
class OnlineConfig:
    """Deployment-loop parameters."""

    refit_interval_hours: float = 120.0
    window_hours: float = 480.0  # sliding feature/training window
    warmup_hours: float = 120.0  # history required before routing starts
    epsilon: float = 0.3
    tradeoff: float = 0.2
    default_capacity: float = 5.0
    top_k: int = 5
    refit_strategy: str = "incremental"  # or "rebuild"
    warm_start: bool = True
    # Worker processes for the three per-task model fits inside each
    # refit; None defers to REPRO_N_JOBS (default serial).
    n_jobs: int | None = None
    # Two-stage candidate retrieval for the routing/ranking hot path;
    # None keeps the dense score-every-candidate behaviour.
    retrieval: RetrievalConfig | None = None
    # Maintain an incremental per-user answer-load counter and enforce
    # it as remaining capacity in every LP (previously the online loop
    # routed without load constraints).
    track_load: bool = True
    load_window_hours: float = 24.0

    def __post_init__(self):
        if self.refit_interval_hours <= 0 or self.window_hours <= 0:
            raise ValueError("intervals must be positive")
        if self.warmup_hours < 0:
            raise ValueError("warmup_hours must be non-negative")
        if self.top_k < 1:
            raise ValueError("top_k must be >= 1")
        if self.refit_strategy not in ("incremental", "rebuild"):
            raise ValueError(
                "refit_strategy must be 'incremental' or 'rebuild'"
            )
        if self.refit_strategy == "incremental" and not self.warm_start:
            raise ValueError(
                "incremental refits require warm_start: the state embeds "
                "topic vectors, so the topic model cannot be refit cold"
            )
        if self.load_window_hours <= 0:
            raise ValueError("load_window_hours must be positive")


@dataclass
class OnlineReport:
    """Outcome of one simulated deployment.

    ``rankings`` orders candidates by predicted answer probability (the
    task-(i) model) and is scored against who actually answered;
    ``routed_scores`` records the LP objective of each routed pick.
    """

    n_questions_seen: int = 0
    n_routed: int = 0
    n_refits: int = 0
    rankings: list[tuple[list[int], set[int]]] = field(default_factory=list)
    routed_scores: list[float] = field(default_factory=list)
    # Populated only by resilient runs: what was dropped/repaired/retried.
    degradation: DegradationReport | None = None

    @property
    def hit_rate_at_1(self) -> float:
        if not self.rankings:
            return float("nan")
        return float(
            np.mean([precision_at_k(r, rel, 1) for r, rel in self.rankings])
        )

    def precision_at(self, k: int) -> float:
        if not self.rankings:
            return float("nan")
        return float(
            np.mean([precision_at_k(r, rel, k) for r, rel in self.rankings])
        )

    @property
    def mrr(self) -> float:
        if not self.rankings:
            return float("nan")
        return mean_reciprocal_rank(self.rankings)

    def ndcg_at(self, k: int) -> float:
        if not self.rankings:
            return float("nan")
        return float(
            np.mean([ndcg_at_k(r, rel, k) for r, rel in self.rankings])
        )


class OnlineRecommendationLoop:
    """Replays a dataset through periodic-refit routing."""

    def __init__(
        self,
        predictor_config: PredictorConfig | None = None,
        online_config: OnlineConfig | None = None,
        resilience_config: ResilienceConfig | None = None,
    ):
        self.predictor_config = predictor_config or PredictorConfig()
        self.online_config = online_config or OnlineConfig()
        self.resilience_config = resilience_config
        self._predictor: ForumPredictor | None = None
        self._state: ForumState | None = None
        self._router: QuestionRouter | None = None
        self._candidates: list[int] = []
        # Shared across refit strategies: the retriever persists so its
        # indices refresh (and MF warm-starts) instead of rebuilding,
        # and the load tracker accumulates the replayed answer events.
        self._retriever: CandidateRetriever | None = None
        self._load = UserLoadTracker(self.online_config.load_window_hours)
        # Resilient-path bookkeeping: the last window that refit cleanly
        # (the fallback snapshot) and the consecutive-failure count that
        # drives the schedule-level backoff.
        self._last_good: ForumDataset | None = None
        self._refit_failures = 0

    def _feasible(self, n_threads: int, n_answers: int) -> bool:
        return n_threads >= _MIN_THREADS and n_answers >= _MIN_ANSWERS

    def _refit(self, dataset: ForumDataset, now: float) -> bool:
        """Refit on the window ending at ``now``; False when infeasible."""
        cfg = self.online_config
        if self._predictor is None:
            self._predictor = ForumPredictor(self.predictor_config)
        predictor = self._predictor
        start = max(0.0, now - cfg.window_hours)
        if cfg.refit_strategy == "rebuild":
            window = dataset.threads_in_window(start, now)
            if not self._feasible(len(window), window.num_answers):
                return False
            with perf.timer("online.refit"):
                predictor.fit(
                    window, warm_start=cfg.warm_start, n_jobs=cfg.n_jobs
                )
            candidates = window.answerers
        elif self._state is None:
            # First feasible refit: fit topics once, then bootstrap the
            # long-lived state from the current window.
            window = dataset.threads_in_window(start, now)
            if not self._feasible(len(window), window.num_answers):
                return False
            with perf.timer("online.refit"):
                predictor.fit_topics(window)
                self._state = predictor.build_state(window)
                predictor.refit_from_state(self._state, n_jobs=cfg.n_jobs)
            candidates = self._state.answerers
        else:
            self._state.evict(start)
            if not self._feasible(len(self._state), self._state.num_answers):
                return False
            with perf.timer("online.refit"):
                predictor.refit_from_state(self._state, n_jobs=cfg.n_jobs)
            candidates = self._state.answerers
        self._bind_router(candidates)
        return True

    def _bind_router(self, candidates) -> None:
        cfg = self.online_config
        self._router = QuestionRouter(
            self._predictor,
            epsilon=cfg.epsilon,
            default_capacity=cfg.default_capacity,
            load_window_hours=cfg.load_window_hours,
            retriever=self._bind_retriever(),
            load_tracker=self._load if cfg.track_load else None,
        )
        self._candidates = sorted(candidates)

    def _bind_retriever(self) -> CandidateRetriever | None:
        """Build or refresh the candidate indices after a refit.

        The retriever outlives individual refits: the topic index is
        diffed row-wise against the new frozen tables, the MF embedding
        warm-starts from its previous factors, and (on the incremental
        arm) the recency index rides the state's append/evict events.
        """
        cfg = self.online_config
        if cfg.retrieval is None or cfg.retrieval.mode != "two_stage":
            return None
        if self._retriever is None:
            self._retriever = CandidateRetriever(
                cfg.retrieval, self._predictor.topics
            )
        else:
            self._retriever.topics = self._predictor.topics
        if self._state is not None:
            self._retriever.attach(self._state)
        else:
            self._retriever.detach()
        extractor = self._predictor.extractor
        self._retriever.refresh(extractor.frozen, extractor.window)
        return self._retriever

    def run(
        self, dataset: ForumDataset, fault_plan: FaultPlan | None = None
    ) -> OnlineReport:
        """Stream the dataset's questions through the deployment loop.

        Questions are visited chronologically; the model in use at any
        point was trained strictly on earlier threads.

        With a ``fault_plan`` (or a loop-level
        :class:`~repro.core.resilience.ResilienceConfig`) the stream is
        perturbed by a :class:`~repro.core.resilience.FaultInjector`
        and replayed through the hardened path; the returned report then
        carries a :class:`~repro.core.resilience.DegradationReport`.
        """
        if fault_plan is None and self.resilience_config is None:
            return self._run_plain(dataset)
        return self._run_resilient(dataset, fault_plan)

    def _run_plain(self, dataset: ForumDataset) -> OnlineReport:
        cfg = self.online_config
        report = OnlineReport()
        next_refit = cfg.warmup_hours
        for thread in dataset:  # already chronological
            now = thread.created_at
            if now >= next_refit:
                if self._refit(dataset, now):
                    report.n_refits += 1
                # Advance on the fixed grid, catching up over gaps, so
                # the cadence never drifts with arrival times.
                while next_refit <= now:
                    next_refit += cfg.refit_interval_hours
            self._route(thread, now, report)
            # Fold the thread into the live window only after it has
            # been routed — it must not inform its own recommendation.
            if cfg.track_load:
                self._load.observe_thread(thread)
            if self._state is not None:
                self._state.append(thread)
        return report

    def _run_resilient(
        self, dataset: ForumDataset, fault_plan: FaultPlan | None
    ) -> OnlineReport:
        """Hardened replay: guard every event, recover every refit.

        Mirrors :meth:`_run_plain` step for step — on a clean stream the
        two paths produce identical reports: refit windows are built
        from the admitted prefix with the same end-exclusive slicing,
        and routing/appending happen in the same order.
        """
        cfg = self.online_config
        res = self.resilience_config or ResilienceConfig()
        report = OnlineReport()
        degradation = DegradationReport()
        report.degradation = degradation
        guard = StreamGuard(res, degradation)
        self.guard = guard
        if fault_plan is not None:
            stream = FaultInjector(fault_plan).perturb(dataset)
        else:
            stream = list(dataset)
        accepted: list[Thread] = []
        skip_refits = 0
        next_refit = cfg.warmup_hours
        for event in stream:
            thread = guard.admit(event)
            if thread is None:
                continue
            accepted.append(thread)
            now = thread.created_at
            if now >= next_refit:
                if skip_refits > 0:
                    skip_refits -= 1
                    degradation.add(
                        -1, -1, "refit:backoff_skipped",
                        f"{skip_refits} grid intervals of backoff remain",
                    )
                else:
                    # The current event sits last in ``accepted``; the
                    # end-exclusive window slice excludes it, exactly as
                    # the plain path excludes it from the full dataset.
                    ok = self._refit_with_recovery(
                        ForumDataset(accepted), now, degradation, res
                    )
                    if ok:
                        report.n_refits += 1
                    elif self._refit_failures > 0:
                        skip_refits = min(
                            res.backoff_base ** (self._refit_failures - 1),
                            res.max_backoff_intervals,
                        )
                while next_refit <= now:
                    next_refit += cfg.refit_interval_hours
            self._route(thread, now, report, degradation)
            if cfg.track_load:
                self._load.observe_thread(thread)
            if self._state is not None:
                if thread.created_at >= self._state.last_created:
                    self._state.append(thread)
                else:  # unreachable once admitted; belt and braces
                    degradation.add(
                        guard._seq, thread.thread_id, "dropped:stale_event",
                        "behind the live state clock after admission",
                    )
        return report

    def _refit_with_recovery(
        self,
        window_dataset: ForumDataset,
        now: float,
        degradation: DegradationReport,
        res: ResilienceConfig,
    ) -> bool:
        """Bounded retry around ``_refit``; snapshot fallback on failure.

        Retries cover transient faults (worker death, allocation
        failure); a deterministic poison — e.g.
        :class:`~repro.core.resilience.NonFiniteFeatureError` from a
        corrupt window — fails every attempt and lands in the fallback,
        which restores the last cleanly fitted window and retrains on
        it.  Threads admitted after that snapshot are dropped from the
        training window (they remain routed); serving never stops.
        """
        cfg = self.online_config
        prior_state = self._state
        attempts = 0
        while True:
            try:
                ok = self._refit(window_dataset, now)
            except Exception as exc:  # noqa: BLE001 — recovery boundary
                attempts += 1
                self._state = prior_state
                perf.incr("resilience.refit_retries")
                degradation.add(
                    -1, -1, "refit:retry",
                    f"attempt {attempts}: {type(exc).__name__}: {exc}"[:200],
                )
                if attempts <= res.max_refit_retries:
                    continue
                self._refit_failures += 1
                self._fallback_to_snapshot(degradation, exc)
                return False
            break
        if ok:
            self._refit_failures = 0
            # Snapshot the window that just fitted cleanly: for the
            # incremental arm the live state, for rebuild the slice.
            if self._state is not None:
                self._last_good = self._state.to_dataset()
            else:
                self._last_good = window_dataset.threads_in_window(
                    max(0.0, now - cfg.window_hours), now
                )
        return ok

    def _fallback_to_snapshot(
        self, degradation: DegradationReport, exc: Exception
    ) -> None:
        """Restore the last-good window and retrain, keeping serving up."""
        cfg = self.online_config
        if self._last_good is None or self._predictor is None:
            # Nothing fitted cleanly yet: flush the poisoned bootstrap
            # state and let a later grid point try again once the
            # window has slid past the corrupt threads.
            self._state = None
            degradation.add(
                -1, -1, "refit:fallback_unavailable",
                f"{type(exc).__name__} before any successful refit",
            )
            return
        perf.incr("resilience.refit_fallbacks")
        degradation.add(
            -1, -1, "refit:fallback",
            f"{type(exc).__name__}: restored last-good window of "
            f"{len(self._last_good)} threads",
        )
        try:
            if cfg.refit_strategy == "rebuild":
                self._predictor.fit(
                    self._last_good,
                    warm_start=cfg.warm_start,
                    n_jobs=cfg.n_jobs,
                )
                candidates = self._last_good.answerers
            else:
                self._state = ForumState.from_dataset(
                    self._last_good, self._predictor.topics
                )
                self._predictor.refit_from_state(
                    self._state, n_jobs=cfg.n_jobs
                )
                candidates = self._state.answerers
            self._bind_router(candidates)
        except Exception as inner:  # noqa: BLE001 — keep stale router
            degradation.add(
                -1, -1, "refit:fallback_unavailable",
                f"snapshot retrain failed ({type(inner).__name__}); "
                "continuing with the previous router",
            )

    def _route(
        self,
        thread,
        now: float,
        report: OnlineReport,
        degradation: DegradationReport | None = None,
    ) -> None:
        cfg = self.online_config
        if self._router is None or now < cfg.warmup_hours:
            return
        report.n_questions_seen += 1
        candidates = [u for u in self._candidates if u != thread.asker]
        if not candidates:
            return
        # Two-stage retrieval: one pool per question, shared by the
        # ranking and the LP; dense mode scores every candidate.
        pool = None
        rank_candidates = candidates
        if self._router.retriever is not None:
            pool = self._router.candidate_pool(thread, candidates)
            if pool.size:
                rank_candidates = [int(u) for u in pool]
            elif not self._router.retriever.config.dense_fallback:
                return
            # Empty pool with fallback enabled: rank densely here and
            # let recommend() take its own dense retry on the same pool.
        # Who-will-answer ranking: candidates by predicted a_uq
        # (batch-featurized across the whole candidate set).
        with perf.timer("online.rank"):
            predictions = self._router.predictor.predict_batch(
                [(u, thread) for u in rank_candidates]
            )
        perf.incr("online.candidate_pairs", len(rank_candidates))
        scores = predictions["answer"]
        if degradation is not None:
            bad = ~np.isfinite(scores)
            if bad.any():
                degradation.add(
                    -1, thread.thread_id, "masked:nonfinite_score",
                    f"{int(bad.sum())} of {len(scores)} candidate scores",
                )
                scores = np.where(bad, -np.inf, scores)
        order = np.argsort(-scores, kind="stable")
        ranked = [rank_candidates[i] for i in order[: cfg.top_k]]
        actual = set(thread.answerers)
        if actual:
            report.rankings.append((ranked, actual))
        # Routing pick: the Sec.-V LP over the eligible set (the pool,
        # when two-stage retrieval already narrowed it).
        with perf.timer("online.route"):
            result = self._router.recommend(
                thread, candidates, tradeoff=cfg.tradeoff, pool=pool
            )
        if result is None:
            return
        top_user = result.ranked_users()[0][0]
        idx = int(np.flatnonzero(result.users == top_user)[0])
        score = float(result.scores[idx])
        if degradation is not None and not np.isfinite(score):
            degradation.add(
                -1, thread.thread_id, "masked:nonfinite_score",
                "routing objective not finite; pick not recorded",
            )
            return
        report.n_routed += 1
        report.routed_scores.append(score)
