"""Sublinear two-stage candidate retrieval for question routing.

Cheap seeded candidate generators (topic inverted index, active-user
recency index, MF latent-factor embeddings) feed a rank-fused, bounded
candidate pool to the exact Sec.-V LP instead of scoring every user
densely.  See :mod:`repro.core.retrieval.engine` for the semantics and
``docs/architecture.md`` for the design.
"""

from .config import RetrievalConfig
from .engine import CandidateRetriever, candidate_recall, reciprocal_rank_fusion
from .indices import (
    MFEmbeddingIndex,
    RecencyIndex,
    TopicInvertedIndex,
    top_k_by_score,
)

__all__ = [
    "RetrievalConfig",
    "CandidateRetriever",
    "candidate_recall",
    "reciprocal_rank_fusion",
    "MFEmbeddingIndex",
    "RecencyIndex",
    "TopicInvertedIndex",
    "top_k_by_score",
]
