"""Seeded, deterministic candidate generators for two-stage routing.

Three cheap indices nominate answerer candidates before the exact
Sec.-V LP sees anyone:

* :class:`TopicInvertedIndex` — topic -> users postings over per-user
  mean answer-topic distributions (the ``d_u`` rows of the state's
  batch tables), queried with a question's LDA topic mixture;
* :class:`RecencyIndex` — most-recently-active answerers, maintained
  incrementally from :class:`~repro.core.state.ForumState`
  append/evict events;
* :class:`MFEmbeddingIndex` — the Koren-style MF baseline
  (:mod:`repro.baselines.mf`) reused as an embedding model: user latent
  factors are scored against a projection of the question's topic
  mixture into the latent space with one vectorized dot product and an
  ``argpartition`` top-K over a preallocated score buffer.

Every generator is a pure function of the (canonical) window tables
plus its config, orders ties by ascending user id, and is therefore
deterministic under seed and independent of the append/evict history
that produced the window.
"""

from __future__ import annotations

import numpy as np

from ... import perf
from ...baselines.mf import MatrixFactorization
from ..dtypes import ID_DTYPE, ensure_ids
from ..parallel import parallel_map

__all__ = [
    "top_k_by_score",
    "TopicInvertedIndex",
    "RecencyIndex",
    "MFEmbeddingIndex",
]


def top_k_by_score(
    user_ids: np.ndarray, scores: np.ndarray, k: int | None
) -> np.ndarray:
    """Top-``k`` user ids by ``(-score, user_id)`` without a full sort.

    Equivalent to ``user_ids[np.lexsort((user_ids, -scores))][:k]`` but
    uses ``argpartition`` plus an explicit boundary-tie rule so only the
    selected block is ever sorted.  ``user_ids`` must be ascending (the
    canonical index layout), which makes tie handling positional.
    """
    n = scores.size
    if k is None or k >= n:
        order = np.lexsort((user_ids, -scores))
        return user_ids[order]
    if k <= 0 or n == 0:
        return user_ids[:0]
    part = np.argpartition(-scores, k - 1)
    threshold = scores[part[k - 1]]
    above = np.flatnonzero(scores > threshold)
    order = np.lexsort((user_ids[above], -scores[above]))
    ranked = user_ids[above][order]
    need = k - ranked.size
    if need > 0:
        # Boundary ties resolve by ascending user id; flatnonzero over
        # an ascending id axis is already in that order.
        ties = np.flatnonzero(scores == threshold)[:need]
        ranked = np.concatenate([ranked, user_ids[ties]])
    return ranked


def _topic_postings_task(task):
    """Sorted postings of one topic column; module-level so it pickles."""
    topic, column, user_ids = task
    with perf.timer("retrieval.topic_postings"):
        order = np.lexsort((user_ids, -column))
    perf.incr("retrieval.topic_postings_rebuilt")
    return topic, order


class TopicInvertedIndex:
    """Postings lists topic -> users ordered by per-user topic mass.

    Backed by a dense ``(U, K)`` matrix of per-user mean answer-topic
    distributions over a canonical ascending-user-id axis.  Postings
    are materialized lazily per topic and invalidated when any user row
    changes, so steady-state refits that touch few users only re-sort
    the columns a query actually expands.
    """

    def __init__(
        self, user_ids: np.ndarray, user_topics: np.ndarray
    ):
        # int32 postings axis: the columnar store guarantees id range,
        # and halving the id width halves what every lexsort touches.
        user_ids = ensure_ids(user_ids, "user id")
        user_topics = np.asarray(user_topics, dtype=float)
        if user_topics.ndim != 2 or user_ids.size != user_topics.shape[0]:
            raise ValueError("user_topics must be (len(user_ids), K)")
        if user_ids.size > 1 and not np.all(np.diff(user_ids) > 0):
            raise ValueError("user_ids must be strictly ascending")
        self.user_ids = user_ids
        self.user_topics = user_topics
        self.n_topics = user_topics.shape[1] if user_topics.size else 0
        self._postings: dict[int, np.ndarray] = {}

    def build_postings(self, n_jobs: int | None = None) -> None:
        """Materialize every postings list eagerly.

        Per-topic sorts are independent, so they dispatch through
        :func:`~repro.core.parallel.parallel_map` (``REPRO_N_JOBS``
        aware, perf snapshots merged) and stay bit-identical to a
        serial build.
        """
        stale = [t for t in range(self.n_topics) if t not in self._postings]
        if not stale:
            return
        tasks = [
            (t, self.user_topics[:, t], self.user_ids) for t in stale
        ]
        with perf.timer("retrieval.build_topic"):
            for topic, order in parallel_map(
                _topic_postings_task, tasks, n_jobs, merge_perf=True
            ):
                self._postings[topic] = order

    def update_users(
        self, user_ids: np.ndarray, user_topics: np.ndarray
    ) -> int:
        """Replace the rows of existing users; invalidates postings.

        Returns the number of rows actually rewritten.  Callers pass
        only users whose aggregates changed since the last refresh, so
        steady-state maintenance is proportional to the delta, not the
        user population.
        """
        if len(user_ids) == 0:
            return 0
        rows = np.searchsorted(self.user_ids, user_ids)
        if np.any(rows >= self.user_ids.size) or np.any(
            self.user_ids[rows] != user_ids
        ):
            raise KeyError("unknown user id in update_users")
        self.user_topics[rows] = user_topics
        self._postings.clear()
        perf.incr("retrieval.topic_users_updated", len(user_ids))
        return len(user_ids)

    def query(
        self,
        question_topics: np.ndarray,
        top_k: int | None,
        *,
        query_topics: int = 4,
        per_topic: int | None = None,
    ) -> np.ndarray:
        """Users ranked by ``theta . d_u`` over expanded postings.

        The question's ``query_topics`` strongest topics are expanded
        (``per_topic`` users each, default the final ``top_k``); the
        union is then scored exactly against the full mixture and cut
        to ``top_k`` by ``(-score, user_id)``.
        """
        if self.user_ids.size == 0:
            return self.user_ids[:0]
        theta = np.asarray(question_topics, dtype=float)
        if top_k is None or top_k >= self.user_ids.size:
            scores = self.user_topics @ theta
            return top_k_by_score(self.user_ids, scores, top_k)
        budget = per_topic if per_topic is not None else top_k
        strongest = np.argsort(-theta, kind="stable")[:query_topics]
        rows: list[np.ndarray] = []
        for topic in strongest:
            if theta[topic] <= 0.0:
                continue
            postings = self._postings.get(int(topic))
            if postings is None:
                postings = np.lexsort(
                    (self.user_ids, -self.user_topics[:, topic])
                )
                self._postings[int(topic)] = postings
                perf.incr("retrieval.topic_postings_rebuilt")
            rows.append(postings[:budget])
        if not rows:
            return self.user_ids[:0]
        subset = np.unique(np.concatenate(rows))
        scores = self.user_topics[subset] @ theta
        return top_k_by_score(self.user_ids[subset], scores, top_k)


class RecencyIndex:
    """Active-answerer index: who answers most in the window, how recently.

    Holds one ``{thread_id: (latest_ts, n_answers)}`` map per user so
    eviction of any thread (the window slides by *question* creation
    time, not answer time) restores the exact remaining aggregate.
    ``observe``/``forget`` are the hooks the state listener drives.
    """

    def __init__(self):
        self._per_user: dict[int, dict[int, tuple[float, int]]] = {}
        self._version = 0
        self._cache: tuple[int, np.ndarray, np.ndarray, np.ndarray] | None = None
        self._ranked: tuple[int, np.ndarray] | None = None

    def __len__(self) -> int:
        return len(self._per_user)

    def observe(self, user: int, thread_id: int, timestamp: float) -> None:
        """Fold one answer event (from append or a fresh build)."""
        per_user = self._per_user.setdefault(user, {})
        latest, count = per_user.get(thread_id, (-np.inf, 0))
        per_user[thread_id] = (max(latest, float(timestamp)), count + 1)
        self._version += 1

    def forget(self, user: int, thread_id: int) -> None:
        """Drop a user's contribution from one evicted thread."""
        per_user = self._per_user.get(user)
        if per_user is None:
            return
        per_user.pop(thread_id, None)
        if not per_user:
            del self._per_user[user]
        self._version += 1

    def observe_block(
        self,
        users: np.ndarray,
        thread_ids: np.ndarray,
        counts: np.ndarray,
        latest: np.ndarray,
    ) -> None:
        """Fold pre-grouped ``(user, thread)`` aggregates in one pass.

        The columnar rebuild path: :func:`repro.core.columnar.thread_activity`
        group-bys the raw event columns, and this folds the grouped rows
        without a per-post ``observe`` call each.  Equivalent to calling
        :meth:`observe` once per underlying event.
        """
        per_user_map = self._per_user
        for user, tid, count, ts in zip(
            users.tolist(), thread_ids.tolist(), counts.tolist(), latest.tolist()
        ):
            per_user = per_user_map.setdefault(user, {})
            prev_latest, prev_count = per_user.get(tid, (-np.inf, 0))
            per_user[tid] = (max(prev_latest, ts), prev_count + count)
        self._version += 1

    def clear(self) -> None:
        self._per_user.clear()
        self._cache = None
        self._ranked = None
        self._version += 1

    @property
    def users(self) -> np.ndarray:
        """Ascending ids of every user with window activity (membership
        only — no rank sort, unlike :meth:`query`)."""
        return self._tables()[0]

    def _tables(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Canonical (user_ids, latest_ts, counts) arrays, cached."""
        if self._cache is not None and self._cache[0] == self._version:
            return self._cache[1], self._cache[2], self._cache[3]
        users = sorted(self._per_user)
        user_ids = ensure_ids(np.array(users, dtype=np.int64), "user id")
        latest = np.empty(len(users))
        counts = np.empty(len(users), dtype=np.int64)
        for i, user in enumerate(users):
            per_user = self._per_user[user]
            latest[i] = max(ts for ts, _ in per_user.values())
            counts[i] = sum(n for _, n in per_user.values())
        self._cache = (self._version, user_ids, latest, counts)
        return user_ids, latest, counts

    def query(self, top_k: int | None) -> np.ndarray:
        """Users ranked by (answer count desc, latest answer desc, id asc).

        Volume-first ordering: the answer model's eligible set is
        dominated by how much a user answers inside the window, with
        recency only breaking ties — ranking by latest activity first
        measurably halves eligible-set recall at a fixed budget (see
        ``BENCH_retrieval.json``).
        """
        user_ids, latest, counts = self._tables()
        if user_ids.size == 0:
            return user_ids
        if self._ranked is not None and self._ranked[0] == self._version:
            ranked = self._ranked[1]
        else:
            order = np.lexsort((user_ids, -latest, -counts))
            ranked = user_ids[order]
            self._ranked = (self._version, ranked)
        if top_k is None:
            return ranked
        return ranked[:top_k]


class MFEmbeddingIndex:
    """MF latent factors as retrieval embeddings with top-K dot products.

    Fits the vote-baseline :class:`MatrixFactorization` over the
    window's (user, thread, votes) triples, then learns a ridge-free
    least-squares projection from question topic mixtures onto the
    fitted *thread* factors.  A new question maps through the
    projection and is scored against every user embedding with one
    matrix-vector product into a preallocated buffer; refits warm-start
    from the previous factors matched by id.
    """

    def __init__(
        self,
        *,
        n_factors: int = 5,
        n_iter: int = 120,
        l2: float = 0.05,
        learning_rate: float = 0.05,
        seed: int = 0,
    ):
        self.n_factors = n_factors
        self.n_iter = n_iter
        self.l2 = l2
        self.learning_rate = learning_rate
        self.seed = seed
        self.user_ids: np.ndarray = np.empty(0, dtype=ID_DTYPE)
        self._user_bias: np.ndarray | None = None
        self._user_factors: np.ndarray | None = None
        self._thread_ids: np.ndarray = np.empty(0, dtype=ID_DTYPE)
        self._thread_bias: np.ndarray | None = None
        self._thread_factors: np.ndarray | None = None
        self._projection: np.ndarray | None = None
        self._score_buf: np.ndarray | None = None

    @property
    def fitted(self) -> bool:
        return self._projection is not None

    def _warm_init(
        self,
        ids: np.ndarray,
        prev_ids: np.ndarray,
        prev_bias: np.ndarray | None,
        prev_factors: np.ndarray | None,
    ) -> tuple[np.ndarray | None, np.ndarray | None, int]:
        """Bias/factor inits carried over from the previous fit by id."""
        if prev_bias is None or prev_factors is None:
            return None, None, 0
        if prev_factors.shape[1] != self.n_factors:
            return None, None, 0
        pos = np.searchsorted(prev_ids, ids)
        pos_safe = np.minimum(pos, max(prev_ids.size - 1, 0))
        hit = (pos < prev_ids.size) & (prev_ids[pos_safe] == ids)
        if not hit.any():
            return None, None, 0
        bias = np.zeros(ids.size)
        factors = np.zeros((ids.size, self.n_factors))
        bias[hit] = prev_bias[pos_safe[hit]]
        factors[hit] = prev_factors[pos_safe[hit]]
        return bias, factors, int(hit.sum())

    def fit(
        self,
        users: np.ndarray,
        threads: np.ndarray,
        votes: np.ndarray,
        question_topics: dict[int, np.ndarray],
    ) -> "MFEmbeddingIndex":
        """Fit factors on the window's triples and the topic projection.

        ``question_topics`` maps thread id -> LDA mixture; threads
        without a mixture are still factorized but excluded from the
        projection fit.
        """
        users = np.asarray(users, dtype=np.int64)
        threads = np.asarray(threads, dtype=np.int64)
        votes = np.asarray(votes, dtype=float)
        if users.size == 0:
            raise ValueError("need at least one (user, thread, vote) triple")
        user_ids = ensure_ids(np.unique(users), "user id")
        thread_ids = ensure_ids(np.unique(threads), "thread id")
        rows = np.searchsorted(user_ids, users)
        cols = np.searchsorted(thread_ids, threads)
        row_bias, row_factors, warm_users = self._warm_init(
            user_ids, self.user_ids, self._user_bias, self._user_factors
        )
        col_bias, col_factors, _ = self._warm_init(
            thread_ids,
            self._thread_ids,
            self._thread_bias,
            self._thread_factors,
        )
        if warm_users:
            perf.incr("retrieval.mf_warm_users", warm_users)
        with perf.timer("retrieval.build_mf"):
            model = MatrixFactorization(
                user_ids.size,
                thread_ids.size,
                n_factors=self.n_factors,
                l2=self.l2,
                learning_rate=self.learning_rate,
                n_iter=self.n_iter,
                seed=self.seed,
            )
            model.fit(
                rows,
                cols,
                votes,
                row_bias_init=row_bias,
                col_bias_init=col_bias,
                row_factors_init=row_factors,
                col_factors_init=col_factors,
            )
            self.user_ids = user_ids
            self._user_bias = model.row_bias_
            self._user_factors = model.row_factors_
            self._thread_ids = thread_ids
            self._thread_bias = model.col_bias_
            self._thread_factors = model.col_factors_
            self._score_buf = np.empty(user_ids.size)
            # Least-squares map from topic space to the latent space,
            # fit on the observed (mixture, thread factor) pairs.
            known = [
                (i, question_topics[tid])
                for i, tid in enumerate(thread_ids.tolist())
                if tid in question_topics
            ]
            if known:
                idx = np.array([i for i, _ in known], dtype=np.int64)
                theta = np.array([t for _, t in known], dtype=float)
                target = self._thread_factors[idx]
                self._projection, *_ = np.linalg.lstsq(
                    theta, target, rcond=None
                )
            else:
                self._projection = None
        return self

    def query(
        self, question_topics: np.ndarray, top_k: int | None
    ) -> np.ndarray:
        """Users ranked by embedding affinity to the projected question."""
        if not self.fitted or self.user_ids.size == 0:
            return self.user_ids[:0]
        theta = np.asarray(question_topics, dtype=float)
        latent = theta @ self._projection
        scores = self._score_buf
        np.dot(self._user_factors, latent, out=scores)
        scores += self._user_bias
        return top_k_by_score(self.user_ids, scores, top_k)
