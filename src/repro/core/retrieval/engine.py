"""Candidate pool assembly: generators, rank fusion, maintenance.

:class:`CandidateRetriever` owns the three generator indices, merges
their nominations with reciprocal-rank fusion into a bounded pool, and
keeps the indices current as the window moves:

* registered as a :class:`~repro.core.state.ForumState` listener, it
  folds every ``append``/``evict`` event into the recency index the
  moment it happens;
* at refit time :meth:`refresh` diffs the new frozen tables against the
  previous ones and rewrites only the changed topic rows, and the MF
  index warm-starts from the previous factors — refits update indices
  instead of rebuilding them.

The pool it returns is always *sorted ascending by user id*: fusion
decides membership, never scoring order, so handing the pool to the
dense scorer keeps the LP's stable tie-breaking identical to a dense
run over the same users.  With every budget unbounded the pool is
exactly the candidate set and two-stage routing is bit-identical to the
dense path.
"""

from __future__ import annotations

import numpy as np

from ... import perf
from ...forum.dataset import ForumDataset
from ...forum.models import Thread
from ..columnar import thread_activity
from ..state import ForumState, FrozenState
from ..topic_context import TopicModelContext
from .config import RetrievalConfig
from .indices import MFEmbeddingIndex, RecencyIndex, TopicInvertedIndex

__all__ = ["CandidateRetriever", "reciprocal_rank_fusion", "candidate_recall"]


def reciprocal_rank_fusion(
    ranked_lists: list[np.ndarray],
    *,
    rrf_k: float = 60.0,
    pool_size: int | None = None,
) -> np.ndarray:
    """Union of ranked candidate lists under reciprocal-rank fusion.

    ``fused(u) = sum_g 1 / (rrf_k + rank_g(u))`` over the generators
    that nominated ``u``; membership in the returned pool is the top
    ``pool_size`` by ``(-fused, user_id)``.  The pool itself is
    returned sorted ascending by user id (see module docstring).
    """
    lists = [np.asarray(r, dtype=np.int64) for r in ranked_lists if len(r)]
    if not lists:
        return np.empty(0, dtype=np.int64)
    nominees = np.concatenate(lists)
    contributions = np.concatenate(
        [1.0 / (rrf_k + np.arange(1, r.size + 1)) for r in lists]
    )
    # ``np.unique`` returns the ascending-id axis; ``np.add.at``
    # accumulates in concatenation order, i.e. the same float-addition
    # order as summing generator by generator.
    user_ids, inverse = np.unique(nominees, return_inverse=True)
    if pool_size is None or pool_size >= user_ids.size:
        return user_ids
    scores = np.zeros(user_ids.size)
    np.add.at(scores, inverse, contributions)
    order = np.lexsort((user_ids, -scores))
    return np.sort(user_ids[order][:pool_size])


def _sorted_member(values: np.ndarray, sorted_table: np.ndarray) -> np.ndarray:
    """Boolean membership of ``values`` in an ascending unique table.

    ``np.isin`` re-sorts both sides on every call; one ``searchsorted``
    against the already-sorted table is what the per-question pool
    assembly can afford.
    """
    if sorted_table.size == 0:
        return np.zeros(values.shape, dtype=bool)
    pos = np.searchsorted(sorted_table, values)
    pos[pos == sorted_table.size] = sorted_table.size - 1
    return sorted_table[pos] == values


def candidate_recall(pool: np.ndarray, eligible: np.ndarray) -> float:
    """|pool ∩ eligible| / |eligible|; 1.0 when nothing is eligible."""
    eligible = np.asarray(eligible)
    if eligible.size == 0:
        return 1.0
    return float(np.isin(eligible, pool).mean())


class CandidateRetriever:
    """Builds, maintains and queries the candidate-generation indices."""

    def __init__(self, config: RetrievalConfig, topics: TopicModelContext):
        self.config = config
        self.topics = topics
        self._topic_index: TopicInvertedIndex | None = None
        self._recency = RecencyIndex()
        self._mf = (
            MFEmbeddingIndex(
                n_factors=config.mf_factors,
                n_iter=config.mf_iters,
                l2=config.mf_l2,
                learning_rate=config.mf_learning_rate,
                seed=config.seed,
            )
            if config.use_mf
            else None
        )
        self._attached: ForumState | None = None

    # -- state-listener protocol (incremental recency maintenance) ----------

    def on_append(self, thread: Thread) -> None:
        """ForumState hook: fold one appended thread's answer events."""
        for answer in thread.answers:
            self._recency.observe(
                answer.author, thread.thread_id, answer.timestamp
            )

    def on_evict(self, thread: Thread) -> None:
        """ForumState hook: drop one evicted thread's answer events."""
        for user in thread.answerers:
            self._recency.forget(user, thread.thread_id)

    def attach(self, state: ForumState) -> None:
        """Follow a live state: rebuild recency once, then ride events.

        The one-time rebuild reads the state's columnar answer log —
        one vectorized group-by over raw event columns instead of
        materializing every thread as Python objects.
        """
        if self._attached is state:
            return
        if self._attached is not None:
            self._attached.remove_listener(self)
        self._recency.clear()
        users, thread_ids, timestamps = state.answer_events()
        self._recency.observe_block(
            *thread_activity(users, thread_ids, timestamps)
        )
        state.add_listener(self)
        self._attached = state

    def detach(self) -> None:
        if self._attached is not None:
            self._attached.remove_listener(self)
            self._attached = None

    # -- building / refreshing ---------------------------------------------

    @property
    def indexed_users(self) -> np.ndarray:
        """Ascending ids of every user the topic index knows."""
        if self._topic_index is None:
            return np.empty(0, dtype=np.int64)
        return self._topic_index.user_ids

    def build(self, frozen: FrozenState, window: ForumDataset) -> None:
        """(Re)build every index from one frozen window snapshot.

        Subsequent refits should go through :meth:`refresh`, which
        diffs against the tables bound here.
        """
        with perf.timer("retrieval.build"):
            tables = frozen.batch_tables
            user_ids = np.fromiter(
                tables.user_index, dtype=np.int64, count=len(tables.user_index)
            )
            self._topic_index = TopicInvertedIndex(
                user_ids, tables.d_u.copy()
            )
            self._topic_index.build_postings(self.config.n_jobs)
            if self._attached is None:
                with perf.timer("retrieval.build_recency"):
                    self._recency.clear()
                    for thread in window:
                        self.on_append(thread)
            self._fit_mf(frozen, window)
        perf.incr("retrieval.index_builds")

    def refresh(self, frozen: FrozenState, window: ForumDataset) -> None:
        """Bring the indices up to date with a newly frozen window.

        The topic index is updated row-wise: only users whose ``d_u``
        aggregate actually changed are rewritten (plus additions and
        removals); the MF index refits warm from the previous factors;
        the recency index needs nothing when attached to a live state.
        """
        if self._topic_index is None:
            self.build(frozen, window)
            return
        with perf.timer("retrieval.refresh"):
            tables = frozen.batch_tables
            new_ids = np.fromiter(
                tables.user_index, dtype=np.int64, count=len(tables.user_index)
            )
            old_ids = self._topic_index.user_ids
            if new_ids.size == old_ids.size and np.array_equal(
                new_ids, old_ids
            ):
                changed = np.flatnonzero(
                    np.any(
                        self._topic_index.user_topics != tables.d_u, axis=1
                    )
                )
                self._topic_index.update_users(
                    new_ids[changed], tables.d_u[changed]
                )
            else:
                # Membership changed: new canonical axis, but unchanged
                # rows still skip the postings rebuild bookkeeping.
                self._topic_index = TopicInvertedIndex(
                    new_ids, tables.d_u.copy()
                )
            if self._attached is None:
                with perf.timer("retrieval.build_recency"):
                    self._recency.clear()
                    for thread in window:
                        self.on_append(thread)
            self._fit_mf(frozen, window)
        perf.incr("retrieval.index_refreshes")

    def _fit_mf(self, frozen: FrozenState, window: ForumDataset) -> None:
        if self._mf is None:
            return
        records = window.answer_records()
        if not records:
            return
        users = np.array([r.user for r in records], dtype=np.int64)
        threads = np.array([r.thread_id for r in records], dtype=np.int64)
        votes = np.array([r.votes for r in records], dtype=float)
        question_topics = {
            tid: info.topics for tid, info in frozen.question_info.items()
        }
        self._mf.fit(users, threads, votes, question_topics)

    # -- querying -----------------------------------------------------------

    def pool(
        self,
        thread: Thread,
        candidates: np.ndarray | list[int],
    ) -> np.ndarray:
        """The fused candidate pool for one question, ascending ids.

        ``candidates`` is the caller's full universe; the pool is its
        subset.  Candidates unknown to every index (no window history)
        are kept unconditionally — retrieval prunes among users it has
        evidence about, it never silently drops the rest.
        """
        cfg = self.config
        candidates = np.asarray(candidates, dtype=np.int64)
        if self._topic_index is None:
            raise RuntimeError("retriever is not built")
        with perf.timer("retrieval.query"):
            theta = self.topics.post_topics(thread.question)
            ranked = [
                self._topic_index.query(
                    theta,
                    cfg.topic_top_k,
                    query_topics=cfg.query_topics,
                ),
                self._recency.query(cfg.recency_top_k),
            ]
            if self._mf is not None and self._mf.fitted:
                ranked.append(self._mf.query(theta, cfg.mf_top_k))
            fused = reciprocal_rank_fusion(
                ranked, rrf_k=cfg.rrf_k, pool_size=cfg.pool_size
            )
            known = np.union1d(self.indexed_users, self._recency.users)
            sorted_candidates = np.sort(candidates)
            pool = np.union1d(
                sorted_candidates[
                    _sorted_member(sorted_candidates, fused)
                ],
                sorted_candidates[
                    ~_sorted_member(sorted_candidates, known)
                ],
            )
        perf.incr("retrieval.queries")
        perf.incr("retrieval.pool_users", int(pool.size))
        perf.incr("retrieval.candidate_users", int(candidates.size))
        return pool
