"""Configuration of the two-stage candidate retrieval subsystem.

``RetrievalConfig`` selects between the original ``"dense"`` routing
path (score every candidate with the full predictor before the Sec.-V
LP) and the ``"two_stage"`` retrieve-then-rank path (cheap seeded
candidate generators feed a bounded pool to the exact LP).  Every
per-generator budget accepts ``None`` meaning "all users", which is the
configuration under which the two-stage path is bit-identical to dense
routing — the equivalence the tests pin down.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RetrievalConfig"]


@dataclass(frozen=True)
class RetrievalConfig:
    """Knobs of the retrieve-then-rank candidate pipeline.

    ``None`` for any top-K (or for ``pool_size``) means "no truncation";
    with every budget at ``None`` the pool is the full candidate set and
    two-stage routing degenerates to the dense path exactly.
    """

    mode: str = "two_stage"  # or "dense"
    # Per-generator budgets: how many users each generator nominates.
    # The defaults are sized for the Tier-1 bench forum (>= 0.95 recall
    # of the dense eligible set); budgets are capacity knobs — scale
    # them with the answerer population and recall target (see
    # benchmarks/bench_retrieval.py for the measured trade-off).
    topic_top_k: int | None = 192
    recency_top_k: int | None = 192
    mf_top_k: int | None = 192
    # Bound on the fused candidate pool handed to the LP stage.
    pool_size: int | None = 384
    # Reciprocal-rank-fusion constant: fused(u) = sum_g 1 / (rrf_k + rank).
    rrf_k: float = 60.0
    # How many of the question's strongest topics the inverted index
    # expands; the union of their postings is then scored exactly.
    query_topics: int = 4
    # Matrix-factorization embedding generator (baselines/mf.py).
    use_mf: bool = True
    mf_factors: int = 5
    mf_iters: int = 120
    mf_l2: float = 0.05
    mf_learning_rate: float = 0.05
    # Retry an infeasible/empty two-stage LP against the full candidate
    # set instead of returning no recommendation.
    dense_fallback: bool = True
    # Worker processes for index builds (None defers to REPRO_N_JOBS).
    n_jobs: int | None = None
    seed: int = 0

    def __post_init__(self):
        if self.mode not in ("dense", "two_stage"):
            raise ValueError("mode must be 'dense' or 'two_stage'")
        for name in ("topic_top_k", "recency_top_k", "mf_top_k", "pool_size"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ValueError(f"{name} must be >= 1 or None")
        if self.rrf_k <= 0:
            raise ValueError("rrf_k must be positive")
        if self.query_topics < 1:
            raise ValueError("query_topics must be >= 1")
        if self.mf_factors < 1 or self.mf_iters < 1:
            raise ValueError("mf_factors and mf_iters must be >= 1")

    @classmethod
    def exhaustive(cls, **overrides) -> "RetrievalConfig":
        """A two-stage config with every budget unbounded (top-K = all).

        Under this config the fused pool is the entire candidate set,
        so routing decisions are bit-identical to the dense path — the
        anchor for the equivalence tests.
        """
        return cls(
            mode="two_stage",
            topic_top_k=None,
            recency_top_k=None,
            mf_top_k=None,
            pool_size=None,
            **overrides,
        )
