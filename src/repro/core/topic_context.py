"""Topic-model context over a feature window.

The paper infers a topic distribution ``d(p)`` for every post by fitting
LDA on the word text of all posts in the window, treating each post as
its own document (Sec. II-B).  This wrapper owns the tokenizer,
vocabulary and fitted LDA model, caches per-post distributions, and can
infer distributions for unseen posts (new questions at recommendation
time).
"""

from __future__ import annotations

import numpy as np

from ..forum.dataset import ForumDataset
from ..forum.models import Post
from ..topics.lda import LdaGibbs, LdaVariational, fit_lda
from ..topics.tokenizer import split_text_and_code, tokenize
from ..topics.vocabulary import Vocabulary

__all__ = ["TopicModelContext"]


class TopicModelContext:
    """Vocabulary + fitted LDA + per-post topic cache for one window."""

    def __init__(
        self,
        vocabulary: Vocabulary,
        model: LdaGibbs | LdaVariational,
        post_topics: dict[int, np.ndarray],
    ):
        self.vocabulary = vocabulary
        self.model = model
        self._post_topics = post_topics

    @property
    def n_topics(self) -> int:
        return self.model.n_topics

    @classmethod
    def fit(
        cls,
        dataset: ForumDataset,
        *,
        n_topics: int = 8,
        method: str = "variational",
        min_count: int = 2,
        max_vocab: int | None = 5000,
        seed: int = 0,
        **lda_kwargs,
    ) -> "TopicModelContext":
        """Fit LDA over every post in the dataset (paper's K = 8 default)."""
        posts: list[Post] = [p for thread in dataset for p in thread.posts]
        if not posts:
            raise ValueError("cannot fit topics on an empty dataset")
        tokenized = [
            tokenize(split_text_and_code(p.body).words) for p in posts
        ]
        vocabulary = Vocabulary(min_count=min_count, max_size=max_vocab).fit(
            tokenized
        )
        if len(vocabulary) == 0:
            raise ValueError("vocabulary is empty; posts contain no usable words")
        encoded = [vocabulary.encode(doc) for doc in tokenized]
        model = fit_lda(
            encoded, n_topics, len(vocabulary), method=method, seed=seed,
            **lda_kwargs,
        )
        post_topics = {
            p.post_id: model.doc_topic_[i] for i, p in enumerate(posts)
        }
        return cls(vocabulary, model, post_topics)

    def post_topics(self, post: Post) -> np.ndarray:
        """``d(p)`` for a post; infers and caches if the post is unseen."""
        cached = self._post_topics.get(post.post_id)
        if cached is not None:
            return cached
        dist = self.infer_body(post.body)
        self._post_topics[post.post_id] = dist
        return dist

    def infer_body(self, body: str) -> np.ndarray:
        """Topic distribution for raw post HTML via the frozen topics."""
        tokens = tokenize(split_text_and_code(body).words)
        encoded = self.vocabulary.encode(tokens)
        return self.model.transform([encoded])[0]
