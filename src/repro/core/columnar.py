"""Columnar append-only event store backing the hot data path.

The per-object ``Post``/``Thread`` layer is fine for a 700-user
synthetic forum, but at millions of posts the python-object overhead
(one heap object + dict per post, pointer-chasing per feature read)
dominates both memory and time.  This module stores the *hot* event
data — one row per answer event — as contiguous numpy columns instead:

* :class:`EventStore` — a generic append-only columnar store.  Columns
  grow in fixed-size **segments** (preallocated numpy arrays), so an
  append is an array slice write, never a realloc-and-copy of the full
  history; row ids are stable forever (append order == row order).
* :class:`AnswerLog` — the answer-event schema used by
  :class:`~repro.core.state.ForumState`: ``int32`` ids, ``float32``
  votes, ``float64`` times, per-row question/answer topic mixtures.
  The scale path (streaming generator, sharded state engine) uses the
  same log with ``float32`` topics.
* The per-user freeze artifacts (:class:`UserHistory`,
  :class:`UserSummary`, :class:`BatchTables`) and the functions that
  build them (:func:`user_summary`, :func:`assemble_tables`) live here
  so the single-process state engine and the shard workers assemble
  byte-identical tables from the same code.

Dtype policy is :mod:`repro.core.dtypes`: ids are ``int32`` (guarded by
``ensure_ids``), votes are ``float32`` (small integers — exact), and
times plus model-facing topic vectors stay ``float64`` so every value
the feature engine reads is bit-identical to the old object path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .dtypes import ID_DTYPE, TIME_DTYPE, VALUE_DTYPE, ensure_ids

__all__ = [
    "EventStore",
    "AnswerLog",
    "UserHistory",
    "UserSummary",
    "BatchTables",
    "user_summary",
    "assemble_tables",
    "thread_activity",
]


class EventStore:
    """Append-only columnar store with segment-based growth.

    ``schema`` maps column name to either a dtype (1-D column) or a
    ``(dtype, width)`` pair (2-D column of ``width`` floats per row).
    Rows are appended in blocks and addressed by a stable integer row
    id; a block append writes each column with one (or, across a
    segment boundary, two) array-slice assignments.
    """

    def __init__(self, schema: dict, segment_rows: int = 1 << 16):
        if segment_rows <= 0:
            raise ValueError("segment_rows must be positive")
        self._schema: dict[str, tuple[np.dtype, int]] = {}
        for name, spec in schema.items():
            if isinstance(spec, tuple):
                dtype, width = spec
                self._schema[name] = (np.dtype(dtype), int(width))
            else:
                self._schema[name] = (np.dtype(spec), 0)
        self._segment_rows = int(segment_rows)
        self._segments: list[dict[str, np.ndarray]] = []
        self._n = 0
        self._column_cache: dict[str, tuple[int, np.ndarray]] = {}

    # -- introspection ------------------------------------------------------

    def __len__(self) -> int:
        return self._n

    @property
    def n_rows(self) -> int:
        return self._n

    @property
    def n_segments(self) -> int:
        return len(self._segments)

    @property
    def columns(self) -> tuple[str, ...]:
        return tuple(self._schema)

    @property
    def nbytes(self) -> int:
        """Bytes actually backing the store (allocated segments)."""
        return sum(
            arr.nbytes for seg in self._segments for arr in seg.values()
        )

    def _new_segment(self) -> dict[str, np.ndarray]:
        seg = {}
        for name, (dtype, width) in self._schema.items():
            shape = (
                (self._segment_rows,)
                if width == 0
                else (self._segment_rows, width)
            )
            seg[name] = np.empty(shape, dtype=dtype)
        self._segments.append(seg)
        return seg

    # -- writing ------------------------------------------------------------

    def append(self, **columns: np.ndarray) -> tuple[int, int]:
        """Append one block of rows; returns its ``(start, stop)`` range.

        Every schema column must be supplied with the same leading
        length.  Scalars broadcast over the block (handy for per-thread
        constants such as the thread id or the question's topic row).
        """
        if set(columns) != set(self._schema):
            missing = set(self._schema) - set(columns)
            extra = set(columns) - set(self._schema)
            raise ValueError(
                f"column mismatch (missing={sorted(missing)}, "
                f"extra={sorted(extra)})"
            )
        length = None
        block: dict[str, np.ndarray] = {}
        for name, (dtype, width) in self._schema.items():
            arr = np.asarray(columns[name], dtype=dtype)
            if width == 0:
                if arr.ndim == 0:
                    block[name] = arr  # broadcast scalar
                    continue
                if arr.ndim != 1:
                    raise ValueError(f"column {name!r} must be 1-D")
            else:
                if arr.ndim == 1:
                    if arr.shape != (width,):
                        raise ValueError(
                            f"column {name!r} row has width {arr.shape}, "
                            f"expected {width}"
                        )
                    block[name] = arr  # broadcast row
                    continue
                if arr.ndim != 2 or arr.shape[1] != width:
                    raise ValueError(
                        f"column {name!r} has shape {arr.shape}, "
                        f"expected (*, {width})"
                    )
            if length is None:
                length = arr.shape[0]
            elif arr.shape[0] != length:
                raise ValueError("columns have mismatched lengths")
            block[name] = arr
        if length is None:
            raise ValueError("at least one column must be an array of rows")
        start = self._n
        written = 0
        while written < length:
            seg_index, offset = divmod(self._n, self._segment_rows)
            if seg_index == len(self._segments):
                self._new_segment()
            seg = self._segments[seg_index]
            take = min(length - written, self._segment_rows - offset)
            lo, hi = offset, offset + take
            for name, arr in block.items():
                if arr.ndim < max(1, 1 + (self._schema[name][1] > 0)):
                    seg[name][lo:hi] = arr  # broadcast
                else:
                    seg[name][lo:hi] = arr[written : written + take]
            self._n += take
            written += take
        self._column_cache.clear()
        return start, self._n

    # -- reading ------------------------------------------------------------

    def column(self, name: str) -> np.ndarray:
        """Column ``name`` over all rows.

        While the store fits in one segment this is a zero-copy view;
        past that, a concatenation cached until the next append.
        """
        dtype, width = self._schema[name]
        if not self._segments:
            shape = (0,) if width == 0 else (0, width)
            return np.empty(shape, dtype=dtype)
        if len(self._segments) == 1:
            return self._segments[0][name][: self._n]
        cached = self._column_cache.get(name)
        if cached is not None and cached[0] == self._n:
            return cached[1]
        parts = []
        remaining = self._n
        for seg in self._segments:
            take = min(remaining, self._segment_rows)
            parts.append(seg[name][:take])
            remaining -= take
        out = np.concatenate(parts)
        self._column_cache[name] = (self._n, out)
        return out

    def gather(self, name: str, rows: np.ndarray) -> np.ndarray:
        """Rows ``rows`` of column ``name`` (always a fresh array)."""
        rows = np.asarray(rows)
        if len(self._segments) == 1:
            return self._segments[0][name][rows]
        return self.column(name)[rows]

    # -- shared-memory publication ------------------------------------------

    def to_shm(self, tag: str = "events"):
        """Publish every segment into one named shared-memory block.

        Returns ``(shm_handle, descriptor)``: the handle owns the block
        (keep it referenced, retire it with :func:`repro.core.shm.unlink`)
        and the picklable descriptor is everything :meth:`from_shm`
        needs to map the store zero-copy in another process.  Whole
        segment buffers are published (not trimmed to the fill point),
        so segment geometry survives the round trip exactly.
        """
        from .shm import publish

        arrays = {
            f"{name}@{si}": seg[name]
            for si, seg in enumerate(self._segments)
            for name in self._schema
        }
        shm_handle, manifest = publish(arrays, tag)
        descriptor = {
            "schema": {
                name: (dtype.str, width)
                for name, (dtype, width) in self._schema.items()
            },
            "segment_rows": self._segment_rows,
            "n": self._n,
            "n_segments": len(self._segments),
            "manifest": manifest,
        }
        return shm_handle, descriptor

    @classmethod
    def from_shm(cls, descriptor):
        """Map a published store; returns ``(store, shm_handle)``.

        Segments are read-only zero-copy views into the shared block —
        attachers must not mutate (or append into) published rows.  The
        handle must outlive the store; close it (never unlink) after
        dropping the store.
        """
        from .shm import attach

        schema = {
            name: (np.dtype(d), width) if width else np.dtype(d)
            for name, (d, width) in descriptor["schema"].items()
        }
        store = cls(schema, segment_rows=descriptor["segment_rows"])
        shm_handle, views = attach(descriptor["manifest"])
        for view in views.values():
            view.flags.writeable = False
        for si in range(descriptor["n_segments"]):
            store._segments.append(
                {name: views[f"{name}@{si}"] for name in store._schema}
            )
        store._n = descriptor["n"]
        return store, shm_handle


class AnswerLog:
    """The answer-event columns behind :class:`ForumState`.

    One row per answer, in arrival (chronological) order::

        user           int32    answer author
        thread_id      int32    thread answered
        votes          float32  answer votes (small integers — exact)
        timestamp      float64  answer timestamp (hours)
        response_time  float64  timestamp - thread.created_at
        q_topics       (K,)     question topic mixture
        a_topics       (K,)     answer topic mixture

    Topic columns default to ``float64`` (bit-identity with the object
    path); the scale path passes ``topic_dtype=np.float32`` to halve
    the footprint where no float64 pipeline reads the rows.
    """

    def __init__(
        self,
        n_topics: int,
        *,
        topic_dtype=np.float64,
        segment_rows: int = 1 << 16,
    ):
        self.n_topics = int(n_topics)
        self.topic_dtype = np.dtype(topic_dtype)
        self._store = EventStore(
            {
                "user": ID_DTYPE,
                "thread_id": ID_DTYPE,
                "votes": VALUE_DTYPE,
                "timestamp": TIME_DTYPE,
                "response_time": TIME_DTYPE,
                "q_topics": (self.topic_dtype, self.n_topics),
                "a_topics": (self.topic_dtype, self.n_topics),
            },
            segment_rows=segment_rows,
        )

    def __len__(self) -> int:
        return len(self._store)

    @property
    def n_rows(self) -> int:
        return self._store.n_rows

    @property
    def n_segments(self) -> int:
        return self._store.n_segments

    @property
    def nbytes(self) -> int:
        return self._store.nbytes

    @property
    def columns(self) -> tuple[str, ...]:
        return self._store.columns

    def column(self, name: str) -> np.ndarray:
        return self._store.column(name)

    def gather(self, name: str, rows: np.ndarray) -> np.ndarray:
        return self._store.gather(name, rows)

    def append_thread(
        self,
        users,
        thread_id: int,
        votes,
        timestamps,
        response_times,
        question_topics,
        answer_topics,
    ) -> int:
        """Append one thread's answers; returns the first row id."""
        users = ensure_ids(users, "user id")
        start, _ = self._store.append(
            user=users,
            thread_id=np.asarray(
                ensure_ids([thread_id], "thread id")[0]
            ),
            votes=votes,
            timestamp=timestamps,
            response_time=response_times,
            q_topics=np.asarray(question_topics, dtype=self.topic_dtype),
            a_topics=answer_topics,
        )
        return start

    def append_block(
        self,
        users,
        thread_ids,
        votes,
        timestamps,
        response_times,
        question_topics,
        answer_topics,
    ) -> tuple[int, int]:
        """Append many answers across many threads in one call.

        The streaming ingest path: a whole generation chunk (rows in
        chronological thread order) lands with one array write per
        column instead of one call per thread.
        """
        return self._store.append(
            user=ensure_ids(users, "user id"),
            thread_id=ensure_ids(thread_ids, "thread id"),
            votes=votes,
            timestamp=timestamps,
            response_time=response_times,
            q_topics=np.asarray(question_topics, dtype=self.topic_dtype),
            a_topics=answer_topics,
        )

    def compact(self, live_rows: np.ndarray) -> "AnswerLog":
        """A new log holding only ``live_rows`` (ascending), same order.

        Eviction leaves dead rows behind; once they outnumber live ones
        the state engine gathers the survivors into a fresh store and
        remaps its row lists (row id = position in ``live_rows``).
        """
        fresh = AnswerLog(
            self.n_topics,
            topic_dtype=self.topic_dtype,
            segment_rows=self._store._segment_rows,
        )
        if len(live_rows):
            fresh._store.append(
                **{
                    name: self._store.gather(name, live_rows)
                    for name in self._store.columns
                }
            )
        return fresh


# -- per-user freeze artifacts ---------------------------------------------


@dataclass
class UserHistory:
    """A user's answering history inside the feature window."""

    answered_thread_ids: np.ndarray  # (n_i,)
    answered_question_topics: np.ndarray  # (n_i, K)
    answer_votes: np.ndarray  # (n_i,)
    response_times: np.ndarray  # (n_i,)
    answer_topic_vectors: np.ndarray  # (n_i, K) topics of the answers


@dataclass
class UserSummary:
    """Cached per-user freeze artifacts; valid until the rows change."""

    history: UserHistory
    votes_sum: float
    median_rt: float
    d_u: np.ndarray
    topic_sum: np.ndarray
    times_sorted: np.ndarray
    time_rank: np.ndarray
    tid_rows: list[tuple[int, int]] | None  # (tid, local row); None if dup


@dataclass
class BatchTables:
    """Flat per-user aggregate tables backing the batch feature engine.

    Histories are concatenated row-wise (``seg_start`` delimits each
    user's block) so whole pair batches reduce with one segmented sum
    instead of per-user Python.  ``times_sorted``/``time_rank`` hold
    each user's response times sorted within its block, which turns the
    leave-one-row-out median into index arithmetic.  Users listed in
    ``dup_users`` answered some thread more than once (pre-preprocessing
    data) and take the masked fallback path instead of ``row_of``.
    """

    user_index: dict[int, int]  # user id -> row in the per-user tables
    n: np.ndarray  # (U,) history lengths
    votes_sum: np.ndarray  # (U,)
    median_rt: np.ndarray  # (U,)
    d_u: np.ndarray  # (U, K) answer_topic_vectors.mean(axis=0)
    topic_sum: np.ndarray  # (U, K) answer_topic_vectors.sum(axis=0)
    seg_start: np.ndarray  # (U,) offsets into the concatenated rows
    hist_topics: np.ndarray  # (N, K) answered_question_topics, concatenated
    hist_votes: np.ndarray  # (N,) float32 — exact small integers
    hist_answer_topics: np.ndarray  # (N, K)
    times_sorted: np.ndarray  # (N,) response times, sorted per user block
    time_rank: np.ndarray  # (N,) history row -> rank within its block
    row_of: dict[tuple[int, int], int]  # (user, tid) -> concatenated row
    dup_users: set[int]


def user_summary(log: AnswerLog, rows) -> UserSummary:
    """One user's freeze artifacts gathered from its log rows.

    ``rows`` are the user's row ids in arrival order — the same order
    the old per-object path kept its ``_AnswerRow`` list in, so every
    derived array is element-for-element identical.
    """
    rows = np.asarray(rows, dtype=np.int64)
    n = rows.size
    history = UserHistory(
        answered_thread_ids=log.gather("thread_id", rows),
        answered_question_topics=np.asarray(
            log.gather("q_topics", rows), dtype=np.float64
        ).reshape(n, log.n_topics),
        answer_votes=log.gather("votes", rows),
        response_times=log.gather("response_time", rows),
        answer_topic_vectors=np.asarray(
            log.gather("a_topics", rows), dtype=np.float64
        ).reshape(n, log.n_topics),
    )
    order = np.argsort(history.response_times, kind="stable")
    rank = np.empty(n, dtype=np.int64)
    rank[order] = np.arange(n)
    tids = history.answered_thread_ids.tolist()
    tid_rows: list[tuple[int, int]] | None
    if len(set(tids)) != len(tids):
        tid_rows = None
    else:
        tid_rows = list(zip(tids, range(n)))
    return UserSummary(
        history=history,
        votes_sum=float(history.answer_votes.sum()),
        median_rt=float(np.median(history.response_times)),
        d_u=history.answer_topic_vectors.mean(axis=0),
        topic_sum=history.answer_topic_vectors.sum(axis=0),
        times_sorted=history.response_times[order],
        time_rank=rank,
        tid_rows=tid_rows,
    )


def assemble_tables(
    summaries: dict[int, UserSummary], users: list[int], k: int
) -> BatchTables:
    """Flat batch tables over ``users`` (must be sorted ascending).

    The canonical (sorted) user layout makes the tables identical
    however the window was reached — shard workers slicing a subset of
    users produce exact row-copies of the full table's blocks.
    """
    u_count = len(users)
    counts = np.array(
        [summaries[u].history.response_times.size for u in users],
        dtype=np.int64,
    )
    total = int(counts.sum())
    seg_start = np.zeros(u_count, dtype=np.int64)
    if u_count > 1:
        np.cumsum(counts[:-1], out=seg_start[1:])
    votes_sum = np.empty(u_count)
    median_rt = np.empty(u_count)
    d_u = np.empty((u_count, k))
    topic_sum = np.empty((u_count, k))
    hist_topics = np.empty((total, k))
    hist_votes = np.empty(total, dtype=VALUE_DTYPE)
    hist_answer_topics = np.empty((total, k))
    times_sorted = np.empty(total)
    time_rank = np.empty(total, dtype=np.int64)
    row_of: dict[tuple[int, int], int] = {}
    dup_users: set[int] = set()
    for ui, user in enumerate(users):
        s = summaries[user]
        lo = int(seg_start[ui])
        hi = lo + int(counts[ui])
        votes_sum[ui] = s.votes_sum
        median_rt[ui] = s.median_rt
        d_u[ui] = s.d_u
        topic_sum[ui] = s.topic_sum
        h = s.history
        hist_topics[lo:hi] = h.answered_question_topics
        hist_votes[lo:hi] = h.answer_votes
        hist_answer_topics[lo:hi] = h.answer_topic_vectors
        times_sorted[lo:hi] = s.times_sorted
        time_rank[lo:hi] = s.time_rank
        if s.tid_rows is None:
            dup_users.add(user)
        else:
            for tid, row in s.tid_rows:
                row_of[(user, tid)] = lo + row
    return BatchTables(
        user_index={u: ui for ui, u in enumerate(users)},
        n=counts,
        votes_sum=votes_sum,
        median_rt=median_rt,
        d_u=d_u,
        topic_sum=topic_sum,
        seg_start=seg_start,
        hist_topics=hist_topics,
        hist_votes=hist_votes,
        hist_answer_topics=hist_answer_topics,
        times_sorted=times_sorted,
        time_rank=time_rank,
        row_of=row_of,
        dup_users=dup_users,
    )


def thread_activity(
    users: np.ndarray, thread_ids: np.ndarray, timestamps: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Per ``(user, thread)`` event count and latest timestamp.

    One vectorized group-by over raw event columns — the columnar
    replacement for replaying ``observe`` calls post by post.  Returns
    ``(users, thread_ids, counts, latest)`` grouped arrays, ordered by
    ``(user, thread)`` ascending.
    """
    users = np.asarray(users)
    thread_ids = np.asarray(thread_ids)
    timestamps = np.asarray(timestamps)
    if users.size == 0:
        return (
            users[:0],
            thread_ids[:0],
            np.empty(0, dtype=np.int64),
            timestamps[:0],
        )
    order = np.lexsort((timestamps, thread_ids, users))
    u = users[order]
    t = thread_ids[order]
    ts = timestamps[order]
    new_group = np.empty(u.size, dtype=bool)
    new_group[0] = True
    np.logical_or(u[1:] != u[:-1], t[1:] != t[:-1], out=new_group[1:])
    starts = np.flatnonzero(new_group)
    ends = np.append(starts[1:], u.size)
    counts = (ends - starts).astype(np.int64)
    # Sorted by timestamp within each group, so the last row is the max.
    latest = ts[ends - 1]
    return u[starts], t[starts], counts, latest
