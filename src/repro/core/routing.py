"""Question recommendation by joint quality/timing optimization (Sec. V).

For a new question q', the recommender:

1. computes predictions (a_hat, v_hat, r_hat) for every candidate user;
2. keeps the eligible set ``U = {u : a_hat >= epsilon}``;
3. solves the linear program

   maximize   sum_u (v_hat_u - lambda * r_hat_u) p_u
   subject to 0 <= p_u <= c_u - (answers by u in the recent window),
              sum_u p_u = 1,

   whose solution is a probability distribution over recommended
   answerers.

The LP has a box + single simplex constraint, so the exact optimum is a
greedy fill: sort users by score and assign as much probability as each
user's remaining capacity allows until the unit mass is spent.  Tests
cross-check against ``scipy.optimize.linprog``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..forum.dataset import ForumDataset
from ..forum.models import Thread
from .pipeline import ForumPredictor

__all__ = ["solve_routing_lp", "RoutingResult", "QuestionRouter"]


def solve_routing_lp(
    scores: np.ndarray, capacities: np.ndarray
) -> np.ndarray:
    """Exact solution of the box+simplex LP by greedy capacity filling.

    ``scores[u]`` is the objective coefficient of user u and
    ``capacities[u]`` the upper bound on ``p_u``.  Raises ``ValueError``
    when total capacity cannot absorb the unit mass (infeasible).
    """
    scores = np.asarray(scores, dtype=float)
    capacities = np.asarray(capacities, dtype=float)
    if scores.shape != capacities.shape or scores.ndim != 1:
        raise ValueError("scores and capacities must be matching 1-D arrays")
    capacities = np.clip(capacities, 0.0, None)
    if capacities.sum() < 1.0 - 1e-12:
        raise ValueError("infeasible: total capacity below 1")
    p = np.zeros_like(scores)
    remaining = 1.0
    for u in np.argsort(-scores, kind="stable"):
        take = min(capacities[u], remaining)
        p[u] = take
        remaining -= take
        if remaining <= 1e-15:
            break
    return p


@dataclass(frozen=True)
class RoutingResult:
    """Recommendation output for one question."""

    question_id: int
    users: np.ndarray  # candidate user ids (the eligible set)
    probabilities: np.ndarray  # p over the eligible set, sums to 1
    scores: np.ndarray  # v_hat - lambda * r_hat per eligible user
    predictions: dict[str, np.ndarray]  # raw a/v/r predictions per user

    def ranked_users(self) -> list[tuple[int, float]]:
        """(user, probability) pairs sorted by assigned probability."""
        order = np.argsort(-self.probabilities, kind="stable")
        return [
            (int(self.users[i]), float(self.probabilities[i]))
            for i in order
            if self.probabilities[i] > 0
        ]

    def draw(self, rng: np.random.Generator) -> int:
        """Sample one recommended answerer from the distribution."""
        idx = rng.choice(len(self.users), p=self.probabilities)
        return int(self.users[idx])


class QuestionRouter:
    """Routes new questions to answerers using a fitted predictor."""

    def __init__(
        self,
        predictor: ForumPredictor,
        *,
        epsilon: float = 0.5,
        default_capacity: float = 1.0,
        load_window_hours: float = 24.0,
    ):
        if not 0.0 < epsilon < 1.0:
            raise ValueError("epsilon must be in (0, 1)")
        if default_capacity <= 0:
            raise ValueError("default_capacity must be positive")
        self.predictor = predictor
        self.epsilon = epsilon
        self.default_capacity = default_capacity
        self.load_window_hours = load_window_hours

    def recent_load(
        self, dataset: ForumDataset, now_hours: float
    ) -> dict[int, int]:
        """Answers posted by each user within the recent load window."""
        start = now_hours - self.load_window_hours
        load: dict[int, int] = {}
        for record in dataset.answer_records():
            if start <= record.timestamp <= now_hours:
                load[record.user] = load.get(record.user, 0) + 1
        return load

    def recommend(
        self,
        thread: Thread,
        candidates: list[int],
        *,
        tradeoff: float = 0.1,
        recent_load: dict[int, int] | None = None,
        capacities: dict[int, float] | None = None,
    ) -> RoutingResult | None:
        """Solve the Sec.-V LP for one question.

        ``tradeoff`` is the paper's lambda_q' (importance of timing vs.
        quality, possibly set by the asker).  Returns ``None`` when no
        candidate clears the eligibility threshold or capacity is
        exhausted.
        """
        if not candidates:
            return None
        recent_load = recent_load or {}
        capacities = capacities or {}
        preds = self.predictor.predict_batch(
            [(u, thread) for u in candidates]
        )
        eligible = np.flatnonzero(preds["answer"] >= self.epsilon)
        if eligible.size == 0:
            return None
        users = np.array(candidates)[eligible]
        votes = preds["votes"][eligible]
        times = preds["response_time"][eligible]
        scores = votes - tradeoff * times
        caps = np.array(
            [
                max(
                    capacities.get(int(u), self.default_capacity)
                    - recent_load.get(int(u), 0),
                    0.0,
                )
                for u in users
            ]
        )
        if caps.sum() < 1.0 - 1e-12:
            return None
        probabilities = solve_routing_lp(scores, caps)
        return RoutingResult(
            question_id=thread.thread_id,
            users=users,
            probabilities=probabilities,
            scores=scores,
            predictions={
                "answer": preds["answer"][eligible],
                "votes": votes,
                "response_time": times,
            },
        )
