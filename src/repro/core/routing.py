"""Question recommendation by joint quality/timing optimization (Sec. V).

For a new question q', the recommender:

1. computes predictions (a_hat, v_hat, r_hat) for every candidate user;
2. keeps the eligible set ``U = {u : a_hat >= epsilon}``;
3. solves the linear program

   maximize   sum_u (v_hat_u - lambda * r_hat_u) p_u
   subject to 0 <= p_u <= c_u - (answers by u in the recent window),
              sum_u p_u = 1,

   whose solution is a probability distribution over recommended
   answerers.

The LP has a box + single simplex constraint, so the exact optimum is a
greedy fill: sort users by score and assign as much probability as each
user's remaining capacity allows until the unit mass is spent.  The fill
visits users blockwise via ``argpartition`` — with generous capacities
the unit mass is spent after a handful of users, so the full
``argsort`` is never paid — while remaining bit-identical to the stable
full sort (boundary ties are pulled into the block).  Tests cross-check
against ``scipy.optimize.linprog``.

Step 1 is the dense hot path: O(users) full-predictor scores per
question.  Construct the router with a
:class:`~repro.core.retrieval.CandidateRetriever` (and a
``two_stage`` :class:`~repro.core.retrieval.RetrievalConfig`) to route
against a fused candidate pool instead; an infeasible or empty pool
falls back to the dense path when ``dense_fallback`` is set.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, replace

import numpy as np

from .. import perf
from ..forum.dataset import ForumDataset
from ..forum.models import Thread
from .pipeline import ForumPredictor

__all__ = [
    "solve_routing_lp",
    "finish_recommendation",
    "RoutingResult",
    "QuestionRouter",
    "UserLoadTracker",
]

# Below this many eligible users the blockwise fill just sorts once.
_LP_BLOCK = 64


def _greedy_fill(
    p: np.ndarray,
    order: np.ndarray,
    capacities: np.ndarray,
    remaining: float,
) -> float:
    """Assign capacity along ``order`` until the unit mass is spent."""
    for u in order:
        take = min(capacities[u], remaining)
        p[u] = take
        remaining -= take
        if remaining <= 1e-15:
            break
    return remaining


def solve_routing_lp(
    scores: np.ndarray, capacities: np.ndarray
) -> np.ndarray:
    """Exact solution of the box+simplex LP by greedy capacity filling.

    ``scores[u]`` is the objective coefficient of user u and
    ``capacities[u]`` the upper bound on ``p_u``.  Raises ``ValueError``
    when total capacity cannot absorb the unit mass (infeasible).

    Large instances are filled blockwise: ``argpartition`` selects the
    current top block (plus every boundary tie, so the stable tie order
    of a full ``argsort`` is preserved exactly), only that block is
    sorted, and the fill stops as soon as the mass is spent — typically
    after the first block when capacities are not pathological.
    """
    scores = np.asarray(scores, dtype=float)
    capacities = np.asarray(capacities, dtype=float)
    if scores.shape != capacities.shape or scores.ndim != 1:
        raise ValueError("scores and capacities must be matching 1-D arrays")
    capacities = np.clip(capacities, 0.0, None)
    if capacities.sum() < 1.0 - 1e-12:
        raise ValueError("infeasible: total capacity below 1")
    p = np.zeros_like(scores)
    remaining = 1.0
    n = scores.size
    if n <= _LP_BLOCK:
        _greedy_fill(
            p, np.argsort(-scores, kind="stable"), capacities, remaining
        )
        return p
    # ``active`` stays ascending under boolean masking, so the stable
    # within-block sort reproduces the global stable order exactly.
    active = np.arange(n)
    while remaining > 1e-15 and active.size:
        if active.size <= _LP_BLOCK:
            block, active = active, active[:0]
        else:
            part = np.argpartition(-scores[active], _LP_BLOCK - 1)
            threshold = scores[active[part[_LP_BLOCK - 1]]]
            in_block = scores[active] >= threshold
            block, active = active[in_block], active[~in_block]
        order = block[np.argsort(-scores[block], kind="stable")]
        remaining = _greedy_fill(p, order, capacities, remaining)
    return p


def _gather_from_dict(
    users: np.ndarray,
    mapping: dict[int, float],
    default: float,
) -> np.ndarray:
    """Vectorized ``[mapping.get(u, default) for u in users]``.

    The dict's keys are staged into one sorted id array and matched
    against ``users`` with ``searchsorted`` — no per-user Python.
    """
    out = np.full(users.shape, float(default))
    if not mapping:
        return out
    keys = np.fromiter(mapping.keys(), dtype=np.int64, count=len(mapping))
    values = np.fromiter(
        (float(v) for v in mapping.values()), dtype=float, count=len(mapping)
    )
    order = np.argsort(keys, kind="stable")
    keys, values = keys[order], values[order]
    pos = np.searchsorted(keys, users)
    pos_safe = np.minimum(pos, keys.size - 1)
    hit = (pos < keys.size) & (keys[pos_safe] == users)
    out[hit] = values[pos_safe[hit]]
    return out


class UserLoadTracker:
    """Incremental per-user answer-load counter over a sliding window.

    Replaces rescanning every answer record per routing call: answer
    events enter a min-heap keyed by timestamp (threads fold in whole,
    so answer times are not globally ordered), activate once the query
    clock passes them, and expire once they fall behind the window —
    O(log n) per event instead of O(all answers) per call.  ``counts``
    matches :meth:`QuestionRouter.recent_load` exactly: events with
    ``now - window <= t <= now``.  Query times must be non-decreasing,
    which the chronological replay guarantees.
    """

    def __init__(self, window_hours: float = 24.0):
        if window_hours <= 0:
            raise ValueError("window_hours must be positive")
        self.window_hours = window_hours
        self._future: list[tuple[float, int]] = []  # not yet happened
        self._active: list[tuple[float, int]] = []  # inside the window
        self._counts: dict[int, int] = {}

    def observe(self, user: int, timestamp: float) -> None:
        """Record one answer event (any insertion order)."""
        heapq.heappush(self._future, (float(timestamp), int(user)))

    def observe_thread(self, thread: Thread) -> None:
        """Fold every answer of one thread."""
        for answer in thread.answers:
            self.observe(answer.author, answer.timestamp)

    def counts(self, now_hours: float) -> dict[int, int]:
        """Per-user loads within ``[now - window, now]``; the live dict.

        Callers must treat the result as read-only; it is the tracker's
        own table after activating due events and expiring stale ones.
        """
        start = now_hours - self.window_hours
        future, active, counts = self._future, self._active, self._counts
        while future and future[0][0] <= now_hours:
            event = heapq.heappop(future)
            heapq.heappush(active, event)
            user = event[1]
            counts[user] = counts.get(user, 0) + 1
        while active and active[0][0] < start:
            _, user = heapq.heappop(active)
            left = counts[user] - 1
            if left:
                counts[user] = left
            else:
                del counts[user]
        return counts

    def __len__(self) -> int:
        return len(self._future) + len(self._active)


@dataclass(frozen=True)
class RoutingResult:
    """Recommendation output for one question."""

    question_id: int
    users: np.ndarray  # candidate user ids (the eligible set)
    probabilities: np.ndarray  # p over the eligible set, sums to 1
    scores: np.ndarray  # v_hat - lambda * r_hat per eligible user
    predictions: dict[str, np.ndarray]  # raw a/v/r predictions per user
    pool_size: int | None = None  # two-stage pool handed to the scorer
    dense_fallback: bool = False  # pool failed; dense path produced this

    def ranked_users(self) -> list[tuple[int, float]]:
        """(user, probability) pairs sorted by assigned probability."""
        order = np.argsort(-self.probabilities, kind="stable")
        return [
            (int(self.users[i]), float(self.probabilities[i]))
            for i in order
            if self.probabilities[i] > 0
        ]

    def draw(self, rng: np.random.Generator) -> int:
        """Sample one recommended answerer from the distribution."""
        idx = rng.choice(len(self.users), p=self.probabilities)
        return int(self.users[idx])


class QuestionRouter:
    """Routes new questions to answerers using a fitted predictor."""

    def __init__(
        self,
        predictor: ForumPredictor,
        *,
        epsilon: float = 0.5,
        default_capacity: float = 1.0,
        load_window_hours: float = 24.0,
        retriever=None,
        load_tracker: UserLoadTracker | None = None,
    ):
        if not 0.0 < epsilon < 1.0:
            raise ValueError("epsilon must be in (0, 1)")
        if default_capacity <= 0:
            raise ValueError("default_capacity must be positive")
        self.predictor = predictor
        self.epsilon = epsilon
        self.default_capacity = default_capacity
        self.load_window_hours = load_window_hours
        # Optional CandidateRetriever with a two-stage RetrievalConfig;
        # None keeps the original dense scoring path.
        self.retriever = retriever
        # Optional incremental load counter consulted when a call does
        # not pass ``recent_load`` explicitly.
        self.load_tracker = load_tracker

    def recent_load(
        self, dataset: ForumDataset, now_hours: float
    ) -> dict[int, int]:
        """Answers posted by each user within the recent load window.

        One full scan of ``dataset`` — the offline/batch entry point.
        Streaming callers should maintain a :class:`UserLoadTracker`
        instead, which keeps the same counts incrementally.
        """
        start = now_hours - self.load_window_hours
        load: dict[int, int] = {}
        for record in dataset.answer_records():
            if start <= record.timestamp <= now_hours:
                load[record.user] = load.get(record.user, 0) + 1
        return load

    def _two_stage(self) -> bool:
        return (
            self.retriever is not None
            and self.retriever.config.mode == "two_stage"
        )

    def candidate_pool(
        self, thread: Thread, candidates: list[int] | np.ndarray
    ) -> np.ndarray:
        """Candidates this router would score for ``thread``, ascending.

        The fused retrieval pool under a two-stage config; otherwise
        the given candidates sorted (the dense scoring order).
        """
        if self._two_stage():
            return self.retriever.pool(thread, candidates)
        return np.sort(np.asarray(candidates, dtype=np.int64))

    def recommend(
        self,
        thread: Thread,
        candidates: list[int] | np.ndarray,
        *,
        tradeoff: float = 0.1,
        recent_load: dict[int, int] | None = None,
        capacities: dict[int, float] | None = None,
        pool: np.ndarray | None = None,
        predictions: dict[str, np.ndarray] | None = None,
    ) -> RoutingResult | None:
        """Solve the Sec.-V LP for one question.

        ``tradeoff`` is the paper's lambda_q' (importance of timing vs.
        quality, possibly set by the asker).  Returns ``None`` when no
        candidate clears the eligibility threshold or capacity is
        exhausted.

        With a two-stage retriever bound, only the fused candidate pool
        (or the precomputed ``pool``, if the caller already queried it)
        is scored; when that pool yields no feasible recommendation and
        the config allows it, the call falls back to the dense path
        over the full candidate set.

        ``predictions`` lets a caller that already batch-scored the
        exact set this call would score (the nonempty ``pool`` under a
        two-stage config, ``candidates`` otherwise) pass those model
        outputs in instead of recomputing them; prediction is pure, so
        reuse is bit-identical.  The dense *retry* after an infeasible
        nonempty pool scores a different set and always recomputes.
        """
        if len(candidates) == 0:
            return None
        if recent_load is None and self.load_tracker is not None:
            recent_load = self.load_tracker.counts(thread.created_at)
        two_stage = self._two_stage()
        if two_stage:
            if pool is None:
                pool = self.candidate_pool(thread, candidates)
            result = (
                self._recommend_dense(
                    thread,
                    pool,
                    tradeoff=tradeoff,
                    recent_load=recent_load,
                    capacities=capacities,
                    pool_size=int(pool.size),
                    predictions=predictions,
                )
                if pool.size
                else None
            )
            if result is not None:
                return result
            if (
                not self.retriever.config.dense_fallback
                or pool.size == len(candidates)
            ):
                return None
            perf.incr("retrieval.dense_fallbacks")
            result = self._recommend_dense(
                thread,
                candidates,
                tradeoff=tradeoff,
                recent_load=recent_load,
                capacities=capacities,
                pool_size=int(pool.size),
                # An empty pool never got scored, so caller predictions
                # align with ``candidates`` and survive the fallback; a
                # nonempty pool's predictions do not.
                predictions=predictions if pool.size == 0 else None,
            )
            if result is not None:
                result = replace(result, dense_fallback=True)
            return result
        return self._recommend_dense(
            thread,
            candidates,
            tradeoff=tradeoff,
            recent_load=recent_load,
            capacities=capacities,
            predictions=predictions,
        )

    def _recommend_dense(
        self,
        thread: Thread,
        candidates: list[int] | np.ndarray,
        *,
        tradeoff: float,
        recent_load: dict[int, int] | None,
        capacities: dict[int, float] | None,
        pool_size: int | None = None,
        predictions: dict[str, np.ndarray] | None = None,
    ) -> RoutingResult | None:
        preds = (
            predictions
            if predictions is not None
            else self.predictor.predict_batch(
                [(int(u), thread) for u in candidates]
            )
        )
        eligible = np.flatnonzero(preds["answer"] >= self.epsilon)
        if eligible.size == 0:
            return None
        return finish_recommendation(
            thread.thread_id,
            np.asarray(candidates, dtype=np.int64)[eligible],
            preds["answer"][eligible],
            preds["votes"][eligible],
            preds["response_time"][eligible],
            tradeoff=tradeoff,
            recent_load=recent_load,
            capacities=capacities,
            default_capacity=self.default_capacity,
            pool_size=pool_size,
        )


def finish_recommendation(
    question_id: int,
    users: np.ndarray,
    answer: np.ndarray,
    votes: np.ndarray,
    times: np.ndarray,
    *,
    tradeoff: float,
    recent_load: dict[int, int] | None,
    capacities: dict[int, float] | None,
    default_capacity: float,
    pool_size: int | None = None,
) -> RoutingResult | None:
    """Capacity gathering + exact LP over an already-eligible user set.

    The shared tail of every routing path: the dense scorer calls it
    with its threshold-filtered predictions, and the sharded engine
    (:mod:`repro.core.sharding`) calls it with the merged per-shard
    eligible sets — same code, so a merged shard run and a dense run
    over the same users produce the same :class:`RoutingResult` bit for
    bit.  ``users`` must be aligned with the prediction arrays; returns
    ``None`` when nobody is eligible or capacity cannot absorb the unit
    mass.
    """
    recent_load = recent_load or {}
    capacities = capacities or {}
    if users.size == 0:
        return None
    scores = votes - tradeoff * times
    caps = _gather_from_dict(users, capacities, default_capacity)
    if recent_load:
        caps -= _gather_from_dict(users, recent_load, 0.0)
    np.clip(caps, 0.0, None, out=caps)
    if caps.sum() < 1.0 - 1e-12:
        return None
    probabilities = solve_routing_lp(scores, caps)
    return RoutingResult(
        question_id=question_id,
        users=users,
        probabilities=probabilities,
        scores=scores,
        predictions={
            "answer": answer,
            "votes": votes,
            "response_time": times,
        },
        pool_size=pool_size,
    )
