"""The paper's 20 user/question/user-question/social features (Sec. II-B).

A :class:`FeatureExtractor` is built once over a *feature window* — the
question set ``F(q)`` the paper computes features on — and then produces
the vector ``x_uq`` for any (user, question) pair.  All window-wide
precomputation (per-question info, per-user histories, discussed-topic
aggregates, SLN graphs and centralities) lives in
:class:`repro.core.state.ForumState`; the extractor binds one frozen
snapshot of it.  Batch callers construct from a dataset (which builds a
throwaway state) or, on the streaming path, from a long-lived state via
:meth:`FeatureExtractor.from_state` — the freeze then reuses every
per-user block and centrality table that did not change since the last
refit.

Two equivalent paths produce the vectors:

* :meth:`FeatureExtractor.features` — the scalar reference path, one
  pair at a time;
* :meth:`FeatureExtractor.features_batch` — the batched engine behind
  :meth:`feature_matrix`.  It groups pairs by user and by thread so the
  per-user aggregates and per-question info are computed once per group,
  vectorizes the topic-similarity blocks with NumPy over whole pair
  blocks, and memoizes the resource-allocation index per (user, asker).
  Its output matches the scalar path element-wise to floating-point
  roundoff (tested at atol=1e-12).

Leakage guard: when the target thread itself lies inside the window,
all user-side aggregates (answer counts, votes, response times, topic
histories, thread co-occurrence) exclude that thread's contributions.
Without this, the "answers provided" feature would directly encode the
a_uq label being predicted.  The paper's ``F(q) = {q' <= q}`` is
ambiguous on this point; excluding the target thread is the sound
reading.  Graph centralities are computed once over the whole window
(a single thread's edges have negligible effect on global centrality).
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Sequence

import numpy as np

from .. import perf
from ..forum.dataset import ForumDataset
from ..forum.models import Thread
from ..graphs import (
    UndirectedGraph,
    resource_allocation_index,
    resource_allocation_indices,
)
from .featurespec import FeatureSpec
from .state import (
    ForumState,
    FrozenState,
    QuestionInfo,
    _BatchTables,
    question_info_from_thread,
)
from .topic_context import TopicModelContext

__all__ = ["FeatureExtractor", "QuestionInfo"]

# Sentinel thread id that never collides with a real (non-negative) id,
# used to request "no exclusion" from the masked aggregate helpers.
_NO_THREAD = -1


class FeatureExtractor:
    """Computes x_uq vectors over a fixed feature window."""

    # Out-of-window threads seen at prediction time keep their info in a
    # small LRU; the window's own threads are cached permanently.
    _OUT_OF_WINDOW_CACHE_SIZE = 512

    # Memory cap (in float64 elements) for one pair-block x history
    # similarity matrix inside the batch engine.
    _SIM_CHUNK_ELEMENTS = 4_000_000

    def __init__(
        self,
        window: ForumDataset,
        topics: TopicModelContext,
        *,
        betweenness_sample_size: int | None = None,
        seed: int = 0,
    ):
        with perf.timer("features.build"):
            state = ForumState.from_dataset(window, topics)
            frozen = state.freeze(
                betweenness_sample_size=betweenness_sample_size, seed=seed
            )
        self._bind(frozen, topics, window)

    @classmethod
    def from_state(
        cls,
        state: ForumState,
        *,
        betweenness_sample_size: int | None = None,
        seed: int = 0,
    ) -> "FeatureExtractor":
        """Extractor over a live :class:`ForumState`'s current window.

        This is the streaming path: the state's freeze reuses every
        cached per-user block and centrality table that is still valid,
        and the returned extractor holds an immutable snapshot — later
        ``append``/``evict`` calls on the state do not affect it.
        """
        self = cls.__new__(cls)
        with perf.timer("features.build"):
            frozen = state.freeze(
                betweenness_sample_size=betweenness_sample_size, seed=seed
            )
        self._bind(frozen, state.topics, state.to_dataset())
        return self

    def _bind(
        self,
        frozen: FrozenState,
        topics: TopicModelContext,
        window: ForumDataset,
    ) -> None:
        self.window = window
        self.topics = topics
        self.spec = FeatureSpec(topics.n_topics)
        self._uniform = np.full(topics.n_topics, 1.0 / topics.n_topics)
        self.frozen = frozen
        self._question_info = frozen.question_info
        self._extra_question_info: OrderedDict[int, QuestionInfo] = OrderedDict()
        self._histories = frozen.histories
        self._questions_asked = frozen.questions_asked
        self._global_median_response = frozen.global_median_response
        self._discussed_sum = frozen.discussed_sum
        self._discussed_count = frozen.discussed_count
        self._discussed_by_thread = frozen.discussed_by_thread
        self._thread_sets = frozen.thread_sets
        self.qa_graph: UndirectedGraph = frozen.qa_graph
        self.dense_graph: UndirectedGraph = frozen.dense_graph
        self._qa_closeness = frozen.qa_closeness
        self._qa_betweenness = frozen.qa_betweenness
        self._dense_closeness = frozen.dense_closeness
        self._dense_betweenness = frozen.dense_betweenness
        self._batch_tables = frozen.batch_tables
        # Lazy caches used by the batch engine (all bounded by the
        # window's own user/pair population).
        self._rai_cache: dict[tuple[int, int], tuple[float, float]] = {}
        self._discussed_base: dict[int, np.ndarray] = {}

    @property
    def window_fingerprint(self) -> str:
        """Digest of the bound window; persisted to guard reloads."""
        return self.frozen.fingerprint

    # -- per-feature computation ----------------------------------------------

    def _info_from_thread(self, thread: Thread) -> QuestionInfo:
        return question_info_from_thread(thread, self.topics)

    def _question_info_for(self, thread: Thread) -> QuestionInfo:
        tid = thread.thread_id
        info = self._question_info.get(tid)
        if info is not None:
            return info
        # Out-of-window thread: keep its info in a bounded LRU so a
        # streaming caller (the online simulator routes every incoming
        # question through here) cannot grow memory without bound.
        extra = self._extra_question_info
        info = extra.get(tid)
        if info is not None:
            extra.move_to_end(tid)
            return info
        info = self._info_from_thread(thread)
        extra[tid] = info
        if len(extra) > self._OUT_OF_WINDOW_CACHE_SIZE:
            extra.popitem(last=False)
        return info

    def _history_view(self, user: int, exclude_thread: int):
        """(mask, history) with the target thread's rows masked out."""
        history = self._histories.get(user)
        if history is None:
            return None, None
        mask = history.answered_thread_ids != exclude_thread
        return mask, history

    def _topics_discussed(self, user: int, exclude_thread: int) -> np.ndarray:
        total = self._discussed_sum.get(user)
        if total is None:
            return self._uniform
        count = self._discussed_count[user]
        excl = self._discussed_by_thread.get(user, {}).get(exclude_thread)
        if excl is not None:
            total = total - excl[0]
            count -= excl[1]
        if count <= 0:
            return self._uniform
        return total / count

    @staticmethod
    def _tv_similarity(p: np.ndarray, q: np.ndarray) -> float:
        return float(1.0 - 0.5 * np.abs(p - q).sum())

    def _tables(self) -> _BatchTables:
        """The flat batch tables (assembled by the state's freeze)."""
        return self._batch_tables

    # -- public API ----------------------------------------------------------------

    def features(self, user: int, thread: Thread) -> np.ndarray:
        """The full x_uq vector for one (user, question) pair."""
        k = self.topics.n_topics
        tid = thread.thread_id
        info = self._question_info_for(thread)
        mask, history = self._history_view(user, tid)

        # User features (i)-(v), excluding the target thread.
        if history is not None and mask.any():
            n_answers = float(mask.sum())
            votes_sum = float(history.answer_votes[mask].sum())
            median_rt = float(np.median(history.response_times[mask]))
            d_u = history.answer_topic_vectors[mask].mean(axis=0)
        else:
            n_answers = 0.0
            votes_sum = 0.0
            median_rt = self._global_median_response
            d_u = self._uniform
        asked = self._questions_asked.get(user, 0)
        answer_ratio = n_answers / (1.0 + asked)

        # Question features (vi)-(ix).
        d_q = info.topics

        # User-question features (x)-(xii).
        s_uq = self._tv_similarity(d_u, d_q)
        if history is not None and mask.any():
            sims = 1.0 - 0.5 * np.abs(
                history.answered_question_topics[mask] - d_q[None, :]
            ).sum(axis=1)
            g_uq = float(sims.sum())
            e_uq = float((sims * history.answer_votes[mask]).sum())
        else:
            g_uq = 0.0
            e_uq = 0.0

        # Social features (xiii)-(xx).
        asker = thread.asker
        s_uv = self._tv_similarity(
            self._topics_discussed(user, tid), self._topics_discussed(asker, tid)
        )
        shared = self._thread_sets.get(user, set()) & self._thread_sets.get(
            asker, set()
        )
        h_uv = float(len(shared - {tid}))
        x = np.empty(self.spec.n_features)
        pos = 0

        def put(value: float) -> None:
            nonlocal pos
            x[pos] = value
            pos += 1

        def put_vec(vec: np.ndarray) -> None:
            nonlocal pos
            x[pos : pos + k] = vec
            pos += k

        put(n_answers)
        put(answer_ratio)
        put(votes_sum)
        put(median_rt)
        put_vec(d_u)
        put(info.votes)
        put(info.word_length)
        put(info.code_length)
        put_vec(d_q)
        put(s_uq)
        put(g_uq)
        put(e_uq)
        put(s_uv)
        put(h_uv)
        put(self._qa_closeness.get(user, 0.0))
        put(self._qa_betweenness.get(user, 0.0))
        put(resource_allocation_index(self.qa_graph, user, asker))
        put(self._dense_closeness.get(user, 0.0))
        put(self._dense_betweenness.get(user, 0.0))
        put(resource_allocation_index(self.dense_graph, user, asker))
        assert pos == self.spec.n_features
        return x

    def features_batch(
        self, pairs: Sequence[tuple[int, Thread]]
    ) -> np.ndarray:
        """x_uq vectors for many (user, question) pairs at once.

        Element-wise equivalent to calling :meth:`features` per pair,
        but per-question info is resolved once per distinct thread,
        per-user aggregates once per user (adjusted only for the pairs
        whose target thread the user actually answered), and the
        topic-similarity blocks are vectorized over whole pair blocks.
        """
        pairs = list(pairs)
        n = len(pairs)
        x = np.empty((n, self.spec.n_features))
        if n == 0:
            return x
        with perf.timer("features.batch"):
            self._features_batch_into(pairs, x)
        perf.incr("features.pairs_batched", n)
        return x

    def feature_matrix(
        self, pairs: list[tuple[int, Thread]]
    ) -> np.ndarray:
        """Stacked feature vectors for (user, thread) pairs."""
        return self.features_batch(pairs)

    # -- batch engine ---------------------------------------------------------

    def _features_batch_into(
        self, pairs: list[tuple[int, Thread]], x: np.ndarray
    ) -> None:
        k = self.topics.n_topics
        n = len(pairs)
        users = [u for u, _ in pairs]
        tids = [t.thread_id for _, t in pairs]
        askers = [t.asker for _, t in pairs]

        # Column offsets of the canonical FEATURE_ORDER layout (18 + 2K);
        # the scalar path's sequential `put` calls define the same order.
        c_n_answers, c_ratio, c_votes, c_median = 0, 1, 2, 3
        c_du = slice(4, 4 + k)
        c_qvotes, c_qword, c_qcode = 4 + k, 5 + k, 6 + k
        c_dq = slice(7 + k, 7 + 2 * k)
        (
            c_suq,
            c_guq,
            c_euq,
            c_suv,
            c_huv,
            c_qa_clo,
            c_qa_bet,
            c_qa_rai,
            c_dense_clo,
            c_dense_bet,
            c_dense_rai,
        ) = range(7 + 2 * k, 18 + 2 * k)
        assert c_dense_rai == self.spec.n_features - 1

        # Question features: resolve info once per distinct thread.
        info_row: dict[int, int] = {}
        q_scalars: list[tuple[float, float, float]] = []
        q_topic_rows: list[np.ndarray] = []
        for _, thread in pairs:
            tid = thread.thread_id
            if tid not in info_row:
                info = self._question_info_for(thread)
                info_row[tid] = len(q_scalars)
                q_scalars.append((info.votes, info.word_length, info.code_length))
                q_topic_rows.append(info.topics)
        q_scalar_arr = np.asarray(q_scalars)
        q_topic_arr = np.asarray(q_topic_rows).reshape(len(q_topic_rows), k)
        rows = np.fromiter((info_row[tid] for tid in tids), dtype=np.int64, count=n)
        x[:, c_qvotes] = q_scalar_arr[rows, 0]
        x[:, c_qword] = q_scalar_arr[rows, 1]
        x[:, c_qcode] = q_scalar_arr[rows, 2]
        dq_all = q_topic_arr[rows]
        x[:, c_dq] = dq_all

        # User + user-question features, flat across the whole batch.
        tbl = self._tables()
        uniq_users, inv = np.unique(
            np.asarray(users, dtype=np.int64), return_inverse=True
        )
        uniq_list = [int(u) for u in uniq_users]
        asked = np.array(
            [float(self._questions_asked.get(u, 0)) for u in uniq_list]
        )[inv]
        ui = np.array(
            [tbl.user_index.get(u, -1) for u in uniq_list], dtype=np.int64
        )[inv]

        # Empty-history defaults everywhere, then overwrite known users.
        d_u = np.empty((n, k))
        d_u[:] = self._uniform
        g = np.zeros(n)
        e = np.zeros(n)
        x[:, c_n_answers] = 0.0
        x[:, c_ratio] = 0.0
        x[:, c_votes] = 0.0
        x[:, c_median] = self._global_median_response

        kidx = np.flatnonzero(ui >= 0)
        if kidx.size:
            kui = ui[kidx]
            counts = tbl.n[kui]
            x[kidx, c_n_answers] = counts.astype(float)
            x[kidx, c_ratio] = counts / (1.0 + asked[kidx])
            x[kidx, c_votes] = tbl.votes_sum[kui]
            x[kidx, c_median] = tbl.median_rt[kui]
            d_u[kidx] = tbl.d_u[kui]

            # One flat TV-similarity pass over every (pair, history-row)
            # combination; segment i covers pair kidx[i]'s history block.
            seg = np.zeros(kidx.size + 1, dtype=np.int64)
            np.cumsum(counts, out=seg[1:])
            total = int(seg[-1])
            flat_pair = np.repeat(kidx, counts)
            flat_rows = (
                np.arange(total, dtype=np.int64)
                - np.repeat(seg[:-1], counts)
                + np.repeat(tbl.seg_start[kui], counts)
            )
            sims_flat = np.empty(total)
            chunk = max(1, self._SIM_CHUNK_ELEMENTS // max(1, k))
            for s in range(0, total, chunk):
                sl = slice(s, s + chunk)
                sims_flat[sl] = 1.0 - 0.5 * np.abs(
                    tbl.hist_topics[flat_rows[sl]] - dq_all[flat_pair[sl]]
                ).sum(axis=1)
            g[kidx] = np.add.reduceat(sims_flat, seg[:-1])
            e[kidx] = np.add.reduceat(
                sims_flat * tbl.hist_votes[flat_rows], seg[:-1]
            )

            # Leakage-guard adjustments for pairs whose target thread the
            # user answered: leave-one-row-out, vectorized over all of
            # them at once via `row_of`; duplicate-tid users fall back to
            # the scalar masked computation.
            excl_pos: list[int] = []
            excl_row: list[int] = []
            slow_pos: list[int] = []
            row_of = tbl.row_of
            dup = tbl.dup_users
            for pos, i in enumerate(kidx.tolist()):
                u = users[i]
                if u in dup:
                    slow_pos.append(pos)
                    continue
                row = row_of.get((u, tids[i]))
                if row is not None:
                    excl_pos.append(pos)
                    excl_row.append(row)
            if excl_pos:
                self._apply_exclusions(
                    tbl,
                    np.asarray(excl_pos, dtype=np.int64),
                    np.asarray(excl_row, dtype=np.int64),
                    kidx, ui, asked, seg, sims_flat, d_u, g, e, x,
                )
            for pos in slow_pos:
                self._slow_exclusion(
                    int(kidx[pos]), users, tids, asked, sims_flat,
                    seg[pos], seg[pos + 1], d_u, g, e, x,
                )
        x[:, c_du] = d_u
        x[:, c_guq] = g
        x[:, c_euq] = e
        x[:, c_suq] = 1.0 - 0.5 * np.abs(d_u - dq_all).sum(axis=1)

        # s_uv over the whole batch at once.
        t_user = self._discussed_matrix(users, tids)
        t_asker = self._discussed_matrix(askers, tids)
        x[:, c_suv] = 1.0 - 0.5 * np.abs(t_user - t_asker).sum(axis=1)

        # h_uv with the shared-thread intersection memoized per (u, v).
        empty: set[int] = set()
        shared_cache: dict[tuple[int, int], int] = {}
        for i in range(n):
            u, a, tid = users[i], askers[i], tids[i]
            key = (u, a)
            count = shared_cache.get(key)
            su = self._thread_sets.get(u, empty)
            sa = self._thread_sets.get(a, empty)
            if count is None:
                count = len(su & sa)
                shared_cache[key] = count
            x[i, c_huv] = float(count - (1 if (tid in su and tid in sa) else 0))

        # Centralities: one dict lookup per distinct user.
        for col, table in (
            (c_qa_clo, self._qa_closeness),
            (c_qa_bet, self._qa_betweenness),
            (c_dense_clo, self._dense_closeness),
            (c_dense_bet, self._dense_betweenness),
        ):
            x[:, col] = np.array(
                [table.get(u, 0.0) for u in uniq_list]
            )[inv]

        # Resource-allocation indices, memoized per (user, asker) across
        # both graphs and batched per graph for the cache misses.
        pair_keys = list(zip(users, askers))
        missing = list(dict.fromkeys(
            key for key in pair_keys if key not in self._rai_cache
        ))
        if missing:
            qa_vals = resource_allocation_indices(self.qa_graph, missing)
            dense_vals = resource_allocation_indices(self.dense_graph, missing)
            for key, qa_v, dense_v in zip(missing, qa_vals, dense_vals):
                self._rai_cache[key] = (qa_v, dense_v)
        rai = np.array([self._rai_cache[key] for key in pair_keys])
        x[:, c_qa_rai] = rai[:, 0]
        x[:, c_dense_rai] = rai[:, 1]

    def _apply_exclusions(
        self,
        tbl: _BatchTables,
        excl_pos: np.ndarray,
        excl_row: np.ndarray,
        kidx: np.ndarray,
        ui: np.ndarray,
        asked: np.ndarray,
        seg: np.ndarray,
        sims_flat: np.ndarray,
        d_u: np.ndarray,
        g: np.ndarray,
        e: np.ndarray,
        x: np.ndarray,
    ) -> None:
        """Leave-one-row-out adjustment for every pair whose target
        thread sits in the pair's user history, all users at once.

        ``excl_pos`` indexes into ``kidx``/``seg`` (known-user order),
        ``excl_row`` the matching rows of the concatenated history.
        """
        c_n_answers, c_ratio, c_votes, c_median = 0, 1, 2, 3
        ei = kidx[excl_pos]
        eui = ui[ei]
        m = tbl.n[eui] - 1
        delta = sims_flat[seg[excl_pos] + (excl_row - tbl.seg_start[eui])]
        d_votes = tbl.hist_votes[excl_row]
        nz = m > 0
        inz, mm = ei[nz], m[nz]
        if inz.size:
            x[inz, c_n_answers] = mm.astype(float)
            x[inz, c_ratio] = mm / (1.0 + asked[inz])
            x[inz, c_votes] = tbl.votes_sum[eui[nz]] - d_votes[nz]
            # Leave-one-out median by index arithmetic on the sorted
            # times: removing sorted position p shifts indices >= p
            # down by one.
            st = tbl.times_sorted
            off = tbl.seg_start[eui[nz]]
            p = tbl.time_rank[excl_row[nz]]
            med = np.empty(inz.size)
            odd = (mm % 2).astype(bool)
            if odd.any():
                mid = (mm[odd] - 1) // 2
                med[odd] = st[off[odd] + mid + (mid >= p[odd])]
            even = ~odd
            if even.any():
                lo = mm[even] // 2 - 1
                hi = mm[even] // 2
                med[even] = (
                    st[off[even] + lo + (lo >= p[even])]
                    + st[off[even] + hi + (hi >= p[even])]
                ) / 2.0
            x[inz, c_median] = med
            d_u[inz] = (
                tbl.topic_sum[eui[nz]] - tbl.hist_answer_topics[excl_row[nz]]
            ) / mm[:, None]
            g[inz] -= delta[nz]
            e[inz] -= delta[nz] * d_votes[nz]
        # m == 0: the lone history row is the target thread itself —
        # empty-history defaults, exactly as the scalar path.
        iz = ei[~nz]
        if iz.size:
            x[iz, c_n_answers] = 0.0
            x[iz, c_ratio] = 0.0
            x[iz, c_votes] = 0.0
            x[iz, c_median] = self._global_median_response
            d_u[iz] = self._uniform
            g[iz] = 0.0
            e[iz] = 0.0

    def _slow_exclusion(
        self,
        i: int,
        users: list[int],
        tids: list[int],
        asked: np.ndarray,
        sims_flat: np.ndarray,
        seg_lo: int,
        seg_hi: int,
        d_u: np.ndarray,
        g: np.ndarray,
        e: np.ndarray,
        x: np.ndarray,
    ) -> None:
        """Masked fallback for a pair whose user answered some thread
        more than once (pre-preprocessing data): mirrors the scalar
        path row for row."""
        c_n_answers, c_ratio, c_votes, c_median = 0, 1, 2, 3
        history = self._histories[users[i]]
        mask = history.answered_thread_ids != tids[i]
        if mask.all():
            return  # target thread not in history: base values stand
        if mask.any():
            votes_v = history.answer_votes
            row_sims = sims_flat[seg_lo:seg_hi][mask]
            x[i, c_n_answers] = float(mask.sum())
            x[i, c_ratio] = float(mask.sum()) / (1.0 + asked[i])
            x[i, c_votes] = float(votes_v[mask].sum())
            x[i, c_median] = float(np.median(history.response_times[mask]))
            d_u[i] = history.answer_topic_vectors[mask].mean(axis=0)
            g[i] = float(row_sims.sum())
            e[i] = float((row_sims * votes_v[mask]).sum())
        else:
            x[i, c_n_answers] = 0.0
            x[i, c_ratio] = 0.0
            x[i, c_votes] = 0.0
            x[i, c_median] = self._global_median_response
            d_u[i] = self._uniform
            g[i] = 0.0
            e[i] = 0.0

    def _discussed_matrix(
        self, entities: list[int], tids: list[int]
    ) -> np.ndarray:
        """Rows of ``_topics_discussed(entity, tid)`` for a pair block.

        The no-exclusion vector is cached per entity across batches
        (extractor state is immutable); the exclusion-adjusted vectors
        — every asker hits this for their own thread — are memoized per
        (entity, tid) within the batch.
        """
        k = self.topics.n_topics
        out = np.empty((len(entities), k))
        base = self._discussed_base
        adjusted: dict[tuple[int, int], np.ndarray] = {}
        for i, (u, tid) in enumerate(zip(entities, tids)):
            per_thread = self._discussed_by_thread.get(u)
            if per_thread is not None and tid in per_thread:
                key = (u, tid)
                vec = adjusted.get(key)
                if vec is None:
                    vec = self._topics_discussed(u, tid)
                    adjusted[key] = vec
                out[i] = vec
                continue
            vec = base.get(u)
            if vec is None:
                vec = self._topics_discussed(u, _NO_THREAD)
                base[u] = vec
            out[i] = vec
        return out
