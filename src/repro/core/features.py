"""The paper's 20 user/question/user-question/social features (Sec. II-B).

A :class:`FeatureExtractor` is built once over a *feature window* — the
question set ``F(q)`` the paper computes features on — and then produces
the vector ``x_uq`` for any (user, question) pair.

Leakage guard: when the target thread itself lies inside the window,
all user-side aggregates (answer counts, votes, response times, topic
histories, thread co-occurrence) exclude that thread's contributions.
Without this, the "answers provided" feature would directly encode the
a_uq label being predicted.  The paper's ``F(q) = {q' <= q}`` is
ambiguous on this point; excluding the target thread is the sound
reading.  Graph centralities are computed once over the whole window
(a single thread's edges have negligible effect on global centrality).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..forum.dataset import ForumDataset
from ..forum.models import Thread
from ..graphs import (
    UndirectedGraph,
    betweenness_centrality,
    build_dense_graph,
    build_qa_graph,
    closeness_centrality,
    resource_allocation_index,
)
from ..topics.tokenizer import split_text_and_code
from .featurespec import FeatureSpec
from .topic_context import TopicModelContext

__all__ = ["FeatureExtractor", "QuestionInfo"]


@dataclass(frozen=True)
class QuestionInfo:
    """Per-question quantities: votes, lengths and topic distribution."""

    votes: float
    word_length: float
    code_length: float
    topics: np.ndarray


@dataclass
class _UserHistory:
    """A user's answering history inside the feature window."""

    answered_thread_ids: np.ndarray  # (n_i,)
    answered_question_topics: np.ndarray  # (n_i, K)
    answer_votes: np.ndarray  # (n_i,)
    response_times: np.ndarray  # (n_i,)
    answer_topic_vectors: np.ndarray  # (n_i, K) topics of the answers themselves


class FeatureExtractor:
    """Computes x_uq vectors over a fixed feature window."""

    def __init__(
        self,
        window: ForumDataset,
        topics: TopicModelContext,
        *,
        betweenness_sample_size: int | None = None,
        seed: int = 0,
    ):
        self.window = window
        self.topics = topics
        self.spec = FeatureSpec(topics.n_topics)
        self._uniform = np.full(topics.n_topics, 1.0 / topics.n_topics)
        self._build_question_info()
        self._build_user_histories()
        self._build_discussion_topics()
        self._build_graphs(betweenness_sample_size, seed)

    # -- precomputation -------------------------------------------------------

    def _build_question_info(self) -> None:
        self._question_info: dict[int, QuestionInfo] = {}
        for thread in self.window:
            self._question_info[thread.thread_id] = self._info_from_thread(thread)

    def _info_from_thread(self, thread: Thread) -> QuestionInfo:
        split = split_text_and_code(thread.question.body)
        return QuestionInfo(
            votes=float(thread.question.votes),
            word_length=float(split.word_length),
            code_length=float(split.code_length),
            topics=self.topics.post_topics(thread.question),
        )

    def _build_user_histories(self) -> None:
        k = self.topics.n_topics
        raw: dict[int, list[tuple[int, np.ndarray, float, float, np.ndarray]]] = {}
        self._questions_asked: dict[int, int] = {}
        all_response_times: list[float] = []
        for thread in self.window:
            q_topics = self._question_info[thread.thread_id].topics
            self._questions_asked[thread.asker] = (
                self._questions_asked.get(thread.asker, 0) + 1
            )
            for answer in thread.answers:
                rt = answer.timestamp - thread.created_at
                all_response_times.append(rt)
                raw.setdefault(answer.author, []).append(
                    (
                        thread.thread_id,
                        q_topics,
                        float(answer.votes),
                        rt,
                        self.topics.post_topics(answer),
                    )
                )
        self._histories: dict[int, _UserHistory] = {}
        for user, items in raw.items():
            self._histories[user] = _UserHistory(
                answered_thread_ids=np.array([i[0] for i in items], dtype=int),
                answered_question_topics=np.array([i[1] for i in items]).reshape(
                    len(items), k
                ),
                answer_votes=np.array([i[2] for i in items]),
                response_times=np.array([i[3] for i in items]),
                answer_topic_vectors=np.array([i[4] for i in items]).reshape(
                    len(items), k
                ),
            )
        self._global_median_response = (
            float(np.median(all_response_times)) if all_response_times else 1.0
        )

    def _build_discussion_topics(self) -> None:
        """Per-user discussed-topic sums with per-thread exclusion support."""
        k = self.topics.n_topics
        self._discussed_sum: dict[int, np.ndarray] = {}
        self._discussed_count: dict[int, int] = {}
        self._discussed_by_thread: dict[int, dict[int, tuple[np.ndarray, int]]] = {}
        for thread in self.window:
            for post in thread.posts:
                d = self.topics.post_topics(post)
                u = post.author
                self._discussed_sum[u] = self._discussed_sum.get(u, np.zeros(k)) + d
                self._discussed_count[u] = self._discussed_count.get(u, 0) + 1
                per_thread = self._discussed_by_thread.setdefault(u, {})
                prev_sum, prev_count = per_thread.get(
                    thread.thread_id, (np.zeros(k), 0)
                )
                per_thread[thread.thread_id] = (prev_sum + d, prev_count + 1)
        self._thread_sets: dict[int, set[int]] = {}
        for thread in self.window:
            for u in [thread.asker, *thread.answerers]:
                self._thread_sets.setdefault(u, set()).add(thread.thread_id)

    def _build_graphs(
        self, betweenness_sample_size: int | None, seed: int
    ) -> None:
        tuples = self.window.participant_tuples()
        self.qa_graph: UndirectedGraph = build_qa_graph(tuples)
        self.dense_graph: UndirectedGraph = build_dense_graph(tuples)
        self._qa_closeness = closeness_centrality(self.qa_graph)
        self._dense_closeness = closeness_centrality(self.dense_graph)
        self._qa_betweenness = betweenness_centrality(
            self.qa_graph, sample_sources=betweenness_sample_size, seed=seed
        )
        self._dense_betweenness = betweenness_centrality(
            self.dense_graph, sample_sources=betweenness_sample_size, seed=seed
        )

    # -- per-feature computation ----------------------------------------------

    def _question_info_for(self, thread: Thread) -> QuestionInfo:
        info = self._question_info.get(thread.thread_id)
        if info is None:
            info = self._info_from_thread(thread)
            self._question_info[thread.thread_id] = info
        return info

    def _history_view(self, user: int, exclude_thread: int):
        """(mask, history) with the target thread's rows masked out."""
        history = self._histories.get(user)
        if history is None:
            return None, None
        mask = history.answered_thread_ids != exclude_thread
        return mask, history

    def _topics_discussed(self, user: int, exclude_thread: int) -> np.ndarray:
        total = self._discussed_sum.get(user)
        if total is None:
            return self._uniform
        count = self._discussed_count[user]
        excl = self._discussed_by_thread.get(user, {}).get(exclude_thread)
        if excl is not None:
            total = total - excl[0]
            count -= excl[1]
        if count <= 0:
            return self._uniform
        return total / count

    @staticmethod
    def _tv_similarity(p: np.ndarray, q: np.ndarray) -> float:
        return float(1.0 - 0.5 * np.abs(p - q).sum())

    # -- public API ----------------------------------------------------------------

    def features(self, user: int, thread: Thread) -> np.ndarray:
        """The full x_uq vector for one (user, question) pair."""
        k = self.topics.n_topics
        tid = thread.thread_id
        info = self._question_info_for(thread)
        mask, history = self._history_view(user, tid)

        # User features (i)-(v), excluding the target thread.
        if history is not None and mask.any():
            n_answers = float(mask.sum())
            votes_sum = float(history.answer_votes[mask].sum())
            median_rt = float(np.median(history.response_times[mask]))
            d_u = history.answer_topic_vectors[mask].mean(axis=0)
        else:
            n_answers = 0.0
            votes_sum = 0.0
            median_rt = self._global_median_response
            d_u = self._uniform
        asked = self._questions_asked.get(user, 0)
        answer_ratio = n_answers / (1.0 + asked)

        # Question features (vi)-(ix).
        d_q = info.topics

        # User-question features (x)-(xii).
        s_uq = self._tv_similarity(d_u, d_q)
        if history is not None and mask.any():
            sims = 1.0 - 0.5 * np.abs(
                history.answered_question_topics[mask] - d_q[None, :]
            ).sum(axis=1)
            g_uq = float(sims.sum())
            e_uq = float((sims * history.answer_votes[mask]).sum())
        else:
            g_uq = 0.0
            e_uq = 0.0

        # Social features (xiii)-(xx).
        asker = thread.asker
        s_uv = self._tv_similarity(
            self._topics_discussed(user, tid), self._topics_discussed(asker, tid)
        )
        shared = self._thread_sets.get(user, set()) & self._thread_sets.get(
            asker, set()
        )
        h_uv = float(len(shared - {tid}))
        x = np.empty(self.spec.n_features)
        pos = 0

        def put(value: float) -> None:
            nonlocal pos
            x[pos] = value
            pos += 1

        def put_vec(vec: np.ndarray) -> None:
            nonlocal pos
            x[pos : pos + k] = vec
            pos += k

        put(n_answers)
        put(answer_ratio)
        put(votes_sum)
        put(median_rt)
        put_vec(d_u)
        put(info.votes)
        put(info.word_length)
        put(info.code_length)
        put_vec(d_q)
        put(s_uq)
        put(g_uq)
        put(e_uq)
        put(s_uv)
        put(h_uv)
        put(self._qa_closeness.get(user, 0.0))
        put(self._qa_betweenness.get(user, 0.0))
        put(resource_allocation_index(self.qa_graph, user, asker))
        put(self._dense_closeness.get(user, 0.0))
        put(self._dense_betweenness.get(user, 0.0))
        put(resource_allocation_index(self.dense_graph, user, asker))
        assert pos == self.spec.n_features
        return x

    def feature_matrix(
        self, pairs: list[tuple[int, Thread]]
    ) -> np.ndarray:
        """Stacked feature vectors for (user, thread) pairs."""
        if not pairs:
            return np.empty((0, self.spec.n_features))
        return np.vstack([self.features(u, t) for u, t in pairs])
