"""The paper's primary contribution: features, predictors, evaluation, routing."""

from .abtest import ABTestConfig, ABTestResult, ABTestSimulator, GroupOutcome
from .answer_model import AnswerModel
from .batch_routing import BatchAssignment, route_batch, route_batch_greedy
from .coldstart import ColdStartBucket, cold_start_report
from .columnar import AnswerLog, EventStore
from .dtypes import ID_DTYPE, TIME_DTYPE, VALUE_DTYPE, IdOverflowError
from .explain import (
    FeatureContribution,
    PredictionExplanation,
    explain_prediction,
)
from .evaluation import (
    MetricSummary,
    PairDataset,
    Table1Result,
    TaskResult,
    build_extractor,
    build_pair_dataset,
    run_feature_importance,
    run_group_importance_by_history,
    run_table1,
    run_topic_sweep,
)
from .features import FeatureExtractor, QuestionInfo
from .featurespec import FEATURE_GROUPS, FEATURE_ORDER, FeatureSpec
from .online import OnlineConfig, OnlineRecommendationLoop, OnlineReport
from .persistence import (
    CheckpointCorruptError,
    CheckpointLoadResult,
    WindowMismatchError,
    load_checkpoint,
    load_predictor,
    save_predictor,
    write_checkpoint,
)
from .pipeline import ForumPredictor, Prediction, PredictorConfig
from .resilience import (
    DegradationRecord,
    DegradationReport,
    FaultInjector,
    FaultPlan,
    FaultRecord,
    NonFiniteFeatureError,
    ResilienceConfig,
    StreamGuard,
)
from .retrieval import (
    CandidateRetriever,
    RetrievalConfig,
    candidate_recall,
    reciprocal_rank_fusion,
)
from .routing import (
    QuestionRouter,
    RoutingResult,
    UserLoadTracker,
    finish_recommendation,
    solve_routing_lp,
)
from .serving import (
    AdmissionConfig,
    BatchPolicy,
    CostModel,
    RecommendationService,
    RouteResponse,
    ServiceConfig,
    ServingCore,
    SubmitResult,
    VirtualClock,
    run_load,
)
from .sharding import ShardedRouter, ShardPlan
from .state import ForumState, FrozenState
from .timing_model import TimingModel
from .tradeoff import (
    FrontierPoint,
    TradeoffFrontier,
    pareto_front,
    sweep_tradeoff,
)
from .topic_context import TopicModelContext
from .vote_model import VoteModel

__all__ = [
    "ABTestConfig",
    "ABTestResult",
    "ABTestSimulator",
    "GroupOutcome",
    "load_predictor",
    "save_predictor",
    "WindowMismatchError",
    "CheckpointCorruptError",
    "CheckpointLoadResult",
    "load_checkpoint",
    "write_checkpoint",
    "OnlineConfig",
    "OnlineRecommendationLoop",
    "OnlineReport",
    "DegradationRecord",
    "DegradationReport",
    "FaultInjector",
    "FaultPlan",
    "FaultRecord",
    "NonFiniteFeatureError",
    "ResilienceConfig",
    "StreamGuard",
    "AnswerModel",
    "BatchAssignment",
    "route_batch",
    "route_batch_greedy",
    "ColdStartBucket",
    "cold_start_report",
    "FeatureContribution",
    "PredictionExplanation",
    "explain_prediction",
    "MetricSummary",
    "PairDataset",
    "Table1Result",
    "TaskResult",
    "build_extractor",
    "build_pair_dataset",
    "run_feature_importance",
    "run_group_importance_by_history",
    "run_table1",
    "run_topic_sweep",
    "FeatureExtractor",
    "QuestionInfo",
    "FEATURE_GROUPS",
    "FEATURE_ORDER",
    "FeatureSpec",
    "ForumPredictor",
    "Prediction",
    "PredictorConfig",
    "CandidateRetriever",
    "RetrievalConfig",
    "candidate_recall",
    "reciprocal_rank_fusion",
    "QuestionRouter",
    "RoutingResult",
    "UserLoadTracker",
    "finish_recommendation",
    "solve_routing_lp",
    "AnswerLog",
    "EventStore",
    "ID_DTYPE",
    "TIME_DTYPE",
    "VALUE_DTYPE",
    "IdOverflowError",
    "AdmissionConfig",
    "BatchPolicy",
    "CostModel",
    "RecommendationService",
    "RouteResponse",
    "ServiceConfig",
    "ServingCore",
    "SubmitResult",
    "VirtualClock",
    "run_load",
    "ShardedRouter",
    "ShardPlan",
    "ForumState",
    "FrozenState",
    "TimingModel",
    "FrontierPoint",
    "TradeoffFrontier",
    "pareto_front",
    "sweep_tradeoff",
    "TopicModelContext",
    "VoteModel",
]
