"""Feature vector layout for the paper's 20 features (Sec. II-B).

Two of the 20 features are length-K topic distributions, so the vector
dimension is ``18 + 2K``.  This module owns the canonical ordering,
names and the four group definitions (user, question, user-question,
social) used by the ablation experiments of Figs. 6 and 7.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["FeatureSpec", "FEATURE_GROUPS", "FEATURE_ORDER"]

# Feature name -> (group, is_topic_distribution), in canonical order.
FEATURE_ORDER: tuple[tuple[str, str, bool], ...] = (
    # User features (i)-(v)
    ("answers_provided", "user", False),  # a_u
    ("answer_ratio", "user", False),  # o_u
    ("net_answer_votes", "user", False),  # v_u
    ("median_response_time", "user", False),  # r_u
    ("topics_answered", "user", True),  # d_u (K columns)
    # Question features (vi)-(ix)
    ("net_question_votes", "question", False),  # v_q
    ("question_word_length", "question", False),  # x_q
    ("question_code_length", "question", False),  # c_q
    ("topics_asked", "question", True),  # d_q (K columns)
    # User-question features (x)-(xii)
    ("user_question_topic_similarity", "user_question", False),  # s_uq
    ("topic_weighted_questions_answered", "user_question", False),  # g_uq
    ("topic_weighted_answer_votes", "user_question", False),  # e_uq
    # Social features (xiii)-(xx)
    ("user_user_topic_similarity", "social", False),  # s_uv
    ("thread_cooccurrence", "social", False),  # h_uv
    ("qa_closeness", "social", False),  # l^QA_u
    ("qa_betweenness", "social", False),  # b^QA_u
    ("qa_resource_allocation", "social", False),  # Re^QA_uv
    ("dense_closeness", "social", False),  # l^D_u
    ("dense_betweenness", "social", False),  # b^D_u
    ("dense_resource_allocation", "social", False),  # Re^D_uv
)

FEATURE_GROUPS: tuple[str, ...] = ("user", "question", "user_question", "social")


@dataclass(frozen=True)
class FeatureSpec:
    """Column layout of the feature vector for a given topic count K."""

    n_topics: int

    def __post_init__(self):
        if self.n_topics < 1:
            raise ValueError("n_topics must be >= 1")

    @property
    def n_features(self) -> int:
        """Total column count, 18 + 2K."""
        return 18 + 2 * self.n_topics

    @property
    def feature_names(self) -> list[str]:
        """The 20 feature names in canonical order."""
        return [name for name, _, _ in FEATURE_ORDER]

    def column_names(self) -> list[str]:
        """One name per column; topic distributions expand to K columns."""
        names: list[str] = []
        for name, _, is_topic in FEATURE_ORDER:
            if is_topic:
                names.extend(f"{name}[{k}]" for k in range(self.n_topics))
            else:
                names.append(name)
        return names

    def columns_of(self, feature: str) -> np.ndarray:
        """Column indices of one named feature (K indices if a distribution)."""
        start = 0
        for name, _, is_topic in FEATURE_ORDER:
            width = self.n_topics if is_topic else 1
            if name == feature:
                return np.arange(start, start + width)
            start += width
        known = ", ".join(self.feature_names)
        raise ValueError(f"unknown feature {feature!r}; known: {known}")

    def columns_of_group(self, group: str) -> np.ndarray:
        """All column indices belonging to one feature group."""
        if group not in FEATURE_GROUPS:
            raise ValueError(
                f"unknown group {group!r}; known: {', '.join(FEATURE_GROUPS)}"
            )
        cols: list[np.ndarray] = []
        for name, grp, _ in FEATURE_ORDER:
            if grp == group:
                cols.append(self.columns_of(name))
        return np.concatenate(cols)

    def group_of(self, feature: str) -> str:
        """The group a feature belongs to."""
        for name, grp, _ in FEATURE_ORDER:
            if name == feature:
                return grp
        raise ValueError(f"unknown feature {feature!r}")

    def mask_without(
        self, *, features: tuple[str, ...] = (), groups: tuple[str, ...] = ()
    ) -> np.ndarray:
        """Boolean keep-mask over columns with features/groups excluded.

        Used by the leave-one-out experiments: Fig. 6 drops single
        features, Fig. 7 drops whole groups.
        """
        keep = np.ones(self.n_features, dtype=bool)
        for feature in features:
            keep[self.columns_of(feature)] = False
        for group in groups:
            keep[self.columns_of_group(group)] = False
        return keep
