"""A/B-testing simulator for the question recommendation system.

The paper's stated future work (Sec. VI): deploy the recommender on a
live forum and "compare the net votes and response times observed in a
group with the system in use to one with it not".  The synthetic forum
makes that experiment runnable offline, because its ground truth can
answer counterfactual queries: *what would the routed user's answer
have looked like?*

Protocol:

1. questions in the test window are split at random into treatment and
   control groups;
2. **control** keeps its organic outcome — the first answer actually
   observed in the dataset;
3. **treatment** routes the question through the Sec.-V LP; with
   probability ``acceptance_rate`` the recommended user answers, with
   votes and delay drawn from the *generator's own* outcome model for
   that user (the counterfactual); otherwise the question falls back to
   its organic outcome.

The result compares mean/median net votes and response times between
groups, which is exactly the measurement the paper proposes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..forum.dataset import ForumDataset
from ..forum.generator import (
    SyntheticForum,
    draw_answer_delay,
    draw_answer_votes,
)
from .routing import QuestionRouter

__all__ = ["ABTestConfig", "GroupOutcome", "ABTestResult", "ABTestSimulator"]


@dataclass(frozen=True)
class ABTestConfig:
    """Experiment knobs."""

    treatment_fraction: float = 0.5
    acceptance_rate: float = 0.8  # P(recommended user actually answers)
    tradeoff: float = 0.2  # the router's lambda
    seed: int = 0

    def __post_init__(self):
        if not 0.0 < self.treatment_fraction < 1.0:
            raise ValueError("treatment_fraction must be in (0, 1)")
        if not 0.0 <= self.acceptance_rate <= 1.0:
            raise ValueError("acceptance_rate must be in [0, 1]")


@dataclass(frozen=True)
class GroupOutcome:
    """Realized outcomes of one experiment arm."""

    n_questions: int
    mean_votes: float
    mean_response_time: float
    median_response_time: float

    @classmethod
    def from_outcomes(cls, outcomes: list[tuple[float, float]]) -> "GroupOutcome":
        if not outcomes:
            return cls(0, float("nan"), float("nan"), float("nan"))
        votes = np.array([v for v, _ in outcomes])
        times = np.array([t for _, t in outcomes])
        return cls(
            n_questions=len(outcomes),
            mean_votes=float(votes.mean()),
            mean_response_time=float(times.mean()),
            median_response_time=float(np.median(times)),
        )


@dataclass(frozen=True)
class ABTestResult:
    """Treatment vs. control comparison."""

    treatment: GroupOutcome
    control: GroupOutcome
    n_routed: int  # treatment questions where the router produced a pick
    n_accepted: int  # ... where the recommended user answered

    @property
    def vote_lift(self) -> float:
        """Treatment minus control mean votes."""
        return self.treatment.mean_votes - self.control.mean_votes

    @property
    def response_time_reduction(self) -> float:
        """Control minus treatment mean response time (positive = faster)."""
        return (
            self.control.mean_response_time - self.treatment.mean_response_time
        )


class ABTestSimulator:
    """Runs the paper's proposed A/B test on the synthetic forum."""

    def __init__(
        self,
        forum: SyntheticForum,
        router: QuestionRouter,
        candidates: list[int],
        config: ABTestConfig | None = None,
    ):
        if not candidates:
            raise ValueError("need a non-empty candidate pool")
        self.forum = forum
        self.router = router
        self.candidates = candidates
        self.config = config or ABTestConfig()

    def _organic_outcome(self, thread) -> tuple[float, float] | None:
        """(votes, response time) of the organically first answer."""
        if not thread.answers:
            return None
        first = thread.answers[0]
        return float(first.votes), float(first.timestamp - thread.created_at)

    def _counterfactual_outcome(
        self, user: int, thread, rng: np.random.Generator
    ) -> tuple[float, float]:
        """Outcome had ``user`` answered, per the generator's ground truth."""
        mixture = self.forum.question_topics[thread.thread_id]
        match = float(self.forum.user_interests[user] @ mixture)
        votes = draw_answer_votes(
            float(self.forum.user_expertise[user]),
            match,
            thread.question.votes,
            rng,
        )
        delay = draw_answer_delay(
            float(self.forum.user_median_delay[user]), match, rng
        )
        return float(votes), float(delay)

    def run(
        self,
        test_questions: ForumDataset,
        *,
        recent_load: dict[int, int] | None = None,
    ) -> ABTestResult:
        """Run the experiment over the given question set."""
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        treatment_outcomes: list[tuple[float, float]] = []
        control_outcomes: list[tuple[float, float]] = []
        n_routed = 0
        n_accepted = 0
        for thread in test_questions:
            organic = self._organic_outcome(thread)
            if organic is None:
                continue  # unanswered organically; outside both measurements
            if rng.uniform() >= cfg.treatment_fraction:
                control_outcomes.append(organic)
                continue
            result = self.router.recommend(
                thread,
                self.candidates,
                tradeoff=cfg.tradeoff,
                recent_load=recent_load,
            )
            if result is None:
                treatment_outcomes.append(organic)
                continue
            n_routed += 1
            if rng.uniform() < cfg.acceptance_rate:
                n_accepted += 1
                user = result.draw(rng)
                treatment_outcomes.append(
                    self._counterfactual_outcome(user, thread, rng)
                )
            else:
                treatment_outcomes.append(organic)
        return ABTestResult(
            treatment=GroupOutcome.from_outcomes(treatment_outcomes),
            control=GroupOutcome.from_outcomes(control_outcomes),
            n_routed=n_routed,
            n_accepted=n_accepted,
        )
