"""Concurrent load harness for the async serving stack.

Replays a :func:`~repro.forum.traffic.generate_traffic` schedule
against a :class:`~repro.core.serving.service.RecommendationService`
under the :class:`~repro.core.serving.clock.VirtualClock`: every
request becomes its own task that sleeps until its arrival instant and
then submits, so thousands of askers genuinely contend for the
admission queues and the micro-batcher at simulated full speed.

Latency (p50/p95/p99) is measured on the *virtual* axis — arrival to
response under the cost model — and is therefore bit-reproducible for
a given seed.  Throughput is measured on the *real* axis (requests
completed per wall-clock second of the whole run), which is the number
a perf table wants.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field

from .clock import VirtualClock
from .service import RecommendationService

__all__ = ["LoadReport", "run_load"]


@dataclass
class LoadReport:
    """Everything one load run produced, ready for a bench record."""

    n_requests: int = 0
    n_queries: int = 0
    n_events: int = 0
    # Responses by status, e.g. {"ok": 950, "rejected": 30, ...};
    # queries and events keep separate tallies.
    query_statuses: dict[str, int] = field(default_factory=dict)
    event_statuses: dict[str, int] = field(default_factory=dict)
    n_degraded: int = 0
    virtual_duration_s: float = 0.0
    wall_s: float = 0.0
    metrics: dict = field(default_factory=dict)
    health: dict = field(default_factory=dict)
    responses: list = field(default_factory=list)  # schedule order

    @property
    def requests_per_wall_s(self) -> float:
        return self.n_requests / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def n_rejected(self) -> int:
        return self.query_statuses.get("rejected", 0) + self.event_statuses.get(
            "rejected", 0
        )

    def summary(self) -> dict:
        """JSON-ready digest (drops the raw response objects)."""
        return {
            "n_requests": self.n_requests,
            "n_queries": self.n_queries,
            "n_events": self.n_events,
            "query_statuses": dict(self.query_statuses),
            "event_statuses": dict(self.event_statuses),
            "n_degraded": self.n_degraded,
            "n_rejected": self.n_rejected,
            "virtual_duration_s": round(self.virtual_duration_s, 6),
            "wall_s": round(self.wall_s, 6),
            "requests_per_wall_s": round(self.requests_per_wall_s, 3),
            "metrics": self.metrics,
            "health": self.health,
        }


def run_load(
    service: RecommendationService,
    requests: list,
    *,
    clock: VirtualClock | None = None,
    settle_s: float = 5.0,
    close_core: bool = False,
) -> LoadReport:
    """Drive the full schedule through the service; block until done.

    ``requests`` is a list of
    :class:`~repro.forum.traffic.TrafficRequest`; each is submitted at
    its ``arrival_s`` on the virtual clock.  ``settle_s`` of extra
    virtual time lets queued work drain before the service stops.  The
    run is deterministic: same service config + same schedule produce
    the same responses, admissions and latency histograms.

    ``close_core=True`` also closes the serving core (shard workers,
    shm blocks) after the run — callers that reuse a warm core across
    runs keep the default and close it themselves.
    """
    clock = clock or VirtualClock()

    async def fire(request):
        loop = asyncio.get_running_loop()
        delay = request.arrival_s - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        if request.kind == "query":
            return await service.route_question(request.thread)
        return await service.submit_event(request.thread)

    async def main():
        await service.start()
        try:
            results = await asyncio.gather(
                *(fire(request) for request in requests)
            )
            if settle_s > 0:
                await asyncio.sleep(settle_s)
        finally:
            await service.stop()
        return results

    wall_start = time.perf_counter()
    try:
        responses = clock.run(main())
        wall_s = time.perf_counter() - wall_start
        # Snapshot metrics while the core is still live: closing tears
        # down the shard fan-out, and its telemetry goes with it.
        report = LoadReport(
            n_requests=len(requests),
            virtual_duration_s=clock.now(),
            wall_s=wall_s,
            responses=list(responses),
            metrics=service.metrics(),
            health=service.health(),
        )
    finally:
        if close_core:
            service.core.close()
    for request, response in zip(requests, responses):
        if request.kind == "query":
            report.n_queries += 1
            tally = report.query_statuses
        else:
            report.n_events += 1
            tally = report.event_statuses
        tally[response.status] = tally.get(response.status, 0) + 1
        if response.degraded:
            report.n_degraded += 1
    return report
