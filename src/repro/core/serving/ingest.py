"""Bounded-queue ingestion and admission control for the serving stack.

The front door of :class:`~repro.core.serving.service.RecommendationService`:
every event submission and question query passes through an
:class:`IngestGate` before any compute is spent on it.  The gate keeps
one bounded queue per traffic class (events vs. queries), so a flash
crowd of questions cannot starve event ingestion and vice versa, and
applies one of two overflow policies per class:

* ``"reject"`` (default) — load shedding: a submission that finds its
  queue full is turned away immediately with a ``rejected`` response.
  The caller gets an answer in O(1) regardless of overload, which keeps
  tail latency of *admitted* work bounded by queue depth x service
  rate.
* ``"block"`` — backpressure: the submitter waits (in virtual or real
  time) until the queue drains.  Total work is preserved but arrival
  bursts translate into submitter-side latency.

Validation and repair of event *content* is not the gate's job: that is
the :class:`~repro.core.resilience.StreamGuard` quarantine gate, which
runs downstream on the single consumer so its stream-clock invariants
see events in exactly the order the queue delivers them.  The gate
sheds by *volume*, the guard degrades by *content*; composed, a faulty
event inside an admitted burst still produces a response — degraded,
not dropped.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass

from ... import perf

__all__ = ["AdmissionConfig", "AdmissionError", "IngestGate"]

_OVERFLOW_POLICIES = ("reject", "block")


class AdmissionError(RuntimeError):
    """Raised when submitting to a gate that has been closed."""


@dataclass(frozen=True)
class AdmissionConfig:
    """Bounds and overflow policies of the ingestion queues."""

    max_pending_events: int = 4096
    max_pending_queries: int = 512
    event_overflow: str = "reject"
    query_overflow: str = "reject"

    def __post_init__(self):
        if self.max_pending_events < 1 or self.max_pending_queries < 1:
            raise ValueError("queue bounds must be >= 1")
        for name in ("event_overflow", "query_overflow"):
            if getattr(self, name) not in _OVERFLOW_POLICIES:
                raise ValueError(
                    f"{name} must be one of {_OVERFLOW_POLICIES}"
                )


class IngestGate:
    """Admission-controlled pair of bounded submission queues.

    Items are opaque to the gate (the service enqueues
    ``(payload, future)`` pairs).  ``offer_event``/``offer_query``
    return ``True`` when the item was admitted and ``False`` when it
    was shed under the ``"reject"`` policy; under ``"block"`` they only
    return after space was found.  Consumers read :attr:`events` and
    :attr:`queries` directly — single-consumer FIFO order is exactly
    submission order, which the StreamGuard downstream relies on.
    """

    def __init__(self, config: AdmissionConfig | None = None):
        self.config = config or AdmissionConfig()
        self.events: asyncio.Queue = asyncio.Queue(
            maxsize=self.config.max_pending_events
        )
        self.queries: asyncio.Queue = asyncio.Queue(
            maxsize=self.config.max_pending_queries
        )
        self.closed = False
        self.n_events_admitted = 0
        self.n_events_rejected = 0
        self.n_queries_admitted = 0
        self.n_queries_rejected = 0

    async def offer_event(self, item) -> bool:
        admitted = await self._offer(
            self.events, item, self.config.event_overflow
        )
        if admitted:
            self.n_events_admitted += 1
            perf.gauge_max("serving.peak_pending_events", self.events.qsize())
        else:
            self.n_events_rejected += 1
            perf.incr("serving.events_rejected")
        return admitted

    async def offer_query(self, item) -> bool:
        admitted = await self._offer(
            self.queries, item, self.config.query_overflow
        )
        if admitted:
            self.n_queries_admitted += 1
            perf.gauge_max(
                "serving.peak_pending_queries", self.queries.qsize()
            )
        else:
            self.n_queries_rejected += 1
            perf.incr("serving.queries_rejected")
        return admitted

    async def _offer(self, queue: asyncio.Queue, item, overflow: str) -> bool:
        if self.closed:
            raise AdmissionError("ingest gate is closed")
        if queue.full():
            if overflow == "reject":
                return False
            # Backpressure: wait for space; the wait is the admission
            # phase of the submitter's end-to-end latency.
            loop = asyncio.get_running_loop()
            started = loop.time()
            await queue.put(item)
            perf.record_latency(
                "serving.admission_wait", loop.time() - started
            )
            return True
        queue.put_nowait(item)
        return True

    def close(self) -> None:
        """Refuse all further submissions (pending items still drain)."""
        self.closed = True

    @property
    def pending_events(self) -> int:
        return self.events.qsize()

    @property
    def pending_queries(self) -> int:
        return self.queries.qsize()
