"""Deterministic virtual time for the async serving stack.

Load tests and the serving equivalence tests must be bit-reproducible:
the same seed has to produce the same admission decisions, the same
batch boundaries and the same latency percentiles on any machine.  Real
wall-clock cannot provide that, so the whole async stack runs on a
*virtual clock*: an asyncio event loop whose ``time()`` is simulated
and that never blocks in ``select`` — whenever every task is waiting on
a timer, the clock jumps straight to the earliest deadline.

The trick is the standard one (known from ``aiotools``/``looptime``):
wrap the loop's selector so a blocking ``select(timeout)`` becomes a
non-blocking poll plus a clock advance of ``timeout``.  Everything
built on ``loop.time()`` — ``asyncio.sleep``, ``call_later``, batcher
deadlines, latency measurement — then runs in simulated seconds while
consuming only as much real time as the Python under it needs.

The simulation is closed (no external I/O), so a state where every
task waits on a bare future with no timer pending is a deadlock; the
clock raises instead of spinning forever.
"""

from __future__ import annotations

import asyncio
from typing import Any, Coroutine

__all__ = ["VirtualClock"]


class VirtualClock:
    """Simulated-seconds clock that can drive an asyncio program.

    ``run(coro)`` executes the coroutine on a private event loop whose
    notion of time is this clock: ``asyncio.sleep(dt)`` returns
    immediately in real time but advances :meth:`now` by ``dt``.
    Scheduling is single-threaded and I/O-free, hence deterministic.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def run(self, coro: Coroutine[Any, Any, Any]):
        """Run ``coro`` to completion under virtual time; return its result."""
        loop = asyncio.SelectorEventLoop()
        selector = loop._selector  # the patch point; stable since 3.8
        real_select = selector.select

        def virtual_select(timeout=None):
            events = real_select(0)
            if events or timeout == 0:
                return events
            if timeout is None:
                # No ready callback, no timer: nothing can ever wake us.
                raise RuntimeError(
                    "virtual-clock deadlock: every task is blocked and "
                    "no timer is scheduled"
                )
            self._now += timeout
            return events

        selector.select = virtual_select
        loop.time = self.now  # shadows BaseEventLoop.time for this loop
        try:
            return loop.run_until_complete(coro)
        finally:
            try:
                tasks = asyncio.all_tasks(loop)
                for task in tasks:
                    task.cancel()
                if tasks:
                    loop.run_until_complete(
                        asyncio.gather(*tasks, return_exceptions=True)
                    )
            finally:
                loop.close()
